//! Reduced-model caching on an embedded device (paper §II-B): the smart
//! refrigerator whose camera mostly sees "beer and pop bottles".
//!
//! The device tracks which classes the server keeps returning; once a few
//! classes dominate, the server trains a tiny frequent-classes-plus-other
//! model, the device caches it, and from then on common inputs are
//! answered locally — an uncommon input is "a cache miss that triggers
//! full network execution on the server".
//!
//! Run: `cargo run --release --example edge_cache`

use eugene::compress::{skewed_stream, CacheDecision, CachedModelConfig, ModelCache};
use eugene::data::{SyntheticImages, SyntheticImagesConfig};
use eugene::profiler::{ConvSpec, DeviceModel};
use eugene::service::{Eugene, TrainRequest};
use eugene::tensor::seeded_rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = seeded_rng(5);
    let gen = SyntheticImages::new(SyntheticImagesConfig::default(), &mut rng);
    let (train, _) = gen.generate(1500, &mut rng);
    let (base, _) = gen.generate(1000, &mut rng);

    // Server-side: a full model exists for the 10-class problem.
    let mut eugene = Eugene::new(6);
    let full_model = eugene.train(TrainRequest::standard(&train))?;
    let full_info = eugene.model_info(full_model)?;

    // Device traffic: 80% of frames show classes 2 ("beer") and 7 ("pop").
    let stream = skewed_stream(&base, &[2, 7], 0.8, 500, &mut rng);

    // Phase 1 — everything goes to the server; the device tracks classes.
    let mut cache = ModelCache::new(10, 0.999, 0.25, 50);
    let mut server_calls = 0;
    for i in 0..150 {
        let outputs = eugene.classify(full_model, stream.sample(i))?;
        let answer = outputs.last().expect("three stages");
        cache.record(answer.predicted);
        server_calls += 1;
    }
    println!(
        "phase 1: {server_calls} server round trips; frequent classes: {:?}",
        cache.cache_candidates()
    );

    // Phase 2 — the server builds and ships the reduced model.
    assert!(cache.should_rebuild());
    let candidates = cache.cache_candidates();
    let cached = eugene.build_cached_model(&train, &candidates, &CachedModelConfig::default())?;
    println!(
        "phase 2: cached model for classes {:?} — {} params vs {} in the full model ({:.1}%)",
        cached.classes(),
        cached.param_count(),
        full_info.param_count,
        cached.param_count() as f64 / full_info.param_count as f64 * 100.0
    );
    cache.install(cached);

    // Phase 3 — device answers locally when it can.
    let mut local_correct = 0;
    let mut local_total = 0;
    let mut escalations = 0;
    for i in 150..stream.len() {
        match cache.lookup(stream.sample(i)) {
            CacheDecision::Hit { class, .. } => {
                local_total += 1;
                if class == stream.label(i) {
                    local_correct += 1;
                }
            }
            CacheDecision::Miss => {
                escalations += 1;
                let _ = eugene.classify(full_model, stream.sample(i))?;
            }
        }
    }
    let stats = cache.stats();
    println!(
        "phase 3: hit rate {:.1}% ({} local answers, {} escalations), local accuracy {:.1}%",
        stats.hit_rate() * 100.0,
        local_total,
        escalations,
        local_correct as f64 / local_total.max(1) as f64 * 100.0
    );

    // What caching buys in latency: device-local small model vs a server
    // round trip running the full network (device cost model, §II-C).
    let device = DeviceModel::nexus5_class();
    let small = ConvSpec::same_padding(8, 16, 3, 32);
    let large = ConvSpec::same_padding(32, 64, 3, 224);
    println!(
        "\nillustrative latency (device cost model): cached path ~{:.1} ms vs full path ~{:.0} ms",
        device.latency_ms(&small),
        device.latency_ms(&large)
    );
    Ok(())
}
