//! Connection multiplexing in action: 64 tagged inference requests
//! pipelined over ONE TCP connection, answered out of order and demuxed
//! back to their submitters — then the same work pushed through the
//! serial one-request-at-a-time client on one connection, to show what
//! pipelining buys.
//!
//! Every data frame on the wire carries a `client_tag`; `MultiplexClient`
//! allocates a fresh tag per submit and a background reader routes each
//! `StageUpdate`/`Final`/`Reject` to the matching `PendingInference`.
//! Server-side, each connection gets one reader plus a small fixed
//! dispatcher pool — never a thread per request — and admission reserves
//! in-flight slots atomically, so the hard cap holds even with the whole
//! burst in flight at once.
//!
//! Run: `cargo run --release --example multiplexed_pipelining`

use eugene::data::{SyntheticImages, SyntheticImagesConfig};
use eugene::net::{ClientConfig, EugeneClient, GatewayConfig, MultiplexClient};
use eugene::service::{Eugene, SchedulerKind, ServeOptions, TrainRequest};
use eugene::tensor::seeded_rng;
use std::time::{Duration, Instant};

const BURST: usize = 64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = seeded_rng(41);
    let gen = SyntheticImages::new(SyntheticImagesConfig::default(), &mut rng);
    let (train, _) = gen.generate(1500, &mut rng);
    let (stream, _) = gen.generate(BURST, &mut rng);

    let mut eugene = Eugene::new(33);
    println!("training...");
    let model = eugene.train(TrainRequest::standard(&train))?;

    let gateway = eugene.serve_gateway(
        model,
        &ServeOptions {
            scheduler: SchedulerKind::Fifo,
            num_workers: 4,
            confidence_threshold: 0.90,
            ..ServeOptions::default()
        },
        None,
        GatewayConfig {
            // Admission must hold the whole burst: 64 in flight at once.
            high_water: 128,
            hard_cap: 256,
            ..GatewayConfig::default()
        },
    )?;
    let addr = gateway.local_addr();
    let status = gateway.status();
    println!("gateway listening on {addr}\n");

    // --- Pipelined: one connection, all 64 requests in flight at once.
    let mux = MultiplexClient::new(addr, ClientConfig::default())?;
    let started = Instant::now();
    let pending: Vec<_> = (0..BURST)
        .map(|i| {
            // Stream per-stage progress for a few of them, interleaved
            // mid-flight with the plain requests.
            let want_progress = i % 16 == 0;
            mux.submit(
                "interactive",
                stream.sample(i),
                Duration::from_secs(5),
                want_progress,
            )
        })
        .collect::<Result<_, _>>()?;
    println!(
        "submitted {BURST} requests on one connection in {:?} (peak in-flight so far: {})",
        started.elapsed(),
        status.peak_in_flight(),
    );
    for p in pending {
        let tag = p.tag();
        let outcome = p.wait()?;
        if !outcome.stage_updates.is_empty() {
            let trail: Vec<String> = outcome
                .stage_updates
                .iter()
                .map(|u| format!("s{}:{:.2}", u.stage, u.confidence))
                .collect();
            println!(
                "  tag {tag:>2} streamed [{}] -> predicted {:?}",
                trail.join(" -> "),
                outcome.predicted
            );
        }
    }
    let mux_elapsed = started.elapsed();
    println!(
        "pipelined: {BURST} answers in {mux_elapsed:?} ({:.0} req/s), peak in-flight {}\n",
        BURST as f64 / mux_elapsed.as_secs_f64(),
        status.peak_in_flight(),
    );

    // --- Serial baseline: same socket count (one), one request at a time.
    let mut serial = EugeneClient::new(addr, ClientConfig::default())?;
    let started = Instant::now();
    for i in 0..BURST {
        serial.infer("interactive", stream.sample(i), Duration::from_secs(5))?;
    }
    let serial_elapsed = started.elapsed();
    println!(
        "serial:    {BURST} answers in {serial_elapsed:?} ({:.0} req/s)",
        BURST as f64 / serial_elapsed.as_secs_f64(),
    );
    println!(
        "speedup from pipelining: {:.1}x on the same single connection",
        serial_elapsed.as_secs_f64() / mux_elapsed.as_secs_f64()
    );
    println!(
        "gateway threads spawned: {} for {} connections ({} requests served)",
        status.threads_spawned(),
        status.connections_opened(),
        2 * BURST,
    );

    gateway.shutdown();
    println!("gateway drained and stopped");
    Ok(())
}
