//! A §IV campus deployment end to end: the collaboration broker discovers
//! which cameras overlap (including a time-lagged corridor pair) purely
//! from their inference streams, and the partition planner decides how
//! much of each device's network should run locally as the campus uplink
//! degrades.
//!
//! Run: `cargo run --release --example campus_deployment`

use eugene::collab::{Camera, DetectorModel, SightingBroker, World, WorldConfig};
use eugene::partition::{
    AdaptivePartitioner, EarlyExitProfile, LinkModel, PartitionPlanner, StageCost,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ---- Part 1: collaboration brokering (paper §IV-C) ----
    let mut world = World::new(WorldConfig::default(), 31);
    let cameras = Camera::ring(8, world.config().arena_side);
    let model = DetectorModel::movidius_class();
    let mut rng = StdRng::seed_from_u64(32);
    let mut broker = SightingBroker::new(cameras.len());
    println!("recording 200 frames of per-camera inference streams...");
    for _ in 0..200 {
        world.step(0.5);
        for cam in &cameras {
            let ids = cam
                .detect(&world, &model, &mut rng)
                .into_iter()
                .filter_map(|d| d.truth);
            broker.record_frame(cam.id, ids);
        }
    }
    let links = broker.discover(0, 0.25);
    println!(
        "broker discovered {} collaboration links (no geometry shared):",
        links.len()
    );
    for link in links.iter().take(6) {
        let geometric = cameras[link.a].fov.overlaps(&cameras[link.b].fov);
        println!(
            "  cameras {} <-> {}: correlation {:.2} (geometric overlap: {geometric})",
            link.a, link.b, link.score
        );
    }

    // ---- Part 2: adaptive model partitioning (paper §IV-A) ----
    // One smart camera's staged perception network, priced per stage.
    let stages = vec![
        StageCost {
            device_ms: 55.0,
            server_ms: 6.0,
            boundary_bytes: 50_176,
        },
        StageCost {
            device_ms: 122.0,
            server_ms: 17.0,
            boundary_bytes: 37_632,
        },
        StageCost {
            device_ms: 98.0,
            server_ms: 15.0,
            boundary_bytes: 40,
        },
    ];
    let planner = PartitionPlanner::new(stages, 3 * 112 * 112 * 4).expect("stages");
    // A third of frames are easy enough to exit after stage 1, over half
    // by stage 2 (measured values from the trained workload).
    let exits = EarlyExitProfile::new(vec![0.29, 0.55, 1.0]).expect("profile");
    let mut adaptive = AdaptivePartitioner::new(planner, exits, 0.05);

    println!("\nthe campus uplink degrades over the day:");
    for (label, bandwidth) in [
        ("morning fiber", 10.0e6),
        ("midday wifi", 1.0e6),
        ("crowded afternoon", 400.0e3),
        ("evening congestion", 100.0e3),
    ] {
        let plan = adaptive.observe(&LinkModel::new(bandwidth, 20.0));
        println!(
            "  {label:>20} ({:>6.0} KB/s): run {} stage(s) on-device, E[latency] {:.0} ms, \
             {:.0}% answered locally",
            bandwidth / 1e3,
            plan.split,
            plan.expected_latency_ms,
            plan.local_answer_fraction * 100.0
        );
    }
    println!(
        "split moved {} times (hysteresis suppresses churn)",
        adaptive.switches()
    );
}
