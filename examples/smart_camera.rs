//! Collaborative camera network (paper §IV): eight overlapping cameras
//! counting pedestrians on a simulated campus, individually and
//! collaboratively — then with a compromised camera and the reputation
//! defense.
//!
//! Run: `cargo run --release --example smart_camera`

use eugene::collab::{
    run_collaborative, run_individual, run_with_rogue, Camera, DetectorModel, PipelineConfig,
    RogueConfig, World, WorldConfig,
};

fn main() {
    let world_config = WorldConfig::default();
    let cameras = Camera::ring(8, world_config.arena_side);
    let detector = DetectorModel::movidius_class();
    let pipeline = PipelineConfig::default();

    println!(
        "world: {} pedestrians on a {:.0}x{:.0} m campus, {} cameras, {} frames\n",
        world_config.num_pedestrians,
        world_config.arena_side,
        world_config.arena_side,
        cameras.len(),
        pipeline.frames
    );

    // Individual: every camera runs the full DNN on every frame.
    let mut world = World::new(world_config, 77);
    let individual = run_individual(&mut world, &cameras, &detector, &pipeline, 1);
    println!(
        "individual    : accuracy {:.1}%, recognition latency {:.0} ms/frame",
        individual.detection_accuracy * 100.0,
        individual.recognition_latency_ms
    );

    // Collaborative: box sharing + cheap verification between keyframes.
    let mut world = World::new(world_config, 77);
    let collaborative = run_collaborative(&mut world, &cameras, &detector, &pipeline, 1);
    println!(
        "collaborative : accuracy {:.1}%, recognition latency {:.0} ms/frame \
         ({:.0} ms amortized with keyframes)",
        collaborative.detection_accuracy * 100.0,
        collaborative.recognition_latency_ms,
        collaborative.mean_latency_ms
    );
    println!(
        "  -> accuracy +{:.1} points, {:.0}x faster recognition (paper: +7.5 points, 22x)\n",
        (collaborative.detection_accuracy - individual.detection_accuracy) * 100.0,
        individual.recognition_latency_ms / collaborative.recognition_latency_ms
    );

    // §IV-C: one camera starts injecting fabricated boxes.
    let mut world = World::new(world_config, 77);
    let attacked = run_with_rogue(
        &mut world,
        &cameras,
        &detector,
        &pipeline,
        &RogueConfig::default(),
        1,
    );
    println!(
        "rogue camera  : accuracy {:.1}% (false boxes poison the sharing pool)",
        attacked.detection_accuracy * 100.0
    );

    let mut world = World::new(world_config, 77);
    let defended = run_with_rogue(
        &mut world,
        &cameras,
        &detector,
        &pipeline,
        &RogueConfig {
            defended: true,
            ..RogueConfig::default()
        },
        1,
    );
    println!(
        "  + reputation: accuracy {:.1}% (peers stop trusting the rogue's boxes)",
        defended.detection_accuracy * 100.0
    );
}
