//! DeepSense-style sensor fusion (paper §II-A): classifying activities
//! from multi-sensor time-series windows, with semi-supervised labeling
//! when most windows are unlabeled.
//!
//! Run: `cargo run --release --example sensor_fusion`

use eugene::data::{SensorSeries, SensorSeriesConfig};
use eugene::nn::TrainConfig;
use eugene::service::{Eugene, TrainRequest};
use eugene::tensor::seeded_rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = seeded_rng(21);
    let config = SensorSeriesConfig::default();
    let gen = SensorSeries::new(config.clone(), &mut rng);
    println!(
        "workload: {} activity classes, {} sensors x {} samples per window",
        config.num_classes, config.num_sensors, config.window
    );

    let full = gen.generate(900, &mut rng);
    let test = gen.generate(300, &mut rng);

    // Scenario: only 10% of collected windows are labeled. Ask Eugene's
    // labeling service (§II-A) to pseudo-label the rest before training.
    let split = full.split(0.10);
    let mut eugene = Eugene::new(22);
    let labeling = eugene.label(&split.train, split.test.features())?;
    println!(
        "labeling service: covered {:.0}% of unlabeled windows \
         (pseudo-label accuracy {:.1}% against withheld truth)",
        labeling.coverage * 100.0,
        labeling.pseudo_accuracy(split.test.labels()) * 100.0
    );

    // Train on seed labels only vs seed + pseudo-labels.
    let seed_model = eugene.train(TrainRequest {
        data: &split.train,
        architecture: None,
        train: TrainConfig {
            epochs: 40,
            batch_size: 16,
            ..TrainConfig::default()
        },
    })?;
    let seed_acc = eugene.evaluate(seed_model, &test)?.last().unwrap().accuracy;

    // Build the augmented pool.
    let mut features_rows: Vec<Vec<f32>> = Vec::new();
    let mut labels = Vec::new();
    for i in 0..split.train.len() {
        features_rows.push(split.train.sample(i).to_vec());
        labels.push(split.train.label(i));
    }
    for (i, pseudo) in labeling.pseudo_labels.iter().enumerate() {
        if let Some(label) = pseudo {
            features_rows.push(split.test.features().row(i).to_vec());
            labels.push(*label);
        }
    }
    let flat: Vec<f32> = features_rows.concat();
    let augmented = eugene::data::Dataset::new(
        eugene::tensor::Matrix::from_vec(labels.len(), split.train.dim(), flat),
        labels,
        split.train.num_classes(),
    );
    let augmented_model = eugene.train(TrainRequest {
        data: &augmented,
        architecture: None,
        train: TrainConfig {
            epochs: 40,
            batch_size: 16,
            ..TrainConfig::default()
        },
    })?;
    let augmented_acc = eugene
        .evaluate(augmented_model, &test)?
        .last()
        .unwrap()
        .accuracy;

    println!("\nactivity-recognition accuracy on held-out windows:");
    println!("  10% labels only        : {:.1}%", seed_acc * 100.0);
    println!("  + pseudo-labeled pool  : {:.1}%", augmented_acc * 100.0);

    // Early-exit behavior: easy windows resolve at stage 1.
    let evals = eugene.evaluate(augmented_model, &test)?;
    for eval in &evals {
        let confident =
            eval.confidences.iter().filter(|&&c| c >= 0.9).count() as f64 / eval.len() as f64;
        println!(
            "  stage {}: accuracy {:.1}%, {:.0}% of windows already >= 90% confident",
            eval.stage + 1,
            eval.accuracy * 100.0,
            confident * 100.0
        );
    }
    Ok(())
}
