//! Quickstart: train a staged model through the Eugene façade and inspect
//! its per-stage predictions.
//!
//! This is the paper's core loop in miniature: a client ships labeled
//! data, the service trains a staged network, and inference reports a
//! `(prediction, confidence)` tuple after every stage so execution can
//! stop as soon as confidence is high enough.
//!
//! Run: `cargo run --release --example quickstart`

use eugene::data::{SyntheticImages, SyntheticImagesConfig};
use eugene::service::{Eugene, TrainRequest};
use eugene::tensor::seeded_rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Client-side data collection (synthetic CIFAR-10 stand-in).
    let mut rng = seeded_rng(1);
    let gen = SyntheticImages::new(SyntheticImagesConfig::default(), &mut rng);
    let (train, _) = gen.generate(1500, &mut rng);
    let (test, difficulty) = gen.generate(10, &mut rng);

    // 2. Ask the service to train a three-stage model.
    let mut eugene = Eugene::new(7);
    let model = eugene.train(TrainRequest::standard(&train))?;
    let info = eugene.model_info(model)?;
    println!(
        "trained model {:?}: {} stages, {} params, {} classes",
        info.id, info.num_stages, info.param_count, info.num_classes
    );

    // 3. Classify a few inputs stage by stage and watch confidence grow.
    println!("\nsample  difficulty  stage1(conf)  stage2(conf)  stage3(conf)  label");
    for (i, diff) in difficulty.iter().enumerate() {
        let outputs = eugene.classify(model, test.sample(i))?;
        let cells: Vec<String> = outputs
            .iter()
            .map(|o| format!("{:>2} ({:.2})", o.predicted, o.confidence))
            .collect();
        println!(
            "{:>6}  {:>10}  {:>12}  {:>12}  {:>12}  {:>5}",
            i,
            format!("{diff:?}"),
            cells[0],
            cells[1],
            cells[2],
            test.label(i)
        );
    }

    // 4. Aggregate accuracy per stage: deeper stages resolve harder inputs.
    let (big_test, _) = gen.generate(1000, &mut seeded_rng(2));
    let evals = eugene.evaluate(model, &big_test)?;
    println!("\nper-stage accuracy on 1000 held-out samples:");
    for eval in &evals {
        println!(
            "  stage {}: accuracy {:.1}%, mean confidence {:.2}",
            eval.stage + 1,
            eval.accuracy * 100.0,
            eval.mean_confidence()
        );
    }
    Ok(())
}
