//! The full run-time inference service of paper §III-C: a trained and
//! calibrated staged model served by the worker pool, with RTDeepIoT
//! scheduling, early exit on confident results, two service classes with
//! different latency constraints, and the deadline daemon interrupting
//! over-budget work.
//!
//! Run: `cargo run --release --example serving_pipeline`

use eugene::data::{SyntheticImages, SyntheticImagesConfig};
use eugene::serve::{InferenceRequest, ServiceClass};
use eugene::service::{Eugene, SchedulerKind, ServeOptions, TrainRequest};
use eugene::tensor::seeded_rng;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = seeded_rng(11);
    let gen = SyntheticImages::new(SyntheticImagesConfig::default(), &mut rng);
    let (train, _) = gen.generate(1500, &mut rng);
    let (calib, _) = gen.generate(800, &mut rng);
    let (stream, _) = gen.generate(40, &mut rng);

    let mut eugene = Eugene::new(12);
    println!("training...");
    let model = eugene.train(TrainRequest::standard(&train))?;
    println!("calibrating confidence (paper Eq. 4)...");
    let outcome = eugene.calibrate(model, &calib)?;
    println!(
        "  alpha {:+.2}, mean ECE {:.3} -> {:.3}",
        outcome.alpha, outcome.ece_before, outcome.ece_after
    );

    // Start the serving runtime: 4 workers, RTDeepIoT-1 scheduling,
    // early exit at 90% confidence (§II-E: refrain from executing
    // additional layers once quality is reached).
    let options = ServeOptions {
        scheduler: SchedulerKind::RtDeepIot { lookahead: 1 },
        num_workers: 4,
        confidence_threshold: 0.90,
        ..ServeOptions::default()
    };
    let runtime = eugene.serve(model, &options, Some(&train))?;

    // Two service classes (paper §V): an interactive chatbot-like class
    // with a tight deadline and a tolerant surveillance-like class.
    let interactive = ServiceClass::new("interactive", Duration::from_millis(30));
    let surveillance = ServiceClass::new("surveillance", Duration::from_secs(5));

    println!("\nsubmitting {} requests...", stream.len());
    let receivers: Vec<_> = (0..stream.len())
        .map(|i| {
            let class = if i % 2 == 0 {
                interactive.clone()
            } else {
                surveillance.clone()
            };
            let request = InferenceRequest::new(stream.sample(i).to_vec(), class.clone());
            (i, class, runtime.submit(request))
        })
        .collect();

    let mut early_exits = 0;
    let mut expired = 0;
    let mut stage_total = 0;
    for (i, class, (_, rx)) in receivers {
        let response = rx.recv_timeout(Duration::from_secs(30))?;
        stage_total += response.stages_executed;
        if response.expired {
            expired += 1;
        }
        if !response.expired && response.stages_executed < 3 {
            early_exits += 1;
        }
        if i < 8 {
            println!(
                "  req {i:>2} [{:>12}]: predicted {:?} conf {:?} after {} stages in {:?}{}",
                class.name(),
                response.predicted,
                response.confidence.map(|c| (c * 100.0).round() / 100.0),
                response.stages_executed,
                response.latency,
                if response.expired { "  (DEADLINE)" } else { "" },
            );
        }
    }
    println!(
        "\nsummary: {} requests, mean stages {:.2}, early exits {}, deadline kills {}",
        stream.len(),
        stage_total as f64 / stream.len() as f64,
        early_exits,
        expired
    );

    // Per-class usage accounting and pricing (paper SV).
    let pricing = eugene::serve::PricingModel::new(1.0, 0.5, 0.5);
    for (class, usage) in runtime.usage_ledger().snapshot() {
        println!(
            "class {class:>12}: {} requests, {} stages, {} early exits, {} expired -> invoice {:.2} credits",
            usage.requests, usage.stages_executed, usage.early_exits, usage.expired,
            pricing.invoice(&usage)
        );
    }

    // The confidence pipe carries per-stage progress for observability.
    let mut progress = 0;
    while runtime.progress_events().try_recv().is_ok() {
        progress += 1;
    }
    println!("confidence pipe carried {progress} stage-progress messages");
    runtime.shutdown();
    Ok(())
}
