//! Deep intelligence *as a service*, over an actual network: a trained
//! staged model served through the TCP gateway, queried by a remote-style
//! client that streams per-stage early-exit progress across the wire.
//!
//! The gateway re-anchors each request's latency budget on its own clock,
//! streams a `StageUpdate` frame per executed stage, sheds load with
//! `Reject` frames under overload, and drains in-flight work on shutdown.
//!
//! Run: `cargo run --release --example serving_over_network`

use eugene::data::{SyntheticImages, SyntheticImagesConfig};
use eugene::net::{ClientConfig, EugeneClient, GatewayConfig};
use eugene::service::{Eugene, SchedulerKind, ServeOptions, TrainRequest};
use eugene::tensor::seeded_rng;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = seeded_rng(31);
    let gen = SyntheticImages::new(SyntheticImagesConfig::default(), &mut rng);
    let (train, _) = gen.generate(1500, &mut rng);
    let (stream, _) = gen.generate(12, &mut rng);

    let mut eugene = Eugene::new(32);
    println!("training...");
    let model = eugene.train(TrainRequest::standard(&train))?;

    // Serve the model behind a TCP gateway on a free loopback port:
    // 4 workers, RTDeepIoT scheduling, early exit at 90% confidence.
    let gateway = eugene.serve_gateway(
        model,
        &ServeOptions {
            scheduler: SchedulerKind::RtDeepIot { lookahead: 1 },
            num_workers: 4,
            confidence_threshold: 0.90,
            ..ServeOptions::default()
        },
        Some(&train),
        GatewayConfig::default(),
    )?;
    let addr = gateway.local_addr();
    println!("gateway listening on {addr}");

    // A client on the other side of the socket. `want_progress` asks the
    // gateway to stream one StageUpdate frame per executed stage, so the
    // client watches confidence build (and early exit trigger) live.
    let mut client = EugeneClient::new(
        addr,
        ClientConfig {
            want_progress: true,
            seed: 7,
            ..ClientConfig::default()
        },
    )?;
    let rtt = client.ping(Duration::from_secs(2))?;
    println!("ping: {rtt:?}\n");

    let mut early_exits = 0;
    let mut stage_total = 0u32;
    for i in 0..stream.len() {
        // Alternate an interactive class (tight budget) with a tolerant
        // surveillance-like class; budgets travel the wire as remaining
        // milliseconds and are re-anchored on the server clock.
        let (class, budget) = if i % 2 == 0 {
            ("interactive", Duration::from_millis(250))
        } else {
            ("surveillance", Duration::from_secs(5))
        };
        let outcome = client.infer(class, stream.sample(i), budget)?;
        stage_total += outcome.stages_executed;
        if !outcome.expired && (outcome.stages_executed as usize) < 3 {
            early_exits += 1;
        }
        let trail: Vec<String> = outcome
            .stage_updates
            .iter()
            .map(|u| format!("s{}:{:.2}", u.stage, u.confidence))
            .collect();
        println!(
            "req {i:>2} [{class:>12}] predicted {:?} after {} stages  [{}]  server {:?} rtt {:?}{}",
            outcome.predicted,
            outcome.stages_executed,
            trail.join(" -> "),
            outcome.server_latency,
            outcome.round_trip,
            if outcome.expired { "  (DEADLINE)" } else { "" },
        );
    }
    println!(
        "\nsummary: {} requests over TCP, mean stages {:.2}, early exits {}",
        stream.len(),
        f64::from(stage_total) / stream.len() as f64,
        early_exits
    );

    // Graceful shutdown drains every in-flight request before closing.
    gateway.shutdown();
    println!("gateway drained and stopped");
    Ok(())
}
