#!/usr/bin/env bash
# The full CI gate, runnable locally. Everything here must pass before a
# change merges; CI (.github/workflows/ci.yml) runs exactly this script.
#
# The workspace builds fully offline: every dependency is a vendored
# path crate under vendor/, so `--offline` is safe everywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --workspace --release"
cargo build --workspace --release --offline

echo "==> cargo test --workspace -q"
cargo test --workspace -q --offline

echo "CI gate passed."
