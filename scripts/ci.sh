#!/usr/bin/env bash
# The full CI gate, runnable locally. Everything here must pass before a
# change merges; CI (.github/workflows/ci.yml) runs exactly this script.
#
# The workspace builds fully offline: every dependency is a vendored
# path crate under vendor/, so `--offline` is safe everywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --workspace --release"
cargo build --workspace --release --offline

echo "==> cargo test --workspace -q"
cargo test --workspace -q --offline

# Leak/multiplexing regressions, named explicitly so a future test-file
# rename cannot silently drop them from the gate: connection-churn handle
# reaping, >=64 interleaved in-flight tags on one connection, the
# readiness-backend parity suite, the event-driven latency bounds (no
# accept sleep, no dispatcher forwarding tick), the shard fault-injection
# suite (ShardLost on kill, survivors keep serving, both backends), and
# the consistent-hash ring property suite (bounded remap, exact restore,
# restart determinism).
echo "==> cargo test -p eugene-net --test churn --test multiplex --test stale_frames --test readiness --test latency --test shard_faults --test ring_properties -q"
cargo test -p eugene-net -q --offline \
  --test churn --test multiplex --test stale_frames --test readiness --test latency \
  --test shard_faults --test ring_properties

# Kernel regressions, named explicitly for the same reason: the blocked/
# parallel matmul paths must stay bitwise-equal to the naive references
# at every parallelism setting (what serving micro-batching relies on).
echo "==> cargo test -p eugene-tensor --test kernel_properties -q"
cargo test -p eugene-tensor -q --offline --test kernel_properties

# Kernel throughput smoke: exercises the packed/parallel GEMM paths and
# the worker pool end to end (quick mode skips the timed speedup gate).
echo "==> kernel_throughput --quick"
cargo run --release --offline -p eugene-bench --bin kernel_throughput -- --quick

# Idle-connection scaling smoke: both gateway backends hold an idle
# crowd; asserts the readiness event loop stays on a bounded thread set.
echo "==> gateway_throughput --quick --idle"
cargo run --release --offline -p eugene-bench --bin gateway_throughput -- --quick --idle

# Shard-scaling smoke: a saturated multiplexed keyed workload against the
# ShardRouter at N=1 and N=2 shards; asserts two shards beat one.
echo "==> gateway_throughput --quick --sharded"
cargo run --release --offline -p eugene-bench --bin gateway_throughput -- --quick --sharded

echo "CI gate passed."
