#!/usr/bin/env bash
# The full CI gate, runnable locally. Everything here must pass before a
# change merges; CI (.github/workflows/ci.yml) runs exactly this script.
#
# The workspace builds fully offline: every dependency is a vendored
# path crate under vendor/, so `--offline` is safe everywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --workspace --release"
cargo build --workspace --release --offline

echo "==> cargo test --workspace -q"
cargo test --workspace -q --offline

# Leak/multiplexing regressions, named explicitly so a future test-file
# rename cannot silently drop them from the gate: connection-churn handle
# reaping, >=64 interleaved in-flight tags on one connection, the
# readiness-backend parity suite, the event-driven latency bounds (no
# accept sleep, no dispatcher forwarding tick), the shard fault-injection
# suite (ShardLost on kill under the legacy Reject policy, survivors keep
# serving, both backends), the replica fault suite (transparent replay on
# kill, exactly-once answers across 100x kill/revive races, revive
# ordering, generation-keyed upstreams, live add/remove under load, both
# backends), the consistent-hash ring property suite (bounded remap,
# exact restore, restart determinism, replica placement, double-routing
# windows), the registry lifecycle suite (load/unload with requests in
# flight, both backends), and the per-tenant admission suite (hard caps,
# weighted fair shedding), and the overload degradation suite (2x
# saturation in Degrade mode: zero rejects after admission, every Final
# carries >=1 stage, utility beats the kill baseline, both backends).
echo "==> cargo test -p eugene-net --test churn --test multiplex --test stale_frames --test readiness --test latency --test shard_faults --test replica_faults --test ring_properties --test registry_lifecycle --test tenants --test overload -q"
cargo test -p eugene-net -q --offline \
  --test churn --test multiplex --test stale_frames --test readiness --test latency \
  --test shard_faults --test replica_faults --test ring_properties --test registry_lifecycle \
  --test tenants --test overload

# Kernel regressions, named explicitly for the same reason: the blocked/
# parallel matmul paths must stay bitwise-equal to the naive references
# at every parallelism setting (what serving micro-batching relies on).
# Run twice — once with kernel-path auto-detection and once with the
# SIMD tier forced off — so both the vectorized kernels and the scalar
# fallback stay under the same parity contract.
echo "==> cargo test -p eugene-tensor --test kernel_properties -q"
cargo test -p eugene-tensor -q --offline --test kernel_properties
echo "==> EUGENE_SIMD=0 cargo test -p eugene-tensor --test kernel_properties -q"
EUGENE_SIMD=0 cargo test -p eugene-tensor -q --offline --test kernel_properties

# Plan-compiler regressions, named explicitly for the same reason: the
# op-graph parity proptests (compiled plans bitwise-equal to the layer
# walk across architectures/batches/precisions/tier flips) and the
# plan-cache lifecycle suite (hit/miss accounting, invalidation on every
# parameter-mutation funnel, quantize-after-compile, the concurrency
# hammer). Run twice — once under kernel-path auto-detection and once
# with the SIMD tier forced off — so fused epilogues on both the
# vectorized and scalar tiers stay under the parity contract.
echo "==> cargo test -p eugene-nn --test plan_parity --test plan_cache -q"
cargo test -p eugene-nn -q --offline --test plan_parity --test plan_cache
echo "==> EUGENE_SIMD=0 cargo test -p eugene-nn --test plan_parity --test plan_cache -q"
EUGENE_SIMD=0 cargo test -p eugene-nn -q --offline --test plan_parity --test plan_cache

# Serving-layer plan lifecycle: micro-batched dispatch compiles each
# stage once then hits, the runtime surfaces the counters, and a model
# reload never serves a stale plan.
echo "==> cargo test -p eugene-service --test plan_lifecycle -q"
cargo test -p eugene-service -q --offline --test plan_lifecycle
echo "==> EUGENE_SIMD=0 cargo test -p eugene-service --test plan_lifecycle -q"
EUGENE_SIMD=0 cargo test -p eugene-service -q --offline --test plan_lifecycle

# Kernel throughput smoke: exercises the scalar/SIMD/quantized GEMM
# tiers and the worker pool end to end. Quick mode asserts a
# conservative speedup floor (SIMD >= 1.5x blocked scalar, quantized
# not collapsed) so a silently de-vectorized build fails here.
echo "==> kernel_throughput --quick"
cargo run --release --offline -p eugene-bench --bin kernel_throughput -- --quick

# Fused-serving smoke: compiled-plan dispatch vs the unfused layer walk
# at 512x512, single thread. Asserts bitwise parity inline, zero
# steady-state allocations after warm-up (counting global allocator),
# and that the fused plan is at least as fast as the walk (the full
# bench holds the 1.15x floor).
echo "==> kernel_throughput --fused --quick"
cargo run --release --offline -p eugene-bench --bin kernel_throughput -- --fused --quick

# Idle-connection scaling smoke: both gateway backends hold an idle
# crowd; asserts the readiness event loop stays on a bounded thread set.
echo "==> gateway_throughput --quick --idle"
cargo run --release --offline -p eugene-bench --bin gateway_throughput -- --quick --idle

# Shard-scaling smoke: a saturated multiplexed keyed workload against the
# ShardRouter at N=1 and N=2 shards; asserts two shards beat one.
echo "==> gateway_throughput --quick --sharded"
cargo run --release --offline -p eugene-bench --bin gateway_throughput -- --quick --sharded

# Replicated-resilience smoke: a shard kill plus a live scale-out under
# single-attempt load must be invisible (zero rejects/errors), and the
# load-aware rebalancer must narrow a lumpy ring's per-shard rps spread
# well under the static control's.
echo "==> gateway_throughput --quick --replicated"
cargo run --release --offline -p eugene-bench --bin gateway_throughput -- --quick --replicated

# Overload-degradation smoke: Degrade vs Kill at rates straddling the
# saturation knee; asserts anytime degradation wins on utility per second
# past the knee.
echo "==> gateway_throughput --quick --overload"
cargo run --release --offline -p eugene-bench --bin gateway_throughput -- --quick --overload

# Multi-tenant smoke: a rogue tenant at 4x the compliant tenant's rate
# must shed its own traffic (compliant p99 inside SLO, zero errors), and
# the two-variant registry must beat both single-variant deployments on
# utility at equal compute.
echo "==> gateway_throughput --quick --tenants"
cargo run --release --offline -p eugene-bench --bin gateway_throughput -- --quick --tenants

echo "CI gate passed."
