//! Eugene: deep intelligence as a service — umbrella crate.
//!
//! This crate re-exports the full reproduction of *Eugene: Towards Deep
//! Intelligence as a Service* (ICDCS 2019) so downstream users can depend
//! on a single crate:
//!
//! - [`tensor`] — dense linear algebra substrate.
//! - [`nn`] — from-scratch neural networks with staged (early-exit) heads.
//! - [`data`] — synthetic CIFAR-10 stand-in and IoT sensor streams.
//! - [`calibrate`] — ECE, reliability diagrams, entropy-regularized
//!   confidence calibration (paper Eq. 4, Table II, Fig. 2).
//! - [`gp`] — Gaussian-process confidence-curve regression and its
//!   piecewise-linear runtime compression (paper §III-B, Table III).
//! - [`profiler`] — FastDeepIoT-style execution-time profiling (Table I).
//! - [`partition`] — client/server model partitioning with early-exit
//!   awareness (paper §IV-A).
//! - [`compress`] — DeepIoT-style model reduction and reduced-model caching
//!   (paper §II-B).
//! - [`label`] — SenseGAN-style semi-supervised labeling (paper §II-A).
//! - [`sched`] — the RTDeepIoT utility-maximizing stage scheduler and its
//!   baselines with a discrete-event simulator (paper §III, Fig. 4).
//! - [`serve`] — the live serving runtime: worker pool, deadline daemon,
//!   confidence pipes (paper §III-C).
//! - [`net`] — the network edge: wire protocol, TCP gateway with
//!   admission control, deadline-aware client, Poisson load generator.
//! - [`collab`] — collaborative multi-camera inferencing (paper §IV,
//!   Table IV).
//! - [`service`] — the `Eugene` façade tying the suite together (§II).
//!
//! # Examples
//!
//! ```
//! use eugene::tensor::Matrix;
//!
//! let m = Matrix::identity(3);
//! assert_eq!(m.matmul(&m), m);
//! ```

pub use eugene_calibrate as calibrate;
pub use eugene_collab as collab;
pub use eugene_compress as compress;
pub use eugene_data as data;
pub use eugene_gp as gp;
pub use eugene_label as label;
pub use eugene_net as net;
pub use eugene_nn as nn;
pub use eugene_partition as partition;
pub use eugene_profiler as profiler;
pub use eugene_sched as sched;
pub use eugene_serve as serve;
pub use eugene_service as service;
pub use eugene_tensor as tensor;
