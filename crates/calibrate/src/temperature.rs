use eugene_data::Dataset;
use eugene_nn::{StageEval, StagedNetwork};
use eugene_tensor::{log_softmax, Matrix};
use serde::{Deserialize, Serialize};

/// Post-hoc temperature scaling (Guo et al., the paper's \[11\]), included
/// as an ablation baseline beyond the paper's Table II.
///
/// A single scalar `T > 0` per stage rescales logits to `z / T` before the
/// softmax; `T` is chosen to minimize negative log-likelihood on a
/// calibration split by golden-section search. Unlike entropy fine-tuning
/// it cannot change accuracy (argmax is invariant under positive scaling).
///
/// # Examples
///
/// ```
/// use eugene_calibrate::TemperatureScaling;
/// use eugene_tensor::Matrix;
///
/// // Overconfident logits: a temperature above 1 softens them.
/// let logits = Matrix::from_rows(&[&[8.0, 0.0], &[7.0, 0.5]]);
/// let labels = [0usize, 1];
/// let ts = TemperatureScaling::fit_logits(&logits, &labels);
/// assert!(ts.temperature() > 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TemperatureScaling {
    temperature: f32,
}

impl TemperatureScaling {
    /// Minimum/maximum temperatures searched.
    const T_MIN: f32 = 0.05;
    const T_MAX: f32 = 20.0;

    /// Fits the temperature minimizing NLL of `labels` under `logits / T`.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != logits.rows()` or the batch is empty.
    pub fn fit_logits(logits: &Matrix, labels: &[usize]) -> Self {
        assert_eq!(labels.len(), logits.rows(), "one label per row required");
        assert!(!labels.is_empty(), "cannot fit on an empty batch");
        let nll = |t: f32| -> f64 {
            let mut total = 0.0f64;
            for (i, &y) in labels.iter().enumerate() {
                let scaled: Vec<f32> = logits.row(i).iter().map(|z| z / t).collect();
                let ls = log_softmax(&scaled);
                total -= ls[y] as f64;
            }
            total / labels.len() as f64
        };
        // Golden-section search over log-temperature: NLL(T) is unimodal
        // for temperature scaling.
        let phi = (5.0_f32.sqrt() - 1.0) / 2.0;
        let (mut lo, mut hi) = (Self::T_MIN.ln(), Self::T_MAX.ln());
        let mut x1 = hi - phi * (hi - lo);
        let mut x2 = lo + phi * (hi - lo);
        let mut f1 = nll(x1.exp());
        let mut f2 = nll(x2.exp());
        for _ in 0..60 {
            if f1 < f2 {
                hi = x2;
                x2 = x1;
                f2 = f1;
                x1 = hi - phi * (hi - lo);
                f1 = nll(x1.exp());
            } else {
                lo = x1;
                x1 = x2;
                f1 = f2;
                x2 = lo + phi * (hi - lo);
                f2 = nll(x2.exp());
            }
        }
        Self {
            temperature: ((lo + hi) / 2.0).exp(),
        }
    }

    /// The fitted temperature.
    pub fn temperature(&self) -> f32 {
        self.temperature
    }

    /// Applies the temperature to raw logits, returning scaled logits.
    pub fn apply(&self, logits: &Matrix) -> Matrix {
        logits.map(|z| z / self.temperature)
    }

    /// Fits one temperature per stage of `network` on `calibration` and
    /// returns the per-stage scalers plus the rescaled evaluations.
    pub fn fit_staged(
        network: &StagedNetwork,
        calibration: &Dataset,
    ) -> (Vec<TemperatureScaling>, Vec<StageEval>) {
        let logits = network.predict_all(calibration.features());
        let mut scalers = Vec::with_capacity(logits.len());
        let mut evals = Vec::with_capacity(logits.len());
        for (s, stage_logits) in logits.iter().enumerate() {
            let ts = Self::fit_logits(stage_logits, calibration.labels());
            let scaled = ts.apply(stage_logits);
            evals.push(StageEval::from_logits(s, &scaled, calibration.labels()));
            scalers.push(ts);
        }
        (scalers, evals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ece;

    /// Logits engineered so raw confidence is ~0.999 while accuracy is 75%.
    fn overconfident_batch() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            rows.push([8.0f32, 0.0]);
            // 3 out of 4 are actually class 0.
            labels.push(if i % 4 == 0 { 1 } else { 0 });
        }
        let flat: Vec<f32> = rows.iter().flatten().copied().collect();
        (Matrix::from_vec(40, 2, flat), labels)
    }

    #[test]
    fn fitted_temperature_softens_overconfident_logits() {
        let (logits, labels) = overconfident_batch();
        let ts = TemperatureScaling::fit_logits(&logits, &labels);
        assert!(ts.temperature() > 1.5, "T = {}", ts.temperature());
        let before = StageEval::from_logits(0, &logits, &labels);
        let after = StageEval::from_logits(0, &ts.apply(&logits), &labels);
        let ece_before = ece(&before.confidences, &before.correct, 10);
        let ece_after = ece(&after.confidences, &after.correct, 10);
        assert!(
            ece_after < ece_before,
            "temperature should reduce ECE: {ece_before} -> {ece_after}"
        );
    }

    #[test]
    fn accuracy_is_invariant_under_scaling() {
        let (logits, labels) = overconfident_batch();
        let ts = TemperatureScaling::fit_logits(&logits, &labels);
        let before = StageEval::from_logits(0, &logits, &labels);
        let after = StageEval::from_logits(0, &ts.apply(&logits), &labels);
        assert_eq!(before.predictions, after.predictions);
        assert_eq!(before.accuracy, after.accuracy);
    }

    #[test]
    fn well_calibrated_logits_keep_temperature_near_one() {
        // Construct logits whose confidence roughly matches accuracy:
        // confidence ~0.73, accuracy 0.75.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..80 {
            rows.push([1.0f32, 0.0]);
            labels.push(if i % 4 == 0 { 1 } else { 0 });
        }
        let flat: Vec<f32> = rows.iter().flatten().copied().collect();
        let logits = Matrix::from_vec(80, 2, flat);
        let ts = TemperatureScaling::fit_logits(&logits, &labels);
        assert!(
            (0.5..2.0).contains(&ts.temperature()),
            "T = {}",
            ts.temperature()
        );
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        TemperatureScaling::fit_logits(&Matrix::zeros(0, 2), &[]);
    }
}
