use serde::{Deserialize, Serialize};

/// One confidence bin of a reliability diagram (paper Fig. 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityBin {
    /// Lower edge of the bin's confidence interval `((m-1)/M, m/M]`.
    pub lower: f32,
    /// Upper edge of the bin's confidence interval.
    pub upper: f32,
    /// Number of samples whose confidence fell in this bin (`|S_m|`).
    pub count: usize,
    /// Average accuracy of the bin's samples, `acc(S_m)` (Eq. 1);
    /// `0.0` for empty bins.
    pub accuracy: f64,
    /// Average confidence of the bin's samples, `conf(S_m)` (Eq. 2);
    /// `0.0` for empty bins.
    pub confidence: f64,
}

impl ReliabilityBin {
    /// Midpoint of the bin, used as the x coordinate when plotting.
    pub fn center(&self) -> f32 {
        (self.lower + self.upper) / 2.0
    }

    /// `|acc - conf|`, the bin's contribution to miscalibration.
    pub fn gap(&self) -> f64 {
        (self.accuracy - self.confidence).abs()
    }
}

/// A full reliability diagram: samples binned by confidence with per-bin
/// accuracy and confidence, the visual calibration representation of
/// paper Fig. 2 (after DeGroot & Fienberg, the paper's \[12\]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityDiagram {
    bins: Vec<ReliabilityBin>,
    total: usize,
}

impl ReliabilityDiagram {
    /// Bins `(confidence, correct)` pairs into `num_bins` equal-width bins.
    ///
    /// Following the paper's definition, bin `m` covers
    /// `((m-1)/M, m/M]`; confidences of exactly `0.0` land in the first
    /// bin.
    ///
    /// # Panics
    ///
    /// Panics if `num_bins == 0`, the slices differ in length, or any
    /// confidence lies outside `[0, 1]`.
    pub fn new(confidences: &[f32], correct: &[bool], num_bins: usize) -> Self {
        assert!(num_bins > 0, "need at least one bin");
        assert_eq!(
            confidences.len(),
            correct.len(),
            "confidences and correctness must align"
        );
        let mut counts = vec![0usize; num_bins];
        let mut acc_sum = vec![0usize; num_bins];
        let mut conf_sum = vec![0.0f64; num_bins];
        for (&c, &ok) in confidences.iter().zip(correct) {
            assert!((0.0..=1.0).contains(&c), "confidence {c} outside [0, 1]");
            // Bin m covers ((m-1)/M, m/M]: ceil(c * M) - 1, clamped.
            let idx = if c <= 0.0 {
                0
            } else {
                ((c * num_bins as f32).ceil() as usize - 1).min(num_bins - 1)
            };
            counts[idx] += 1;
            if ok {
                acc_sum[idx] += 1;
            }
            conf_sum[idx] += c as f64;
        }
        let bins = (0..num_bins)
            .map(|m| {
                let count = counts[m];
                ReliabilityBin {
                    lower: m as f32 / num_bins as f32,
                    upper: (m + 1) as f32 / num_bins as f32,
                    count,
                    accuracy: if count > 0 {
                        acc_sum[m] as f64 / count as f64
                    } else {
                        0.0
                    },
                    confidence: if count > 0 {
                        conf_sum[m] / count as f64
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        Self {
            bins,
            total: confidences.len(),
        }
    }

    /// The bins, lowest confidence first.
    pub fn bins(&self) -> &[ReliabilityBin] {
        &self.bins
    }

    /// Total number of binned samples.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Expected Calibration Error (Eq. 3): the `|S_m| / n`-weighted average
    /// of per-bin `|acc - conf|` gaps.
    ///
    /// (The paper's Eq. 3 prints the weight as `|S_m| / m`; the standard
    /// definition it cites — Naeini et al., the paper's \[13\] — normalizes
    /// by the total sample count `n`, which is what we implement.)
    pub fn ece(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.bins
            .iter()
            .map(|b| b.count as f64 / self.total as f64 * b.gap())
            .sum()
    }

    /// Maximum per-bin gap (Maximum Calibration Error), a common companion
    /// metric.
    pub fn mce(&self) -> f64 {
        self.bins
            .iter()
            .filter(|b| b.count > 0)
            .map(ReliabilityBin::gap)
            .fold(0.0, f64::max)
    }
}

/// Expected Calibration Error of `(confidence, correct)` pairs with
/// `num_bins` equal-width bins — a convenience wrapper over
/// [`ReliabilityDiagram::ece`].
///
/// # Panics
///
/// Same conditions as [`ReliabilityDiagram::new`].
pub fn ece(confidences: &[f32], correct: &[bool], num_bins: usize) -> f64 {
    ReliabilityDiagram::new(confidences, correct, num_bins).ece()
}

/// The signed overall gap `conf(S) - acc(S)`.
///
/// Positive means the model **overestimates** (confidence above accuracy);
/// negative means it underestimates. This is the signal the paper's
/// α-tuning rule consumes: "When the confidence underestimates the
/// accuracy, we set α < 0 and vice-versa" — i.e. the sign of α follows
/// the direction needed to close this gap.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn overall_gap(confidences: &[f32], correct: &[bool]) -> f64 {
    assert_eq!(
        confidences.len(),
        correct.len(),
        "confidences and correctness must align"
    );
    if confidences.is_empty() {
        return 0.0;
    }
    let mean_conf = confidences.iter().map(|&c| c as f64).sum::<f64>() / confidences.len() as f64;
    let acc = correct.iter().filter(|&&c| c).count() as f64 / correct.len() as f64;
    mean_conf - acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_calibrated_has_zero_ece() {
        // 10 samples at 0.8 confidence, 8 correct.
        let conf = [0.8f32; 10];
        let mut ok = [true; 10];
        ok[8] = false;
        ok[9] = false;
        assert!(ece(&conf, &ok, 10) < 1e-6);
    }

    #[test]
    fn overconfident_model_has_positive_gap_and_nonzero_ece() {
        let conf = [0.95f32; 10];
        let ok = [
            true, true, true, true, true, false, false, false, false, false,
        ];
        let e = ece(&conf, &ok, 10);
        assert!((e - 0.45).abs() < 1e-6, "ece {e}");
        assert!(overall_gap(&conf, &ok) > 0.4);
    }

    #[test]
    fn underconfident_model_has_negative_gap() {
        let conf = [0.5f32; 8];
        let ok = [true; 8];
        assert!(overall_gap(&conf, &ok) < -0.4);
    }

    #[test]
    fn bin_edges_follow_paper_convention() {
        // Confidence exactly at 0.1 belongs to bin (0, 0.1] = bin 0.
        let diagram = ReliabilityDiagram::new(&[0.1, 0.100001, 1.0, 0.0], &[true; 4], 10);
        assert_eq!(diagram.bins()[0].count, 2); // 0.1 and 0.0
        assert_eq!(diagram.bins()[1].count, 1); // 0.100001
        assert_eq!(diagram.bins()[9].count, 1); // 1.0
    }

    #[test]
    fn empty_bins_do_not_contribute() {
        let diagram = ReliabilityDiagram::new(&[0.95, 0.96], &[true, true], 10);
        let populated: Vec<_> = diagram.bins().iter().filter(|b| b.count > 0).collect();
        assert_eq!(populated.len(), 1);
        assert!(diagram.ece() < 0.1);
    }

    #[test]
    fn mce_at_least_ece() {
        let conf = [0.9, 0.9, 0.3, 0.3];
        let ok = [true, false, true, true];
        let d = ReliabilityDiagram::new(&conf, &ok, 10);
        assert!(d.mce() >= d.ece());
    }

    #[test]
    fn ece_of_empty_input_is_zero() {
        assert_eq!(ece(&[], &[], 10), 0.0);
        assert_eq!(overall_gap(&[], &[]), 0.0);
    }

    #[test]
    fn bin_center_and_gap() {
        let bin = ReliabilityBin {
            lower: 0.2,
            upper: 0.3,
            count: 4,
            accuracy: 0.5,
            confidence: 0.25,
        };
        assert!((bin.center() - 0.25).abs() < 1e-6);
        assert!((bin.gap() - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_range_confidence() {
        ece(&[1.5], &[true], 10);
    }
}
