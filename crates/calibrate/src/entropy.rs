use crate::diagram::{ece, overall_gap};
use eugene_data::Dataset;
use eugene_nn::{evaluate_staged, StagedNetwork};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for [`EntropyCalibrator`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntropyCalibratorConfig {
    /// Controller rounds; each round re-measures the gap and adjusts
    /// `alpha`, then re-optimizes the head scale.
    pub rounds: usize,
    /// Step size of the inner scale optimization.
    pub learning_rate: f32,
    /// Gradient steps of the inner scale optimization per round.
    pub inner_steps: usize,
    /// Number of ECE bins used for measurement and model selection.
    pub num_bins: usize,
    /// Proportional gain mapping the measured per-head confidence gap to
    /// the `alpha` adjustment for the next round (integral control).
    pub gain: f32,
    /// Weight of the cross-entropy anchor during head fine-tuning.
    pub ce_weight: f32,
    /// Stop early once the absolute per-head gap drops below this.
    pub tolerance: f64,
}

impl Default for EntropyCalibratorConfig {
    fn default() -> Self {
        Self {
            rounds: 40,
            learning_rate: 0.1,
            inner_steps: 8,
            num_bins: 10,
            gain: 4.0,
            ce_weight: 0.3,
            tolerance: 0.005,
        }
    }
}

/// Result of an entropy-calibration run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationOutcome {
    /// Mean of the per-head `alpha` values applied in the final round.
    pub alpha: f32,
    /// Mean ECE across stages before fine-tuning (calibration split).
    pub ece_before: f64,
    /// Mean ECE across stages after fine-tuning (calibration split).
    pub ece_after: f64,
    /// Per-stage ECE before fine-tuning.
    pub per_stage_before: Vec<f64>,
    /// Per-stage ECE after fine-tuning.
    pub per_stage_after: Vec<f64>,
    /// Per-head logit scale finally applied (`< 1` means confidence was
    /// reduced — the expected correction for an overconfident network).
    pub scales: Vec<f32>,
    /// Controller rounds actually executed (max over heads).
    pub rounds_run: usize,
}

/// The paper's entropy-based confidence calibration (Eq. 4, the RTDeepIoT
/// rows of Table II), realized as a feedback controller.
///
/// The paper's tuning rule — "when the confidence underestimates the
/// accuracy, we set α < 0 and vice-versa ... the weights are adjusted
/// (calibrated) such that the underestimation and overestimation roughly
/// cancel out" — is a fixed-point condition on the signed gap
/// `conf(S) - acc(S)`. The calibrator runs it to that fixed point per
/// stage head.
///
/// Two constraints shape the implementation, both discovered the hard way
/// on overfit networks:
///
/// 1. **the trunk is frozen** — entropy rewards propagated through the
///    shared trunk degrade deeper stages' features; only the thin
///    per-stage heads are adjusted, matching the paper's architecture
///    where each stage ends in "a thin softmax function layer";
/// 2. **each head fine-tunes along its logit-scale direction** — the
///    Eq. 4 loss `ce_weight * CE + alpha * H` is optimized over a
///    positive per-head scale applied to the head's logits. Positive
///    scaling preserves every argmax, so accuracy is exactly invariant
///    while confidence moves; `alpha` itself tracks the measured gap.
///
/// # Examples
///
/// See `crates/bench/src/bin/table2_ece.rs`, which reproduces Table II
/// end to end.
#[derive(Debug, Clone)]
pub struct EntropyCalibrator {
    config: EntropyCalibratorConfig,
}

impl EntropyCalibrator {
    /// Creates a calibrator.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0` or `gain <= 0`.
    pub fn new(config: EntropyCalibratorConfig) -> Self {
        assert!(config.rounds > 0, "rounds must be positive");
        assert!(config.gain > 0.0, "gain must be positive");
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &EntropyCalibratorConfig {
        &self.config
    }

    /// Measures the mean ECE (over stages) of `network` on `data`.
    pub fn mean_ece(&self, network: &StagedNetwork, data: &Dataset) -> f64 {
        let per_stage = self.per_stage_ece(network, data);
        per_stage.iter().sum::<f64>() / per_stage.len() as f64
    }

    /// Per-stage ECE of `network` on `data`.
    pub fn per_stage_ece(&self, network: &StagedNetwork, data: &Dataset) -> Vec<f64> {
        evaluate_staged(network, data)
            .iter()
            .map(|eval| ece(&eval.confidences, &eval.correct, self.config.num_bins))
            .collect()
    }

    /// Calibrates `network` in place against a held-out calibration
    /// split, per stage head.
    ///
    /// Because the fine-tune family is a single positive scalar per head,
    /// it cannot memorize the calibration split, so the full split serves
    /// both as the Eq. 4 fitting objective and as the gap measurement —
    /// unlike unconstrained fine-tuning, which would need a further
    /// held-out half to keep the measurement honest.
    ///
    /// `rng` is reserved for future stochastic variants; the scale
    /// optimization itself is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `calibration` has fewer than four samples.
    pub fn calibrate(
        &self,
        network: &mut StagedNetwork,
        calibration: &Dataset,
        _rng: &mut impl Rng,
    ) -> CalibrationOutcome {
        assert!(
            calibration.len() >= 4,
            "calibration split needs at least four samples"
        );
        let per_stage_before = self.per_stage_ece(network, calibration);
        let ece_before = per_stage_before.iter().sum::<f64>() / per_stage_before.len() as f64;

        // Trunk activations are constant while only heads change.
        let acts = network.stage_activations(calibration.features());

        let num_stages = network.num_stages();
        let mut final_alphas = vec![0.0f32; num_stages];
        let mut scales = vec![1.0f32; num_stages];
        let mut rounds_run = 0;
        for s in 0..num_stages {
            let (alpha, scale, rounds) = self.calibrate_head(
                &mut network.heads_mut()[s],
                &acts[s],
                calibration.labels(),
                &acts[s],
                calibration.labels(),
            );
            final_alphas[s] = alpha;
            scales[s] = scale;
            rounds_run = rounds_run.max(rounds);
        }
        let per_stage_after = self.per_stage_ece(network, calibration);
        let ece_after = per_stage_after.iter().sum::<f64>() / per_stage_after.len() as f64;
        CalibrationOutcome {
            alpha: final_alphas.iter().sum::<f32>() / final_alphas.len().max(1) as f32,
            ece_before,
            ece_after,
            per_stage_before,
            per_stage_after,
            scales,
            rounds_run,
        }
    }

    /// Runs the feedback loop on one head. Returns the last alpha, the
    /// applied scale, and the number of rounds run.
    fn calibrate_head(
        &self,
        head: &mut eugene_nn::Linear,
        fit_acts: &eugene_tensor::Matrix,
        fit_labels: &[usize],
        measure_acts: &eugene_tensor::Matrix,
        measure_labels: &[usize],
    ) -> (f32, f32, usize) {
        use eugene_nn::loss::weighted_entropy_regularized;
        use eugene_nn::{Layer, StageEval};

        // The head's raw logits never change; only the scale does.
        let base_fit = head.infer(fit_acts);
        let base_measure = head.infer(measure_acts);
        let scaled = |base: &eugene_tensor::Matrix, s: f32| base.map(|z| z * s);
        let measure = |s: f32| -> (f64, f64) {
            let eval = StageEval::from_logits(0, &scaled(&base_measure, s), measure_labels);
            (
                overall_gap(&eval.confidences, &eval.correct),
                ece(&eval.confidences, &eval.correct, self.config.num_bins),
            )
        };

        let mut scale = 1.0f32;
        let (_, ece0) = measure(scale);
        let mut best = (ece0, scale);
        let mut alpha = 0.0f32;
        let mut rounds = 0;
        for _ in 0..self.config.rounds {
            let (gap, current_ece) = measure(scale);
            if current_ece < best.0 {
                best = (current_ece, scale);
            }
            if gap.abs() < self.config.tolerance {
                break;
            }
            // Integral control: accumulate alpha until the gap flips sign;
            // positive gap (overconfident) drives alpha negative, which
            // rewards entropy in the minimized loss.
            alpha -= (self.config.gain as f64 * gap) as f32;
            // Inner optimization of the scale under Eq. 4.
            for _ in 0..self.config.inner_steps {
                let logits = scaled(&base_fit, scale);
                let out =
                    weighted_entropy_regularized(&logits, fit_labels, self.config.ce_weight, alpha);
                // dL/ds = sum_ij dL/dz_ij * z0_ij (out.grad is already
                // normalized by the batch size).
                let mut dlds = 0.0f32;
                for (g, z0) in out.grad.as_slice().iter().zip(base_fit.as_slice()) {
                    dlds += g * z0;
                }
                scale = (scale - self.config.learning_rate * dlds).max(0.01);
            }
            rounds += 1;
        }
        let (_, final_ece) = measure(scale);
        if final_ece < best.0 {
            best = (final_ece, scale);
        }
        // Bake the winning scale into the head.
        head.weights_mut().scale_in_place(best.1);
        head.bias_mut().scale_in_place(best.1);
        (alpha, best.1, rounds)
    }
}

impl Default for EntropyCalibrator {
    fn default() -> Self {
        Self::new(EntropyCalibratorConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eugene_data::{SyntheticImages, SyntheticImagesConfig};
    use eugene_nn::{StagedNetworkConfig, TrainConfig, Trainer};
    use eugene_tensor::seeded_rng;

    /// Trains an intentionally overfit network: small data, many epochs.
    fn overconfident_network() -> (StagedNetwork, Dataset, Dataset) {
        let mut rng = seeded_rng(42);
        let gen = SyntheticImages::new(
            SyntheticImagesConfig {
                num_classes: 5,
                dim: 12,
                ..Default::default()
            },
            &mut rng,
        );
        let (train, _) = gen.generate(250, &mut rng);
        let (calib, _) = gen.generate(500, &mut rng);
        let config = StagedNetworkConfig {
            input_dim: train.dim(),
            num_classes: train.num_classes(),
            stage_widths: vec![vec![32], vec![32]],
            dropout: 0.0,
            input_skip: false,
        };
        let mut net = StagedNetwork::new(&config, &mut seeded_rng(43));
        Trainer::new(TrainConfig {
            epochs: 120,
            learning_rate: 2e-3,
            ..TrainConfig::default()
        })
        .fit(&mut net, &train, &mut seeded_rng(44));
        (net, train, calib)
    }

    #[test]
    fn overfit_network_is_overconfident_and_calibration_reduces_ece() {
        let (mut net, _train, calib) = overconfident_network();
        let calibrator = EntropyCalibrator::default();
        let before = calibrator.mean_ece(&net, &calib);
        assert!(
            before > 0.03,
            "overfit network should be miscalibrated (ece {before})"
        );
        let evals = evaluate_staged(&net, &calib);
        let gap = overall_gap(&evals[1].confidences, &evals[1].correct);
        assert!(
            gap > 0.0,
            "overfit network should be overconfident (gap {gap})"
        );

        let outcome = calibrator.calibrate(&mut net, &calib, &mut seeded_rng(45));
        assert!(
            outcome.ece_after <= outcome.ece_before,
            "calibration must not increase ECE: {} -> {}",
            outcome.ece_before,
            outcome.ece_after
        );
        assert!(
            outcome.ece_after < before * 0.5,
            "expected a clear ECE reduction: {before} -> {}",
            outcome.ece_after
        );
        // Overconfident => the applied correction must shrink confidence.
        assert!(
            outcome.scales.iter().all(|&s| s < 1.0),
            "scales {:?} should all be below 1",
            outcome.scales
        );
        assert!(outcome.rounds_run > 0);
    }

    #[test]
    fn calibration_preserves_accuracy_exactly() {
        let (mut net, _train, calib) = overconfident_network();
        let acc_before: Vec<f64> = evaluate_staged(&net, &calib)
            .iter()
            .map(|e| e.accuracy)
            .collect();
        EntropyCalibrator::default().calibrate(&mut net, &calib, &mut seeded_rng(46));
        let acc_after: Vec<f64> = evaluate_staged(&net, &calib)
            .iter()
            .map(|e| e.accuracy)
            .collect();
        // Positive logit scaling preserves every argmax.
        assert_eq!(acc_before, acc_after);
    }

    #[test]
    fn second_calibration_pass_stops_quickly() {
        let (mut net, _train, calib) = overconfident_network();
        let calibrator = EntropyCalibrator::default();
        calibrator.calibrate(&mut net, &calib, &mut seeded_rng(47));
        let outcome = calibrator.calibrate(&mut net, &calib, &mut seeded_rng(48));
        assert!(
            outcome.rounds_run < calibrator.config().rounds,
            "second calibration should stop early ({} rounds)",
            outcome.rounds_run
        );
    }

    #[test]
    fn calibration_generalizes_to_unseen_data() {
        let (mut net, _train, calib) = overconfident_network();
        // Fresh data from the identical generator state sequence.
        let mut rng = seeded_rng(42);
        let gen = SyntheticImages::new(
            SyntheticImagesConfig {
                num_classes: 5,
                dim: 12,
                ..Default::default()
            },
            &mut rng,
        );
        let _ = gen.generate(250, &mut rng); // consume the train draw
        let _ = gen.generate(500, &mut rng); // consume the calib draw
        let (test, _) = gen.generate(500, &mut rng);
        let calibrator = EntropyCalibrator::default();
        let test_before = calibrator.mean_ece(&net, &test);
        calibrator.calibrate(&mut net, &calib, &mut seeded_rng(49));
        let test_after = calibrator.mean_ece(&net, &test);
        assert!(
            test_after < test_before * 0.7,
            "test-set ECE should drop substantially: {test_before} -> {test_after}"
        );
    }

    #[test]
    #[should_panic(expected = "calibration split")]
    fn tiny_calibration_split_panics() {
        let mut rng = seeded_rng(1);
        let config = StagedNetworkConfig {
            input_dim: 4,
            num_classes: 2,
            stage_widths: vec![vec![4]],
            dropout: 0.0,
            input_skip: false,
        };
        let mut net = StagedNetwork::new(&config, &mut rng);
        let tiny = Dataset::new(eugene_tensor::Matrix::zeros(2, 4), vec![0, 1], 2);
        EntropyCalibrator::default().calibrate(&mut net, &tiny, &mut rng);
    }

    #[test]
    #[should_panic(expected = "gain")]
    fn non_positive_gain_rejected() {
        EntropyCalibrator::new(EntropyCalibratorConfig {
            gain: 0.0,
            ..Default::default()
        });
    }
}
