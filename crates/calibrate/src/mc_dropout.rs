use eugene_data::Dataset;
use eugene_nn::{StageEval, StagedNetwork};
use eugene_tensor::{softmax, Matrix};
use rand::rngs::StdRng;

/// The RDeepSense-style baseline of Table II: Monte-Carlo dropout.
///
/// Instead of one deterministic forward pass, run `passes` stochastic
/// passes with dropout live and average the per-stage softmax
/// distributions (Gal & Ghahramani, the paper's \[14\]; RDeepSense is the
/// paper's \[6\]). Averaging over sampled sub-networks shrinks overconfident
/// point estimates, which is why it lands between "uncalibrated" and the
/// entropy-calibrated network in Table II.
///
/// # Examples
///
/// ```
/// use eugene_calibrate::McDropout;
/// let baseline = McDropout::new(10);
/// assert_eq!(baseline.passes(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McDropout {
    passes: usize,
}

impl McDropout {
    /// Creates the baseline with the given number of stochastic passes.
    ///
    /// # Panics
    ///
    /// Panics if `passes == 0`.
    pub fn new(passes: usize) -> Self {
        assert!(passes > 0, "need at least one stochastic pass");
        Self { passes }
    }

    /// Number of stochastic passes.
    pub fn passes(&self) -> usize {
        self.passes
    }

    /// Evaluates `network` on `data` with MC-dropout averaging, returning
    /// one [`StageEval`] per stage (as the deterministic
    /// [`eugene_nn::evaluate_staged`] does).
    pub fn evaluate(
        &self,
        network: &StagedNetwork,
        data: &Dataset,
        rng: &mut StdRng,
    ) -> Vec<StageEval> {
        let num_stages = network.num_stages();
        let n = data.len();
        let k = data.num_classes();
        let mut prob_sums: Vec<Matrix> = (0..num_stages).map(|_| Matrix::zeros(n, k)).collect();
        for _ in 0..self.passes {
            let logits = network.predict_stochastic(data.features(), rng);
            for (s, stage_logits) in logits.iter().enumerate() {
                for i in 0..n {
                    let p = softmax(stage_logits.row(i));
                    let row = prob_sums[s].row_mut(i);
                    for (acc, v) in row.iter_mut().zip(&p) {
                        *acc += v;
                    }
                }
            }
        }
        let scale = 1.0 / self.passes as f32;
        prob_sums
            .into_iter()
            .enumerate()
            .map(|(s, mut probs)| {
                probs.scale_in_place(scale);
                StageEval::from_probs(s, probs, data.labels())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eugene_data::{SyntheticImages, SyntheticImagesConfig};
    use eugene_nn::{evaluate_staged, StagedNetworkConfig, TrainConfig, Trainer};
    use eugene_tensor::seeded_rng;

    fn dropout_network() -> (StagedNetwork, Dataset) {
        let mut rng = seeded_rng(7);
        let gen = SyntheticImages::new(
            SyntheticImagesConfig {
                num_classes: 4,
                dim: 10,
                ..Default::default()
            },
            &mut rng,
        );
        let (train, _) = gen.generate(300, &mut rng);
        let config = StagedNetworkConfig {
            input_dim: train.dim(),
            num_classes: train.num_classes(),
            stage_widths: vec![vec![24], vec![24]],
            dropout: 0.25,
            input_skip: false,
        };
        let mut net = StagedNetwork::new(&config, &mut seeded_rng(8));
        Trainer::new(TrainConfig {
            epochs: 40,
            ..TrainConfig::default()
        })
        .fit(&mut net, &train, &mut seeded_rng(9));
        (net, train)
    }

    #[test]
    fn averaged_probs_are_distributions() {
        let (net, data) = dropout_network();
        let evals = McDropout::new(8).evaluate(&net, &data, &mut seeded_rng(10));
        assert_eq!(evals.len(), 2);
        for eval in &evals {
            for i in 0..eval.len() {
                let sum: f32 = eval.probs.row(i).iter().sum();
                assert!((sum - 1.0).abs() < 1e-4, "row {i} sums to {sum}");
            }
        }
    }

    #[test]
    fn mc_dropout_softens_confidence() {
        let (net, data) = dropout_network();
        let deterministic = evaluate_staged(&net, &data);
        let mc = McDropout::new(16).evaluate(&net, &data, &mut seeded_rng(11));
        let det_conf = deterministic[1].mean_confidence();
        let mc_conf = mc[1].mean_confidence();
        assert!(
            mc_conf < det_conf + 1e-3,
            "MC averaging should not raise confidence: {det_conf} -> {mc_conf}"
        );
    }

    #[test]
    fn accuracy_survives_averaging() {
        let (net, data) = dropout_network();
        let deterministic = evaluate_staged(&net, &data);
        let mc = McDropout::new(16).evaluate(&net, &data, &mut seeded_rng(12));
        assert!(
            (mc[1].accuracy - deterministic[1].accuracy).abs() < 0.08,
            "accuracy shift too large: {} vs {}",
            mc[1].accuracy,
            deterministic[1].accuracy
        );
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_passes_rejected() {
        McDropout::new(0);
    }
}
