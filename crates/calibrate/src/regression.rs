//! Regression uncertainty estimation (paper §II-D, after RDeepSense).
//!
//! "It emits a distribution estimate instead of a point estimate at the
//! output layer. ... using common error functions, such as the mean
//! square error, was shown \[to\] underestimate the uncertainty ... when
//! using a nonlinear error function, such as the negative log-likelihood,
//! the estimated mean is often biased ... leading to an artificially
//! inflated uncertainty estimate. ... The idea is to use a weighted sum
//! of the above two error functions ... The weights are adjusted
//! (calibrated) such that the underestimation and overestimation roughly
//! cancel out."
//!
//! [`MeanVarianceEstimator`] trains a small network with a
//! `(mean, log-variance)` output head under `L = w*MSE + (1-w)*NLL`, and
//! [`MeanVarianceEstimator::fit_calibrated`] tunes `w` so that the
//! empirical coverage of the predictive intervals matches the nominal
//! level on a validation split.

use eugene_nn::{Activation, Adam, Layer, Linear, Optimizer, Sequential};
use eugene_tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for [`MeanVarianceEstimator`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeanVarianceConfig {
    /// Hidden width of the regression network.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Mini-batch size.
    pub batch_size: usize,
}

impl Default for MeanVarianceConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            epochs: 120,
            learning_rate: 3e-3,
            batch_size: 32,
        }
    }
}

/// A regression model predicting a Gaussian `(mean, variance)` per input.
#[derive(Debug)]
pub struct MeanVarianceEstimator {
    network: Sequential,
    mse_weight: f32,
}

impl MeanVarianceEstimator {
    /// Trains with a fixed MSE weight `w` (`L = w*MSE + (1-w)*NLL`).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty, shapes disagree, or `w` is outside
    /// `[0, 0.95]` (some NLL weight is required to train the variance).
    pub fn fit(
        inputs: &Matrix,
        targets: &[f32],
        mse_weight: f32,
        config: &MeanVarianceConfig,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(inputs.rows() > 0, "need training data");
        assert_eq!(inputs.rows(), targets.len(), "one target per input row");
        assert!(
            (0.0..=0.95).contains(&mse_weight),
            "mse weight must be in [0, 0.95], got {mse_weight}"
        );
        let mut network = Sequential::new();
        network.push(Linear::new(inputs.cols(), config.hidden, rng));
        network.push(Activation::relu());
        network.push(Linear::new(config.hidden, 2, rng));
        let mut optimizer = Adam::new(config.learning_rate);
        let n = inputs.rows();
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..config.epochs {
            rand::seq::SliceRandom::shuffle(&mut order[..], rng);
            for chunk in order.chunks(config.batch_size) {
                let batch = inputs.select_rows(chunk);
                let ys: Vec<f32> = chunk.iter().map(|&i| targets[i]).collect();
                let out = network.forward(&batch);
                let mut grad = Matrix::zeros(out.rows(), 2);
                let scale = 1.0 / out.rows() as f32;
                for (i, &y) in ys.iter().enumerate() {
                    let mean = out[(i, 0)];
                    let log_var = out[(i, 1)].clamp(-8.0, 8.0);
                    let inv_var = (-log_var).exp();
                    let err = mean - y;
                    // d(MSE)/dm = 2 err; d(NLL)/dm = err / var;
                    // d(NLL)/d(log var) = 0.5 (1 - err^2 / var).
                    let d_mean = mse_weight * 2.0 * err + (1.0 - mse_weight) * err * inv_var;
                    let d_log_var = (1.0 - mse_weight) * 0.5 * (1.0 - err * err * inv_var);
                    grad[(i, 0)] = d_mean * scale;
                    grad[(i, 1)] = d_log_var * scale;
                }
                network.backward(&grad);
                optimizer.begin_step();
                let mut index = 0;
                network.visit_params(&mut |param, g| {
                    optimizer.update(index, param, g);
                    index += 1;
                });
            }
        }
        Self {
            network,
            mse_weight,
        }
    }

    /// The MSE weight the model was trained with.
    pub fn mse_weight(&self) -> f32 {
        self.mse_weight
    }

    /// Predicts `(mean, standard deviation)` for one input.
    ///
    /// # Panics
    ///
    /// Panics if the input dimensionality is wrong.
    pub fn predict(&self, input: &[f32]) -> (f32, f32) {
        let out = self.network.infer(&Matrix::row_vector(input));
        let mean = out[(0, 0)];
        let sigma = (out[(0, 1)].clamp(-8.0, 8.0) / 2.0).exp();
        (mean, sigma)
    }

    /// Fraction of `(input, target)` pairs falling inside the central
    /// interval `mean ± z * sigma`.
    ///
    /// # Panics
    ///
    /// Panics if the slices disagree or are empty.
    pub fn coverage(&self, inputs: &Matrix, targets: &[f32], z: f32) -> f64 {
        assert_eq!(inputs.rows(), targets.len(), "one target per input row");
        assert!(!targets.is_empty(), "coverage of an empty set");
        let inside = (0..inputs.rows())
            .filter(|&i| {
                let (mean, sigma) = self.predict(inputs.row(i));
                (targets[i] - mean).abs() <= z * sigma
            })
            .count();
        inside as f64 / targets.len() as f64
    }

    /// The paper's calibration step: trains one model per candidate MSE
    /// weight and keeps the one whose validation coverage at `z` is
    /// closest to `nominal` (e.g. `z = 1.645`, `nominal = 0.9`).
    ///
    /// Returns the chosen model and its validation coverage.
    ///
    /// # Panics
    ///
    /// Same conditions as [`MeanVarianceEstimator::fit`], plus an empty
    /// candidate list or validation set.
    #[allow(clippy::too_many_arguments)]
    pub fn fit_calibrated(
        train_inputs: &Matrix,
        train_targets: &[f32],
        val_inputs: &Matrix,
        val_targets: &[f32],
        candidates: &[f32],
        z: f32,
        nominal: f64,
        config: &MeanVarianceConfig,
        rng: &mut impl Rng,
    ) -> (Self, f64) {
        assert!(!candidates.is_empty(), "need at least one candidate weight");
        assert!(!val_targets.is_empty(), "need a validation split");
        let mut best: Option<(f64, Self, f64)> = None;
        for &w in candidates {
            let model = Self::fit(train_inputs, train_targets, w, config, rng);
            let coverage = model.coverage(val_inputs, val_targets, z);
            let miss = (coverage - nominal).abs();
            if best.as_ref().is_none_or(|(b, _, _)| miss < *b) {
                best = Some((miss, model, coverage));
            }
        }
        let (_, model, coverage) = best.expect("candidates non-empty");
        (model, coverage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eugene_tensor::{seeded_rng, standard_normal};

    /// Heteroscedastic 1-D problem: y = sin(2x) + eps, sd(eps) = 0.1 + 0.3|x|.
    fn problem(n: usize, seed: u64) -> (Matrix, Vec<f32>) {
        let mut rng = seeded_rng(seed);
        let mut inputs = Matrix::zeros(n, 1);
        let mut targets = Vec::with_capacity(n);
        for i in 0..n {
            let x: f32 = rng.gen_range(-1.5..1.5);
            inputs[(i, 0)] = x;
            let sd = 0.1 + 0.3 * x.abs();
            targets.push((2.0 * x).sin() + standard_normal(&mut rng) * sd);
        }
        (inputs, targets)
    }

    #[test]
    fn nll_training_learns_mean_and_heteroscedastic_variance() {
        let (train_x, train_y) = problem(600, 1);
        let model = MeanVarianceEstimator::fit(
            &train_x,
            &train_y,
            0.0,
            &MeanVarianceConfig::default(),
            &mut seeded_rng(2),
        );
        // Mean tracks sin(2x).
        for &x in &[-1.0f32, -0.3, 0.4, 1.2] {
            let (mean, _) = model.predict(&[x]);
            assert!(
                (mean - (2.0 * x).sin()).abs() < 0.3,
                "mean at {x}: {mean} vs {}",
                (2.0 * x).sin()
            );
        }
        // Variance grows away from zero (heteroscedastic structure).
        let (_, sd_center) = model.predict(&[0.0]);
        let (_, sd_edge) = model.predict(&[1.4]);
        assert!(
            sd_edge > sd_center,
            "edge sd {sd_edge} should exceed center sd {sd_center}"
        );
    }

    #[test]
    fn calibrated_weight_beats_both_extremes() {
        let (train_x, train_y) = problem(600, 3);
        let (val_x, val_y) = problem(400, 4);
        let (test_x, test_y) = problem(400, 5);
        let z = 1.645; // 90% central interval
        let nominal = 0.9;
        let config = MeanVarianceConfig::default();
        let coverage_of = |w: f32| {
            MeanVarianceEstimator::fit(&train_x, &train_y, w, &config, &mut seeded_rng(6))
                .coverage(&test_x, &test_y, z)
        };
        let pure_nll = coverage_of(0.0);
        let mse_heavy = coverage_of(0.9);
        let (model, _) = MeanVarianceEstimator::fit_calibrated(
            &train_x,
            &train_y,
            &val_x,
            &val_y,
            &[0.0, 0.3, 0.6, 0.9],
            z,
            nominal,
            &config,
            &mut seeded_rng(6),
        );
        let tuned = model.coverage(&test_x, &test_y, z);
        let miss = |c: f64| (c - nominal).abs();
        assert!(
            miss(tuned) <= miss(pure_nll) + 0.03 && miss(tuned) <= miss(mse_heavy) + 0.03,
            "tuned coverage {tuned} should approach {nominal} at least as well as \
             NLL-only {pure_nll} and MSE-heavy {mse_heavy}"
        );
        assert!(
            miss(tuned) < 0.1,
            "tuned coverage {tuned} too far from nominal"
        );
    }

    #[test]
    fn predicted_sigma_tracks_the_true_noise_level() {
        // The §II-D promise is a *distribution* estimate: sigma(x) should
        // quantitatively approximate the generating noise sd
        // 0.1 + 0.3|x|, not merely increase with |x|.
        let (train_x, train_y) = problem(800, 7);
        let model = MeanVarianceEstimator::fit(
            &train_x,
            &train_y,
            0.2,
            &MeanVarianceConfig::default(),
            &mut seeded_rng(9),
        );
        for &x in &[0.0f32, 0.5, 1.0, 1.4] {
            let (_, sigma) = model.predict(&[x]);
            let truth = 0.1 + 0.3 * x.abs();
            assert!(
                (sigma - truth).abs() < 0.15,
                "sigma at {x}: {sigma:.3} vs true {truth:.3}"
            );
        }
    }

    #[test]
    fn wider_intervals_cover_more() {
        let (train_x, train_y) = problem(300, 10);
        let model = MeanVarianceEstimator::fit(
            &train_x,
            &train_y,
            0.3,
            &MeanVarianceConfig {
                epochs: 40,
                ..Default::default()
            },
            &mut seeded_rng(11),
        );
        let (test_x, test_y) = problem(200, 12);
        let narrow = model.coverage(&test_x, &test_y, 0.5);
        let wide = model.coverage(&test_x, &test_y, 3.0);
        assert!(wide >= narrow);
        assert!(wide > 0.9, "3-sigma coverage {wide} suspiciously low");
    }

    #[test]
    #[should_panic(expected = "mse weight")]
    fn pure_mse_is_rejected() {
        let (x, y) = problem(20, 13);
        MeanVarianceEstimator::fit(
            &x,
            &y,
            1.0,
            &MeanVarianceConfig::default(),
            &mut seeded_rng(14),
        );
    }
}
