//! Confidence calibration: ECE, reliability diagrams, entropy-regularized
//! fine-tuning, and baselines.
//!
//! Paper §III-A argues that a utility-maximizing scheduler is only as good
//! as its utility signal, and its utility signal is *classification
//! confidence* — so confidence must be calibrated: "a well-calibrated
//! classification confidence should be equal to the actual likelihood of
//! classification correctness."
//!
//! This crate implements the full §III-A toolchain:
//!
//! - [`ece`] / [`ReliabilityDiagram`]: Eqs. 1–3 and Fig. 2 — bin test
//!   samples by confidence, compare per-bin accuracy and confidence;
//! - [`EntropyCalibrator`]: the paper's contribution (RTDeepIoT row of
//!   Table II) — fine-tune with `L = CE + alpha * H` (Eq. 4), picking the
//!   sign and magnitude of `alpha` from the measured calibration gap;
//! - [`McDropout`]: the RDeepSense baseline — average softmax outputs over
//!   stochastic dropout passes;
//! - [`TemperatureScaling`]: a post-hoc ablation baseline (Guo et al.,
//!   cited as \[11\] in the paper).
//!
//! # Examples
//!
//! ```
//! use eugene_calibrate::{ece, ReliabilityDiagram};
//!
//! // Perfectly calibrated: 70%-confidence samples are correct 70% of the
//! // time (here approximated with a tiny sample).
//! let confidences = [0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7];
//! let correct = [true, true, true, true, true, true, true, false, false, false];
//! let e = ece(&confidences, &correct, 10);
//! assert!(e < 1e-6);
//! let diagram = ReliabilityDiagram::new(&confidences, &correct, 10);
//! assert_eq!(diagram.bins().len(), 10);
//! ```

mod diagram;
mod entropy;
mod mc_dropout;
pub mod regression;
mod temperature;

pub use diagram::{ece, overall_gap, ReliabilityBin, ReliabilityDiagram};
pub use entropy::{CalibrationOutcome, EntropyCalibrator, EntropyCalibratorConfig};
pub use mc_dropout::McDropout;
pub use regression::{MeanVarianceConfig, MeanVarianceEstimator};
pub use temperature::TemperatureScaling;
