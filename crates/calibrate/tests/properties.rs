//! Property-based tests for the calibration metrics.

use eugene_calibrate::{ece, overall_gap, ReliabilityDiagram};
use proptest::prelude::*;

fn samples() -> impl Strategy<Value = (Vec<f32>, Vec<bool>)> {
    prop::collection::vec((0.0f32..=1.0, any::<bool>()), 1..200)
        .prop_map(|pairs| pairs.into_iter().unzip())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ece_is_bounded((conf, correct) in samples(), bins in 1usize..30) {
        let e = ece(&conf, &correct, bins);
        prop_assert!((0.0..=1.0).contains(&e), "ece {e}");
    }

    #[test]
    fn ece_lower_bounds_the_overall_gap((conf, correct) in samples(), bins in 1usize..30) {
        // Binned absolute gaps can only exceed or equal the absolute
        // overall gap (triangle inequality over bins).
        let e = ece(&conf, &correct, bins);
        let gap = overall_gap(&conf, &correct).abs();
        prop_assert!(e >= gap - 1e-6, "ece {e} below |gap| {gap}");
    }

    #[test]
    fn one_bin_ece_equals_overall_gap((conf, correct) in samples()) {
        let e = ece(&conf, &correct, 1);
        let gap = overall_gap(&conf, &correct).abs();
        prop_assert!((e - gap).abs() < 1e-9);
    }

    #[test]
    fn bin_counts_sum_to_total((conf, correct) in samples(), bins in 1usize..25) {
        let diagram = ReliabilityDiagram::new(&conf, &correct, bins);
        let total: usize = diagram.bins().iter().map(|b| b.count).sum();
        prop_assert_eq!(total, conf.len());
        prop_assert_eq!(diagram.total(), conf.len());
    }

    #[test]
    fn bin_confidences_lie_within_their_interval((conf, correct) in samples(), bins in 1usize..25) {
        let diagram = ReliabilityDiagram::new(&conf, &correct, bins);
        for b in diagram.bins() {
            if b.count > 0 {
                // Mean confidence of a bin's members lies in (or at the
                // closed edges of) the bin interval.
                prop_assert!(b.confidence >= b.lower as f64 - 1e-6);
                prop_assert!(b.confidence <= b.upper as f64 + 1e-6);
                prop_assert!((0.0..=1.0).contains(&b.accuracy));
            }
        }
    }

    #[test]
    fn mce_dominates_ece((conf, correct) in samples(), bins in 1usize..25) {
        let diagram = ReliabilityDiagram::new(&conf, &correct, bins);
        prop_assert!(diagram.mce() >= diagram.ece() - 1e-9);
    }

    #[test]
    fn perfectly_confident_and_correct_is_calibrated(n in 1usize..100) {
        let conf = vec![1.0f32; n];
        let correct = vec![true; n];
        prop_assert!(ece(&conf, &correct, 10) < 1e-9);
    }
}
