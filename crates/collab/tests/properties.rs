//! Property-based tests for the camera-world geometry and simulation.

use eugene_collab::{Camera, DetectorModel, FieldOfView, Vec2, World, WorldConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fov_strategy() -> impl Strategy<Value = FieldOfView> {
    (
        -20.0f64..20.0,
        -20.0f64..20.0,
        0.0f64..std::f64::consts::TAU,
        0.1f64..1.4,
        1.0f64..40.0,
    )
        .prop_map(|(x, y, dir, half, range)| FieldOfView::new(Vec2::new(x, y), dir, half, range))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn points_along_the_axis_are_inside(fov in fov_strategy(), t in 0.01f64..0.99) {
        let axis = Vec2::new(fov.direction.cos(), fov.direction.sin());
        let p = fov.origin + axis.scale(fov.range * t);
        prop_assert!(fov.contains(p));
    }

    #[test]
    fn points_beyond_range_are_outside(fov in fov_strategy(), extra in 1.01f64..4.0) {
        let axis = Vec2::new(fov.direction.cos(), fov.direction.sin());
        let p = fov.origin + axis.scale(fov.range * extra);
        prop_assert!(!fov.contains(p));
    }

    #[test]
    fn points_behind_the_camera_are_outside(fov in fov_strategy(), t in 0.1f64..5.0) {
        prop_assume!(fov.half_angle < std::f64::consts::FRAC_PI_2);
        let axis = Vec2::new(fov.direction.cos(), fov.direction.sin());
        let p = fov.origin + axis.scale(-t);
        prop_assert!(!fov.contains(p));
    }

    #[test]
    fn occlusion_requires_a_blocker_near_the_sight_line(
        fov in fov_strategy(),
        lateral in 2.0f64..10.0,
    ) {
        let axis = Vec2::new(fov.direction.cos(), fov.direction.sin());
        let target = fov.origin + axis.scale(fov.range * 0.8);
        // A blocker displaced laterally by more than the radius never
        // occludes.
        let normal = Vec2::new(-axis.y, axis.x);
        let blocker = fov.origin + axis.scale(fov.range * 0.4) + normal.scale(lateral);
        prop_assert!(!fov.occluded(target, &[blocker], 1.0));
        // A blocker on the line always occludes.
        let on_line = fov.origin + axis.scale(fov.range * 0.4);
        prop_assert!(fov.occluded(target, &[on_line], 1.0));
    }

    #[test]
    fn world_stays_in_bounds_for_any_seed(seed in 0u64..300, steps in 1usize..60) {
        let config = WorldConfig::default();
        let mut world = World::new(config, seed);
        for _ in 0..steps {
            world.step(0.7);
        }
        for p in world.pedestrians() {
            prop_assert!(p.position.x >= 0.0 && p.position.x <= config.arena_side);
            prop_assert!(p.position.y >= 0.0 && p.position.y <= config.arena_side);
        }
    }

    #[test]
    fn detections_reference_real_or_no_pedestrians(seed in 0u64..200) {
        let world = World::new(WorldConfig::default(), seed);
        let cameras = Camera::ring(8, world.config().arena_side);
        let model = DetectorModel::movidius_class();
        let mut rng = StdRng::seed_from_u64(seed + 1);
        for cam in &cameras {
            for d in cam.detect(&world, &model, &mut rng) {
                if let Some(id) = d.truth {
                    prop_assert!(id < world.pedestrians().len());
                    // A true detection's subject is inside the FoV.
                    prop_assert!(cam.fov.contains(world.pedestrians()[id].position));
                }
                prop_assert!(d.position.x.is_finite() && d.position.y.is_finite());
            }
        }
    }

    #[test]
    fn ring_cameras_cover_the_whole_arena_center_region(n in 4usize..12) {
        let side = 30.0;
        let cameras = Camera::ring(n, side);
        prop_assert_eq!(cameras.len(), n);
        // The arena center must be covered by several cameras.
        let center = Vec2::new(side / 2.0, side / 2.0);
        let covering = cameras.iter().filter(|c| c.fov.contains(center)).count();
        prop_assert!(covering >= n / 2, "{covering}/{n} cameras see the center");
    }
}
