use crate::{DetectorModel, FieldOfView, Vec2, World};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::f64::consts::{FRAC_PI_3, PI};

/// One detection reported by a camera.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Reporting camera.
    pub camera_id: usize,
    /// Detected ground position after remapping to the common coordinate
    /// space (includes measurement noise).
    pub position: Vec2,
    /// Ground-truth pedestrian behind the detection, `None` for a false
    /// positive. Carried for evaluation only; pipelines never read it to
    /// make decisions.
    pub truth: Option<usize>,
}

/// A fixed surveillance camera with a cone field of view.
///
/// Detections are reported in the camera's local frame and remapped to
/// ground coordinates — the paper's "suitably remapped to a common
/// coordinate space" — which in this 2-D world amounts to the inverse of
/// the camera's pose transform; the remapping residual is folded into the
/// detector's position noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Camera {
    /// Stable identity.
    pub id: usize,
    /// The camera's viewing cone.
    pub fov: FieldOfView,
}

impl Camera {
    /// Creates a camera.
    pub fn new(id: usize, fov: FieldOfView) -> Self {
        Self { id, fov }
    }

    /// The PETS-like deployment: `n` cameras on the arena perimeter, all
    /// aimed at the center, with strongly overlapping cones.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `arena_side <= 0`.
    pub fn ring(n: usize, arena_side: f64) -> Vec<Camera> {
        assert!(n > 0, "need at least one camera");
        assert!(arena_side > 0.0, "arena must have positive size");
        let center = Vec2::new(arena_side / 2.0, arena_side / 2.0);
        (0..n)
            .map(|i| {
                let theta = 2.0 * PI * i as f64 / n as f64;
                let radius = arena_side * 0.55;
                let position = Vec2::new(
                    center.x + radius * theta.cos(),
                    center.y + radius * theta.sin(),
                );
                let direction = (theta + PI) % (2.0 * PI);
                Camera::new(
                    i,
                    FieldOfView::new(position, direction, FRAC_PI_3 / 1.5, arena_side * 0.95),
                )
            })
            .collect()
    }

    /// People currently inside this camera's field of view (ground truth).
    pub fn visible_people(&self, world: &World) -> Vec<usize> {
        world
            .pedestrians()
            .iter()
            .filter(|p| self.fov.contains(p.position))
            .map(|p| p.id)
            .collect()
    }

    /// Runs the full detection DNN on the current frame, returning noisy
    /// detections. Occluded people are detected at the model's (much
    /// lower) occluded recall; a false positive may be injected.
    pub fn detect(&self, world: &World, model: &DetectorModel, rng: &mut StdRng) -> Vec<Detection> {
        let positions = world.positions();
        let mut out = Vec::new();
        for p in world.pedestrians() {
            if !self.fov.contains(p.position) {
                continue;
            }
            let occluded = self.fov.occluded(p.position, &positions, 0.45);
            let recall = if occluded {
                model.occluded_recall
            } else {
                model.visible_recall
            };
            if rng.gen_bool(recall) {
                out.push(Detection {
                    camera_id: self.id,
                    position: noisy(p.position, model.position_noise_m, rng),
                    truth: Some(p.id),
                });
            }
        }
        if rng.gen_bool(model.false_positive_rate) {
            let side = world.config().arena_side;
            out.push(Detection {
                camera_id: self.id,
                position: Vec2::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)),
                truth: None,
            });
        }
        out
    }

    /// Verifies a shared bounding box against this camera's current frame
    /// (the cheap 25 ms path): succeeds when a real person stands within
    /// `gate_m` of the shared position inside this camera's FoV.
    pub fn verify_shared_box(
        &self,
        world: &World,
        shared: Vec2,
        gate_m: f64,
        model: &DetectorModel,
        rng: &mut StdRng,
    ) -> Option<Detection> {
        if !self.fov.contains(shared) {
            return None;
        }
        let positions = world.positions();
        for p in world.pedestrians() {
            if p.position.distance(shared) > gate_m || !self.fov.contains(p.position) {
                continue;
            }
            // Verification looks exactly where the peer said: it succeeds
            // even under partial occlusion, though not always.
            let occluded = self.fov.occluded(p.position, &positions, 0.45);
            let recall = if occluded {
                // Knowing where to look recovers most occluded cases —
                // this is the mechanism behind Table IV's accuracy gain.
                0.75
            } else {
                0.95
            };
            if rng.gen_bool(recall) {
                return Some(Detection {
                    camera_id: self.id,
                    position: noisy(p.position, model.position_noise_m, rng),
                    truth: Some(p.id),
                });
            }
        }
        None
    }
}

fn noisy(p: Vec2, sigma: f64, rng: &mut StdRng) -> Vec2 {
    // Box-Muller.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let dx = r * (2.0 * PI * u2).cos() * sigma;
    let dy = r * (2.0 * PI * u2).sin() * sigma;
    Vec2::new(p.x + dx, p.y + dy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorldConfig;
    use rand::SeedableRng;

    fn setup() -> (World, Vec<Camera>, DetectorModel, StdRng) {
        let world = World::new(WorldConfig::default(), 10);
        let cameras = Camera::ring(8, world.config().arena_side);
        (
            world,
            cameras,
            DetectorModel::default(),
            StdRng::seed_from_u64(11),
        )
    }

    #[test]
    fn ring_cameras_jointly_cover_the_center() {
        let (world, cameras, _, _) = setup();
        let center = Vec2::new(15.0, 15.0);
        let seeing = cameras.iter().filter(|c| c.fov.contains(center)).count();
        assert!(seeing >= 4, "only {seeing} cameras see the center");
        let _ = world;
    }

    #[test]
    fn adjacent_ring_cameras_overlap() {
        let (_, cameras, _, _) = setup();
        assert!(
            cameras[0].fov.overlaps(&cameras[1].fov) || cameras[0].fov.overlaps(&cameras[4].fov)
        );
    }

    #[test]
    fn detections_only_inside_fov_and_near_truth() {
        let (world, cameras, model, mut rng) = setup();
        for cam in &cameras {
            for d in cam.detect(&world, &model, &mut rng) {
                if let Some(id) = d.truth {
                    let truth_pos = world.pedestrians()[id].position;
                    assert!(cam.fov.contains(truth_pos));
                    assert!(d.position.distance(truth_pos) < 5.0 * model.position_noise_m + 1e-6);
                }
            }
        }
    }

    #[test]
    fn recall_is_degraded_but_nonzero() {
        let (mut world, cameras, model, mut rng) = setup();
        let mut seen = 0usize;
        let mut present = 0usize;
        for _ in 0..40 {
            world.step(0.5);
            for cam in &cameras {
                present += cam.visible_people(&world).len();
                seen += cam
                    .detect(&world, &model, &mut rng)
                    .iter()
                    .filter(|d| d.truth.is_some())
                    .count();
            }
        }
        let recall = seen as f64 / present as f64;
        assert!(
            (0.45..0.9).contains(&recall),
            "aggregate individual recall {recall}"
        );
    }

    #[test]
    fn verification_finds_person_at_shared_position() {
        let (world, cameras, model, mut rng) = setup();
        // Find a camera and a person it can see.
        for cam in &cameras {
            if let Some(&pid) = cam.visible_people(&world).first() {
                let pos = world.pedestrians()[pid].position;
                let mut successes = 0;
                for _ in 0..40 {
                    if cam
                        .verify_shared_box(&world, pos, 1.5, &model, &mut rng)
                        .is_some()
                    {
                        successes += 1;
                    }
                }
                assert!(successes > 20, "verification succeeded {successes}/40");
                return;
            }
        }
        panic!("no camera saw anyone");
    }

    #[test]
    fn verification_rejects_positions_outside_fov() {
        let (world, cameras, model, mut rng) = setup();
        let cam = &cameras[0];
        // A point far behind the camera.
        let outside = Vec2::new(-100.0, -100.0);
        assert!(cam
            .verify_shared_box(&world, outside, 2.0, &model, &mut rng)
            .is_none());
    }
}
