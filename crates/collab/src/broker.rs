use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A discovered collaboration relationship between two cameras.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollabLink {
    /// First camera id.
    pub a: usize,
    /// Second camera id.
    pub b: usize,
    /// Frame lag at which their sightings correlate best: `lag` frames
    /// after `a` sees someone, `b` tends to see them (`0` = concurrent
    /// overlap, `> 0` = the corridor scenario).
    pub lag: usize,
    /// Correlation score in `[0, 1]` at that lag.
    pub score: f64,
}

/// The collaboration broker of paper §IV-C: "by operating on the metadata
/// & higher-level inferences from individual nodes, Eugene can discover
/// and establish the relevant collaboration parameters — e.g.,
/// instructing cameras A & B to apply the collaborative tracking
/// mechanism ..., but with a time lag of 20 seconds."
///
/// Each camera reports only the *identities* it inferred per frame (an
/// anonymous re-identification signature — no positions or images cross
/// the network, addressing the paper's "low communication overheads and
/// privacy" requirement). The broker correlates sighting streams across
/// camera pairs and candidate lags; pairs whose best-lag correlation
/// clears a threshold become collaborators.
///
/// # Examples
///
/// ```
/// use eugene_collab::SightingBroker;
///
/// let mut broker = SightingBroker::new(2);
/// for frame in 0..20 {
///     // Both cameras watch the same person walk by, frame for frame
///     // (ids change every frame, so only lag 0 correlates).
///     broker.record_frame(0, [frame]);
///     broker.record_frame(1, [frame]);
/// }
/// let links = broker.discover(3, 0.5);
/// assert_eq!(links.len(), 1);
/// assert_eq!(links[0].lag, 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SightingBroker {
    /// `sightings[camera][frame]` = ids inferred in that frame.
    sightings: Vec<Vec<HashSet<usize>>>,
}

impl SightingBroker {
    /// Creates a broker tracking `num_cameras` cameras.
    pub fn new(num_cameras: usize) -> Self {
        Self {
            sightings: vec![Vec::new(); num_cameras],
        }
    }

    /// Number of cameras tracked.
    pub fn num_cameras(&self) -> usize {
        self.sightings.len()
    }

    /// Number of frames recorded for camera `camera`.
    ///
    /// # Panics
    ///
    /// Panics if `camera` is out of range.
    pub fn frames(&self, camera: usize) -> usize {
        self.sightings[camera].len()
    }

    /// Appends one frame of inferred identities for a camera.
    ///
    /// # Panics
    ///
    /// Panics if `camera` is out of range.
    pub fn record_frame(&mut self, camera: usize, ids: impl IntoIterator<Item = usize>) {
        assert!(
            camera < self.sightings.len(),
            "camera {camera} out of range"
        );
        self.sightings[camera].push(ids.into_iter().collect());
    }

    /// Correlation of camera `a`'s sightings with camera `b`'s sightings
    /// `lag` frames later: the fraction of `a`'s sighting events
    /// `(frame, id)` for which `b` reports the same id at `frame + lag`,
    /// normalized symmetrically by the smaller event count (so a camera
    /// that sees everything does not spuriously correlate with everyone).
    ///
    /// Returns `0.0` when either stream has no events in the comparable
    /// window.
    ///
    /// # Panics
    ///
    /// Panics if either camera id is out of range.
    pub fn correlation(&self, a: usize, b: usize, lag: usize) -> f64 {
        let sa = &self.sightings[a];
        let sb = &self.sightings[b];
        let frames = sa.len().min(sb.len().saturating_sub(lag));
        if frames == 0 {
            return 0.0;
        }
        let mut joint = 0usize;
        let mut events_a = 0usize;
        let mut events_b = 0usize;
        for f in 0..frames {
            events_a += sa[f].len();
            events_b += sb[f + lag].len();
            joint += sa[f].intersection(&sb[f + lag]).count();
        }
        let denom = events_a.min(events_b);
        if denom == 0 {
            return 0.0;
        }
        joint as f64 / denom as f64
    }

    /// Scans every ordered camera pair and lag in `0..=max_lag`, returning
    /// the links whose best-lag correlation reaches `threshold`, strongest
    /// first. Concurrent overlap is reported once per unordered pair
    /// (`a < b`); lagged links are directional.
    pub fn discover(&self, max_lag: usize, threshold: f64) -> Vec<CollabLink> {
        let n = self.sightings.len();
        let mut links = Vec::new();
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                // Unordered at lag 0 (report once), ordered for lags > 0.
                let mut best: Option<(usize, f64)> = None;
                for lag in 0..=max_lag {
                    if lag == 0 && a > b {
                        continue;
                    }
                    let score = self.correlation(a, b, lag);
                    if best.is_none_or(|(_, s)| score > s) {
                        best = Some((lag, score));
                    }
                }
                if let Some((lag, score)) = best {
                    if score >= threshold {
                        links.push(CollabLink { a, b, lag, score });
                    }
                }
            }
        }
        links.sort_by(|x, y| y.score.total_cmp(&x.score).then(x.a.cmp(&y.a)));
        links
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Camera, DetectorModel, World, WorldConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Records real detection streams from the ring-camera world.
    fn observed_broker(frames: usize, seed: u64) -> (SightingBroker, Vec<Camera>) {
        let mut world = World::new(WorldConfig::default(), seed);
        let cameras = Camera::ring(8, world.config().arena_side);
        let model = DetectorModel::movidius_class();
        let mut rng = StdRng::seed_from_u64(seed + 1);
        let mut broker = SightingBroker::new(cameras.len());
        for _ in 0..frames {
            world.step(0.5);
            for cam in &cameras {
                let ids = cam
                    .detect(&world, &model, &mut rng)
                    .into_iter()
                    .filter_map(|d| d.truth);
                broker.record_frame(cam.id, ids);
            }
        }
        (broker, cameras)
    }

    #[test]
    fn discovered_concurrent_links_are_geometrically_overlapping() {
        let (broker, cameras) = observed_broker(150, 42);
        let links = broker.discover(0, 0.25);
        assert!(!links.is_empty(), "dense ring deployment must correlate");
        for link in &links {
            assert!(
                cameras[link.a].fov.overlaps(&cameras[link.b].fov)
                    || broker.correlation(link.a, link.b, 0) > 0.25,
                "link {link:?} has no geometric basis"
            );
        }
    }

    #[test]
    fn most_overlapping_pairs_are_discovered() {
        let (broker, cameras) = observed_broker(200, 43);
        let links = broker.discover(0, 0.2);
        let discovered: HashSet<(usize, usize)> =
            links.iter().map(|l| (l.a.min(l.b), l.a.max(l.b))).collect();
        let mut overlapping = 0;
        let mut found = 0;
        for a in 0..cameras.len() {
            for b in a + 1..cameras.len() {
                if cameras[a].fov.overlaps(&cameras[b].fov) {
                    overlapping += 1;
                    if discovered.contains(&(a, b)) {
                        found += 1;
                    }
                }
            }
        }
        assert!(overlapping > 0, "ring cameras overlap by construction");
        let recall = found as f64 / overlapping as f64;
        assert!(recall >= 0.6, "broker found {found}/{overlapping} overlaps");
    }

    #[test]
    fn lagged_corridor_pair_is_discovered_with_its_lag() {
        // The paper's corridor scenario: camera 1 sees what camera 0 saw
        // three frames earlier.
        let mut broker = SightingBroker::new(2);
        let lag = 3usize;
        for frame in 0..60 {
            let person = frame / 5 % 7; // slowly changing occupant
            broker.record_frame(0, [person]);
            // Camera 1's stream: same ids delayed by `lag` frames.
            let delayed = if frame >= lag {
                (frame - lag) / 5 % 7
            } else {
                99
            };
            broker.record_frame(1, [delayed]);
        }
        let links = broker.discover(5, 0.6);
        let corridor = links
            .iter()
            .find(|l| l.a == 0 && l.b == 1)
            .expect("corridor link discovered");
        assert_eq!(corridor.lag, lag, "wrong lag: {corridor:?}");
        assert!(corridor.score > 0.8);
    }

    #[test]
    fn independent_streams_do_not_correlate() {
        let mut broker = SightingBroker::new(2);
        for frame in 0..50 {
            broker.record_frame(0, [frame % 5]);
            broker.record_frame(1, [100 + frame % 7]);
        }
        assert!(broker.discover(3, 0.1).is_empty());
        assert_eq!(broker.correlation(0, 1, 0), 0.0);
    }

    #[test]
    fn empty_frames_are_safe() {
        let mut broker = SightingBroker::new(2);
        broker.record_frame(0, []);
        broker.record_frame(1, []);
        assert_eq!(broker.correlation(0, 1, 0), 0.0);
        assert!(broker.discover(2, 0.1).is_empty());
        assert_eq!(broker.frames(0), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn recording_to_unknown_camera_panics() {
        SightingBroker::new(1).record_frame(5, [1]);
    }
}
