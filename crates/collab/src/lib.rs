//! Collaborative multi-camera inferencing (paper §IV, Table IV).
//!
//! The paper evaluates collaboration on the PETS2009 8-camera outdoor
//! dataset: individually, each camera runs a full detection DNN per frame
//! (~550 ms on an edge accelerator, ≤ 2 fps) and suffers accuracy loss
//! from "context-based artifacts (e.g., occlusions, poor lighting)";
//! collaboratively, cameras share bounding-box coordinates ("suitably
//! remapped to a common coordinate space") so peers can supplement their
//! own inferences, raising people-counting accuracy by ≥ 8% and cutting
//! per-frame latency twenty-fold (Table IV: 68% → 75.5%, 550 ms → 25 ms).
//!
//! Since PETS2009 footage and a Movidius testbed are not reproducible
//! here, this crate builds the closest behavioural equivalent (see
//! DESIGN.md): a 2-D [`World`] of random-waypoint pedestrians observed by
//! eight [`Camera`]s with overlapping fields of view, line-of-sight
//! [`geometry`] occlusion, a calibrated [`DetectorModel`] (full-DNN vs
//! box-verification latency), and the two pipelines the paper
//! compares. §IV-C's resilience discussion (a rogue camera's false boxes
//! degrading peers by over 20%, and defenses) is implemented by
//! [`run_with_rogue`] and [`ReputationFilter`].
//!
//! # Examples
//!
//! ```
//! use eugene_collab::{World, WorldConfig};
//!
//! let mut world = World::new(WorldConfig::default(), 42);
//! let before = world.pedestrians()[0].position;
//! world.step(1.0);
//! let after = world.pedestrians()[0].position;
//! assert!(before.distance(after) > 0.0);
//! ```

mod broker;
mod camera;
mod detector;
pub mod geometry;
mod pipeline;
mod resilience;
mod world;

pub use broker::{CollabLink, SightingBroker};
pub use camera::{Camera, Detection};
pub use detector::DetectorModel;
pub use geometry::{FieldOfView, Vec2};
pub use pipeline::{run_collaborative, run_individual, PipelineConfig, PipelineReport};
pub use resilience::{run_with_rogue, ReputationFilter, RogueConfig};
pub use world::{Pedestrian, World, WorldConfig};
