//! Planar geometry for the camera world: vectors, fields of view, and
//! line-of-sight occlusion tests.

use serde::{Deserialize, Serialize};

/// A 2-D point/vector in ground (world) coordinates, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// X coordinate (m).
    pub x: f64,
    /// Y coordinate (m).
    pub y: f64,
}

impl Vec2 {
    /// Creates a vector.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Vec2) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Vector length.
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Scalar multiplication.
    pub fn scale(self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Angle of the vector from the +x axis, in radians.
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }
}

impl std::ops::Sub for Vec2 {
    type Output = Vec2;

    fn sub(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x - other.x, self.y - other.y)
    }
}

impl std::ops::Add for Vec2 {
    type Output = Vec2;

    fn add(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x + other.x, self.y + other.y)
    }
}

/// A camera's viewing cone: apex position, central direction, half-angle,
/// and range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FieldOfView {
    /// Camera position.
    pub origin: Vec2,
    /// Central viewing direction, radians from +x.
    pub direction: f64,
    /// Half of the cone's opening angle, radians.
    pub half_angle: f64,
    /// Maximum viewing distance, meters.
    pub range: f64,
}

impl FieldOfView {
    /// Creates a field of view.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < half_angle < pi` and `range > 0`.
    pub fn new(origin: Vec2, direction: f64, half_angle: f64, range: f64) -> Self {
        assert!(
            half_angle > 0.0 && half_angle < std::f64::consts::PI,
            "half_angle must be in (0, pi)"
        );
        assert!(range > 0.0, "range must be positive");
        Self {
            origin,
            direction,
            half_angle,
            range,
        }
    }

    /// Whether `point` lies inside the cone.
    pub fn contains(&self, point: Vec2) -> bool {
        let rel = point - self.origin;
        let dist = rel.norm();
        if dist > self.range || dist == 0.0 {
            return dist == 0.0;
        }
        let mut delta = (rel.angle() - self.direction).abs();
        if delta > std::f64::consts::PI {
            delta = 2.0 * std::f64::consts::PI - delta;
        }
        delta <= self.half_angle
    }

    /// Whether the straight line of sight from the camera to `target` is
    /// blocked by any of `blockers` (a blocker occludes when it lies
    /// between camera and target within `blocker_radius` of the sight
    /// line).
    pub fn occluded(&self, target: Vec2, blockers: &[Vec2], blocker_radius: f64) -> bool {
        let to_target = target - self.origin;
        let len = to_target.norm();
        if len == 0.0 {
            return false;
        }
        for &b in blockers {
            if b == target {
                continue;
            }
            let to_b = b - self.origin;
            // Projection of the blocker onto the sight line.
            let t = to_b.dot(to_target) / (len * len);
            if t <= 0.0 || t >= 1.0 {
                continue; // behind camera or beyond target
            }
            let closest = self.origin + to_target.scale(t);
            if b.distance(closest) <= blocker_radius {
                return true;
            }
        }
        false
    }

    /// Approximate FoV-overlap indicator with another camera: whether the
    /// midpoints of each cone's axis fall inside the other cone (cheap and
    /// good enough for deciding collaboration candidates).
    pub fn overlaps(&self, other: &FieldOfView) -> bool {
        let mid_self = self.origin
            + Vec2::new(self.direction.cos(), self.direction.sin()).scale(self.range / 2.0);
        let mid_other = other.origin
            + Vec2::new(other.direction.cos(), other.direction.sin()).scale(other.range / 2.0);
        self.contains(mid_other) || other.contains(mid_self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    #[test]
    fn vec2_basics() {
        let a = Vec2::new(3.0, 4.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.distance(Vec2::default()), 5.0);
        assert_eq!(a - Vec2::new(1.0, 1.0), Vec2::new(2.0, 3.0));
        assert_eq!(a.scale(2.0), Vec2::new(6.0, 8.0));
        assert!((Vec2::new(0.0, 1.0).angle() - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn fov_contains_points_in_cone() {
        let fov = FieldOfView::new(Vec2::default(), 0.0, FRAC_PI_4, 10.0);
        assert!(fov.contains(Vec2::new(5.0, 0.0)));
        assert!(fov.contains(Vec2::new(5.0, 4.0)));
        assert!(!fov.contains(Vec2::new(5.0, 6.0)), "outside the cone angle");
        assert!(!fov.contains(Vec2::new(15.0, 0.0)), "beyond range");
        assert!(!fov.contains(Vec2::new(-5.0, 0.0)), "behind the camera");
    }

    #[test]
    fn fov_handles_wraparound_direction() {
        let fov = FieldOfView::new(Vec2::default(), PI, FRAC_PI_4, 10.0);
        assert!(fov.contains(Vec2::new(-5.0, 0.1)));
        assert!(fov.contains(Vec2::new(-5.0, -0.1)));
    }

    #[test]
    fn occlusion_requires_blocker_between() {
        let fov = FieldOfView::new(Vec2::default(), 0.0, FRAC_PI_4, 20.0);
        let target = Vec2::new(10.0, 0.0);
        assert!(fov.occluded(target, &[Vec2::new(5.0, 0.1)], 0.4));
        assert!(
            !fov.occluded(target, &[Vec2::new(5.0, 2.0)], 0.4),
            "offset blocker"
        );
        assert!(
            !fov.occluded(target, &[Vec2::new(15.0, 0.0)], 0.4),
            "behind target"
        );
        assert!(
            !fov.occluded(target, &[target], 0.4),
            "target is not its own blocker"
        );
    }

    #[test]
    fn overlap_detection() {
        let a = FieldOfView::new(Vec2::new(0.0, 0.0), 0.0, FRAC_PI_4, 10.0);
        let b = FieldOfView::new(Vec2::new(10.0, 0.0), PI, FRAC_PI_4, 10.0);
        assert!(a.overlaps(&b), "facing cones overlap");
        let c = FieldOfView::new(Vec2::new(100.0, 100.0), 0.0, FRAC_PI_4, 5.0);
        assert!(!a.overlaps(&c));
    }
}
