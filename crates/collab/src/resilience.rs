use crate::{Camera, Detection, DetectorModel, PipelineConfig, PipelineReport, Vec2, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::collections::HashSet;

/// Configuration of the rogue-camera experiment (paper §IV-C: "false or
/// noisy bounding box estimates by one camera can reduce the people
/// detection accuracy of other peer cameras by over 20%").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RogueConfig {
    /// Id of the compromised camera.
    pub rogue_camera: usize,
    /// Fabricated boxes it injects per frame.
    pub fake_boxes_per_frame: usize,
    /// Whether the reputation filter defense is enabled.
    pub defended: bool,
}

impl Default for RogueConfig {
    fn default() -> Self {
        Self {
            rogue_camera: 0,
            fake_boxes_per_frame: 6,
            defended: false,
        }
    }
}

/// The resilience service the paper calls for: Eugene "continuously
/// monitors the output inference streams ... of individual IoT devices"
/// to uncover faulty behavior. Here each camera keeps a per-peer
/// verification ledger: shared boxes that repeatedly fail local
/// verification drive the peer's reputation down, and boxes from peers
/// below the trust threshold are ignored.
#[derive(Debug, Clone)]
pub struct ReputationFilter {
    /// Per peer: (verified, attempted).
    ledger: HashMap<usize, (u64, u64)>,
    trust_threshold: f64,
    min_attempts: u64,
}

impl ReputationFilter {
    /// Creates a filter that distrusts peers whose verification success
    /// rate drops below `trust_threshold` (after `min_attempts` samples).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < trust_threshold < 1.0`.
    pub fn new(trust_threshold: f64, min_attempts: u64) -> Self {
        assert!(
            trust_threshold > 0.0 && trust_threshold < 1.0,
            "trust threshold must be in (0, 1)"
        );
        Self {
            ledger: HashMap::new(),
            trust_threshold,
            min_attempts,
        }
    }

    /// Records the outcome of verifying one shared box from `peer`.
    pub fn record(&mut self, peer: usize, verified: bool) {
        let entry = self.ledger.entry(peer).or_insert((0, 0));
        entry.1 += 1;
        if verified {
            entry.0 += 1;
        }
    }

    /// Whether boxes from `peer` should currently be trusted.
    pub fn trusts(&self, peer: usize) -> bool {
        match self.ledger.get(&peer) {
            None => true,
            Some(&(ok, total)) => {
                total < self.min_attempts || ok as f64 / total as f64 >= self.trust_threshold
            }
        }
    }

    /// Verification success rate observed for `peer`, if any.
    pub fn success_rate(&self, peer: usize) -> Option<f64> {
        self.ledger
            .get(&peer)
            .filter(|(_, total)| *total > 0)
            .map(|&(ok, total)| ok as f64 / total as f64)
    }
}

/// Runs the collaborative pipeline with one rogue camera injecting
/// fabricated boxes, optionally defended by per-camera
/// [`ReputationFilter`]s. Returns the same report shape as the honest
/// pipelines for direct comparison.
pub fn run_with_rogue(
    world: &mut World,
    cameras: &[Camera],
    model: &DetectorModel,
    config: &PipelineConfig,
    rogue: &RogueConfig,
    seed: u64,
) -> PipelineReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = cameras.len();
    let mut tracks: Vec<Vec<Vec2>> = vec![Vec::new(); n];
    let mut shared_prev: Vec<Detection> = Vec::new();
    let mut filters: Vec<ReputationFilter> =
        (0..n).map(|_| ReputationFilter::new(0.3, 12)).collect();
    let mut tp = 0usize;
    let mut present_total = 0usize;
    let mut fp = 0usize;
    let mut latency_total = 0.0;
    for frame in 0..config.frames {
        world.step(config.frame_dt);
        let side = world.config().arena_side;
        let mut shared_next: Vec<Detection> = Vec::new();
        for (ci, cam) in cameras.iter().enumerate() {
            let keyframe = config.keyframe_interval <= 1
                || (frame + ci * config.keyframe_interval / n.max(1))
                    .is_multiple_of(config.keyframe_interval);
            let detections = if keyframe {
                latency_total += model.full_latency_ms;
                cam.detect(world, model, &mut rng)
            } else {
                latency_total += model.verify_latency_ms;
                let mut dets = Vec::new();
                let mut candidates: Vec<(Option<usize>, Vec2)> =
                    tracks[ci].iter().map(|&p| (None, p)).collect();
                for d in &shared_prev {
                    if d.camera_id == cam.id {
                        continue;
                    }
                    if rogue.defended && !filters[ci].trusts(d.camera_id) {
                        continue;
                    }
                    candidates.push((Some(d.camera_id), d.position));
                }
                let mut used: Vec<Vec2> = Vec::new();
                for (origin, pos) in candidates {
                    if used.iter().any(|q| q.distance(pos) <= config.gate_m * 0.6) {
                        continue;
                    }
                    used.push(pos);
                    let verified =
                        cam.verify_shared_box(world, pos, config.gate_m, model, &mut rng);
                    if let Some(peer) = origin {
                        // Only score attempts the camera could actually
                        // check (inside its own FoV).
                        if cam.fov.contains(pos) {
                            filters[ci].record(peer, verified.is_some());
                        }
                    }
                    if let Some(d) = verified {
                        dets.push(d);
                    } else if origin.is_some() && !rogue.defended {
                        // Undefended pipelines take peers at their word
                        // when they cannot verify locally — the attack
                        // vector of §IV-C: a plausible box inside the FoV
                        // is adopted as a (ghost) count.
                        if cam.fov.contains(pos) && rng.gen_bool(0.5) {
                            dets.push(Detection {
                                camera_id: cam.id,
                                position: pos,
                                truth: None,
                            });
                        }
                    }
                }
                dets
            };
            let present = cam.visible_people(world);
            let (frame_tp, frame_fp) = score(&detections, &present);
            tp += frame_tp;
            fp += frame_fp;
            present_total += present.len();
            tracks[ci] = detections.iter().map(|d| d.position).collect();
            shared_next.extend(detections);
            // The rogue camera injects fabricated boxes into the pool.
            if ci == rogue.rogue_camera {
                for _ in 0..rogue.fake_boxes_per_frame {
                    shared_next.push(Detection {
                        camera_id: cam.id,
                        position: Vec2::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)),
                        truth: None,
                    });
                }
            }
        }
        shared_prev = shared_next;
    }
    let camera_frames = config.frames * n;
    PipelineReport {
        detection_accuracy: tp as f64 / (present_total + fp).max(1) as f64,
        mean_latency_ms: latency_total / camera_frames.max(1) as f64,
        recognition_latency_ms: model.verify_latency_ms,
        camera_frames,
        false_positives: fp,
    }
}

fn score(detections: &[Detection], present: &[usize]) -> (usize, usize) {
    let present: HashSet<usize> = present.iter().copied().collect();
    let mut seen: HashSet<usize> = HashSet::new();
    let mut tp = 0;
    let mut fp = 0;
    for d in detections {
        match d.truth {
            Some(id) if present.contains(&id) => {
                if seen.insert(id) {
                    tp += 1;
                } else {
                    fp += 1;
                }
            }
            _ => fp += 1,
        }
    }
    (tp, fp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_collaborative, WorldConfig};

    fn setup(seed: u64) -> (World, Vec<Camera>, DetectorModel) {
        let world = World::new(WorldConfig::default(), seed);
        let cameras = Camera::ring(8, world.config().arena_side);
        (world, cameras, DetectorModel::movidius_class())
    }

    #[test]
    fn rogue_camera_degrades_collaborative_accuracy_substantially() {
        let config = PipelineConfig::default();
        let (mut honest_world, cameras, model) = setup(400);
        let honest = run_collaborative(&mut honest_world, &cameras, &model, &config, 4);
        let (mut rogue_world, _, _) = setup(400);
        let attacked = run_with_rogue(
            &mut rogue_world,
            &cameras,
            &model,
            &config,
            &RogueConfig::default(),
            4,
        );
        let relative_drop =
            (honest.detection_accuracy - attacked.detection_accuracy) / honest.detection_accuracy;
        assert!(
            relative_drop > 0.15,
            "rogue should cause a major drop: honest {} vs attacked {} ({}%)",
            honest.detection_accuracy,
            attacked.detection_accuracy,
            (relative_drop * 100.0) as i64
        );
    }

    #[test]
    fn reputation_filter_recovers_most_of_the_loss() {
        let config = PipelineConfig::default();
        let (mut w1, cameras, model) = setup(500);
        let honest = run_collaborative(&mut w1, &cameras, &model, &config, 5);
        let (mut w2, _, _) = setup(500);
        let attacked = run_with_rogue(
            &mut w2,
            &cameras,
            &model,
            &config,
            &RogueConfig::default(),
            5,
        );
        let (mut w3, _, _) = setup(500);
        let defended = run_with_rogue(
            &mut w3,
            &cameras,
            &model,
            &config,
            &RogueConfig {
                defended: true,
                ..RogueConfig::default()
            },
            5,
        );
        assert!(
            defended.detection_accuracy > attacked.detection_accuracy,
            "defense should help: attacked {} vs defended {}",
            attacked.detection_accuracy,
            defended.detection_accuracy
        );
        let recovered = (defended.detection_accuracy - attacked.detection_accuracy)
            / (honest.detection_accuracy - attacked.detection_accuracy).max(1e-9);
        assert!(
            recovered > 0.5,
            "defense should recover most of the loss (recovered {recovered:.2})"
        );
    }

    #[test]
    fn filter_distrusts_consistently_failing_peer() {
        let mut filter = ReputationFilter::new(0.4, 5);
        assert!(filter.trusts(3), "unknown peers start trusted");
        for _ in 0..10 {
            filter.record(3, false);
        }
        assert!(!filter.trusts(3));
        assert_eq!(filter.success_rate(3), Some(0.0));
        // An honest peer stays trusted.
        for _ in 0..10 {
            filter.record(5, true);
        }
        assert!(filter.trusts(5));
    }

    #[test]
    fn filter_requires_minimum_evidence() {
        let mut filter = ReputationFilter::new(0.9, 10);
        for _ in 0..5 {
            filter.record(1, false);
        }
        assert!(filter.trusts(1), "too little evidence to distrust");
    }

    #[test]
    #[should_panic(expected = "trust threshold")]
    fn invalid_threshold_rejected() {
        ReputationFilter::new(1.0, 5);
    }
}
