use crate::Vec2;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for [`World`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Number of pedestrians (PETS2009 S2 scenes track up to ~10 actors;
    /// the default matches that density).
    pub num_pedestrians: usize,
    /// Square arena side, meters.
    pub arena_side: f64,
    /// Minimum walking speed, m/s.
    pub min_speed: f64,
    /// Maximum walking speed, m/s.
    pub max_speed: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            num_pedestrians: 10,
            arena_side: 30.0,
            min_speed: 0.6,
            max_speed: 1.8,
        }
    }
}

/// One walking person, moved by the random-waypoint model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pedestrian {
    /// Stable identity.
    pub id: usize,
    /// Current ground position.
    pub position: Vec2,
    /// Current waypoint being walked toward.
    pub waypoint: Vec2,
    /// Walking speed, m/s.
    pub speed: f64,
}

/// The simulated campus: a square arena of random-waypoint pedestrians,
/// the reproduction's stand-in for PETS2009 footage.
#[derive(Debug, Clone)]
pub struct World {
    config: WorldConfig,
    pedestrians: Vec<Pedestrian>,
    rng: StdRng,
    time: f64,
}

impl World {
    /// Creates a world with pedestrians at random positions.
    ///
    /// # Panics
    ///
    /// Panics if the config has no pedestrians, a non-positive arena, or
    /// an invalid speed range.
    pub fn new(config: WorldConfig, seed: u64) -> Self {
        assert!(config.num_pedestrians > 0, "need at least one pedestrian");
        assert!(config.arena_side > 0.0, "arena must have positive size");
        assert!(
            config.min_speed > 0.0 && config.max_speed >= config.min_speed,
            "invalid speed range"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let pedestrians = (0..config.num_pedestrians)
            .map(|id| {
                let position = random_point(&config, &mut rng);
                let waypoint = random_point(&config, &mut rng);
                let speed = rng.gen_range(config.min_speed..=config.max_speed);
                Pedestrian {
                    id,
                    position,
                    waypoint,
                    speed,
                }
            })
            .collect();
        Self {
            config,
            pedestrians,
            rng,
            time: 0.0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// Current pedestrians.
    pub fn pedestrians(&self) -> &[Pedestrian] {
        &self.pedestrians
    }

    /// Ground positions of everyone (convenience for occlusion tests).
    pub fn positions(&self) -> Vec<Vec2> {
        self.pedestrians.iter().map(|p| p.position).collect()
    }

    /// Simulated time elapsed, seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Advances the world by `dt` seconds of random-waypoint motion:
    /// each pedestrian walks toward its waypoint and draws a new one on
    /// arrival.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn step(&mut self, dt: f64) {
        assert!(dt > 0.0, "dt must be positive");
        self.time += dt;
        let config = self.config;
        for p in &mut self.pedestrians {
            let mut remaining = p.speed * dt;
            while remaining > 0.0 {
                let to_wp = p.waypoint - p.position;
                let dist = to_wp.norm();
                if dist <= remaining {
                    p.position = p.waypoint;
                    remaining -= dist;
                    p.waypoint = random_point(&config, &mut self.rng);
                    p.speed = self.rng.gen_range(config.min_speed..=config.max_speed);
                } else {
                    p.position = p.position + to_wp.scale(remaining / dist);
                    remaining = 0.0;
                }
            }
        }
    }
}

fn random_point(config: &WorldConfig, rng: &mut StdRng) -> Vec2 {
    Vec2::new(
        rng.gen_range(0.0..config.arena_side),
        rng.gen_range(0.0..config.arena_side),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pedestrians_stay_inside_the_arena() {
        let mut world = World::new(WorldConfig::default(), 1);
        for _ in 0..200 {
            world.step(0.5);
        }
        let side = world.config().arena_side;
        for p in world.pedestrians() {
            assert!(p.position.x >= 0.0 && p.position.x <= side);
            assert!(p.position.y >= 0.0 && p.position.y <= side);
        }
    }

    #[test]
    fn motion_is_bounded_by_speed() {
        let mut world = World::new(WorldConfig::default(), 2);
        let before = world.positions();
        world.step(1.0);
        let after = world.positions();
        for (p, (b, a)) in world.pedestrians().iter().zip(before.iter().zip(&after)) {
            // Waypoint changes may redirect but never exceed speed * dt
            // (distance along the walk; straight-line is <=).
            assert!(
                b.distance(*a) <= world.config().max_speed + 1e-9,
                "pedestrian {} moved {}",
                p.id,
                b.distance(*a)
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = World::new(WorldConfig::default(), 3);
        let mut b = World::new(WorldConfig::default(), 3);
        for _ in 0..20 {
            a.step(0.5);
            b.step(0.5);
        }
        assert_eq!(a.positions(), b.positions());
    }

    #[test]
    fn ids_are_stable() {
        let mut world = World::new(WorldConfig::default(), 4);
        world.step(5.0);
        let ids: Vec<usize> = world.pedestrians().iter().map(|p| p.id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn time_accumulates() {
        let mut world = World::new(WorldConfig::default(), 5);
        world.step(0.5);
        world.step(0.25);
        assert!((world.time() - 0.75).abs() < 1e-12);
    }
}
