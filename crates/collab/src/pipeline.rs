use crate::{Camera, Detection, DetectorModel, Vec2, World};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Parameters shared by both pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Frames to simulate.
    pub frames: usize,
    /// Wall-clock seconds between frames.
    pub frame_dt: f64,
    /// Collaborative mode: a camera runs its full detector once every this
    /// many frames (staggered across cameras); all other frames use the
    /// cheap verification path on shared/tracked boxes.
    pub keyframe_interval: usize,
    /// Association gate for verifying a shared/tracked box, meters.
    pub gate_m: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            frames: 120,
            frame_dt: 0.5,
            keyframe_interval: 8,
            gate_m: 1.5,
        }
    }
}

/// Aggregate result of a pipeline run — the two Table IV columns plus
/// telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// People-detection accuracy: true positives over (people present +
    /// false positives), aggregated over every camera-frame.
    pub detection_accuracy: f64,
    /// Mean per-camera per-frame recognition latency, ms (keyframes
    /// amortized in collaborative mode).
    pub mean_latency_ms: f64,
    /// Latency of the steady-state recognition path, ms (full DNN for the
    /// individual pipeline, box verification for the collaborative one) —
    /// the number Table IV reports.
    pub recognition_latency_ms: f64,
    /// Camera-frames simulated.
    pub camera_frames: usize,
    /// Total false positives across the run.
    pub false_positives: usize,
}

/// Runs the paper's baseline: every camera executes the full detection +
/// identification DNNs on every frame, in isolation.
pub fn run_individual(
    world: &mut World,
    cameras: &[Camera],
    model: &DetectorModel,
    config: &PipelineConfig,
    seed: u64,
) -> PipelineReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tp = 0usize;
    let mut present_total = 0usize;
    let mut fp = 0usize;
    for _ in 0..config.frames {
        world.step(config.frame_dt);
        for cam in cameras {
            let detections = cam.detect(world, model, &mut rng);
            let present = cam.visible_people(world);
            let (frame_tp, frame_fp) = score(&detections, &present);
            tp += frame_tp;
            fp += frame_fp;
            present_total += present.len();
        }
    }
    let camera_frames = config.frames * cameras.len();
    PipelineReport {
        detection_accuracy: tp as f64 / (present_total + fp).max(1) as f64,
        mean_latency_ms: model.full_latency_ms,
        recognition_latency_ms: model.full_latency_ms,
        camera_frames,
        false_positives: fp,
    }
}

/// Runs the collaborative pipeline of §IV: cameras share bounding-box
/// coordinates (remapped to the common ground frame); each camera
/// verifies shared and tracked boxes on the cheap path, running its full
/// detector only on staggered keyframes.
pub fn run_collaborative(
    world: &mut World,
    cameras: &[Camera],
    model: &DetectorModel,
    config: &PipelineConfig,
    seed: u64,
) -> PipelineReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = cameras.len();
    let mut tracks: Vec<Vec<Vec2>> = vec![Vec::new(); n];
    let mut shared_prev: Vec<Detection> = Vec::new();
    let mut tp = 0usize;
    let mut present_total = 0usize;
    let mut fp = 0usize;
    let mut latency_total = 0.0;
    for frame in 0..config.frames {
        world.step(config.frame_dt);
        let mut shared_next: Vec<Detection> = Vec::new();
        for (ci, cam) in cameras.iter().enumerate() {
            let keyframe = config.keyframe_interval <= 1
                || (frame + ci * config.keyframe_interval / n.max(1))
                    .is_multiple_of(config.keyframe_interval);
            let detections = if keyframe {
                latency_total += model.full_latency_ms;
                cam.detect(world, model, &mut rng)
            } else {
                latency_total += model.verify_latency_ms;
                // Candidates: own tracks plus boxes shared by peers last
                // frame (skipping our own re-broadcasts), deduplicated.
                let mut candidates: Vec<Vec2> = tracks[ci].clone();
                for d in &shared_prev {
                    if d.camera_id != cam.id {
                        candidates.push(d.position);
                    }
                }
                let candidates = dedupe_positions(candidates, config.gate_m * 0.6);
                let mut dets = Vec::new();
                for pos in candidates {
                    if let Some(d) =
                        cam.verify_shared_box(world, pos, config.gate_m, model, &mut rng)
                    {
                        dets.push(d);
                    }
                }
                dedupe_detections(dets, config.gate_m * 0.6)
            };
            let present = cam.visible_people(world);
            let (frame_tp, frame_fp) = score(&detections, &present);
            tp += frame_tp;
            fp += frame_fp;
            present_total += present.len();
            tracks[ci] = detections.iter().map(|d| d.position).collect();
            shared_next.extend(detections);
        }
        shared_prev = shared_next;
    }
    let camera_frames = config.frames * n;
    PipelineReport {
        detection_accuracy: tp as f64 / (present_total + fp).max(1) as f64,
        mean_latency_ms: latency_total / camera_frames.max(1) as f64,
        recognition_latency_ms: model.verify_latency_ms,
        camera_frames,
        false_positives: fp,
    }
}

/// Counts distinct true positives and false positives in one camera frame.
fn score(detections: &[Detection], present: &[usize]) -> (usize, usize) {
    let present: HashSet<usize> = present.iter().copied().collect();
    let mut seen: HashSet<usize> = HashSet::new();
    let mut tp = 0;
    let mut fp = 0;
    for d in detections {
        match d.truth {
            Some(id) if present.contains(&id) => {
                if seen.insert(id) {
                    tp += 1;
                } else {
                    fp += 1; // duplicate count of the same person
                }
            }
            _ => fp += 1,
        }
    }
    (tp, fp)
}

fn dedupe_positions(mut positions: Vec<Vec2>, radius: f64) -> Vec<Vec2> {
    let mut out: Vec<Vec2> = Vec::with_capacity(positions.len());
    for p in positions.drain(..) {
        if out.iter().all(|q| q.distance(p) > radius) {
            out.push(p);
        }
    }
    out
}

fn dedupe_detections(detections: Vec<Detection>, radius: f64) -> Vec<Detection> {
    let mut out: Vec<Detection> = Vec::with_capacity(detections.len());
    for d in detections {
        if out.iter().all(|q| q.position.distance(d.position) > radius) {
            out.push(d);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorldConfig;

    fn setup(seed: u64) -> (World, Vec<Camera>, DetectorModel) {
        let world = World::new(WorldConfig::default(), seed);
        let cameras = Camera::ring(8, world.config().arena_side);
        (world, cameras, DetectorModel::movidius_class())
    }

    #[test]
    fn individual_accuracy_is_in_the_papers_band() {
        let (mut world, cameras, model) = setup(100);
        let report = run_individual(&mut world, &cameras, &model, &PipelineConfig::default(), 1);
        assert!(
            (0.55..0.80).contains(&report.detection_accuracy),
            "individual accuracy {} outside Table IV band",
            report.detection_accuracy
        );
        assert_eq!(report.recognition_latency_ms, 550.0);
    }

    #[test]
    fn collaboration_beats_individual_on_both_axes() {
        let (mut world_a, cameras, model) = setup(200);
        let config = PipelineConfig::default();
        let individual = run_individual(&mut world_a, &cameras, &model, &config, 2);
        let (mut world_b, _, _) = setup(200);
        let collaborative = run_collaborative(&mut world_b, &cameras, &model, &config, 2);
        assert!(
            collaborative.detection_accuracy > individual.detection_accuracy + 0.03,
            "collab {} vs individual {}",
            collaborative.detection_accuracy,
            individual.detection_accuracy
        );
        assert!(
            collaborative.recognition_latency_ms * 10.0 < individual.recognition_latency_ms,
            "latency reduction below 10x"
        );
        assert!(collaborative.mean_latency_ms < individual.mean_latency_ms / 3.0);
    }

    #[test]
    fn reports_are_deterministic_given_seeds() {
        let config = PipelineConfig::default();
        let run = || {
            let (mut world, cameras, model) = setup(300);
            run_collaborative(&mut world, &cameras, &model, &config, 3)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn score_counts_duplicates_and_ghosts_as_false_positives() {
        let d = |truth: Option<usize>| Detection {
            camera_id: 0,
            position: Vec2::default(),
            truth,
        };
        let (tp, fp) = score(&[d(Some(1)), d(Some(1)), d(None), d(Some(9))], &[1, 2]);
        assert_eq!(tp, 1);
        assert_eq!(fp, 3); // duplicate of 1, ghost, and not-present 9
    }

    #[test]
    fn dedupe_merges_close_positions() {
        let positions = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(0.1, 0.0),
            Vec2::new(5.0, 5.0),
        ];
        assert_eq!(dedupe_positions(positions, 0.5).len(), 2);
    }
}
