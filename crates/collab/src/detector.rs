use serde::{Deserialize, Serialize};

/// Behavioural model of the per-frame perception workload, calibrated to
/// the paper's numbers: running the full MobileNet-SSD detection +
/// identification DNNs on a Movidius-class edge node "consumes ≈ 550
/// msecs/frame", while verifying/propagating shared bounding boxes is the
/// 25 ms path of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorModel {
    /// Full detection + identification DNN latency per frame, ms.
    pub full_latency_ms: f64,
    /// Box-verification/tracking latency per frame, ms.
    pub verify_latency_ms: f64,
    /// Probability of detecting an unoccluded person in the FoV.
    pub visible_recall: f64,
    /// Probability of detecting an occluded person.
    pub occluded_recall: f64,
    /// Standard deviation of reported ground positions, meters.
    pub position_noise_m: f64,
    /// Per-frame probability of a spurious detection (false positive).
    pub false_positive_rate: f64,
}

impl DetectorModel {
    /// The Movidius-class calibration used for Table IV.
    pub fn movidius_class() -> Self {
        Self {
            full_latency_ms: 550.0,
            verify_latency_ms: 25.0,
            visible_recall: 0.78,
            occluded_recall: 0.22,
            position_noise_m: 0.35,
            false_positive_rate: 0.02,
        }
    }
}

impl Default for DetectorModel {
    fn default() -> Self {
        Self::movidius_class()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_paper_latencies() {
        let d = DetectorModel::movidius_class();
        assert_eq!(d.full_latency_ms, 550.0);
        assert_eq!(d.verify_latency_ms, 25.0);
        // The paper reports a 20-fold latency reduction.
        assert!((d.full_latency_ms / d.verify_latency_ms - 22.0).abs() < 3.0);
    }

    #[test]
    fn occlusion_hurts_recall() {
        let d = DetectorModel::default();
        assert!(d.occluded_recall < d.visible_recall / 2.0);
    }
}
