//! Plan-cache lifecycle at the serving layer: micro-batched engine
//! dispatches compile each stage plan once and reuse it thereafter,
//! the runtime surfaces the counters, and a model reload never serves
//! a stale plan.

use eugene_nn::{Linear, StagedNetwork, StagedNetworkConfig};
use eugene_sched::Fifo;
use eugene_serve::{
    EngineSession, InferenceEngine, InferenceRequest, RuntimeConfig, ServiceClass, ServingRuntime,
};
use eugene_service::StagedNetworkEngine;
use eugene_tensor::seeded_rng;
use std::sync::Arc;
use std::time::Duration;

fn network(seed: u64) -> StagedNetwork {
    let config = StagedNetworkConfig {
        input_dim: 5,
        num_classes: 3,
        stage_widths: vec![vec![7], vec![6]],
        dropout: 0.0,
        input_skip: true,
    };
    StagedNetwork::new(&config, &mut seeded_rng(seed))
}

fn payloads(n: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| (0..5).map(|c| (i * 5 + c) as f32 * 0.07 - 0.8).collect())
        .collect()
}

fn run_batch_to_completion(engine: &StagedNetworkEngine, n: usize) {
    let mut batch: Vec<Box<dyn EngineSession>> =
        payloads(n).iter().map(|p| engine.begin(p)).collect();
    for _ in 0..engine.num_stages() {
        let reports = engine.next_stage_batch(&mut batch);
        assert!(reports.iter().all(Option::is_some));
    }
}

#[test]
fn micro_batched_dispatch_compiles_each_stage_once_then_hits() {
    let engine = StagedNetworkEngine::new(Arc::new(network(1)));
    assert_eq!(
        engine.plan_cache_stats().unwrap().misses,
        0,
        "no plans before the first dispatch"
    );

    run_batch_to_completion(&engine, 4);
    let stats = engine.plan_cache_stats().unwrap();
    assert_eq!(
        stats.misses as usize,
        engine.num_stages(),
        "first pass compiles one plan per stage"
    );
    assert_eq!(stats.entries, engine.num_stages());

    // Same batch shape again: pure hits, zero compiles.
    run_batch_to_completion(&engine, 4);
    let stats = engine.plan_cache_stats().unwrap();
    assert_eq!(stats.misses as usize, engine.num_stages());
    assert_eq!(stats.hits as usize, engine.num_stages());

    // A different batch shape is a different key.
    run_batch_to_completion(&engine, 2);
    let stats = engine.plan_cache_stats().unwrap();
    assert_eq!(stats.misses as usize, 2 * engine.num_stages());
}

#[test]
fn runtime_surfaces_plan_cache_counters() {
    let engine: Arc<StagedNetworkEngine> = Arc::new(StagedNetworkEngine::new(Arc::new(network(2))));
    let config = RuntimeConfig {
        num_workers: 2,
        max_batch: 4,
        gather_window: Duration::from_millis(2),
        ..RuntimeConfig::default()
    };
    let runtime = ServingRuntime::start(engine, Box::new(Fifo::new()), config);
    let class = ServiceClass::new("t", Duration::from_secs(5));
    let receivers: Vec<_> = payloads(4)
        .into_iter()
        .map(|p| runtime.submit(InferenceRequest::new(p, class.clone())).1)
        .collect();
    for rx in receivers {
        let response = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("response arrives");
        assert!(response.is_answered());
    }
    let stats = runtime
        .plan_cache_stats()
        .expect("staged-network engines serve through plans");
    assert!(
        stats.misses >= 1,
        "serving dispatches must have compiled at least one plan"
    );
    runtime.shutdown();
}

#[test]
fn model_reload_starts_from_a_fresh_cache_and_new_weights() {
    let engine_a = StagedNetworkEngine::new(Arc::new(network(3)));
    run_batch_to_completion(&engine_a, 3);
    assert!(engine_a.plan_cache_stats().unwrap().entries > 0);

    // "Reload": a retrained copy of the model replaces the old one. The
    // clone starts with an empty plan cache by construction, so no plan
    // built from the old weights can survive the swap.
    let mut retrained = engine_a.network().as_ref().clone();
    retrained.stages_mut()[0]
        .layers_mut()
        .iter_mut()
        .filter_map(|l| l.as_any_mut().downcast_mut::<Linear>())
        .for_each(|lin| lin.weights_mut()[(0, 0)] += 1.0);
    let retrained = Arc::new(retrained);
    let engine_b = StagedNetworkEngine::new(Arc::clone(&retrained));

    let stats = engine_b.plan_cache_stats().unwrap();
    assert_eq!(
        stats.entries, 0,
        "reloaded model must not inherit compiled plans"
    );

    // The new engine's fused dispatch matches the new network's own
    // layer walk bitwise — not the old weights.
    let inputs = payloads(3);
    let mut batch: Vec<Box<dyn EngineSession>> = inputs.iter().map(|p| engine_b.begin(p)).collect();
    let reports = engine_b.next_stage_batch(&mut batch);
    for (p, report) in inputs.iter().zip(reports) {
        let want = &retrained.classify(p)[0];
        let got = report.expect("stage report");
        assert_eq!(got.predicted, want.predicted);
        assert_eq!(
            got.confidence.to_bits(),
            want.confidence.to_bits(),
            "reloaded engine must serve the new weights bitwise"
        );
    }
    assert!(engine_b.plan_cache_stats().unwrap().misses >= 1);

    // The old engine's cache is untouched by the reload.
    assert!(engine_a.plan_cache_stats().unwrap().entries > 0);
}
