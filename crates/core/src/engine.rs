use eugene_nn::StagedNetwork;
use eugene_serve::{EngineSession, InferenceEngine, StageReport};
use eugene_tensor::{argmax, softmax, Matrix};
use std::sync::Arc;

/// Adapts a trained [`StagedNetwork`] to the serving runtime's
/// [`InferenceEngine`] interface, so the paper's worker pool can execute
/// real network stages.
///
/// # Examples
///
/// ```
/// use eugene_nn::{StagedNetwork, StagedNetworkConfig};
/// use eugene_serve::InferenceEngine;
/// use eugene_service::StagedNetworkEngine;
/// use eugene_tensor::seeded_rng;
/// use std::sync::Arc;
///
/// let config = StagedNetworkConfig {
///     input_dim: 4,
///     num_classes: 3,
///     stage_widths: vec![vec![8], vec![8]],
///     dropout: 0.0,
///     input_skip: false,
/// };
/// let net = StagedNetwork::new(&config, &mut seeded_rng(0));
/// let engine = StagedNetworkEngine::new(Arc::new(net));
/// let mut session = engine.begin(&[0.1, 0.2, 0.3, 0.4]);
/// let report = session.next_stage().expect("stage 1");
/// assert!(report.confidence > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct StagedNetworkEngine {
    network: Arc<StagedNetwork>,
}

impl StagedNetworkEngine {
    /// Wraps a shared network.
    pub fn new(network: Arc<StagedNetwork>) -> Self {
        Self { network }
    }

    /// The wrapped network.
    pub fn network(&self) -> &Arc<StagedNetwork> {
        &self.network
    }
}

impl InferenceEngine for StagedNetworkEngine {
    fn num_stages(&self) -> usize {
        self.network.num_stages()
    }

    fn begin(&self, payload: &[f32]) -> Box<dyn EngineSession> {
        // Payloads arrive from untrusted network clients; a width mismatch
        // must yield an empty session (zero stages, no prediction) rather
        // than reach a panicking matmul inside a worker.
        let valid = payload.len() == self.network.input_dim();
        Box::new(NetworkSession {
            network: Arc::clone(&self.network),
            input: Matrix::row_vector(payload),
            hidden: Matrix::row_vector(payload),
            done: 0,
            valid,
        })
    }
}

/// One in-flight inference over an owned network reference; stages execute
/// lazily, exactly one per [`EngineSession::next_stage`] call.
#[derive(Debug)]
struct NetworkSession {
    network: Arc<StagedNetwork>,
    input: Matrix,
    hidden: Matrix,
    done: usize,
    valid: bool,
}

impl EngineSession for NetworkSession {
    fn next_stage(&mut self) -> Option<StageReport> {
        if !self.valid || self.done >= self.network.num_stages() {
            return None;
        }
        use eugene_nn::Layer;
        // Mirror the trunk's shortcut wiring: stages after the first see
        // [previous output | raw input] when the network uses input skips.
        let stage_in = if self.done > 0 && self.network.input_skip() {
            self.hidden.hconcat(&self.input)
        } else {
            self.hidden.clone()
        };
        self.hidden = self.network.stages()[self.done].infer(&stage_in);
        let logits = self.network.heads()[self.done].infer(&self.hidden);
        let probs = softmax(logits.row(0));
        let predicted = argmax(&probs);
        self.done += 1;
        Some(StageReport {
            predicted,
            confidence: probs[predicted],
        })
    }

    fn stages_done(&self) -> usize {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eugene_nn::StagedNetworkConfig;
    use eugene_tensor::seeded_rng;

    fn engine() -> StagedNetworkEngine {
        let config = StagedNetworkConfig {
            input_dim: 4,
            num_classes: 3,
            stage_widths: vec![vec![6], vec![6], vec![5]],
            dropout: 0.0,
            input_skip: false,
        };
        StagedNetworkEngine::new(Arc::new(StagedNetwork::new(&config, &mut seeded_rng(1))))
    }

    #[test]
    fn session_matches_direct_classification() {
        let engine = engine();
        let sample = [0.3, -0.1, 0.7, 0.2];
        let direct = engine.network().classify(&sample);
        let mut session = engine.begin(&sample);
        for expected in direct {
            let got = session.next_stage().unwrap();
            assert_eq!(got.predicted, expected.predicted);
            assert!((got.confidence - expected.confidence).abs() < 1e-6);
        }
        assert!(session.next_stage().is_none());
    }

    #[test]
    fn sessions_are_independent() {
        let engine = engine();
        let mut a = engine.begin(&[1.0, 0.0, 0.0, 0.0]);
        let mut b = engine.begin(&[0.0, 0.0, 0.0, 1.0]);
        let ra = a.next_stage().unwrap();
        let rb = b.next_stage().unwrap();
        // Different inputs, same network: reports may differ, but sessions
        // must not interfere with each other's progress.
        assert_eq!(a.stages_done(), 1);
        assert_eq!(b.stages_done(), 1);
        let _ = (ra, rb);
    }

    #[test]
    fn engine_reports_stage_count() {
        assert_eq!(engine().num_stages(), 3);
    }

    #[test]
    fn wrong_width_payload_yields_an_empty_session() {
        // Network clients control the payload; a mismatched width must not
        // panic a worker — it produces a session that executes no stages.
        let engine = engine();
        for payload in [&[][..], &[0.1][..], &[0.0; 9][..]] {
            let mut session = engine.begin(payload);
            assert!(session.next_stage().is_none());
            assert_eq!(session.stages_done(), 0);
        }
    }

    #[test]
    fn session_matches_classification_with_input_skip() {
        // Regression test: the session must mirror the trunk's shortcut
        // wiring, or stage 2's matmul sees the wrong width.
        let config = StagedNetworkConfig {
            input_dim: 5,
            num_classes: 3,
            stage_widths: vec![vec![4], vec![6], vec![6]],
            dropout: 0.0,
            input_skip: true,
        };
        let engine =
            StagedNetworkEngine::new(Arc::new(StagedNetwork::new(&config, &mut seeded_rng(7))));
        let sample = [0.2, -0.4, 0.6, 0.1, 0.9];
        let direct = engine.network().classify(&sample);
        let mut session = engine.begin(&sample);
        for expected in direct {
            let got = session.next_stage().unwrap();
            assert_eq!(got.predicted, expected.predicted);
            assert!((got.confidence - expected.confidence).abs() < 1e-6);
        }
    }
}
