use eugene_nn::StagedNetwork;
use eugene_serve::{EngineSession, InferenceEngine, StageReport};
use eugene_tensor::{argmax, softmax, Matrix};
use std::sync::Arc;

/// Adapts a trained [`StagedNetwork`] to the serving runtime's
/// [`InferenceEngine`] interface, so the paper's worker pool can execute
/// real network stages.
///
/// # Examples
///
/// ```
/// use eugene_nn::{StagedNetwork, StagedNetworkConfig};
/// use eugene_serve::InferenceEngine;
/// use eugene_service::StagedNetworkEngine;
/// use eugene_tensor::seeded_rng;
/// use std::sync::Arc;
///
/// let config = StagedNetworkConfig {
///     input_dim: 4,
///     num_classes: 3,
///     stage_widths: vec![vec![8], vec![8]],
///     dropout: 0.0,
///     input_skip: false,
/// };
/// let net = StagedNetwork::new(&config, &mut seeded_rng(0));
/// let engine = StagedNetworkEngine::new(Arc::new(net));
/// let mut session = engine.begin(&[0.1, 0.2, 0.3, 0.4]);
/// let report = session.next_stage().expect("stage 1");
/// assert!(report.confidence > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct StagedNetworkEngine {
    network: Arc<StagedNetwork>,
}

impl StagedNetworkEngine {
    /// Wraps a shared network.
    pub fn new(network: Arc<StagedNetwork>) -> Self {
        Self { network }
    }

    /// The wrapped network.
    pub fn network(&self) -> &Arc<StagedNetwork> {
        &self.network
    }
}

impl InferenceEngine for StagedNetworkEngine {
    fn num_stages(&self) -> usize {
        self.network.num_stages()
    }

    fn stage_precision(&self, stage: usize) -> eugene_serve::Precision {
        self.network.stage_precision(stage)
    }

    fn begin(&self, payload: &[f32]) -> Box<dyn EngineSession> {
        // Payloads arrive from untrusted network clients; a width mismatch
        // must yield an empty session (zero stages, no prediction) rather
        // than reach a panicking matmul inside a worker.
        let valid = payload.len() == self.network.input_dim();
        Box::new(NetworkSession {
            network: Arc::clone(&self.network),
            input: Matrix::row_vector(payload),
            hidden: Matrix::row_vector(payload),
            done: 0,
            valid,
        })
    }

    fn next_stage_batch(&self, batch: &mut [Box<dyn EngineSession>]) -> Vec<Option<StageReport>> {
        use eugene_nn::Layer;
        let mut reports: Vec<Option<StageReport>> = batch.iter().map(|_| None).collect();
        // Group fusable sessions by the stage they are about to run. The
        // runtime gathers per stage, so normally there is exactly one
        // group; grouping defends against callers that mix stages. A
        // session is fusable only if it runs *this* engine's network —
        // rows of a fused forward all go through the same weights.
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        let mut singles: Vec<usize> = Vec::new();
        for (i, session) in batch.iter_mut().enumerate() {
            match session.as_any_mut().downcast_mut::<NetworkSession>() {
                Some(s)
                    if Arc::ptr_eq(&s.network, &self.network)
                        && s.valid
                        && s.done < s.network.num_stages() =>
                {
                    groups.entry(s.done).or_default().push(i);
                }
                _ => singles.push(i),
            }
        }
        for i in singles {
            reports[i] = batch[i].next_stage();
        }
        for (stage, members) in groups {
            // Micro-batched dispatches execute through a compiled,
            // cached stage plan: fused GEMM epilogues, pre-packed
            // weight panels, pooled intermediates — and bitwise the
            // same numbers as the layer walk, so scattering row `r`
            // back to request `r` is exactly as if it had run alone.
            // Plan compilation can fail only for exotic layer types;
            // the layer-walk path below stays as the fallback.
            let plan = self.network.stage_plan(stage, members.len()).ok();
            let (hidden, logits) = match plan {
                Some(plan) => {
                    // Gather members' hidden rows (and raw inputs for
                    // the shortcut wiring) — the plan performs any
                    // concat itself.
                    let mut hidden_rows: Vec<f32> = Vec::new();
                    let mut raw_rows: Vec<f32> = Vec::new();
                    for &i in &members {
                        let s = network_session(&mut batch[i]);
                        hidden_rows.extend_from_slice(s.hidden.row(0));
                        raw_rows.extend_from_slice(s.input.row(0));
                    }
                    let hcols = hidden_rows.len() / members.len();
                    let gathered = Matrix::from_vec(members.len(), hcols, hidden_rows);
                    let raw = Matrix::from_vec(members.len(), self.network.input_dim(), raw_rows);
                    plan.execute(&self.network, &gathered, &raw)
                }
                None => {
                    if members.len() == 1 {
                        let i = members[0];
                        reports[i] = batch[i].next_stage();
                        continue;
                    }
                    // Fallback: gather every member's stage input as one
                    // row of a fused matrix. The blocked kernels
                    // accumulate each output row in a fixed k-order
                    // independent of the row count, so row `r` of the
                    // fused forward is bitwise-identical to the member
                    // running its stage alone.
                    let mut rows: Vec<f32> = Vec::new();
                    for &i in &members {
                        let s = network_session(&mut batch[i]);
                        rows.extend_from_slice(s.hidden.row(0));
                        if stage > 0 && self.network.input_skip() {
                            rows.extend_from_slice(s.input.row(0));
                        }
                    }
                    let cols = rows.len() / members.len();
                    let stage_in = Matrix::from_vec(members.len(), cols, rows);
                    let hidden = self.network.stages()[stage].infer(&stage_in);
                    let logits = self.network.heads()[stage].infer(&hidden);
                    (hidden, logits)
                }
            };
            for (r, &i) in members.iter().enumerate() {
                let s = network_session(&mut batch[i]);
                s.hidden = Matrix::row_vector(hidden.row(r));
                s.done += 1;
                let probs = softmax(logits.row(r));
                let predicted = argmax(&probs);
                reports[i] = Some(StageReport {
                    predicted,
                    confidence: probs[predicted],
                });
            }
        }
        reports
    }

    fn plan_cache_stats(&self) -> Option<eugene_serve::PlanCacheStats> {
        let s = self.network.plan_cache().stats();
        Some(eugene_serve::PlanCacheStats {
            hits: s.hits,
            misses: s.misses,
            invalidations: s.invalidations,
            entries: s.entries,
            generation: s.generation,
        })
    }
}

/// Recovers the concrete session after the grouping pass has already
/// downcast-checked it.
fn network_session(session: &mut Box<dyn EngineSession>) -> &mut NetworkSession {
    session
        .as_any_mut()
        .downcast_mut::<NetworkSession>()
        .expect("grouped sessions were downcast-checked")
}

/// One in-flight inference over an owned network reference; stages execute
/// lazily, exactly one per [`EngineSession::next_stage`] call.
#[derive(Debug)]
struct NetworkSession {
    network: Arc<StagedNetwork>,
    input: Matrix,
    hidden: Matrix,
    done: usize,
    valid: bool,
}

impl EngineSession for NetworkSession {
    fn next_stage(&mut self) -> Option<StageReport> {
        if !self.valid || self.done >= self.network.num_stages() {
            return None;
        }
        use eugene_nn::Layer;
        // Mirror the trunk's shortcut wiring: stages after the first see
        // [previous output | raw input] when the network uses input skips.
        let stage_in = if self.done > 0 && self.network.input_skip() {
            self.hidden.hconcat(&self.input)
        } else {
            self.hidden.clone()
        };
        self.hidden = self.network.stages()[self.done].infer(&stage_in);
        let logits = self.network.heads()[self.done].infer(&self.hidden);
        let probs = softmax(logits.row(0));
        let predicted = argmax(&probs);
        self.done += 1;
        Some(StageReport {
            predicted,
            confidence: probs[predicted],
        })
    }

    fn stages_done(&self) -> usize {
        self.done
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eugene_nn::StagedNetworkConfig;
    use eugene_tensor::seeded_rng;

    fn engine() -> StagedNetworkEngine {
        let config = StagedNetworkConfig {
            input_dim: 4,
            num_classes: 3,
            stage_widths: vec![vec![6], vec![6], vec![5]],
            dropout: 0.0,
            input_skip: false,
        };
        StagedNetworkEngine::new(Arc::new(StagedNetwork::new(&config, &mut seeded_rng(1))))
    }

    #[test]
    fn session_matches_direct_classification() {
        let engine = engine();
        let sample = [0.3, -0.1, 0.7, 0.2];
        let direct = engine.network().classify(&sample);
        let mut session = engine.begin(&sample);
        for expected in direct {
            let got = session.next_stage().unwrap();
            assert_eq!(got.predicted, expected.predicted);
            assert!((got.confidence - expected.confidence).abs() < 1e-6);
        }
        assert!(session.next_stage().is_none());
    }

    #[test]
    fn sessions_are_independent() {
        let engine = engine();
        let mut a = engine.begin(&[1.0, 0.0, 0.0, 0.0]);
        let mut b = engine.begin(&[0.0, 0.0, 0.0, 1.0]);
        let ra = a.next_stage().unwrap();
        let rb = b.next_stage().unwrap();
        // Different inputs, same network: reports may differ, but sessions
        // must not interfere with each other's progress.
        assert_eq!(a.stages_done(), 1);
        assert_eq!(b.stages_done(), 1);
        let _ = (ra, rb);
    }

    #[test]
    fn engine_reports_stage_count() {
        assert_eq!(engine().num_stages(), 3);
    }

    #[test]
    fn wrong_width_payload_yields_an_empty_session() {
        // Network clients control the payload; a mismatched width must not
        // panic a worker — it produces a session that executes no stages.
        let engine = engine();
        for payload in [&[][..], &[0.1][..], &[0.0; 9][..]] {
            let mut session = engine.begin(payload);
            assert!(session.next_stage().is_none());
            assert_eq!(session.stages_done(), 0);
        }
    }

    #[test]
    fn fused_batch_is_bitwise_identical_to_solo_sessions() {
        // The serving runtime scatters row `i` of a fused forward back to
        // request `i` as if it had run alone — which is only sound if the
        // kernels make batched rows bitwise-equal to solo rows. Exercise
        // the input-skip wiring too: it is the trickiest gather path.
        let config = StagedNetworkConfig {
            input_dim: 5,
            num_classes: 4,
            stage_widths: vec![vec![7], vec![6], vec![8]],
            dropout: 0.0,
            input_skip: true,
        };
        let engine =
            StagedNetworkEngine::new(Arc::new(StagedNetwork::new(&config, &mut seeded_rng(11))));
        let payloads: Vec<Vec<f32>> = (0..4)
            .map(|i| (0..5).map(|c| (i * 5 + c) as f32 * 0.13 - 1.0).collect())
            .collect();

        let solo: Vec<Vec<StageReport>> = payloads
            .iter()
            .map(|p| {
                let mut session = engine.begin(p);
                std::iter::from_fn(|| session.next_stage()).collect()
            })
            .collect();

        let mut batch: Vec<Box<dyn EngineSession>> =
            payloads.iter().map(|p| engine.begin(p)).collect();
        // The loop variable drives repeated fused calls, not iteration
        // over `solo`.
        #[allow(clippy::needless_range_loop)]
        for stage in 0..engine.num_stages() {
            let reports = engine.next_stage_batch(&mut batch);
            assert_eq!(reports.len(), batch.len());
            for (i, report) in reports.iter().enumerate() {
                let got = report.expect("stage report for every live session");
                let want = solo[i][stage];
                assert_eq!(got.predicted, want.predicted);
                assert_eq!(
                    got.confidence.to_bits(),
                    want.confidence.to_bits(),
                    "stage {stage}, session {i}: fused confidence must be \
                     bitwise-identical to the solo run"
                );
            }
        }
        assert!(engine
            .next_stage_batch(&mut batch)
            .iter()
            .all(Option::is_none));
    }

    #[test]
    fn mixed_batch_isolates_unfusable_sessions() {
        let engine = engine();
        let sample = [0.3, -0.1, 0.7, 0.2];
        let solo_first = {
            let mut s = engine.begin(&sample);
            s.next_stage().unwrap()
        };

        // An invalid-width session, an exhausted session, and two live ones.
        let mut exhausted = engine.begin(&sample);
        while exhausted.next_stage().is_some() {}
        let mut batch: Vec<Box<dyn EngineSession>> = vec![
            engine.begin(&[1.0]),
            exhausted,
            engine.begin(&sample),
            engine.begin(&sample),
        ];
        let reports = engine.next_stage_batch(&mut batch);
        assert!(reports[0].is_none(), "invalid payload never reports");
        assert!(reports[1].is_none(), "finished session never reports");
        for i in [2, 3] {
            let got = reports[i].expect("live sessions still progress");
            assert_eq!(got.predicted, solo_first.predicted);
            assert_eq!(got.confidence.to_bits(), solo_first.confidence.to_bits());
            assert_eq!(batch[i].stages_done(), 1);
        }
    }

    #[test]
    fn batch_members_at_different_stages_still_match_solo_runs() {
        // The runtime's per-stage buckets make mixed-stage batches
        // unlikely, but the engine must stay correct if handed one.
        let engine = engine();
        let ahead_payload = [0.9, 0.1, -0.4, 0.6];
        let behind_payload = [0.2, 0.8, 0.5, -0.3];
        let mut ahead = engine.begin(&ahead_payload);
        ahead.next_stage();
        let mut batch: Vec<Box<dyn EngineSession>> = vec![ahead, engine.begin(&behind_payload)];
        let reports = engine.next_stage_batch(&mut batch);

        let mut solo_ahead = engine.begin(&ahead_payload);
        solo_ahead.next_stage();
        let want_ahead = solo_ahead.next_stage().unwrap();
        let want_behind = engine.begin(&behind_payload).next_stage().unwrap();
        assert_eq!(
            reports[0].unwrap().confidence.to_bits(),
            want_ahead.confidence.to_bits()
        );
        assert_eq!(
            reports[1].unwrap().confidence.to_bits(),
            want_behind.confidence.to_bits()
        );
        assert_eq!(batch[0].stages_done(), 2);
        assert_eq!(batch[1].stages_done(), 1);
    }

    #[test]
    fn session_matches_classification_with_input_skip() {
        // Regression test: the session must mirror the trunk's shortcut
        // wiring, or stage 2's matmul sees the wrong width.
        let config = StagedNetworkConfig {
            input_dim: 5,
            num_classes: 3,
            stage_widths: vec![vec![4], vec![6], vec![6]],
            dropout: 0.0,
            input_skip: true,
        };
        let engine =
            StagedNetworkEngine::new(Arc::new(StagedNetwork::new(&config, &mut seeded_rng(7))));
        let sample = [0.2, -0.4, 0.6, 0.1, 0.9];
        let direct = engine.network().classify(&sample);
        let mut session = engine.begin(&sample);
        for expected in direct {
            let got = session.next_stage().unwrap();
            assert_eq!(got.predicted, expected.predicted);
            assert!((got.confidence - expected.confidence).abs() < 1e-6);
        }
    }
}
