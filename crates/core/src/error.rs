use std::error::Error;
use std::fmt;

/// Errors surfaced by the [`crate::Eugene`] façade.
#[derive(Debug, Clone, PartialEq)]
pub enum EugeneError {
    /// A model id that was never issued (or whose model was removed).
    UnknownModel {
        /// The offending id.
        id: u64,
    },
    /// A request carried data incompatible with the target model.
    DimensionMismatch {
        /// What the model expects.
        expected: usize,
        /// What the request supplied.
        actual: usize,
    },
    /// A request needed a non-empty dataset.
    EmptyDataset,
    /// Fitting the confidence-curve regressors failed.
    ConfidenceFit(eugene_gp::GpError),
    /// An imported model snapshot was structurally invalid.
    MalformedSnapshot {
        /// What was wrong.
        reason: String,
    },
    /// The network gateway could not be started (e.g. the bind address
    /// was unavailable).
    Network {
        /// The underlying I/O failure.
        reason: String,
    },
}

impl fmt::Display for EugeneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EugeneError::UnknownModel { id } => write!(f, "unknown model id {id}"),
            EugeneError::DimensionMismatch { expected, actual } => {
                write!(f, "input has dimension {actual}, model expects {expected}")
            }
            EugeneError::EmptyDataset => write!(f, "request requires a non-empty dataset"),
            EugeneError::ConfidenceFit(e) => write!(f, "confidence-curve fit failed: {e}"),
            EugeneError::MalformedSnapshot { reason } => {
                write!(f, "malformed model snapshot: {reason}")
            }
            EugeneError::Network { reason } => {
                write!(f, "gateway network failure: {reason}")
            }
        }
    }
}

impl Error for EugeneError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EugeneError::ConfidenceFit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<eugene_gp::GpError> for EugeneError {
    fn from(e: eugene_gp::GpError) -> Self {
        EugeneError::ConfidenceFit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(EugeneError::UnknownModel { id: 3 }
            .to_string()
            .contains('3'));
        let mismatch = EugeneError::DimensionMismatch {
            expected: 32,
            actual: 16,
        };
        assert!(mismatch.to_string().contains("32"));
        assert!(mismatch.to_string().contains("16"));
    }

    #[test]
    fn gp_errors_convert_and_chain() {
        let err: EugeneError = eugene_gp::GpError::InvalidTrainingSet { xs: 0, ys: 0 }.into();
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EugeneError>();
    }
}
