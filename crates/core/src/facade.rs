use crate::{EugeneError, StagedNetworkEngine};
use eugene_calibrate::{
    CalibrationOutcome, EntropyCalibrator, MeanVarianceConfig, MeanVarianceEstimator,
};
use eugene_compress::{prune_nodes, CachedModel, CachedModelConfig};
use eugene_data::Dataset;
use eugene_label::{LabelingOutcome, SemiSupervisedLabeler};
use eugene_net::{Gateway, GatewayConfig, ReplicaConfig, ShardConfig, ShardRouter};
use eugene_nn::{
    evaluate_staged, NetworkSnapshot, Precision, StageEval, StageOutput, StagedNetwork,
    StagedNetworkConfig, TrainConfig, Trainer,
};
use eugene_partition::{EarlyExitProfile, LinkModel, PartitionPlan, PartitionPlanner, StageCost};
use eugene_profiler::{ConvSpec, DeviceModel};
use eugene_sched::{
    DcPredictor, DeadlineAware, Fifo, PwlCurvePredictor, RoundRobin, RtDeepIot, Scheduler,
};
use eugene_serve::{
    ModelRegistry, OverloadPolicy, RuntimeConfig, ServingRuntime, StageCostModel, VariantDispatcher,
};
use eugene_tensor::{seeded_rng, Matrix};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Handle to a model held by the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelId(u64);

/// Metadata about a registered model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelInfo {
    /// The handle.
    pub id: ModelId,
    /// Number of stages.
    pub num_stages: usize,
    /// Input dimensionality.
    pub input_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Trainable parameter count.
    pub param_count: usize,
}

/// A training request for [`Eugene::train`].
#[derive(Debug, Clone)]
pub struct TrainRequest<'a> {
    /// Client-supplied labeled data.
    pub data: &'a Dataset,
    /// Network architecture; `None` uses the standard three-stage layout.
    pub architecture: Option<StagedNetworkConfig>,
    /// Trainer hyper-parameters.
    pub train: TrainConfig,
}

impl<'a> TrainRequest<'a> {
    /// A short training run with default architecture — handy for
    /// examples and tests.
    pub fn quick(data: &'a Dataset) -> Self {
        Self {
            data,
            architecture: None,
            train: TrainConfig {
                epochs: 10,
                ..TrainConfig::default()
            },
        }
    }

    /// A full-length training run with default architecture.
    pub fn standard(data: &'a Dataset) -> Self {
        Self {
            data,
            architecture: None,
            train: TrainConfig::default(),
        }
    }
}

/// Scheduling policy selection for [`Eugene::serve`].
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerKind {
    /// The utility-maximizing RTDeepIoT scheduler with lookahead `k`,
    /// driven by GP-fit piecewise-linear confidence curves learned from
    /// the given training data.
    RtDeepIot {
        /// Lookahead parameter `k`.
        lookahead: usize,
    },
    /// The constant-slope ablation.
    DynamicConstant {
        /// Lookahead parameter `k`.
        lookahead: usize,
    },
    /// RTDeepIoT wrapped in the deadline-aware adapter (paper SV):
    /// near-deadline tasks preempt pure utility maximization.
    DeadlineAwareRtDeepIot {
        /// Lookahead parameter `k`.
        lookahead: usize,
        /// Criticality slack in scheduling quanta.
        slack: u64,
    },
    /// Stage-level round robin.
    RoundRobin,
    /// First-come-first-served run-to-completion.
    Fifo,
}

/// Options for [`Eugene::serve`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Scheduling policy.
    pub scheduler: SchedulerKind,
    /// Worker threads.
    pub num_workers: usize,
    /// Early-exit confidence threshold (`1.0` disables).
    pub confidence_threshold: f32,
    /// Largest fused stage batch (`1` disables micro-batching).
    pub max_batch: usize,
    /// How long same-stage requests may gather before a partial batch
    /// dispatches anyway (ignored when `max_batch == 1`).
    pub gather_window: std::time::Duration,
    /// What the runtime does with requests it cannot finish in time:
    /// [`OverloadPolicy::Kill`] expires them empty-handed,
    /// [`OverloadPolicy::Degrade`] force-exits them at the deepest
    /// completed stage (anytime degradation).
    pub overload: OverloadPolicy,
    /// Parked-queue depth above which [`OverloadPolicy::Degrade`] starts
    /// shedding the lowest utility-density requests early.
    pub queue_high_water: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        let runtime = RuntimeConfig::default();
        Self {
            scheduler: SchedulerKind::RtDeepIot { lookahead: 1 },
            num_workers: 4,
            confidence_threshold: 1.0,
            max_batch: runtime.max_batch,
            gather_window: runtime.gather_window,
            overload: runtime.overload,
            queue_high_water: runtime.queue_high_water,
        }
    }
}

/// One named model behind a [`Eugene::serve_multi`] deployment.
#[derive(Debug, Clone)]
pub struct ModelVariant {
    /// Registry name clients address requests to
    /// ([`eugene_net::SubmitOptions::model`]).
    pub name: String,
    /// The registered model served under that name.
    pub model: ModelId,
    /// Per-variant runtime budgets: workers, batching, exit threshold.
    pub options: ServeOptions,
}

/// Data-aware routing policy for [`Eugene::serve_multi`]: submissions
/// that name no model are dispatched per payload between a cheap
/// early-exit variant and the full model.
#[derive(Debug, Clone)]
pub struct DispatchPolicy<'a> {
    /// Variant served when the input is predicted easy — typically a
    /// reduced model with early exit enabled.
    pub easy: &'a str,
    /// Variant served otherwise — typically the full model.
    pub hard: &'a str,
    /// Stage-1 confidence the easy variant must be predicted to reach
    /// for the cheap route to be trusted with the input.
    pub threshold: f32,
    /// Risk aversion, in predicted standard deviations of confidence the
    /// router holds in reserve. The effective margin is scaled down by
    /// the variants' cost ratio under the device model: the cheaper the
    /// easy variant, the less head-room the router demands.
    pub caution: f32,
    /// Calibration data the confidence estimator is fitted on.
    pub data: &'a Dataset,
}

/// The deep-intelligence-as-a-service façade; see the crate docs for the
/// service-to-method map.
pub struct Eugene {
    models: HashMap<u64, Arc<StagedNetwork>>,
    next_id: u64,
    rng: StdRng,
    device: DeviceModel,
}

impl Eugene {
    /// Creates a service instance seeded for reproducibility.
    pub fn new(seed: u64) -> Self {
        Self {
            models: HashMap::new(),
            next_id: 0,
            rng: seeded_rng(seed),
            device: DeviceModel::nexus5_class(),
        }
    }

    /// Number of registered models.
    pub fn model_count(&self) -> usize {
        self.models.len()
    }

    fn network(&self, id: ModelId) -> Result<&Arc<StagedNetwork>, EugeneError> {
        self.models
            .get(&id.0)
            .ok_or(EugeneError::UnknownModel { id: id.0 })
    }

    fn register(&mut self, network: StagedNetwork) -> ModelId {
        let id = self.next_id;
        self.next_id += 1;
        self.models.insert(id, Arc::new(network));
        ModelId(id)
    }

    /// §II-A *training*: fits a staged network on client data and
    /// registers it.
    ///
    /// # Errors
    ///
    /// Returns [`EugeneError::EmptyDataset`] if the dataset is empty.
    pub fn train(&mut self, request: TrainRequest<'_>) -> Result<ModelId, EugeneError> {
        if request.data.is_empty() {
            return Err(EugeneError::EmptyDataset);
        }
        let architecture = request.architecture.unwrap_or_else(|| {
            StagedNetworkConfig::three_stage(request.data.dim(), request.data.num_classes())
        });
        let mut network = StagedNetwork::new(&architecture, &mut self.rng);
        Trainer::new(request.train).fit(&mut network, request.data, &mut self.rng);
        Ok(self.register(network))
    }

    /// Registers an externally built network (e.g. a pruned model coming
    /// back from fine-tuning).
    pub fn register_model(&mut self, network: StagedNetwork) -> ModelId {
        self.register(network)
    }

    /// §II-B model shipping: exports a model as a serializable snapshot —
    /// what the server "downloads ... to the device" when caching.
    ///
    /// # Errors
    ///
    /// Returns [`EugeneError::UnknownModel`] for an unissued id.
    pub fn export_model(&self, id: ModelId) -> Result<NetworkSnapshot, EugeneError> {
        Ok(self.network(id)?.to_snapshot())
    }

    /// Imports a snapshot (e.g. received from a peer server) and registers
    /// the restored model.
    ///
    /// # Errors
    ///
    /// Returns [`EugeneError::MalformedSnapshot`] if the snapshot is
    /// structurally invalid.
    pub fn import_model(&mut self, snapshot: &NetworkSnapshot) -> Result<ModelId, EugeneError> {
        let network =
            StagedNetwork::from_snapshot(snapshot).map_err(|e| EugeneError::MalformedSnapshot {
                reason: e.to_string(),
            })?;
        Ok(self.register(network))
    }

    /// Metadata for a registered model.
    ///
    /// # Errors
    ///
    /// Returns [`EugeneError::UnknownModel`] for an unissued id.
    pub fn model_info(&self, id: ModelId) -> Result<ModelInfo, EugeneError> {
        let network = self.network(id)?;
        Ok(ModelInfo {
            id,
            num_stages: network.num_stages(),
            input_dim: network.input_dim(),
            num_classes: network.num_classes(),
            param_count: network.param_count(),
        })
    }

    /// §II-A *labeling*: proposes labels for `unlabeled` from a small
    /// labeled seed set.
    ///
    /// # Errors
    ///
    /// Returns [`EugeneError::EmptyDataset`] if the seed set is empty, or
    /// [`EugeneError::DimensionMismatch`] if dimensionalities differ.
    pub fn label(
        &mut self,
        labeled: &Dataset,
        unlabeled: &Matrix,
    ) -> Result<LabelingOutcome, EugeneError> {
        if labeled.is_empty() {
            return Err(EugeneError::EmptyDataset);
        }
        if labeled.dim() != unlabeled.cols() {
            return Err(EugeneError::DimensionMismatch {
                expected: labeled.dim(),
                actual: unlabeled.cols(),
            });
        }
        Ok(SemiSupervisedLabeler::default().label(labeled, unlabeled, &mut self.rng))
    }

    /// §III-A *result quality*: entropy-calibrates a model in place
    /// against a calibration split.
    ///
    /// # Errors
    ///
    /// Returns [`EugeneError::UnknownModel`] or
    /// [`EugeneError::EmptyDataset`].
    pub fn calibrate(
        &mut self,
        id: ModelId,
        calibration: &Dataset,
    ) -> Result<CalibrationOutcome, EugeneError> {
        if calibration.is_empty() {
            return Err(EugeneError::EmptyDataset);
        }
        let network = self.network(id)?;
        let mut copy = (**network).clone();
        let outcome = EntropyCalibrator::default().calibrate(&mut copy, calibration, &mut self.rng);
        self.models.insert(
            match id {
                ModelId(raw) => raw,
            },
            Arc::new(copy),
        );
        Ok(outcome)
    }

    /// §II-B *model reduction*: node-prunes a model, fine-tunes the
    /// reduction on `data`, and registers the smaller model.
    ///
    /// # Errors
    ///
    /// Returns [`EugeneError::UnknownModel`] or
    /// [`EugeneError::EmptyDataset`].
    pub fn reduce(
        &mut self,
        id: ModelId,
        keep_fraction: f64,
        data: &Dataset,
    ) -> Result<ModelId, EugeneError> {
        if data.is_empty() {
            return Err(EugeneError::EmptyDataset);
        }
        let network = self.network(id)?;
        let mut pruned = prune_nodes(network, keep_fraction);
        Trainer::new(TrainConfig {
            epochs: 8,
            learning_rate: 5e-4,
            ..TrainConfig::default()
        })
        .fit(&mut pruned, data, &mut self.rng);
        Ok(self.register(pruned))
    }

    /// Switches the listed trunk stages of a registered model to
    /// quantized (i8) serving; stages not listed revert to f32. The
    /// usual deployment quantizes the *early* stages — they run for
    /// every request, so that is where the i8 kernel tier's per-core
    /// speedup buys the most throughput — while late stages and all
    /// exit heads keep f32 accuracy. Returns the resulting per-stage
    /// precisions.
    ///
    /// Runtimes already serving this model are unaffected (they hold
    /// their own snapshot); runtimes started afterwards — including
    /// [`Eugene::serve_multi`] variants — serve the quantized stages
    /// and track their latencies in per-precision cost-model lanes.
    ///
    /// # Errors
    ///
    /// Returns [`EugeneError::UnknownModel`] for an unissued id.
    pub fn quantize_model(
        &mut self,
        id: ModelId,
        stages: &[usize],
    ) -> Result<Vec<Precision>, EugeneError> {
        let arc = self
            .models
            .get_mut(&id.0)
            .ok_or(EugeneError::UnknownModel { id: id.0 })?;
        let network = Arc::make_mut(arc);
        network.quantize_stages(stages);
        Ok(network.stage_precisions())
    }

    /// §II-B *caching*: trains a reduced frequent-classes-plus-other model
    /// for on-device deployment.
    ///
    /// # Errors
    ///
    /// Returns [`EugeneError::EmptyDataset`] if `data` is empty.
    ///
    /// # Panics
    ///
    /// Panics if `frequent_classes` is empty or invalid (see
    /// [`CachedModel::build`]).
    pub fn build_cached_model(
        &mut self,
        data: &Dataset,
        frequent_classes: &[usize],
        config: &CachedModelConfig,
    ) -> Result<CachedModel, EugeneError> {
        if data.is_empty() {
            return Err(EugeneError::EmptyDataset);
        }
        Ok(CachedModel::build(
            data,
            frequent_classes,
            config,
            &mut self.rng,
        ))
    }

    /// §II-C *execution profiling*: predicted latency of a layer on the
    /// service's device model.
    pub fn profile_layer(&self, spec: &ConvSpec) -> f64 {
        self.device.latency_ms(spec)
    }

    /// §II-D *result quality for estimation tasks*: trains a regression
    /// model that returns a `(mean, standard deviation)` distribution
    /// estimate per input (the RDeepSense-style service).
    ///
    /// # Errors
    ///
    /// Returns [`EugeneError::EmptyDataset`] if `inputs` is empty.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != inputs.rows()`.
    pub fn train_estimator(
        &mut self,
        inputs: &Matrix,
        targets: &[f32],
        config: &MeanVarianceConfig,
    ) -> Result<MeanVarianceEstimator, EugeneError> {
        if inputs.rows() == 0 {
            return Err(EugeneError::EmptyDataset);
        }
        Ok(MeanVarianceEstimator::fit(
            inputs,
            targets,
            0.2,
            config,
            &mut self.rng,
        ))
    }

    /// §IV-A *distributing the inference model*: plans the client/server
    /// split of a model under the given link, exploiting the early-exit
    /// probabilities measured on `data` at `exit_threshold`.
    ///
    /// `device_ns_per_param` / `server_ns_per_param` price one parameter's
    /// multiply-accumulate on each side (e.g. `5.0` for an embedded CPU,
    /// `0.2` for a server-class accelerator).
    ///
    /// # Errors
    ///
    /// Returns facade errors for bad ids/data.
    ///
    /// # Panics
    ///
    /// Panics if either speed is not positive.
    pub fn plan_partition(
        &self,
        id: ModelId,
        data: &Dataset,
        exit_threshold: f32,
        link: &LinkModel,
        device_ns_per_param: f64,
        server_ns_per_param: f64,
    ) -> Result<PartitionPlan, EugeneError> {
        assert!(
            device_ns_per_param > 0.0 && server_ns_per_param > 0.0,
            "per-parameter speeds must be positive"
        );
        if data.is_empty() {
            return Err(EugeneError::EmptyDataset);
        }
        let network = self.network(id)?;
        let stages: Vec<StageCost> = network
            .stages()
            .iter()
            .enumerate()
            .map(|(s, stage)| {
                use eugene_nn::Layer;
                let params = (stage.param_count() + network.heads()[s].param_count()) as f64;
                StageCost {
                    device_ms: params * device_ns_per_param / 1e6,
                    server_ms: params * server_ns_per_param / 1e6,
                    boundary_bytes: network.stage_output_dim(s) as u64 * 4,
                }
            })
            .collect();
        let planner =
            PartitionPlanner::new(stages, network.input_dim() as u64 * 4).expect("stages exist");
        let evals = self.evaluate(id, data)?;
        let curves: Vec<Vec<f32>> = (0..data.len())
            .map(|i| evals.iter().map(|e| e.confidences[i]).collect())
            .collect();
        let exits = EarlyExitProfile::from_confidence_curves(&curves, exit_threshold)
            .expect("non-empty curves");
        Ok(planner.plan(link, &exits))
    }

    /// Classifies one sample through every stage of a model.
    ///
    /// # Errors
    ///
    /// Returns [`EugeneError::UnknownModel`] or
    /// [`EugeneError::DimensionMismatch`].
    pub fn classify(&self, id: ModelId, sample: &[f32]) -> Result<Vec<StageOutput>, EugeneError> {
        let network = self.network(id)?;
        if sample.len() != network.input_dim() {
            return Err(EugeneError::DimensionMismatch {
                expected: network.input_dim(),
                actual: sample.len(),
            });
        }
        Ok(network.classify(sample))
    }

    /// Evaluates a model's stage heads on a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`EugeneError::UnknownModel`] or
    /// [`EugeneError::DimensionMismatch`].
    pub fn evaluate(&self, id: ModelId, data: &Dataset) -> Result<Vec<StageEval>, EugeneError> {
        let network = self.network(id)?;
        if data.dim() != network.input_dim() {
            return Err(EugeneError::DimensionMismatch {
                expected: network.input_dim(),
                actual: data.dim(),
            });
        }
        Ok(evaluate_staged(network, data))
    }

    /// §III-B: fits the GP-then-piecewise-linear confidence-curve
    /// predictor from a model's behavior on training data.
    ///
    /// # Errors
    ///
    /// Returns façade errors for bad ids/data, or
    /// [`EugeneError::ConfidenceFit`] if the GP fit fails.
    pub fn fit_confidence_predictor(
        &self,
        id: ModelId,
        data: &Dataset,
    ) -> Result<PwlCurvePredictor, EugeneError> {
        if data.is_empty() {
            return Err(EugeneError::EmptyDataset);
        }
        let evals = self.evaluate(id, data)?;
        let n = data.len();
        let curves: Vec<Vec<f32>> = (0..n)
            .map(|i| evals.iter().map(|e| e.confidences[i]).collect())
            .collect();
        Ok(PwlCurvePredictor::fit(&curves, 10)?)
    }

    /// §III-C *run-time inference*: starts a serving runtime over a
    /// model. `predictor_data` trains the confidence-curve models for the
    /// utility-maximizing schedulers (ignored by RR/FIFO).
    ///
    /// # Errors
    ///
    /// Returns façade errors for bad ids/data.
    pub fn serve(
        &self,
        id: ModelId,
        options: &ServeOptions,
        predictor_data: Option<&Dataset>,
    ) -> Result<ServingRuntime, EugeneError> {
        let network = self.network(id)?;
        let baseline = 1.0 / network.num_classes() as f32;
        let scheduler: Box<dyn Scheduler> = match &options.scheduler {
            SchedulerKind::RtDeepIot { lookahead } => {
                let data = predictor_data.ok_or(EugeneError::EmptyDataset)?;
                let predictor = self.fit_confidence_predictor(id, data)?;
                Box::new(RtDeepIot::new(predictor, *lookahead, baseline))
            }
            SchedulerKind::DynamicConstant { lookahead } => {
                let data = predictor_data.ok_or(EugeneError::EmptyDataset)?;
                let evals = self.evaluate(id, data)?;
                let priors: Vec<f32> = evals.iter().map(StageEval::mean_confidence).collect();
                Box::new(
                    RtDeepIot::new(DcPredictor::new(priors), *lookahead, baseline)
                        .with_name(format!("RTDeepIoT-DC-{lookahead}")),
                )
            }
            SchedulerKind::DeadlineAwareRtDeepIot { lookahead, slack } => {
                let data = predictor_data.ok_or(EugeneError::EmptyDataset)?;
                let predictor = self.fit_confidence_predictor(id, data)?;
                Box::new(DeadlineAware::new(
                    RtDeepIot::new(predictor, *lookahead, baseline),
                    *slack,
                ))
            }
            SchedulerKind::RoundRobin => Box::new(RoundRobin::new()),
            SchedulerKind::Fifo => Box::new(Fifo::new()),
        };
        let engine = Arc::new(StagedNetworkEngine::new(Arc::clone(network)));
        // Cold-start Δtime priors for the utility-density scheduler: each
        // stage priced as its parameter count at the device model's mean
        // per-parameter rate (§II-C), refined online by measured EMAs.
        let ns = self.per_param_ns();
        let priors: Vec<f64> = (0..network.num_stages())
            .map(|s| {
                use eugene_nn::Layer;
                let params = network.stages()[s].param_count() + network.heads()[s].param_count();
                (params as f64 * ns / 1e6).max(1e-3)
            })
            .collect();
        Ok(ServingRuntime::start_with_cost_model(
            engine,
            scheduler,
            RuntimeConfig {
                num_workers: options.num_workers,
                confidence_threshold: options.confidence_threshold,
                max_batch: options.max_batch,
                gather_window: options.gather_window,
                overload: options.overload,
                queue_high_water: options.queue_high_water,
                ..RuntimeConfig::default()
            },
            StageCostModel::from_priors(priors),
        ))
    }

    /// *Deep intelligence as a service*, literally: starts a serving
    /// runtime (as [`Eugene::serve`]) and exposes it over TCP behind a
    /// [`Gateway`] with atomic admission control. Remote clients talk to
    /// it with the serial [`eugene_net::EugeneClient`] (one request in
    /// flight per connection) or the pipelining
    /// [`eugene_net::MultiplexClient`], which interleaves arbitrarily
    /// many tagged in-flight requests — with per-stage progress streams —
    /// over a single connection. [`GatewayConfig::backend`] picks the
    /// connection engine: `Blocking` runs one reader plus a fixed
    /// dispatcher pool per connection
    /// ([`GatewayConfig::dispatch_workers`]), `Readiness` serves every
    /// connection from a single event loop (epoll on Linux) and holds
    /// tens of thousands of idle connections. Either way no thread is
    /// ever spawned per request, and [`Gateway::status`] exposes
    /// admission/accept/thread gauges for monitoring.
    ///
    /// # Errors
    ///
    /// Returns façade errors for bad ids/data, or
    /// [`EugeneError::Network`] if the gateway cannot bind its address.
    pub fn serve_gateway(
        &self,
        id: ModelId,
        options: &ServeOptions,
        predictor_data: Option<&Dataset>,
        gateway: GatewayConfig,
    ) -> Result<Gateway, EugeneError> {
        let runtime = self.serve(id, options, predictor_data)?;
        Gateway::start(runtime, gateway).map_err(|e| EugeneError::Network {
            reason: e.to_string(),
        })
    }

    /// Horizontal scale-out of [`Eugene::serve_gateway`]: starts `shards`
    /// independent serving runtimes over the same model, one [`Gateway`]
    /// each, behind a [`ShardRouter`] that consistently hashes routing
    /// keys across them. Clients connect to
    /// [`ShardRouter::local_addr`] with the exact same wire protocol —
    /// nothing changes on the client side except (optionally) supplying a
    /// routing key for session affinity.
    ///
    /// `replica` sets the tier's replication posture: under the default
    /// [`eugene_net::FailoverPolicy::Replay`], a shard dying mid-flight
    /// transparently replays its in-flight requests to each key's warm
    /// standby (the ring successor) and clients see normal answers;
    /// under [`eugene_net::FailoverPolicy::Reject`], failures surface as
    /// the legacy [`eugene_net::RejectReason::ShardLost`] rejects while
    /// new sessions re-admit onto survivors. The router also supports
    /// live elasticity ([`ShardRouter::add_shard`] /
    /// [`ShardRouter::remove_shard`]) with a double-routing migration
    /// window governed by [`ReplicaConfig::migration_window`].
    ///
    /// # Errors
    ///
    /// Returns façade errors for bad ids/data, or
    /// [`EugeneError::Network`] if the router or a shard gateway cannot
    /// bind its address.
    pub fn serve_sharded(
        &self,
        id: ModelId,
        options: &ServeOptions,
        predictor_data: Option<&Dataset>,
        shards: usize,
        replica: ReplicaConfig,
        mut config: ShardConfig,
    ) -> Result<ShardRouter, EugeneError> {
        assert!(shards > 0, "serve_sharded needs at least one shard");
        config.replica = replica;
        let runtimes = (0..shards)
            .map(|_| self.serve(id, options, predictor_data))
            .collect::<Result<Vec<_>, _>>()?;
        ShardRouter::start(runtimes, config).map_err(|e| EugeneError::Network {
            reason: e.to_string(),
        })
    }

    /// Multi-model serving: starts one runtime per variant — each with
    /// its own scheduler, worker pool, and batching budget — behind a
    /// single [`Gateway`] fronting a [`ModelRegistry`]. Clients address a
    /// variant by name ([`eugene_net::SubmitOptions::model`]); models can
    /// be loaded and unloaded at runtime through [`Gateway::registry`],
    /// and per-tenant admission quotas come from
    /// [`GatewayConfig::tenant_quotas`].
    ///
    /// Anonymous submissions go to `default_model` — unless `dispatch` is
    /// given, in which case a data-aware dispatcher picks the variant per
    /// payload: a mean-variance estimator (the §II-D estimation service)
    /// is fitted to the easy variant's stage-1 confidence on
    /// `dispatch.data`, and a request takes the cheap route only when its
    /// predicted confidence clears [`DispatchPolicy::threshold`] with a
    /// margin of `caution / advantage` standard deviations, where
    /// `advantage` is the variants' cost ratio priced by the §II-C device
    /// model.
    ///
    /// # Errors
    ///
    /// Returns façade errors for bad ids/data, [`EugeneError::Network`]
    /// if the gateway cannot bind, or [`EugeneError::EmptyDataset`] if
    /// `dispatch.data` is empty.
    ///
    /// # Panics
    ///
    /// Panics if `variants` is empty or `default_model` /
    /// [`DispatchPolicy::easy`] / [`DispatchPolicy::hard`] name no
    /// variant.
    pub fn serve_multi(
        &mut self,
        variants: &[ModelVariant],
        default_model: &str,
        dispatch: Option<&DispatchPolicy<'_>>,
        predictor_data: Option<&Dataset>,
        gateway: GatewayConfig,
    ) -> Result<Gateway, EugeneError> {
        assert!(
            !variants.is_empty(),
            "serve_multi needs at least one variant"
        );
        assert!(
            variants.iter().any(|v| v.name == default_model),
            "default model {default_model:?} names no variant"
        );
        // Fit the dispatcher before spinning up any runtime so a bad
        // policy fails without leaving worker pools behind.
        let dispatcher = dispatch
            .map(|policy| self.fit_dispatcher(variants, policy))
            .transpose()?;
        let registry = ModelRegistry::new(default_model);
        for variant in variants {
            let runtime = self.serve(variant.model, &variant.options, predictor_data)?;
            registry.load(&variant.name, runtime);
        }
        if let Some(dispatcher) = dispatcher {
            registry.set_dispatcher(dispatcher);
        }
        Gateway::start_registry(registry.clone(), gateway).map_err(|e| {
            registry.shutdown();
            EugeneError::Network {
                reason: e.to_string(),
            }
        })
    }

    /// Builds the data-aware variant router for [`Eugene::serve_multi`].
    fn fit_dispatcher(
        &mut self,
        variants: &[ModelVariant],
        policy: &DispatchPolicy<'_>,
    ) -> Result<Arc<dyn VariantDispatcher>, EugeneError> {
        let find = |name: &str| -> ModelId {
            variants
                .iter()
                .find(|v| v.name == name)
                .unwrap_or_else(|| panic!("dispatch variant {name:?} names no variant"))
                .model
        };
        let (easy_id, hard_id) = (find(policy.easy), find(policy.hard));
        if policy.data.is_empty() {
            return Err(EugeneError::EmptyDataset);
        }
        // Target: the stage-1 confidence each calibration sample would
        // get from the cheap route.
        let stage1 = self.evaluate(easy_id, policy.data)?[0].confidences.clone();
        let estimator = MeanVarianceEstimator::fit(
            policy.data.features(),
            &stage1,
            0.2,
            &MeanVarianceConfig::default(),
            &mut self.rng,
        );
        // Price both variants on the device model; a bigger cost
        // advantage for the easy variant buys a thinner safety margin.
        let ns = self.per_param_ns();
        let easy_ms = self.network(easy_id)?.param_count() as f64 * ns / 1e6;
        let hard_ms = self.network(hard_id)?.param_count() as f64 * ns / 1e6;
        let advantage = (hard_ms / easy_ms.max(f64::MIN_POSITIVE)).max(1.0) as f32;
        let margin = policy.caution / advantage;
        let input_dim = self.network(easy_id)?.input_dim();
        let threshold = policy.threshold;
        let (easy, hard) = (policy.easy.to_owned(), policy.hard.to_owned());
        Ok(Arc::new(move |payload: &[f32]| {
            // Malformed payloads take the default/full route and fail
            // there exactly as they would in a single-model deployment.
            if payload.len() != input_dim {
                return hard.clone();
            }
            let (mean, sigma) = estimator.predict(payload);
            if mean - margin * sigma >= threshold {
                easy.clone()
            } else {
                hard.clone()
            }
        }))
    }

    /// Mean device-model cost of one multiply-accumulate in nanoseconds,
    /// read off the profiler's Table-1 reference layers — a
    /// per-parameter price for comparing dense variants on this device.
    fn per_param_ns(&self) -> f64 {
        let mut total_ms = 0.0;
        let mut total_macs = 0u64;
        for (_, spec) in ConvSpec::table1_rows() {
            total_ms += self.device.latency_ms(&spec);
            total_macs += spec.macs();
        }
        total_ms * 1e6 / total_macs.max(1) as f64
    }
}

impl std::fmt::Debug for Eugene {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Eugene({} models)", self.models.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eugene_data::{SyntheticImages, SyntheticImagesConfig};
    use eugene_serve::{InferenceRequest, ServiceClass};
    use std::time::Duration;

    fn dataset(seed: u64, n: usize) -> Dataset {
        datasets(seed, &[n]).pop().unwrap()
    }

    /// Draws several datasets from ONE generator so they share class
    /// prototypes (separate generators are separate problems).
    fn datasets(seed: u64, sizes: &[usize]) -> Vec<Dataset> {
        let mut rng = seeded_rng(seed);
        let gen = SyntheticImages::new(
            SyntheticImagesConfig {
                num_classes: 4,
                dim: 10,
                ..Default::default()
            },
            &mut rng,
        );
        sizes.iter().map(|&n| gen.generate(n, &mut rng).0).collect()
    }

    #[test]
    fn train_classify_evaluate_round_trip() {
        let data = dataset(1, 300);
        let mut eugene = Eugene::new(2);
        let id = eugene.train(TrainRequest::quick(&data)).unwrap();
        let info = eugene.model_info(id).unwrap();
        assert_eq!(info.num_stages, 3);
        assert_eq!(info.input_dim, 10);
        let outputs = eugene.classify(id, data.sample(0)).unwrap();
        assert_eq!(outputs.len(), 3);
        let evals = eugene.evaluate(id, &data).unwrap();
        assert!(evals[2].accuracy > 0.4);
    }

    #[test]
    fn unknown_model_and_dimension_errors() {
        let data = dataset(3, 50);
        let mut eugene = Eugene::new(4);
        assert!(matches!(
            eugene.classify(ModelId(99), &[0.0; 10]),
            Err(EugeneError::UnknownModel { .. })
        ));
        let id = eugene.train(TrainRequest::quick(&data)).unwrap();
        assert!(matches!(
            eugene.classify(id, &[0.0; 3]),
            Err(EugeneError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn reduce_shrinks_parameters() {
        let data = dataset(5, 300);
        let mut eugene = Eugene::new(6);
        let id = eugene.train(TrainRequest::quick(&data)).unwrap();
        let small = eugene.reduce(id, 0.5, &data).unwrap();
        let big_info = eugene.model_info(id).unwrap();
        let small_info = eugene.model_info(small).unwrap();
        assert!(small_info.param_count < big_info.param_count / 2);
        assert_eq!(eugene.model_count(), 2);
    }

    #[test]
    fn calibrate_does_not_increase_ece() {
        let mut parts = datasets(7, &[300, 300]).into_iter();
        let (data, calib) = (parts.next().unwrap(), parts.next().unwrap());
        let mut eugene = Eugene::new(9);
        let id = eugene
            .train(TrainRequest {
                data: &data,
                architecture: None,
                train: TrainConfig {
                    epochs: 60,
                    ..TrainConfig::default()
                },
            })
            .unwrap();
        let outcome = eugene.calibrate(id, &calib).unwrap();
        assert!(outcome.ece_after <= outcome.ece_before + 1e-9);
    }

    #[test]
    fn confidence_predictor_fits() {
        let data = dataset(10, 200);
        let mut eugene = Eugene::new(11);
        let id = eugene.train(TrainRequest::quick(&data)).unwrap();
        let predictor = eugene.fit_confidence_predictor(id, &data).unwrap();
        use eugene_sched::ConfidencePredictor;
        let p = predictor.predict(&[0.5], 2);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn serve_round_trip_with_rtdeepiot() {
        let data = dataset(12, 300);
        let mut eugene = Eugene::new(13);
        let id = eugene.train(TrainRequest::quick(&data)).unwrap();
        let runtime = eugene
            .serve(id, &ServeOptions::default(), Some(&data))
            .unwrap();
        let class = ServiceClass::new("test", Duration::from_secs(10));
        let (_, rx) = runtime.submit(InferenceRequest::new(data.sample(0).to_vec(), class));
        let response = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(response.stages_executed, 3);
        assert!(response.is_answered());
        runtime.shutdown();
    }

    #[test]
    fn serve_with_micro_batching_answers_every_request_exactly() {
        let data = dataset(27, 300);
        let mut eugene = Eugene::new(28);
        let id = eugene.train(TrainRequest::quick(&data)).unwrap();
        let runtime = eugene
            .serve(
                id,
                &ServeOptions {
                    scheduler: SchedulerKind::Fifo,
                    num_workers: 1,
                    max_batch: 4,
                    gather_window: Duration::from_millis(2),
                    ..ServeOptions::default()
                },
                None,
            )
            .unwrap();
        let class = ServiceClass::new("test", Duration::from_secs(10));
        let receivers: Vec<_> = (0..6)
            .map(|i| {
                runtime
                    .submit(InferenceRequest::new(
                        data.sample(i).to_vec(),
                        class.clone(),
                    ))
                    .1
            })
            .collect();
        for (i, rx) in receivers.into_iter().enumerate() {
            let response = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            assert_eq!(response.stages_executed, 3);
            // Batched serving must scatter each request its own answer —
            // identical to the solo classification of that sample.
            let direct = eugene.classify(id, data.sample(i)).unwrap();
            assert_eq!(response.predicted, Some(direct[2].predicted));
        }
        let stats = runtime.stats();
        assert!(
            stats.fused_batches() + stats.singleton_dispatches() > 0,
            "micro-batching path was exercised"
        );
        runtime.shutdown();
    }

    #[test]
    fn serve_gateway_round_trip_over_loopback() {
        let data = dataset(25, 300);
        let mut eugene = Eugene::new(26);
        let id = eugene.train(TrainRequest::quick(&data)).unwrap();
        let gateway = eugene
            .serve_gateway(
                id,
                &ServeOptions {
                    scheduler: SchedulerKind::Fifo,
                    ..ServeOptions::default()
                },
                None,
                eugene_net::GatewayConfig::default(),
            )
            .unwrap();
        let mut client = eugene_net::EugeneClient::new(
            gateway.local_addr(),
            eugene_net::ClientConfig::default(),
        )
        .unwrap();
        let outcome = client
            .infer("test", data.sample(0), Duration::from_secs(30))
            .unwrap();
        assert_eq!(outcome.stages_executed, 3);
        assert!(outcome.predicted.is_some());
        gateway.shutdown();
    }

    #[test]
    fn serve_sharded_round_trips_and_spreads_keys() {
        let data = dataset(31, 300);
        let mut eugene = Eugene::new(32);
        let id = eugene.train(TrainRequest::quick(&data)).unwrap();
        let router = eugene
            .serve_sharded(
                id,
                &ServeOptions {
                    scheduler: SchedulerKind::Fifo,
                    ..ServeOptions::default()
                },
                None,
                2,
                eugene_net::ReplicaConfig::default(),
                eugene_net::ShardConfig::default(),
            )
            .unwrap();
        assert_eq!(router.num_shards(), 2);
        assert_eq!(router.alive_shards(), 2);
        let mut client =
            eugene_net::EugeneClient::new(router.local_addr(), eugene_net::ClientConfig::default())
                .unwrap();
        // Distinct routing keys land on the shard the ring names; the
        // wire answers are indistinguishable from a single gateway.
        for key in 0..8u64 {
            let outcome = client
                .infer_keyed("test", data.sample(0), Duration::from_secs(30), Some(key))
                .unwrap();
            assert_eq!(outcome.stages_executed, 3);
            assert!(outcome.predicted.is_some());
        }
        let total = router.aggregate_stats();
        assert_eq!(total.submitted, 8);
        assert_eq!(total.completed, 8);
        router.shutdown();
    }

    #[test]
    fn serve_multi_serves_named_variants_with_data_aware_dispatch() {
        let data = dataset(33, 300);
        let mut eugene = Eugene::new(34);
        let full = eugene.train(TrainRequest::quick(&data)).unwrap();
        let compressed = eugene.reduce(full, 0.5, &data).unwrap();
        let fifo = ServeOptions {
            scheduler: SchedulerKind::Fifo,
            ..ServeOptions::default()
        };
        let variants = [
            ModelVariant {
                name: "full".into(),
                model: full,
                options: fifo.clone(),
            },
            ModelVariant {
                name: "compressed".into(),
                model: compressed,
                options: ServeOptions {
                    confidence_threshold: 0.6,
                    ..fifo
                },
            },
        ];
        let gateway = eugene
            .serve_multi(
                &variants,
                "full",
                Some(&DispatchPolicy {
                    easy: "compressed",
                    hard: "full",
                    threshold: 0.5,
                    caution: 1.0,
                    data: &data,
                }),
                None,
                eugene_net::GatewayConfig::default(),
            )
            .unwrap();
        let mut client = eugene_net::EugeneClient::new(
            gateway.local_addr(),
            eugene_net::ClientConfig::default(),
        )
        .unwrap();
        // Explicit addressing: each variant answers under its own name.
        for name in ["full", "compressed"] {
            let outcome = client
                .infer_with(
                    "test",
                    data.sample(0),
                    Duration::from_secs(30),
                    &eugene_net::SubmitOptions {
                        model: Some(name.into()),
                        ..Default::default()
                    },
                )
                .unwrap();
            assert!(outcome.predicted.is_some(), "variant {name} answered");
        }
        // Anonymous submissions flow through the data-aware dispatcher.
        for i in 0..10 {
            let outcome = client
                .infer("test", data.sample(i), Duration::from_secs(30))
                .unwrap();
            assert!(outcome.predicted.is_some());
        }
        let snapshot = gateway.snapshot();
        assert!(snapshot.per_model["full"].completed >= 1);
        assert!(snapshot.per_model["compressed"].completed >= 1);
        let completed: u64 = snapshot.per_model.values().map(|m| m.completed).sum();
        assert_eq!(completed, 12, "every submission answered by some variant");
        gateway.shutdown();
    }

    #[test]
    fn quantized_early_stages_serve_and_stay_accurate() {
        let data = dataset(41, 300);
        let mut eugene = Eugene::new(42);
        let id = eugene.train(TrainRequest::quick(&data)).unwrap();
        let f32_answers: Vec<_> = (0..20)
            .map(|i| eugene.classify(id, data.sample(i)).unwrap())
            .collect();

        // Quantize the first two of three stages; the deepest stage and
        // all heads stay f32.
        let precisions = eugene.quantize_model(id, &[0, 1]).unwrap();
        assert_eq!(
            precisions,
            vec![Precision::Int8, Precision::Int8, Precision::F32]
        );
        let mut agree = 0usize;
        for (i, f32_stages) in f32_answers.iter().enumerate() {
            let q_stages = eugene.classify(id, data.sample(i)).unwrap();
            assert_eq!(q_stages.len(), f32_stages.len());
            if q_stages.last().unwrap().predicted == f32_stages.last().unwrap().predicted {
                agree += 1;
            }
        }
        assert!(
            agree >= 18,
            "i8 trunk flips too many final predictions: {agree}/20"
        );

        // The quantized model serves through the normal runtime path.
        let runtime = eugene
            .serve(
                id,
                &ServeOptions {
                    scheduler: SchedulerKind::Fifo,
                    ..ServeOptions::default()
                },
                None,
            )
            .unwrap();
        let (_, rx) = runtime.submit(eugene_serve::InferenceRequest::new(
            data.sample(0).to_vec(),
            eugene_serve::ServiceClass::new("test", Duration::from_secs(30)),
        ));
        let response = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert!(response.predicted.is_some());
        assert!(!response.expired);
        runtime.shutdown();

        // And back to f32 restores the original answers exactly.
        let restored = eugene.quantize_model(id, &[]).unwrap();
        assert_eq!(restored, vec![Precision::F32; 3]);
        for (i, f32_stages) in f32_answers.iter().enumerate() {
            assert_eq!(&eugene.classify(id, data.sample(i)).unwrap(), f32_stages);
        }
    }

    /// Same façade entry point, readiness-driven backend: the event-loop
    /// engine must be a drop-in swap behind `GatewayConfig::backend`.
    #[test]
    fn serve_gateway_round_trips_on_the_readiness_backend() {
        let data = dataset(27, 300);
        let mut eugene = Eugene::new(28);
        let id = eugene.train(TrainRequest::quick(&data)).unwrap();
        let gateway = eugene
            .serve_gateway(
                id,
                &ServeOptions {
                    scheduler: SchedulerKind::Fifo,
                    ..ServeOptions::default()
                },
                None,
                eugene_net::GatewayConfig {
                    backend: eugene_net::GatewayBackend::Readiness,
                    ..eugene_net::GatewayConfig::default()
                },
            )
            .unwrap();
        assert_eq!(gateway.backend(), eugene_net::GatewayBackend::Readiness);
        let mut client = eugene_net::EugeneClient::new(
            gateway.local_addr(),
            eugene_net::ClientConfig::default(),
        )
        .unwrap();
        let outcome = client
            .infer("test", data.sample(0), Duration::from_secs(30))
            .unwrap();
        assert_eq!(outcome.stages_executed, 3);
        assert!(outcome.predicted.is_some());
        assert_eq!(
            gateway.status().threads_spawned(),
            1,
            "readiness backend serves from one event-loop thread"
        );
        gateway.shutdown();
    }

    #[test]
    fn labeling_service_runs() {
        let full = dataset(14, 400);
        let split = full.split(0.1);
        let mut eugene = Eugene::new(15);
        let outcome = eugene.label(&split.train, split.test.features()).unwrap();
        assert!(outcome.coverage > 0.0);
    }

    #[test]
    fn profiling_service_reproduces_table1_inversion() {
        let eugene = Eugene::new(16);
        let rows = ConvSpec::table1_rows();
        assert!(eugene.profile_layer(&rows[1].1) > eugene.profile_layer(&rows[0].1));
        assert!(eugene.profile_layer(&rows[2].1) > eugene.profile_layer(&rows[3].1));
    }

    #[test]
    fn partition_planning_reacts_to_bandwidth() {
        let data = dataset(19, 300);
        let mut eugene = Eugene::new(20);
        let id = eugene.train(TrainRequest::quick(&data)).unwrap();
        let fast = eugene
            .plan_partition(
                id,
                &data,
                0.9,
                &eugene_partition::LinkModel::new(100.0e6, 1.0),
                5.0,
                0.2,
            )
            .unwrap();
        let slow = eugene
            .plan_partition(
                id,
                &data,
                0.9,
                &eugene_partition::LinkModel::new(50.0, 200.0),
                5.0,
                0.2,
            )
            .unwrap();
        assert!(slow.split >= fast.split, "{} -> {}", fast.split, slow.split);
        assert_eq!(slow.split, 3, "a dead link forces device-only execution");
    }

    #[test]
    fn estimator_service_predicts_with_uncertainty() {
        let mut eugene = Eugene::new(21);
        let mut rng = seeded_rng(22);
        let n = 300;
        let mut inputs = Matrix::zeros(n, 1);
        let mut targets = Vec::with_capacity(n);
        for i in 0..n {
            let x = (i as f32 / n as f32) * 2.0 - 1.0;
            inputs[(i, 0)] = x;
            targets.push(x * 0.8 + eugene_tensor::standard_normal(&mut rng) * 0.1);
        }
        let model = eugene
            .train_estimator(&inputs, &targets, &MeanVarianceConfig::default())
            .unwrap();
        let (mean, sigma) = model.predict(&[0.5]);
        assert!((mean - 0.4).abs() < 0.15, "mean {mean}");
        assert!(sigma > 0.0 && sigma < 0.5, "sigma {sigma}");
    }

    #[test]
    fn export_import_round_trip() {
        let data = dataset(23, 200);
        let mut eugene = Eugene::new(24);
        let id = eugene.train(TrainRequest::quick(&data)).unwrap();
        let snapshot = eugene.export_model(id).unwrap();
        let json = serde_json::to_string(&snapshot).unwrap();
        let parsed: eugene_nn::NetworkSnapshot = serde_json::from_str(&json).unwrap();
        let restored = eugene.import_model(&parsed).unwrap();
        let a = eugene.classify(id, data.sample(0)).unwrap();
        let b = eugene.classify(restored, data.sample(0)).unwrap();
        assert_eq!(a[2].predicted, b[2].predicted);
        assert!((a[2].confidence - b[2].confidence).abs() < 1e-6);
    }

    #[test]
    fn cached_model_service_builds() {
        let data = dataset(17, 400);
        let mut eugene = Eugene::new(18);
        let cached = eugene
            .build_cached_model(&data, &[0, 1], &CachedModelConfig::default())
            .unwrap();
        assert_eq!(cached.classes(), &[0, 1]);
    }
}
