//! The Eugene service façade (paper §II): one object offering the full
//! "deep intelligence as a service" suite.
//!
//! Clients of Eugene "ask the service to (i) generate deep neural network
//! models (from client-supplied training data), (ii) help with
//! (automatic) labeling of data sets, and (iii) perform model reduction
//! (if needed for caching)", with server-side support for profiling,
//! calibrated confidence, and utility-maximizing scheduling. [`Eugene`]
//! wires the substrate crates into exactly that API:
//!
//! | Service (paper §II) | Method |
//! |---|---|
//! | Training | [`Eugene::train`] |
//! | Data labeling | [`Eugene::label`] |
//! | Model reduction | [`Eugene::reduce`] |
//! | Reduced-model caching | [`Eugene::build_cached_model`] |
//! | Execution profiling | [`Eugene::profile_layer`] |
//! | Result quality (calibration) | [`Eugene::calibrate`] |
//! | Confidence-curve fitting | [`Eugene::fit_confidence_predictor`] |
//! | Run-time inference | [`Eugene::serve`] |
//! | Networked service gateway | [`Eugene::serve_gateway`] |
//! | Multi-model, multi-tenant serving | [`Eugene::serve_multi`] |
//!
//! # Examples
//!
//! ```
//! use eugene_service::{Eugene, TrainRequest};
//! use eugene_data::{SyntheticImages, SyntheticImagesConfig};
//! use eugene_tensor::seeded_rng;
//!
//! let mut rng = seeded_rng(0);
//! let gen = SyntheticImages::new(SyntheticImagesConfig::default(), &mut rng);
//! let (data, _) = gen.generate(300, &mut rng);
//!
//! let mut eugene = Eugene::new(7);
//! let model = eugene.train(TrainRequest::quick(&data))?;
//! let outputs = eugene.classify(model, data.sample(0))?;
//! assert_eq!(outputs.len(), 3);
//! # Ok::<(), eugene_service::EugeneError>(())
//! ```

mod engine;
mod error;
mod facade;

pub use engine::StagedNetworkEngine;
pub use error::EugeneError;
pub use facade::{
    DispatchPolicy, Eugene, ModelId, ModelInfo, ModelVariant, SchedulerKind, ServeOptions,
    TrainRequest,
};
// Gateway configuration surfaces through the façade's `serve_gateway` /
// `serve_multi` signatures; re-export it so callers can pick a
// connection-handling backend, address models, and set tenant quotas
// without depending on eugene-net directly.
pub use eugene_net::{
    FailoverPolicy, Gateway, GatewayBackend, GatewayConfig, RebalanceConfig, ReplicaConfig,
    ShardConfig, ShardRouter, SubmitOptions, TenantQuota,
};
pub use eugene_serve::{
    ModelRegistry, OverloadPolicy, PlanCacheStats, Precision, RegistryError, VariantDispatcher,
};
