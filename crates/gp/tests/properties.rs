//! Property-based tests for GP regression and its piecewise-linear
//! compression.

use eugene_gp::{mae, r_squared, GpParams, GpRegressor, PiecewiseLinear};
use proptest::prelude::*;

proptest! {
    #[test]
    fn pwl_is_exact_at_grid_points(segments in 1usize..40) {
        let f = |x: f64| (2.0 * x).cos() + x;
        let pwl = PiecewiseLinear::profile(f, segments);
        for i in 0..=segments {
            let x = i as f64 / segments as f64;
            prop_assert!((pwl.eval(x) - f(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn pwl_output_is_bounded_by_knot_extremes(
        knots in prop::collection::vec(-5.0f64..5.0, 2..20),
        query in -2.0f64..3.0,
    ) {
        let points: Vec<(f64, f64)> = knots
            .iter()
            .enumerate()
            .map(|(i, &y)| (i as f64 / (knots.len() - 1) as f64, y))
            .collect();
        let pwl = PiecewiseLinear::from_points(&points);
        let min = knots.iter().copied().fold(f64::INFINITY, f64::min);
        let max = knots.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let v = pwl.eval(query);
        prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
    }

    #[test]
    fn gp_mean_stays_within_data_envelope_for_monotone_data(
        n in 5usize..30,
        slope in 0.1f64..0.9,
        intercept in 0.0f64..0.1,
    ) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| intercept + slope * x).collect();
        let gp = GpRegressor::fit(&xs, &ys, GpParams::default()).unwrap();
        // Predictions inside the domain stay near the data range.
        for &x in &[0.1, 0.5, 0.9] {
            let (mean, var) = gp.predict(x);
            prop_assert!(var >= 0.0);
            prop_assert!(mean > -0.5 && mean < 1.5, "mean {mean} escaped envelope");
        }
    }

    #[test]
    fn gp_pwl_compression_error_is_small_on_training_domain(
        seed_points in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 8..40),
    ) {
        // Sort and dedup x so the data is a function.
        let mut pts = seed_points;
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        pts.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-6);
        prop_assume!(pts.len() >= 4);
        let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
        let gp = GpRegressor::fit(&xs, &ys, GpParams::default()).unwrap();
        let pwl = PiecewiseLinear::profile(|x| gp.predict_mean(x), 20);
        let err = pwl.max_error(|x| gp.predict_mean(x), 100);
        prop_assert!(err < 0.25, "compression error {err} too large");
    }

    #[test]
    fn perfect_predictions_score_perfectly(targets in prop::collection::vec(-10.0f64..10.0, 1..50)) {
        prop_assert_eq!(mae(&targets, &targets), 0.0);
        let spread = targets.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - targets.iter().cloned().fold(f64::INFINITY, f64::min);
        if spread > 1e-9 {
            prop_assert!((r_squared(&targets, &targets) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mae_is_translation_invariant(
        preds in prop::collection::vec(-5.0f64..5.0, 1..30),
        shift in -3.0f64..3.0,
    ) {
        let targets: Vec<f64> = preds.iter().map(|p| p + 1.0).collect();
        let shifted_preds: Vec<f64> = preds.iter().map(|p| p + shift).collect();
        let shifted_targets: Vec<f64> = targets.iter().map(|t| t + shift).collect();
        let a = mae(&preds, &targets);
        let b = mae(&shifted_preds, &shifted_targets);
        prop_assert!((a - b).abs() < 1e-9);
    }
}
