use serde::{Deserialize, Serialize};

/// Radial-basis-function (squared-exponential) kernel over scalar inputs:
///
/// ```text
/// k(a, b) = variance * exp(-(a - b)^2 / (2 * length_scale^2))
/// ```
///
/// The paper's confidence-curve regressors map stage confidences (bounded
/// in `[0, 1]`) to later-stage confidences, for which a smooth stationary
/// kernel is the textbook choice (Rasmussen, cited as \[16\]).
///
/// # Examples
///
/// ```
/// use eugene_gp::RbfKernel;
///
/// let k = RbfKernel::new(1.0, 0.2);
/// assert!((k.eval(0.5, 0.5) - 1.0).abs() < 1e-12);
/// assert!(k.eval(0.0, 1.0) < k.eval(0.0, 0.1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RbfKernel {
    variance: f64,
    length_scale: f64,
}

impl RbfKernel {
    /// Creates a kernel with signal `variance` and `length_scale`.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are finite and positive.
    pub fn new(variance: f64, length_scale: f64) -> Self {
        assert!(
            variance.is_finite() && variance > 0.0,
            "variance must be positive, got {variance}"
        );
        assert!(
            length_scale.is_finite() && length_scale > 0.0,
            "length_scale must be positive, got {length_scale}"
        );
        Self {
            variance,
            length_scale,
        }
    }

    /// Signal variance `k(x, x)`.
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Kernel length scale.
    pub fn length_scale(&self) -> f64 {
        self.length_scale
    }

    /// Evaluates `k(a, b)`.
    pub fn eval(&self, a: f64, b: f64) -> f64 {
        let d = (a - b) / self.length_scale;
        self.variance * (-0.5 * d * d).exp()
    }

    /// Builds the Gram matrix `K[i][j] = k(x_i, x_j)` (row-major).
    pub fn gram(&self, xs: &[f64]) -> Vec<f64> {
        let n = xs.len();
        let mut out = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let v = self.eval(xs[i], xs[j]);
                out[i * n + j] = v;
                out[j * n + i] = v;
            }
        }
        out
    }

    /// Builds the cross-covariance vector `k(x, x_i)` for a query `x`.
    pub fn cross(&self, x: f64, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&xi| self.eval(x, xi)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_equals_variance() {
        let k = RbfKernel::new(2.5, 0.3);
        assert!((k.eval(0.7, 0.7) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn symmetric_and_decaying() {
        let k = RbfKernel::new(1.0, 0.5);
        assert_eq!(k.eval(0.1, 0.9), k.eval(0.9, 0.1));
        assert!(k.eval(0.0, 2.0) < k.eval(0.0, 1.0));
        assert!(k.eval(0.0, 10.0) < 1e-8);
    }

    #[test]
    fn gram_matrix_is_symmetric_with_variance_diagonal() {
        let k = RbfKernel::new(1.5, 0.4);
        let xs = [0.0, 0.25, 0.5, 1.0];
        let g = k.gram(&xs);
        let n = xs.len();
        for i in 0..n {
            assert!((g[i * n + i] - 1.5).abs() < 1e-12);
            for j in 0..n {
                assert_eq!(g[i * n + j], g[j * n + i]);
            }
        }
    }

    #[test]
    fn cross_matches_pointwise_eval() {
        let k = RbfKernel::new(1.0, 0.2);
        let xs = [0.1, 0.5];
        let c = k.cross(0.3, &xs);
        assert_eq!(c, vec![k.eval(0.3, 0.1), k.eval(0.3, 0.5)]);
    }

    #[test]
    #[should_panic(expected = "length_scale")]
    fn rejects_zero_length_scale() {
        RbfKernel::new(1.0, 0.0);
    }
}
