//! Gaussian-process regression and piecewise-linear compression.
//!
//! Paper §III-B predicts the confidence a task will reach at future stages
//! from the confidence observed at completed stages, using Gaussian-process
//! (GP) regression models such as `GP1→2`, `GP1→3`, and `GP2→3`. Because
//! "Gaussian process is notorious for its long inference time", the paper
//! then *compresses* each GP into a piecewise-linear function by profiling
//! it on the grid `{0, 1/M, …, 1}` and interpolating — the runtime
//! scheduler only ever evaluates the cheap piecewise-linear approximation.
//!
//! This crate implements both halves:
//!
//! - [`GpRegressor`]: exact 1-D GP regression with an RBF kernel, jittered
//!   Cholesky solve, and predictive mean/variance;
//! - [`PiecewiseLinear`]: the grid-profiled compression of any 1-D model;
//! - [`mae`] / [`r_squared`]: the metrics reported in Table III.
//!
//! # Examples
//!
//! ```
//! use eugene_gp::{GpParams, GpRegressor, PiecewiseLinear};
//!
//! // Confidence at stage 1 -> confidence at stage 2, on toy data.
//! let x = [0.1, 0.3, 0.5, 0.7, 0.9];
//! let y = [0.2, 0.45, 0.65, 0.8, 0.95];
//! let gp = GpRegressor::fit(&x, &y, GpParams::default())?;
//! let (mean, var) = gp.predict(0.6);
//! assert!(mean > 0.5 && mean < 1.0);
//! assert!(var >= 0.0);
//!
//! // Compress for the runtime scheduler (paper's two-step recipe).
//! let pwl = PiecewiseLinear::profile(|c| gp.predict(c).0, 10);
//! assert!((pwl.eval(0.6) - mean).abs() < 0.05);
//! # Ok::<(), eugene_gp::GpError>(())
//! ```

mod kernel;
mod linalg;
mod metrics;
mod pwl;
mod regressor;

pub use kernel::RbfKernel;
pub use linalg::{cholesky, cholesky_solve, CholeskyError};
pub use metrics::{mae, r_squared};
pub use pwl::PiecewiseLinear;
pub use regressor::{GpError, GpParams, GpRegressor};
