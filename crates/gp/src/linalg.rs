//! Dense Cholesky factorization and triangular solves, the only linear
//! algebra a Gaussian-process regressor needs.

use std::error::Error;
use std::fmt;

/// Error returned when a matrix is not (numerically) positive definite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CholeskyError {
    pivot: usize,
}

impl CholeskyError {
    /// Index of the pivot where the factorization failed.
    pub fn pivot(&self) -> usize {
        self.pivot
    }
}

impl fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "matrix is not positive definite (non-positive pivot at index {})",
            self.pivot
        )
    }
}

impl Error for CholeskyError {}

/// Computes the lower-triangular Cholesky factor `L` of a symmetric
/// positive-definite `n x n` matrix stored row-major in `a`, so that
/// `L L^T = A`. Entries above the diagonal of the returned buffer are zero.
///
/// # Errors
///
/// Returns [`CholeskyError`] if a pivot is not strictly positive, i.e. the
/// matrix is not numerically positive definite. GP callers add diagonal
/// jitter and retry.
///
/// # Panics
///
/// Panics if `a.len() != n * n`.
///
/// # Examples
///
/// ```
/// use eugene_gp::cholesky;
///
/// // A = [[4, 2], [2, 3]] has factor L = [[2, 0], [1, sqrt(2)]].
/// let l = cholesky(&[4.0, 2.0, 2.0, 3.0], 2)?;
/// assert!((l[0] - 2.0).abs() < 1e-12);
/// assert!((l[2] - 1.0).abs() < 1e-12);
/// # Ok::<(), eugene_gp::CholeskyError>(())
/// ```
pub fn cholesky(a: &[f64], n: usize) -> Result<Vec<f64>, CholeskyError> {
    assert_eq!(a.len(), n * n, "matrix buffer must be n*n");
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return Err(CholeskyError { pivot: i });
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Ok(l)
}

/// Solves `A x = b` given the Cholesky factor `L` of `A` (from
/// [`cholesky`]), via forward then backward substitution.
///
/// # Panics
///
/// Panics if `l.len() != b.len() * b.len()`.
pub fn cholesky_solve(l: &[f64], b: &[f64]) -> Vec<f64> {
    let n = b.len();
    assert_eq!(l.len(), n * n, "factor must be n*n for an n-vector");
    // Forward: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    // Backward: L^T x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matvec(a: &[f64], x: &[f64], n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (0..n).map(|j| a[i * n + j] * x[j]).sum())
            .collect()
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = [6.0, 3.0, 1.0, 3.0, 5.0, 2.0, 1.0, 2.0, 4.0];
        let l = cholesky(&a, 3).unwrap();
        // Reconstruct L L^T.
        for i in 0..3 {
            for j in 0..3 {
                let v: f64 = (0..3).map(|k| l[i * 3 + k] * l[j * 3 + k]).sum();
                assert!((v - a[i * 3 + j]).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = [4.0, 2.0, 2.0, 3.0];
        let x_true = [1.5, -2.0];
        let b = matvec(&a, &x_true, 2);
        let l = cholesky(&a, 2).unwrap();
        let x = cholesky_solve(&l, &b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn indefinite_matrix_is_rejected() {
        let a = [1.0, 2.0, 2.0, 1.0]; // eigenvalues 3 and -1
        let err = cholesky(&a, 2).unwrap_err();
        assert_eq!(err.pivot(), 1);
        assert!(err.to_string().contains("positive definite"));
    }

    #[test]
    fn identity_factor_is_identity() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let l = cholesky(&a, 2).unwrap();
        assert_eq!(l, vec![1.0, 0.0, 0.0, 1.0]);
        let x = cholesky_solve(&l, &[3.0, 4.0]);
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn large_random_spd_roundtrip() {
        // Build SPD as B B^T + n I from a deterministic pseudo-random B.
        let n = 20;
        let mut b = vec![0.0; n * n];
        let mut state = 12345u64;
        for v in &mut b {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v = ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
        }
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += b[i * n + k] * b[j * n + k];
                }
                a[i * n + j] = s + if i == j { n as f64 } else { 0.0 };
            }
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let rhs = matvec(&a, &x_true, n);
        let l = cholesky(&a, n).unwrap();
        let x = cholesky_solve(&l, &rhs);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8);
        }
    }
}
