use serde::{Deserialize, Serialize};

/// A piecewise-linear function on `[0, 1]`, the paper's runtime-cheap
/// stand-in for a Gaussian-process regressor (§III-B):
///
/// 1. profile the GP at the grid `{0, 1/M, …, 1}`;
/// 2. connect the profiled points with straight segments.
///
/// Inputs outside `[x_first, x_last]` clamp to the boundary values, which
/// is the right behavior for confidences, whose domain is bounded.
///
/// # Examples
///
/// ```
/// use eugene_gp::PiecewiseLinear;
///
/// let pwl = PiecewiseLinear::profile(|x| x * x, 10);
/// assert!((pwl.eval(0.5) - 0.25).abs() < 0.01);
/// assert_eq!(pwl.eval(-1.0), pwl.eval(0.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseLinear {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl PiecewiseLinear {
    /// Profiles `f` at `segments + 1` evenly spaced points on `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `segments == 0`.
    pub fn profile(f: impl Fn(f64) -> f64, segments: usize) -> Self {
        assert!(segments > 0, "need at least one segment");
        let xs: Vec<f64> = (0..=segments).map(|i| i as f64 / segments as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
        Self { xs, ys }
    }

    /// Builds directly from knot points, which must be strictly increasing
    /// in `x`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given or the x values are not
    /// strictly increasing.
    pub fn from_points(points: &[(f64, f64)]) -> Self {
        assert!(points.len() >= 2, "need at least two knot points");
        for pair in points.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "knot x values must be strictly increasing ({} !< {})",
                pair[0].0,
                pair[1].0
            );
        }
        Self {
            xs: points.iter().map(|p| p.0).collect(),
            ys: points.iter().map(|p| p.1).collect(),
        }
    }

    /// Number of linear segments.
    pub fn segments(&self) -> usize {
        self.xs.len() - 1
    }

    /// The knot points.
    pub fn knots(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.xs.iter().copied().zip(self.ys.iter().copied())
    }

    /// Evaluates the function at `x`, clamping outside the knot range.
    pub fn eval(&self, x: f64) -> f64 {
        if x <= self.xs[0] {
            return self.ys[0];
        }
        let last = self.xs.len() - 1;
        if x >= self.xs[last] {
            return self.ys[last];
        }
        // Binary search for the containing segment.
        let mut lo = 0;
        let mut hi = last;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.xs[mid] <= x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let t = (x - self.xs[lo]) / (self.xs[hi] - self.xs[lo]);
        self.ys[lo] + t * (self.ys[hi] - self.ys[lo])
    }

    /// Maximum absolute deviation from `f` sampled at `probes` points on
    /// `[0, 1]`; used in tests and the ablation bench to quantify the
    /// compression error.
    pub fn max_error(&self, f: impl Fn(f64) -> f64, probes: usize) -> f64 {
        (0..=probes)
            .map(|i| {
                let x = i as f64 / probes as f64;
                (self.eval(x) - f(x)).abs()
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_on_linear_functions() {
        let pwl = PiecewiseLinear::profile(|x| 2.0 * x - 0.5, 4);
        for &x in &[0.0, 0.13, 0.5, 0.77, 1.0] {
            assert!((pwl.eval(x) - (2.0 * x - 0.5)).abs() < 1e-12);
        }
    }

    #[test]
    fn error_shrinks_with_more_segments() {
        let f = |x: f64| (3.0 * x).sin();
        let coarse = PiecewiseLinear::profile(f, 4).max_error(f, 200);
        let fine = PiecewiseLinear::profile(f, 32).max_error(f, 200);
        assert!(fine < coarse / 4.0, "fine {fine} vs coarse {coarse}");
    }

    #[test]
    fn clamps_outside_domain() {
        let pwl = PiecewiseLinear::profile(|x| x, 5);
        assert_eq!(pwl.eval(-3.0), 0.0);
        assert_eq!(pwl.eval(7.0), 1.0);
    }

    #[test]
    fn interpolates_knots_exactly() {
        let pwl = PiecewiseLinear::from_points(&[(0.0, 1.0), (0.4, 0.2), (1.0, 0.6)]);
        assert_eq!(pwl.eval(0.0), 1.0);
        assert_eq!(pwl.eval(0.4), 0.2);
        assert_eq!(pwl.eval(1.0), 0.6);
        // Midpoint of the first segment.
        assert!((pwl.eval(0.2) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn segments_counted_correctly() {
        assert_eq!(PiecewiseLinear::profile(|x| x, 10).segments(), 10);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_knots() {
        PiecewiseLinear::from_points(&[(0.5, 0.0), (0.2, 1.0)]);
    }

    #[test]
    fn knots_iterator_round_trips() {
        let pwl = PiecewiseLinear::profile(|x| x + 1.0, 2);
        let pts: Vec<(f64, f64)> = pwl.knots().collect();
        assert_eq!(pts, vec![(0.0, 1.0), (0.5, 1.5), (1.0, 2.0)]);
    }
}
