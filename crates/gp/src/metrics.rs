//! Regression-quality metrics reported in the paper's Table III.

/// Mean absolute error between predictions and targets.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
///
/// # Examples
///
/// ```
/// use eugene_gp::mae;
/// assert!((mae(&[1.0, 2.0], &[1.5, 1.5]) - 0.5).abs() < 1e-12);
/// ```
pub fn mae(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "slices must align");
    assert!(!predictions.is_empty(), "mae of empty slices");
    predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / predictions.len() as f64
}

/// Coefficient of determination `R^2 = 1 - SS_res / SS_tot`.
///
/// Can be negative when predictions are worse than predicting the target
/// mean. Returns `0.0` when the targets are constant (degenerate
/// `SS_tot = 0`), matching the convention of most ML toolkits.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
///
/// # Examples
///
/// ```
/// use eugene_gp::r_squared;
/// let perfect = r_squared(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]);
/// assert!((perfect - 1.0).abs() < 1e-12);
/// ```
pub fn r_squared(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "slices must align");
    assert!(!predictions.is_empty(), "r_squared of empty slices");
    let mean = targets.iter().sum::<f64>() / targets.len() as f64;
    let ss_tot: f64 = targets.iter().map(|t| (t - mean).powi(2)).sum();
    let ss_res: f64 = predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t).powi(2))
        .sum();
    if ss_tot == 0.0 {
        return 0.0;
    }
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_of_perfect_predictions_is_zero() {
        assert_eq!(mae(&[0.1, 0.9], &[0.1, 0.9]), 0.0);
    }

    #[test]
    fn r_squared_of_mean_predictor_is_zero() {
        let targets = [1.0, 2.0, 3.0];
        let preds = [2.0, 2.0, 2.0];
        assert!(r_squared(&preds, &targets).abs() < 1e-12);
    }

    #[test]
    fn r_squared_can_be_negative() {
        let targets = [1.0, 2.0, 3.0];
        let preds = [3.0, 2.0, 1.0];
        assert!(r_squared(&preds, &targets) < 0.0);
    }

    #[test]
    fn constant_targets_yield_zero() {
        assert_eq!(r_squared(&[1.0, 2.0], &[5.0, 5.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        mae(&[1.0], &[1.0, 2.0]);
    }
}
