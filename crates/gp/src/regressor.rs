use crate::linalg::{cholesky, cholesky_solve};
use crate::RbfKernel;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Hyper-parameters for [`GpRegressor::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpParams {
    /// Observation-noise variance added to the Gram diagonal.
    pub noise: f64,
    /// Kernel length scale; `None` selects it from the data (median
    /// pairwise distance heuristic).
    pub length_scale: Option<f64>,
    /// Kernel signal variance; `None` uses the sample variance of the
    /// targets.
    pub signal_variance: Option<f64>,
    /// Maximum number of training points retained. GP cost is cubic in the
    /// training-set size, so larger sets are subsampled deterministically
    /// (every k-th point). This mirrors the practical reality that drove
    /// the paper to piecewise-linear compression.
    pub max_points: usize,
}

impl Default for GpParams {
    fn default() -> Self {
        Self {
            noise: 1e-3,
            length_scale: None,
            signal_variance: None,
            max_points: 400,
        }
    }
}

/// Error returned by [`GpRegressor::fit`].
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// The training set was empty or the x/y lengths differed.
    InvalidTrainingSet {
        /// Number of inputs provided.
        xs: usize,
        /// Number of targets provided.
        ys: usize,
    },
    /// The kernel matrix stayed non-positive-definite even after jitter.
    NotPositiveDefinite,
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::InvalidTrainingSet { xs, ys } => {
                write!(f, "invalid training set: {xs} inputs, {ys} targets")
            }
            GpError::NotPositiveDefinite => {
                write!(f, "kernel matrix not positive definite after jitter")
            }
        }
    }
}

impl Error for GpError {}

/// Exact 1-D Gaussian-process regression with an RBF kernel.
///
/// Fitting solves `(K + noise * I) alpha = y` once by Cholesky; prediction
/// is `mean = k_*^T alpha` and
/// `var = k(x,x) - k_*^T (K + noise I)^{-1} k_*`, the standard equations
/// from Rasmussen (the paper's \[16\]).
///
/// # Examples
///
/// See the crate-level example in [`crate`].
#[derive(Debug, Clone)]
pub struct GpRegressor {
    kernel: RbfKernel,
    noise: f64,
    xs: Vec<f64>,
    alpha: Vec<f64>,
    chol: Vec<f64>,
    mean_offset: f64,
}

impl GpRegressor {
    /// Fits a GP to scalar observations `(xs[i], ys[i])`.
    ///
    /// Targets are internally centered; predictions add the mean back.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::InvalidTrainingSet`] for empty or mismatched
    /// inputs and [`GpError::NotPositiveDefinite`] if factorization fails
    /// even with escalating jitter.
    pub fn fit(xs: &[f64], ys: &[f64], params: GpParams) -> Result<Self, GpError> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(GpError::InvalidTrainingSet {
                xs: xs.len(),
                ys: ys.len(),
            });
        }
        let (xs, ys) = subsample(xs, ys, params.max_points);
        let mean_offset = ys.iter().sum::<f64>() / ys.len() as f64;
        let centered: Vec<f64> = ys.iter().map(|y| y - mean_offset).collect();
        let length_scale = params
            .length_scale
            .unwrap_or_else(|| median_distance(&xs).max(1e-3));
        let signal_variance = params
            .signal_variance
            .unwrap_or_else(|| sample_variance(&centered).max(1e-6));
        let kernel = RbfKernel::new(signal_variance, length_scale);
        let n = xs.len();
        let gram = kernel.gram(&xs);
        let mut jitter = params.noise.max(1e-10);
        // Escalate jitter until the factorization succeeds (at most a few
        // rounds; duplicated confidence values otherwise defeat the solve).
        for _ in 0..8 {
            let mut k = gram.clone();
            for i in 0..n {
                k[i * n + i] += jitter;
            }
            if let Ok(chol) = cholesky(&k, n) {
                let alpha = cholesky_solve(&chol, &centered);
                return Ok(Self {
                    kernel,
                    noise: jitter,
                    xs,
                    alpha,
                    chol,
                    mean_offset,
                });
            }
            jitter *= 10.0;
        }
        Err(GpError::NotPositiveDefinite)
    }

    /// Number of retained training points.
    pub fn training_size(&self) -> usize {
        self.xs.len()
    }

    /// The fitted kernel.
    pub fn kernel(&self) -> &RbfKernel {
        &self.kernel
    }

    /// The noise/jitter variance actually used.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Predictive mean and variance at `x`.
    pub fn predict(&self, x: f64) -> (f64, f64) {
        let k_star = self.kernel.cross(x, &self.xs);
        let mean: f64 = k_star
            .iter()
            .zip(&self.alpha)
            .map(|(k, a)| k * a)
            .sum::<f64>()
            + self.mean_offset;
        // var = k(x,x) - k*^T K^{-1} k*; compute v = L^{-1} k* by forward
        // substitution, then var = k(x,x) - v^T v.
        let n = self.xs.len();
        let mut v = vec![0.0; n];
        for i in 0..n {
            let mut sum = k_star[i];
            for (k, vk) in v.iter().enumerate().take(i) {
                sum -= self.chol[i * n + k] * vk;
            }
            v[i] = sum / self.chol[i * n + i];
        }
        let var = (self.kernel.variance() - v.iter().map(|x| x * x).sum::<f64>()).max(0.0);
        (mean, var)
    }

    /// Predictive mean only (convenience).
    pub fn predict_mean(&self, x: f64) -> f64 {
        self.predict(x).0
    }

    /// A central confidence interval `(low, high)` with roughly the given
    /// number of standard deviations (e.g. `1.96` for 95%).
    pub fn confidence_interval(&self, x: f64, z: f64) -> (f64, f64) {
        let (mean, var) = self.predict(x);
        let half = z * var.sqrt();
        (mean - half, mean + half)
    }
}

fn subsample(xs: &[f64], ys: &[f64], max_points: usize) -> (Vec<f64>, Vec<f64>) {
    let max_points = max_points.max(2);
    if xs.len() <= max_points {
        return (xs.to_vec(), ys.to_vec());
    }
    let stride = xs.len() as f64 / max_points as f64;
    let mut out_x = Vec::with_capacity(max_points);
    let mut out_y = Vec::with_capacity(max_points);
    for i in 0..max_points {
        let idx = (i as f64 * stride) as usize;
        out_x.push(xs[idx]);
        out_y.push(ys[idx]);
    }
    (out_x, out_y)
}

fn median_distance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.1;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let spread = sorted[sorted.len() - 1] - sorted[0];
    if spread <= 0.0 {
        return 0.1;
    }
    // A fraction of the data range is a robust, cheap stand-in for the
    // median pairwise distance on bounded confidence data.
    (spread / 4.0).max(1e-3)
}

fn sample_variance(ys: &[f64]) -> f64 {
    if ys.len() < 2 {
        return 1.0;
    }
    let mean = ys.iter().sum::<f64>() / ys.len() as f64;
    ys.iter().map(|y| (y - mean).powi(2)).sum::<f64>() / (ys.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_training_points_with_low_noise() {
        let xs = [0.0, 0.25, 0.5, 0.75, 1.0];
        let ys = [0.1, 0.35, 0.5, 0.8, 0.9];
        let gp = GpRegressor::fit(
            &xs,
            &ys,
            GpParams {
                noise: 1e-8,
                ..GpParams::default()
            },
        )
        .unwrap();
        for (&x, &y) in xs.iter().zip(&ys) {
            let (mean, _) = gp.predict(x);
            assert!((mean - y).abs() < 0.05, "at {x}: {mean} vs {y}");
        }
    }

    #[test]
    fn variance_is_smaller_near_training_data() {
        let xs = [0.2, 0.4, 0.6];
        let ys = [0.3, 0.5, 0.7];
        let gp = GpRegressor::fit(
            &xs,
            &ys,
            GpParams {
                length_scale: Some(0.1),
                ..GpParams::default()
            },
        )
        .unwrap();
        let (_, var_near) = gp.predict(0.4);
        let (_, var_far) = gp.predict(5.0);
        assert!(var_near < var_far, "near {var_near} vs far {var_far}");
    }

    #[test]
    fn recovers_linear_trend() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 / 49.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.3 + 0.5 * x).collect();
        let gp = GpRegressor::fit(&xs, &ys, GpParams::default()).unwrap();
        for &x in &[0.1, 0.5, 0.9] {
            let (mean, _) = gp.predict(x);
            let want = 0.3 + 0.5 * x;
            assert!((mean - want).abs() < 0.03, "at {x}: {mean} vs {want}");
        }
    }

    #[test]
    fn duplicate_inputs_survive_via_jitter() {
        let xs = [0.5; 20];
        let ys: Vec<f64> = (0..20).map(|i| 0.5 + 0.01 * i as f64).collect();
        let gp = GpRegressor::fit(&xs, &ys, GpParams::default()).unwrap();
        let (mean, _) = gp.predict(0.5);
        assert!((mean - 0.595).abs() < 0.1);
    }

    #[test]
    fn subsampling_caps_training_size() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64 / 999.0).collect();
        let ys = xs.clone();
        let gp = GpRegressor::fit(
            &xs,
            &ys,
            GpParams {
                max_points: 50,
                ..GpParams::default()
            },
        )
        .unwrap();
        assert_eq!(gp.training_size(), 50);
        assert!((gp.predict_mean(0.5) - 0.5).abs() < 0.05);
    }

    #[test]
    fn empty_or_mismatched_training_set_errors() {
        assert!(matches!(
            GpRegressor::fit(&[], &[], GpParams::default()),
            Err(GpError::InvalidTrainingSet { .. })
        ));
        assert!(GpRegressor::fit(&[0.1], &[0.1, 0.2], GpParams::default()).is_err());
    }

    #[test]
    fn confidence_interval_brackets_mean() {
        let xs = [0.1, 0.5, 0.9];
        let ys = [0.2, 0.5, 0.8];
        let gp = GpRegressor::fit(&xs, &ys, GpParams::default()).unwrap();
        let (low, high) = gp.confidence_interval(0.3, 1.96);
        let mean = gp.predict_mean(0.3);
        assert!(low <= mean && mean <= high);
    }
}
