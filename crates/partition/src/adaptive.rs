use crate::{EarlyExitProfile, LinkModel, PartitionPlan, PartitionPlanner};
use serde::{Deserialize, Serialize};

/// Re-plans the model split as conditions change, with hysteresis.
///
/// Paper §IV-A: "Adaptive algorithms are needed to maximally exploit this
/// flexibility (e.g., in mobile or dynamic environments) where
/// connectivity, power, and other local resources may change over time."
/// Moving a split point is not free in practice (models must be present
/// on both sides, in-flight requests drain), so the adaptive layer only
/// switches when the candidate plan beats the current one by a relative
/// margin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptivePartitioner {
    planner: PartitionPlanner,
    exits: EarlyExitProfile,
    /// Minimum relative latency improvement required to move the split.
    switch_margin: f64,
    current: Option<PartitionPlan>,
    switches: u64,
}

impl AdaptivePartitioner {
    /// Creates an adaptive partitioner.
    ///
    /// # Panics
    ///
    /// Panics if `switch_margin` is negative or the profile does not
    /// cover the planner's stages.
    pub fn new(planner: PartitionPlanner, exits: EarlyExitProfile, switch_margin: f64) -> Self {
        assert!(switch_margin >= 0.0, "switch margin must be non-negative");
        assert_eq!(
            exits.num_stages(),
            planner.num_stages(),
            "exit profile must cover every stage"
        );
        Self {
            planner,
            exits,
            switch_margin,
            current: None,
            switches: 0,
        }
    }

    /// The currently installed plan, if any observation has been made.
    pub fn current(&self) -> Option<&PartitionPlan> {
        self.current.as_ref()
    }

    /// Number of times the split actually moved.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Observes the current link and returns the plan in force after the
    /// observation (possibly unchanged due to hysteresis).
    pub fn observe(&mut self, link: &LinkModel) -> PartitionPlan {
        let candidate = self.planner.plan(link, &self.exits);
        match &self.current {
            None => {
                self.current = Some(candidate);
                self.switches += 1;
                candidate
            }
            Some(current) if candidate.split == current.split => {
                // Same split: refresh the numbers without a "switch".
                self.current = Some(candidate);
                candidate
            }
            Some(current) => {
                // Re-price the installed split under the new link.
                let staying = self
                    .planner
                    .expected_latency_ms(current.split, link, &self.exits);
                if candidate.expected_latency_ms < staying * (1.0 - self.switch_margin) {
                    self.current = Some(candidate);
                    self.switches += 1;
                    candidate
                } else {
                    let refreshed = PartitionPlan {
                        expected_latency_ms: staying,
                        ..*current
                    };
                    self.current = Some(refreshed);
                    refreshed
                }
            }
        }
    }

    /// Convenience sweep: the plan chosen at each bandwidth (fresh
    /// planner state per point, no hysteresis) — the data behind the
    /// partition bench's bandwidth curve.
    pub fn sweep_bandwidths(
        planner: &PartitionPlanner,
        exits: &EarlyExitProfile,
        rtt_ms: f64,
        bandwidths: &[f64],
    ) -> Vec<(f64, PartitionPlan)> {
        bandwidths
            .iter()
            .map(|&b| (b, planner.plan(&LinkModel::new(b, rtt_ms), exits)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StageCost;

    fn planner() -> PartitionPlanner {
        PartitionPlanner::new(
            vec![
                StageCost {
                    device_ms: 50.0,
                    server_ms: 5.0,
                    boundary_bytes: 2_000,
                },
                StageCost {
                    device_ms: 150.0,
                    server_ms: 15.0,
                    boundary_bytes: 8_000,
                },
                StageCost {
                    device_ms: 150.0,
                    server_ms: 15.0,
                    boundary_bytes: 8_000,
                },
            ],
            4_000,
        )
        .unwrap()
    }

    fn exits() -> EarlyExitProfile {
        EarlyExitProfile::new(vec![0.5, 0.7, 1.0]).unwrap()
    }

    #[test]
    fn bandwidth_collapse_moves_the_split_toward_the_device() {
        let mut adaptive = AdaptivePartitioner::new(planner(), exits(), 0.05);
        let fast = adaptive.observe(&LinkModel::new(100.0e6, 1.0));
        let slow = adaptive.observe(&LinkModel::new(200.0, 50.0));
        assert!(
            slow.split > fast.split,
            "split should move deviceward: {} -> {}",
            fast.split,
            slow.split
        );
        assert_eq!(adaptive.switches(), 2);
    }

    #[test]
    fn hysteresis_suppresses_marginal_switches() {
        // A huge margin means the split never moves after installation.
        let mut adaptive = AdaptivePartitioner::new(planner(), exits(), 10.0);
        let first = adaptive.observe(&LinkModel::new(100.0e6, 1.0));
        let later = adaptive.observe(&LinkModel::new(200.0, 50.0));
        assert_eq!(first.split, later.split, "margin should pin the split");
        assert_eq!(adaptive.switches(), 1);
    }

    #[test]
    fn refreshed_plan_reprices_under_new_link() {
        let mut adaptive = AdaptivePartitioner::new(planner(), exits(), 10.0);
        let first = adaptive.observe(&LinkModel::new(1.0e6, 10.0));
        let repriced = adaptive.observe(&LinkModel::new(0.5e6, 10.0));
        assert_eq!(first.split, repriced.split);
        assert!(
            repriced.expected_latency_ms >= first.expected_latency_ms,
            "halving bandwidth cannot reduce latency"
        );
    }

    #[test]
    fn sweep_is_monotone_in_split_direction() {
        // As bandwidth falls, the optimal split should never move toward
        // the server.
        let plans = AdaptivePartitioner::sweep_bandwidths(
            &planner(),
            &exits(),
            10.0,
            &[100.0e6, 1.0e6, 100.0e3, 10.0e3, 1.0e3, 100.0],
        );
        for pair in plans.windows(2) {
            assert!(
                pair[1].1.split >= pair[0].1.split,
                "split regressed: {:?} -> {:?}",
                pair[0],
                pair[1]
            );
        }
    }
}
