//! Client/server partitioning of staged inference models (paper §IV-A).
//!
//! "In performing inference, it may be possible to execute some stages of
//! the neural network on the client, leaving other stages to execute on
//! the server. If the confidence in results obtained on the client is
//! sufficiently high, no subsequent offloading to the server is needed.
//! ... An ideal partitioning should maximally reduce client reliance on
//! remote processing on the server, while observing client-side resource
//! constraints as well as communication bandwidth constraints."
//!
//! This crate implements that optimizer:
//!
//! - [`StageCost`] describes each stage's compute (device vs server ms)
//!   and the byte size of its boundary activation;
//! - [`LinkModel`] prices shipping data over the client-server link;
//! - [`EarlyExitProfile`] captures the probability that confidence
//!   crosses the exit threshold at each stage (measured from a trained
//!   network's confidence curves);
//! - [`PartitionPlanner`] enumerates every split point and minimizes the
//!   *expected* end-to-end latency, accounting for the chance that an
//!   early exit on the device makes offloading unnecessary — exactly the
//!   coupling between §IV-A partitioning and §II-E early exit;
//! - [`AdaptivePartitioner`] re-plans as the link bandwidth changes (the
//!   paper's "mobile or dynamic environments" point).
//!
//! # Examples
//!
//! ```
//! use eugene_partition::{EarlyExitProfile, LinkModel, PartitionPlanner, StageCost};
//!
//! let stages = vec![
//!     StageCost { device_ms: 40.0, server_ms: 4.0, boundary_bytes: 1_000 },
//!     StageCost { device_ms: 120.0, server_ms: 12.0, boundary_bytes: 4_000 },
//!     StageCost { device_ms: 120.0, server_ms: 12.0, boundary_bytes: 4_000 },
//! ];
//! // Input is small; exits are unlikely early on.
//! let planner = PartitionPlanner::new(stages, 2_000)?;
//! let link = LinkModel::new(1.0e6, 20.0); // 1 MB/s, 20 ms RTT
//! let exits = EarlyExitProfile::new(vec![0.2, 0.5, 1.0])?;
//! let plan = planner.plan(&link, &exits);
//! assert!(plan.split <= 3);
//! # Ok::<(), eugene_partition::PartitionError>(())
//! ```

mod adaptive;
mod planner;

pub use adaptive::AdaptivePartitioner;
pub use planner::{
    EarlyExitProfile, LinkModel, PartitionError, PartitionPlan, PartitionPlanner, StageCost,
};
