use eugene_profiler::{ConvSpec, DeviceModel};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Per-stage execution and communication characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageCost {
    /// Milliseconds to run this stage on the client device.
    pub device_ms: f64,
    /// Milliseconds to run this stage on the server.
    pub server_ms: f64,
    /// Bytes of the activation at this stage's *output* boundary — what
    /// must cross the link if the model is split right after this stage.
    pub boundary_bytes: u64,
}

impl StageCost {
    /// Derives a stage cost from the layer specs it contains, priced on
    /// the given device and server cost models (paper §II-C profiling
    /// feeding §IV-A partitioning).
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn from_conv_stage(
        device: &DeviceModel,
        server: &DeviceModel,
        layers: &[ConvSpec],
        boundary_bytes: u64,
    ) -> Self {
        assert!(!layers.is_empty(), "a stage needs at least one layer");
        Self {
            device_ms: device.network_latency_ms(layers),
            server_ms: server.network_latency_ms(layers),
            boundary_bytes,
        }
    }
}

/// The client-server communication link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    bytes_per_sec: f64,
    rtt_ms: f64,
}

impl LinkModel {
    /// Creates a link with the given throughput and round-trip time.
    ///
    /// # Panics
    ///
    /// Panics unless both are positive and finite.
    pub fn new(bytes_per_sec: f64, rtt_ms: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "bandwidth must be positive"
        );
        assert!(
            rtt_ms.is_finite() && rtt_ms >= 0.0,
            "rtt must be non-negative"
        );
        Self {
            bytes_per_sec,
            rtt_ms,
        }
    }

    /// Link throughput in bytes per second.
    pub fn bandwidth(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Milliseconds to ship `bytes` upstream (one round trip included,
    /// covering the result coming back).
    pub fn ship_ms(&self, bytes: u64) -> f64 {
        self.rtt_ms + bytes as f64 / self.bytes_per_sec * 1000.0
    }
}

/// Cumulative early-exit probabilities: `cumulative[s]` is the probability
/// that a task's confidence crosses the exit threshold at or before the
/// end of stage `s`. The final entry is forced to `1.0` — every task
/// terminates at the last stage at the latest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EarlyExitProfile {
    cumulative: Vec<f64>,
}

impl EarlyExitProfile {
    /// Builds a profile from cumulative exit probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidExitProfile`] if the vector is
    /// empty, non-monotone, or leaves `[0, 1]`.
    pub fn new(mut cumulative: Vec<f64>) -> Result<Self, PartitionError> {
        if cumulative.is_empty() {
            return Err(PartitionError::InvalidExitProfile {
                reason: "no stages".to_owned(),
            });
        }
        for (i, pair) in cumulative.windows(2).enumerate() {
            if pair[1] + 1e-12 < pair[0] {
                return Err(PartitionError::InvalidExitProfile {
                    reason: format!("not monotone at stage {}", i + 1),
                });
            }
        }
        if cumulative.iter().any(|p| !(0.0..=1.0 + 1e-9).contains(p)) {
            return Err(PartitionError::InvalidExitProfile {
                reason: "probabilities outside [0, 1]".to_owned(),
            });
        }
        *cumulative.last_mut().expect("non-empty") = 1.0;
        Ok(Self { cumulative })
    }

    /// Measures the profile from per-sample confidence curves: the
    /// fraction of samples whose confidence reaches `threshold` by each
    /// stage.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidExitProfile`] if `curves` is
    /// empty or ragged.
    pub fn from_confidence_curves(
        curves: &[Vec<f32>],
        threshold: f32,
    ) -> Result<Self, PartitionError> {
        let stages = curves.first().map(Vec::len).unwrap_or(0);
        if stages == 0 || curves.iter().any(|c| c.len() != stages) {
            return Err(PartitionError::InvalidExitProfile {
                reason: "empty or ragged confidence curves".to_owned(),
            });
        }
        let n = curves.len() as f64;
        let cumulative = (0..stages)
            .map(|s| {
                curves
                    .iter()
                    .filter(|c| c[..=s].iter().any(|&v| v >= threshold))
                    .count() as f64
                    / n
            })
            .collect();
        Self::new(cumulative)
    }

    /// Number of stages covered.
    pub fn num_stages(&self) -> usize {
        self.cumulative.len()
    }

    /// Probability a task is still running when stage `s` begins.
    pub fn reach_probability(&self, s: usize) -> f64 {
        if s == 0 {
            1.0
        } else {
            1.0 - self.cumulative[s - 1]
        }
    }

    /// Probability a task exits at or before the end of stage `s`.
    pub fn exit_by(&self, s: usize) -> f64 {
        self.cumulative[s]
    }
}

/// The chosen split and its predicted behavior.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionPlan {
    /// Number of stages executed on the device; `0` ships raw input, and
    /// `num_stages` never contacts the server.
    pub split: usize,
    /// Expected end-to-end latency in milliseconds.
    pub expected_latency_ms: f64,
    /// Probability a request is answered without touching the server.
    pub local_answer_fraction: f64,
    /// Expected transmission time component, ms.
    pub expected_transmission_ms: f64,
}

/// Error type of the partition planner.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionError {
    /// No stages were provided.
    NoStages,
    /// The exit profile was malformed.
    InvalidExitProfile {
        /// What was wrong.
        reason: String,
    },
    /// Profile and stage counts disagree.
    StageCountMismatch {
        /// Stages in the cost model.
        stages: usize,
        /// Stages in the exit profile.
        profile: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::NoStages => write!(f, "partitioning requires at least one stage"),
            PartitionError::InvalidExitProfile { reason } => {
                write!(f, "invalid early-exit profile: {reason}")
            }
            PartitionError::StageCountMismatch { stages, profile } => write!(
                f,
                "stage count mismatch: {stages} cost stages vs {profile} profile stages"
            ),
        }
    }
}

impl Error for PartitionError {}

/// Exhaustive split-point optimizer for expected end-to-end latency.
///
/// For a split `k` (stages `0..k` on the device, `k..n` on the server):
///
/// ```text
/// E[latency] = sum_{s<k}  device_ms[s] * P(reach s)
///            + P(no exit before k) * ship(boundary_k)
///            + sum_{s>=k} server_ms[s] * P(reach s)
/// ```
///
/// so a device-heavy split pays device compute but converts early-exit
/// probability into avoided transmissions — the §IV-A / §II-E coupling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionPlanner {
    stages: Vec<StageCost>,
    input_bytes: u64,
}

impl PartitionPlanner {
    /// Creates a planner over the given stage costs; `input_bytes` is the
    /// size of the raw input (shipped when the split is `0`).
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::NoStages`] if `stages` is empty.
    pub fn new(stages: Vec<StageCost>, input_bytes: u64) -> Result<Self, PartitionError> {
        if stages.is_empty() {
            return Err(PartitionError::NoStages);
        }
        Ok(Self {
            stages,
            input_bytes,
        })
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Expected latency of split `k` under the given link and exits.
    ///
    /// # Panics
    ///
    /// Panics if `k > num_stages` or the profile covers a different stage
    /// count (checked in [`PartitionPlanner::plan`]).
    pub fn expected_latency_ms(&self, k: usize, link: &LinkModel, exits: &EarlyExitProfile) -> f64 {
        assert!(k <= self.stages.len(), "split {k} out of range");
        let mut total = 0.0;
        for (s, stage) in self.stages.iter().enumerate().take(k) {
            total += stage.device_ms * exits.reach_probability(s);
        }
        let offload_probability = exits.reach_probability(k);
        if k < self.stages.len() {
            let boundary = if k == 0 {
                self.input_bytes
            } else {
                self.stages[k - 1].boundary_bytes
            };
            total += offload_probability * link.ship_ms(boundary);
            for (s, stage) in self.stages.iter().enumerate().skip(k) {
                total += stage.server_ms * exits.reach_probability(s);
            }
        }
        total
    }

    /// Finds the split minimizing expected latency.
    ///
    /// # Panics
    ///
    /// Panics if the exit profile covers a different number of stages.
    pub fn plan(&self, link: &LinkModel, exits: &EarlyExitProfile) -> PartitionPlan {
        assert_eq!(
            exits.num_stages(),
            self.stages.len(),
            "exit profile must cover every stage"
        );
        let mut best: Option<PartitionPlan> = None;
        for k in 0..=self.stages.len() {
            let expected = self.expected_latency_ms(k, link, exits);
            let local = if k == 0 { 0.0 } else { exits.exit_by(k - 1) };
            let transmission = if k < self.stages.len() {
                let boundary = if k == 0 {
                    self.input_bytes
                } else {
                    self.stages[k - 1].boundary_bytes
                };
                exits.reach_probability(k) * link.ship_ms(boundary)
            } else {
                0.0
            };
            let candidate = PartitionPlan {
                split: k,
                expected_latency_ms: expected,
                local_answer_fraction: if k == self.stages.len() { 1.0 } else { local },
                expected_transmission_ms: transmission,
            };
            if best
                .as_ref()
                .is_none_or(|b| candidate.expected_latency_ms < b.expected_latency_ms)
            {
                best = Some(candidate);
            }
        }
        best.expect("at least one split")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stages() -> Vec<StageCost> {
        vec![
            StageCost {
                device_ms: 50.0,
                server_ms: 5.0,
                boundary_bytes: 2_000,
            },
            StageCost {
                device_ms: 150.0,
                server_ms: 15.0,
                boundary_bytes: 8_000,
            },
            StageCost {
                device_ms: 150.0,
                server_ms: 15.0,
                boundary_bytes: 8_000,
            },
        ]
    }

    fn no_exits() -> EarlyExitProfile {
        EarlyExitProfile::new(vec![0.0, 0.0, 1.0]).unwrap()
    }

    #[test]
    fn fast_link_offloads_everything() {
        let planner = PartitionPlanner::new(stages(), 4_000).unwrap();
        // 100 MB/s, 1 ms RTT: shipping is nearly free, server is 10x
        // faster, and without early exits the device has nothing to gain.
        let link = LinkModel::new(100.0e6, 1.0);
        let plan = planner.plan(&link, &no_exits());
        assert_eq!(plan.split, 0, "split {} should ship raw input", plan.split);
        assert_eq!(plan.local_answer_fraction, 0.0);
    }

    #[test]
    fn dead_link_keeps_everything_on_device() {
        let planner = PartitionPlanner::new(stages(), 4_000).unwrap();
        // 100 B/s: any transmission costs tens of seconds.
        let link = LinkModel::new(100.0, 50.0);
        let plan = planner.plan(&link, &no_exits());
        assert_eq!(plan.split, 3);
        assert_eq!(plan.local_answer_fraction, 1.0);
        assert_eq!(plan.expected_transmission_ms, 0.0);
    }

    #[test]
    fn early_exits_pull_computation_onto_the_device() {
        let planner = PartitionPlanner::new(stages(), 4_000).unwrap();
        // Moderate link where stage-1-on-device is borderline.
        let link = LinkModel::new(50_000.0, 20.0);
        let lazy = planner.plan(&link, &no_exits());
        // 70% of tasks exit after stage 1: running it locally avoids most
        // transmissions entirely.
        let eager_exits = EarlyExitProfile::new(vec![0.7, 0.8, 1.0]).unwrap();
        let eager = planner.plan(&link, &eager_exits);
        assert!(
            eager.split >= 1,
            "high exit probability should justify device stages (split {})",
            eager.split
        );
        assert!(eager.local_answer_fraction >= 0.69);
        let _ = lazy;
    }

    #[test]
    fn expected_latency_matches_hand_computation() {
        let planner = PartitionPlanner::new(stages(), 4_000).unwrap();
        let link = LinkModel::new(1.0e6, 10.0);
        let exits = EarlyExitProfile::new(vec![0.5, 0.5, 1.0]).unwrap();
        // Split 1: device stage 0 always runs (50); offload with p=0.5 of
        // boundary 2000 B = 10 + 2 = 12 ms; server stages: stage1 reach
        // 0.5 (7.5), stage2 reach 0.5 (7.5).
        let expected = 50.0 + 0.5 * 12.0 + 0.5 * 15.0 + 0.5 * 15.0;
        let got = planner.expected_latency_ms(1, &link, &exits);
        assert!((got - expected).abs() < 1e-9, "got {got}, want {expected}");
    }

    #[test]
    fn exit_profile_from_confidence_curves() {
        let curves = vec![
            vec![0.95, 0.97, 0.99], // exits at stage 1
            vec![0.50, 0.92, 0.99], // exits at stage 2
            vec![0.40, 0.60, 0.80], // never crosses 0.9 -> counted at end
        ];
        let profile = EarlyExitProfile::from_confidence_curves(&curves, 0.9).unwrap();
        assert!((profile.exit_by(0) - 1.0 / 3.0).abs() < 1e-9);
        assert!((profile.exit_by(1) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(profile.exit_by(2), 1.0);
        assert!((profile.reach_probability(1) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_profiles_are_rejected() {
        assert!(EarlyExitProfile::new(vec![]).is_err());
        assert!(EarlyExitProfile::new(vec![0.5, 0.3, 1.0]).is_err());
        assert!(EarlyExitProfile::new(vec![-0.1, 1.0]).is_err());
        assert!(matches!(
            PartitionPlanner::new(vec![], 100),
            Err(PartitionError::NoStages)
        ));
    }

    #[test]
    fn stage_cost_from_conv_profiles() {
        let device = DeviceModel::nexus5_class();
        let server = DeviceModel::edge_accelerator_class();
        let layers = [ConvSpec::same_padding(8, 16, 3, 64)];
        let cost = StageCost::from_conv_stage(&device, &server, &layers, 1_000);
        assert!(cost.device_ms > cost.server_ms, "server should be faster");
        assert_eq!(cost.boundary_bytes, 1_000);
    }

    #[test]
    fn full_device_split_never_transmits() {
        let planner = PartitionPlanner::new(stages(), 4_000).unwrap();
        let link = LinkModel::new(1.0e6, 10.0);
        let latency = planner.expected_latency_ms(3, &link, &no_exits());
        let device_only: f64 = 50.0 + 150.0 + 150.0;
        assert!((latency - device_only).abs() < 1e-9);
    }
}
