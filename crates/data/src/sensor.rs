use crate::Dataset;
use eugene_tensor::{standard_normal, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for [`SensorSeries`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorSeriesConfig {
    /// Number of activity classes (e.g. walking / running / cycling ...).
    pub num_classes: usize,
    /// Number of simulated sensors (e.g. accelerometer + gyroscope = 2).
    pub num_sensors: usize,
    /// Samples per sensor per window.
    pub window: usize,
    /// Additive measurement-noise standard deviation.
    pub noise: f32,
}

impl Default for SensorSeriesConfig {
    fn default() -> Self {
        Self {
            num_classes: 6,
            num_sensors: 2,
            window: 16,
            noise: 0.25,
        }
    }
}

/// Generator of multi-sensor time-series classification windows.
///
/// This is the DeepSense-style workload from the paper's §II-A: several
/// sensor streams whose *joint* spectral signature identifies an activity
/// class. Each class assigns every sensor a characteristic frequency and
/// phase offset; a window flattens all sensors' samples into one feature
/// vector (sensor-major), so the examples can feed it to the same dense
/// staged networks as the image stand-in.
///
/// # Examples
///
/// ```
/// use eugene_data::{SensorSeries, SensorSeriesConfig};
/// use eugene_tensor::seeded_rng;
///
/// let gen = SensorSeries::new(SensorSeriesConfig::default(), &mut seeded_rng(1));
/// let ds = gen.generate(60, &mut seeded_rng(2));
/// assert_eq!(ds.dim(), 2 * 16);
/// assert_eq!(ds.num_classes(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct SensorSeries {
    config: SensorSeriesConfig,
    /// Per class, per sensor: (frequency, phase, amplitude).
    signatures: Vec<Vec<(f32, f32, f32)>>,
}

impl SensorSeries {
    /// Creates a generator, drawing class signatures from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if any config field is zero.
    pub fn new(config: SensorSeriesConfig, rng: &mut impl Rng) -> Self {
        assert!(config.num_classes > 0, "num_classes must be positive");
        assert!(config.num_sensors > 0, "num_sensors must be positive");
        assert!(config.window > 0, "window must be positive");
        let signatures = (0..config.num_classes)
            .map(|c| {
                (0..config.num_sensors)
                    .map(|_| {
                        // Frequencies spread over distinct bands per class so
                        // classes are separable but overlapping bands keep the
                        // task non-trivial.
                        let base = 0.5 + c as f32 * 0.45;
                        let freq = base + rng.gen_range(-0.1f32..0.1);
                        let phase = rng.gen_range(0.0..std::f32::consts::TAU);
                        let amp = rng.gen_range(0.8..1.2);
                        (freq, phase, amp)
                    })
                    .collect()
            })
            .collect();
        Self { config, signatures }
    }

    /// The generator configuration.
    pub fn config(&self) -> &SensorSeriesConfig {
        &self.config
    }

    /// Generates one flattened window for `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class >= num_classes`.
    pub fn window(&self, class: usize, rng: &mut impl Rng) -> Vec<f32> {
        assert!(
            class < self.config.num_classes,
            "class {class} out of range"
        );
        let mut out = Vec::with_capacity(self.config.num_sensors * self.config.window);
        let jitter: f32 = rng.gen_range(-0.2..0.2);
        for s in 0..self.config.num_sensors {
            let (freq, phase, amp) = self.signatures[class][s];
            for t in 0..self.config.window {
                let x = t as f32 / self.config.window as f32 * std::f32::consts::TAU;
                let clean = amp * ((freq + jitter) * x + phase).sin();
                out.push(clean + standard_normal(rng) * self.config.noise);
            }
        }
        out
    }

    /// Generates `n` balanced windows as a [`Dataset`].
    pub fn generate(&self, n: usize, rng: &mut impl Rng) -> Dataset {
        let dim = self.config.num_sensors * self.config.window;
        let mut features = Matrix::zeros(n, dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % self.config.num_classes;
            let w = self.window(class, rng);
            features.row_mut(i).copy_from_slice(&w);
            labels.push(class);
        }
        Dataset::new(features, labels, self.config.num_classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eugene_tensor::seeded_rng;

    #[test]
    fn window_has_expected_layout() {
        let gen = SensorSeries::new(SensorSeriesConfig::default(), &mut seeded_rng(1));
        let w = gen.window(0, &mut seeded_rng(2));
        assert_eq!(w.len(), 2 * 16);
    }

    #[test]
    fn generate_is_balanced() {
        let gen = SensorSeries::new(SensorSeriesConfig::default(), &mut seeded_rng(3));
        let ds = gen.generate(60, &mut seeded_rng(4));
        assert_eq!(ds.class_histogram(), vec![10; 6]);
    }

    #[test]
    fn classes_have_distinct_spectra() {
        // Correlating a window against each class's clean signature should
        // recover the class more often than chance.
        let config = SensorSeriesConfig {
            noise: 0.1,
            ..Default::default()
        };
        let gen = SensorSeries::new(config.clone(), &mut seeded_rng(5));
        let mut rng = seeded_rng(6);
        let mut correct = 0;
        let trials = 120;
        for i in 0..trials {
            let class = i % config.num_classes;
            let w = gen.window(class, &mut rng);
            // Nearest clean template (generated at zero noise via a clone
            // generator sharing signatures).
            let mut best = 0;
            let mut best_score = f32::NEG_INFINITY;
            for c in 0..config.num_classes {
                let mut clean_rng = seeded_rng(7);
                let template = {
                    let quiet = SensorSeries {
                        config: SensorSeriesConfig {
                            noise: 0.0,
                            ..config.clone()
                        },
                        signatures: gen.signatures.clone(),
                    };
                    quiet.window(c, &mut clean_rng)
                };
                let score: f32 = w.iter().zip(&template).map(|(a, b)| a * b).sum();
                if score > best_score {
                    best_score = score;
                    best = c;
                }
            }
            if best == class {
                correct += 1;
            }
        }
        let acc = correct as f64 / trials as f64;
        assert!(acc > 0.5, "template-matching accuracy {acc} too low");
    }

    #[test]
    fn deterministic_given_seed() {
        let gen = SensorSeries::new(SensorSeriesConfig::default(), &mut seeded_rng(8));
        let a = gen.generate(30, &mut seeded_rng(9));
        let b = gen.generate(30, &mut seeded_rng(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn window_rejects_bad_class() {
        let gen = SensorSeries::new(SensorSeriesConfig::default(), &mut seeded_rng(10));
        gen.window(99, &mut seeded_rng(11));
    }
}
