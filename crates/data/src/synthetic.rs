use crate::Dataset;
use eugene_tensor::{standard_normal, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-sample difficulty tier of a generated sample.
///
/// The paper motivates stage scheduling with the observation that the
/// difficulty of inference "is heavily influenced by the input data"
/// (§III). The generator therefore draws each sample as easy, medium, or
/// hard; harder samples sit closer to a confuser class and carry more
/// noise, so a staged classifier resolves them only at deeper stages, if at
/// all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Difficulty {
    /// High signal-to-noise; typically classified correctly at stage 1.
    Easy,
    /// Moderate blending toward a confuser class.
    Medium,
    /// Heavy blending and noise; often needs the full network, or stays
    /// ambiguous.
    Hard,
}

/// Configuration for [`SyntheticImages`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticImagesConfig {
    /// Number of classes (CIFAR-10 uses 10).
    pub num_classes: usize,
    /// Feature dimensionality of each sample.
    pub dim: usize,
    /// Fraction of samples drawn as [`Difficulty::Easy`].
    pub easy_fraction: f64,
    /// Fraction of samples drawn as [`Difficulty::Medium`]; the remainder
    /// is hard.
    pub medium_fraction: f64,
    /// Base additive noise standard deviation applied to every sample.
    pub noise: f32,
    /// Depth-demanding structure: when `true`, classes come in pairs that
    /// share a prototype and are distinguished *only* by the parity of
    /// three half-space signs (a 3-way XOR). Shallow classifiers resolve
    /// the pair but guess within it; deeper ones decode the parity — the
    /// property that makes later network stages genuinely more accurate,
    /// as in the paper's staged ResNet. Requires an even class count.
    pub paired_parity: bool,
}

impl Default for SyntheticImagesConfig {
    fn default() -> Self {
        Self {
            num_classes: 10,
            dim: 32,
            easy_fraction: 0.45,
            medium_fraction: 0.30,
            noise: 0.35,
            paired_parity: false,
        }
    }
}

/// Generator of the CIFAR-10 stand-in dataset.
///
/// Each class owns a unit prototype vector in `dim` dimensions plus a small
/// set of intra-class "style" directions; a sample is its class prototype
/// plus style variation, optionally blended toward a confuser class
/// (difficulty), plus isotropic noise.
///
/// # Examples
///
/// ```
/// use eugene_data::{SyntheticImages, SyntheticImagesConfig};
/// use eugene_tensor::seeded_rng;
///
/// let gen = SyntheticImages::new(SyntheticImagesConfig::default(), &mut seeded_rng(1));
/// let (ds, difficulty) = gen.generate(100, &mut seeded_rng(2));
/// assert_eq!(ds.len(), 100);
/// assert_eq!(difficulty.len(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticImages {
    config: SyntheticImagesConfig,
    prototypes: Matrix,
    styles: Vec<Matrix>,
    /// For each class, the class whose prototype hard samples blend toward.
    confusers: Vec<usize>,
    /// Orthonormal directions defining the parity gate (paired mode).
    parity_directions: Matrix,
}

const STYLES_PER_CLASS: usize = 3;

impl SyntheticImages {
    /// Creates a generator, drawing class prototypes from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the config has fewer than two classes, a zero dimension,
    /// or difficulty fractions outside `[0, 1]` / summing above 1.
    pub fn new(config: SyntheticImagesConfig, rng: &mut impl Rng) -> Self {
        assert!(config.num_classes >= 2, "need at least two classes");
        assert!(config.dim > 0, "dim must be positive");
        assert!(
            config.easy_fraction >= 0.0
                && config.medium_fraction >= 0.0
                && config.easy_fraction + config.medium_fraction <= 1.0,
            "difficulty fractions must be non-negative and sum to at most 1"
        );
        if config.paired_parity {
            assert!(
                config.num_classes.is_multiple_of(2),
                "paired_parity requires an even class count"
            );
            assert!(config.dim >= 3, "paired_parity requires dim >= 3");
        }
        let mut prototypes = Matrix::zeros(config.num_classes, config.dim);
        for c in 0..config.num_classes {
            // In paired mode both classes of a pair share one prototype.
            if config.paired_parity && c % 2 == 1 {
                let prev = prototypes.row(c - 1).to_vec();
                prototypes.row_mut(c).copy_from_slice(&prev);
                continue;
            }
            let row = prototypes.row_mut(c);
            let mut norm = 0.0;
            for x in row.iter_mut() {
                *x = standard_normal(rng);
                norm += *x * *x;
            }
            let norm = norm.sqrt().max(1e-6);
            for x in row.iter_mut() {
                *x /= norm;
            }
        }
        // Three orthonormal parity directions via Gram-Schmidt.
        let mut parity_directions = Matrix::zeros(3, config.dim);
        for i in 0..3 {
            let mut v: Vec<f32> = (0..config.dim).map(|_| standard_normal(rng)).collect();
            for j in 0..i {
                let prev = parity_directions.row(j);
                let dot: f32 = v.iter().zip(prev).map(|(a, b)| a * b).sum();
                for (x, p) in v.iter_mut().zip(prev) {
                    *x -= dot * p;
                }
            }
            let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
            for x in &mut v {
                *x /= norm;
            }
            if config.dim >= 3 {
                parity_directions.row_mut(i).copy_from_slice(&v);
            }
        }
        let styles = (0..config.num_classes)
            .map(|_| {
                let mut m = Matrix::zeros(STYLES_PER_CLASS, config.dim);
                for x in m.as_mut_slice() {
                    *x = standard_normal(rng) * 0.3;
                }
                m
            })
            .collect();
        // Deterministic confuser assignment: next class cyclically. This
        // gives every class exactly one class it is "like", mirroring
        // CIFAR-10's cat/dog, car/truck confusion structure.
        let confusers = (0..config.num_classes)
            .map(|c| (c + 1) % config.num_classes)
            .collect();
        Self {
            config,
            prototypes,
            styles,
            confusers,
            parity_directions,
        }
    }

    /// The generator configuration.
    pub fn config(&self) -> &SyntheticImagesConfig {
        &self.config
    }

    /// Class prototype matrix (`num_classes x dim`).
    pub fn prototypes(&self) -> &Matrix {
        &self.prototypes
    }

    /// Draws a difficulty tier according to the configured fractions.
    fn draw_difficulty(&self, rng: &mut impl Rng) -> Difficulty {
        let u: f64 = rng.gen();
        if u < self.config.easy_fraction {
            Difficulty::Easy
        } else if u < self.config.easy_fraction + self.config.medium_fraction {
            Difficulty::Medium
        } else {
            Difficulty::Hard
        }
    }

    /// Generates one sample of class `class` at the given difficulty.
    pub fn sample(&self, class: usize, difficulty: Difficulty, rng: &mut impl Rng) -> Vec<f32> {
        assert!(
            class < self.config.num_classes,
            "class {class} out of range"
        );
        let (blend, noise_scale) = match difficulty {
            Difficulty::Easy => (0.0, 1.0),
            Difficulty::Medium => (0.25, 1.6),
            Difficulty::Hard => (0.45, 2.4),
        };
        let proto = self.prototypes.row(class);
        let confuser = self.prototypes.row(self.confusers[class]);
        let style_idx = rng.gen_range(0..STYLES_PER_CLASS);
        let style = self.styles[class].row(style_idx);
        let style_weight: f32 = rng.gen_range(0.5..1.5);
        let noise = self.config.noise * noise_scale;
        let mut x: Vec<f32> = (0..self.config.dim)
            .map(|i| {
                proto[i] * (1.0 - blend)
                    + confuser[i] * blend
                    + style[i] * style_weight
                    + standard_normal(rng) * noise
            })
            .collect();
        if self.config.paired_parity {
            self.enforce_parity(&mut x, class);
        }
        x
    }

    /// Reflects the sample along the third parity direction if needed so
    /// that `sign(x*d1) * sign(x*d2) * sign(x*d3)` encodes the class's
    /// within-pair identity (+ for even classes, - for odd).
    fn enforce_parity(&self, x: &mut [f32], class: usize) {
        let dot = |d: &[f32], x: &[f32]| -> f32 { d.iter().zip(x).map(|(a, b)| a * b).sum() };
        let d3 = self.parity_directions.row(2);
        let mut product = 1.0f32;
        for i in 0..3 {
            let v = dot(self.parity_directions.row(i), x);
            product *= if v >= 0.0 { 1.0 } else { -1.0 };
        }
        let want_positive = class.is_multiple_of(2);
        if (product >= 0.0) != want_positive {
            // Householder-style reflection flips the sign of x * d3 only.
            let v = dot(d3, x);
            for (xi, di) in x.iter_mut().zip(d3) {
                *xi -= 2.0 * v * di;
            }
        }
    }

    /// Generates `n` samples with round-robin class assignment (balanced
    /// classes, like CIFAR-10) and per-sample random difficulty.
    ///
    /// Returns the dataset and the per-sample difficulty tiers, aligned by
    /// index.
    pub fn generate(&self, n: usize, rng: &mut impl Rng) -> (Dataset, Vec<Difficulty>) {
        let mut features = Matrix::zeros(n, self.config.dim);
        let mut labels = Vec::with_capacity(n);
        let mut difficulties = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % self.config.num_classes;
            let difficulty = self.draw_difficulty(rng);
            let x = self.sample(class, difficulty, rng);
            features.row_mut(i).copy_from_slice(&x);
            labels.push(class);
            difficulties.push(difficulty);
        }
        (
            Dataset::new(features, labels, self.config.num_classes),
            difficulties,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eugene_tensor::seeded_rng;

    fn generator(seed: u64) -> SyntheticImages {
        SyntheticImages::new(SyntheticImagesConfig::default(), &mut seeded_rng(seed))
    }

    #[test]
    fn prototypes_are_unit_norm() {
        let gen = generator(1);
        for c in 0..10 {
            let norm: f32 = gen.prototypes().row(c).iter().map(|x| x * x).sum();
            assert!((norm - 1.0).abs() < 1e-4, "class {c} norm {norm}");
        }
    }

    #[test]
    fn generate_is_balanced_and_aligned() {
        let gen = generator(2);
        let (ds, diff) = gen.generate(200, &mut seeded_rng(3));
        assert_eq!(ds.len(), 200);
        assert_eq!(diff.len(), 200);
        assert_eq!(ds.class_histogram(), vec![20; 10]);
    }

    #[test]
    fn generation_is_deterministic_given_seeds() {
        let gen = generator(4);
        let (a, _) = gen.generate(50, &mut seeded_rng(5));
        let (b, _) = gen.generate(50, &mut seeded_rng(5));
        assert_eq!(a, b);
    }

    #[test]
    fn difficulty_fractions_are_respected() {
        let gen = generator(6);
        let (_, diff) = gen.generate(5000, &mut seeded_rng(7));
        let easy = diff.iter().filter(|d| **d == Difficulty::Easy).count() as f64 / 5000.0;
        let hard = diff.iter().filter(|d| **d == Difficulty::Hard).count() as f64 / 5000.0;
        assert!((easy - 0.45).abs() < 0.05, "easy fraction {easy}");
        assert!((hard - 0.25).abs() < 0.05, "hard fraction {hard}");
    }

    #[test]
    fn hard_samples_sit_closer_to_confuser() {
        let gen = generator(8);
        let mut rng = seeded_rng(9);
        let class = 0;
        let confuser = 1; // cyclic assignment
        let dist = |x: &[f32], proto: &[f32]| -> f32 {
            x.iter().zip(proto).map(|(a, b)| (a - b).powi(2)).sum()
        };
        let mut easy_margin = 0.0;
        let mut hard_margin = 0.0;
        let trials = 200;
        for _ in 0..trials {
            let e = gen.sample(class, Difficulty::Easy, &mut rng);
            let h = gen.sample(class, Difficulty::Hard, &mut rng);
            easy_margin +=
                dist(&e, gen.prototypes().row(confuser)) - dist(&e, gen.prototypes().row(class));
            hard_margin +=
                dist(&h, gen.prototypes().row(confuser)) - dist(&h, gen.prototypes().row(class));
        }
        // Margin to the true class should shrink for hard samples.
        assert!(
            hard_margin < easy_margin,
            "hard samples should be nearer the confuser (easy {easy_margin}, hard {hard_margin})"
        );
    }

    #[test]
    fn nearest_prototype_classifier_beats_chance() {
        let gen = generator(10);
        let (ds, _) = gen.generate(500, &mut seeded_rng(11));
        let mut correct = 0;
        for i in 0..ds.len() {
            let x = ds.sample(i);
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for c in 0..10 {
                let d: f32 = x
                    .iter()
                    .zip(gen.prototypes().row(c))
                    .map(|(a, b)| (a - b).powi(2))
                    .sum();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if best == ds.label(i) {
                correct += 1;
            }
        }
        let acc = correct as f64 / ds.len() as f64;
        assert!(acc > 0.4, "nearest-prototype accuracy {acc} too low");
        assert!(acc < 0.999, "dataset should not be trivially separable");
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn rejects_single_class() {
        let config = SyntheticImagesConfig {
            num_classes: 1,
            ..Default::default()
        };
        SyntheticImages::new(config, &mut seeded_rng(0));
    }
}
