//! Synthetic datasets standing in for the paper's workloads.
//!
//! The Eugene evaluation runs a three-stage ResNet over CIFAR-10. The
//! properties the scheduler and calibration experiments actually depend on
//! are statistical, not visual:
//!
//! 1. ten classes with *varying per-sample difficulty* ("identifying a face
//!    in a picture could be a very easy or a very difficult task, depending
//!    on the picture", paper §III), so that confidence varies per input and
//!    extra stages help some inputs much more than others;
//! 2. enough structure that a staged classifier's accuracy increases with
//!    depth; and
//! 3. a held-out test split on which an overfit network is miscalibrated.
//!
//! [`SyntheticImages`] generates exactly that: class prototypes on a random
//! manifold, with a controllable fraction of "hard" samples whose features
//! are blended toward a confuser class and carry extra noise.
//!
//! [`SensorSeries`] generates multi-sensor time-series windows for the
//! DeepSense-style sensor-fusion examples (§II-A).

mod dataset;
mod sensor;
mod synthetic;

pub use dataset::{Batches, Dataset, Split};
pub use sensor::{SensorSeries, SensorSeriesConfig};
pub use synthetic::{Difficulty, SyntheticImages, SyntheticImagesConfig};
