use eugene_tensor::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A labeled classification dataset: an `n x d` feature matrix plus one
/// class label per row.
///
/// # Examples
///
/// ```
/// use eugene_data::Dataset;
/// use eugene_tensor::Matrix;
///
/// let ds = Dataset::new(Matrix::zeros(4, 2), vec![0, 1, 0, 1], 2);
/// assert_eq!(ds.len(), 4);
/// assert_eq!(ds.num_classes(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset from a feature matrix and per-row labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != features.rows()` or if any label is
    /// `>= num_classes`.
    pub fn new(features: Matrix, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(
            labels.len(),
            features.rows(),
            "label count {} must equal feature rows {}",
            labels.len(),
            features.rows()
        );
        assert!(
            labels.iter().all(|&y| y < num_classes),
            "all labels must be below num_classes ({num_classes})"
        );
        Self {
            features,
            labels,
            num_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.features.cols()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The full feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// All labels, aligned with feature rows.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Features of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn sample(&self, i: usize) -> &[f32] {
        self.features.row(i)
    }

    /// Label of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Returns a new dataset holding only the listed samples, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: self.features.select_rows(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            num_classes: self.num_classes,
        }
    }

    /// Returns a copy with rows shuffled by `rng`.
    pub fn shuffled(&self, rng: &mut impl Rng) -> Dataset {
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(rng);
        self.subset(&indices)
    }

    /// Splits into train/test partitions with `train_fraction` of samples in
    /// the training split (rounded down), preserving order.
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is not within `0.0..=1.0`.
    pub fn split(&self, train_fraction: f64) -> Split {
        assert!(
            (0.0..=1.0).contains(&train_fraction),
            "train_fraction must be in [0, 1], got {train_fraction}"
        );
        let n_train = (self.len() as f64 * train_fraction).floor() as usize;
        let train_idx: Vec<usize> = (0..n_train).collect();
        let test_idx: Vec<usize> = (n_train..self.len()).collect();
        Split {
            train: self.subset(&train_idx),
            test: self.subset(&test_idx),
        }
    }

    /// Iterates over `(features, labels)` mini-batches of at most
    /// `batch_size` rows.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batches(&self, batch_size: usize) -> Batches<'_> {
        assert!(batch_size > 0, "batch_size must be positive");
        Batches {
            dataset: self,
            batch_size,
            cursor: 0,
        }
    }

    /// Per-class sample counts, indexed by class id.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0; self.num_classes];
        for &y in &self.labels {
            hist[y] += 1;
        }
        hist
    }
}

/// A train/test partition produced by [`Dataset::split`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Split {
    /// The training partition.
    pub train: Dataset,
    /// The held-out partition.
    pub test: Dataset,
}

/// Iterator over mini-batches; see [`Dataset::batches`].
#[derive(Debug)]
pub struct Batches<'a> {
    dataset: &'a Dataset,
    batch_size: usize,
    cursor: usize,
}

impl Iterator for Batches<'_> {
    type Item = (Matrix, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.dataset.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.dataset.len());
        let indices: Vec<usize> = (self.cursor..end).collect();
        self.cursor = end;
        let batch = self.dataset.subset(&indices);
        Some((batch.features, batch.labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eugene_tensor::seeded_rng;

    fn toy() -> Dataset {
        let features = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[1.0, 1.0],
            &[2.0, 2.0],
            &[3.0, 3.0],
            &[4.0, 4.0],
        ]);
        Dataset::new(features, vec![0, 1, 0, 1, 0], 2)
    }

    #[test]
    fn accessors() {
        let ds = toy();
        assert_eq!(ds.len(), 5);
        assert_eq!(ds.dim(), 2);
        assert_eq!(ds.sample(2), &[2.0, 2.0]);
        assert_eq!(ds.label(3), 1);
        assert_eq!(ds.class_histogram(), vec![3, 2]);
    }

    #[test]
    #[should_panic(expected = "label count")]
    fn mismatched_labels_panic() {
        Dataset::new(Matrix::zeros(3, 2), vec![0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "below num_classes")]
    fn out_of_range_label_panics() {
        Dataset::new(Matrix::zeros(2, 2), vec![0, 2], 2);
    }

    #[test]
    fn subset_preserves_alignment() {
        let ds = toy();
        let sub = ds.subset(&[4, 0]);
        assert_eq!(sub.sample(0), &[4.0, 4.0]);
        assert_eq!(sub.label(0), 0);
        assert_eq!(sub.sample(1), &[0.0, 0.0]);
    }

    #[test]
    fn split_partitions_all_samples() {
        let ds = toy();
        let split = ds.split(0.6);
        assert_eq!(split.train.len(), 3);
        assert_eq!(split.test.len(), 2);
        assert_eq!(split.train.sample(0), &[0.0, 0.0]);
        assert_eq!(split.test.sample(0), &[3.0, 3.0]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let ds = toy();
        let mut rng = seeded_rng(5);
        let sh = ds.shuffled(&mut rng);
        assert_eq!(sh.len(), ds.len());
        let mut sums: Vec<f32> = sh.features().iter_rows().map(|r| r[0]).collect();
        sums.sort_by(f32::total_cmp);
        assert_eq!(sums, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn batches_cover_dataset_without_overlap() {
        let ds = toy();
        let batches: Vec<_> = ds.batches(2).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].0.rows(), 2);
        assert_eq!(batches[2].0.rows(), 1);
        let total: usize = batches.iter().map(|(m, _)| m.rows()).sum();
        assert_eq!(total, ds.len());
    }

    #[test]
    fn empty_split_edge_cases() {
        let ds = toy();
        let all_train = ds.split(1.0);
        assert_eq!(all_train.train.len(), 5);
        assert!(all_train.test.is_empty());
        let all_test = ds.split(0.0);
        assert!(all_test.train.is_empty());
    }
}
