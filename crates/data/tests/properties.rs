//! Property-based tests for dataset plumbing and the synthetic generators.

use eugene_data::{Dataset, SyntheticImages, SyntheticImagesConfig};
use eugene_tensor::{seeded_rng, Matrix};
use proptest::prelude::*;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..6, 1usize..5, 1usize..40).prop_flat_map(|(classes, dim, n)| {
        (
            prop::collection::vec(-5.0f32..5.0, n * dim),
            prop::collection::vec(0usize..classes, n),
        )
            .prop_map(move |(data, labels)| {
                Dataset::new(Matrix::from_vec(n, dim, data), labels, classes)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn split_partitions_without_loss(ds in dataset_strategy(), fraction in 0.0f64..=1.0) {
        let split = ds.split(fraction);
        prop_assert_eq!(split.train.len() + split.test.len(), ds.len());
        // Order is preserved: train is a prefix, test the suffix.
        for i in 0..split.train.len() {
            prop_assert_eq!(split.train.sample(i), ds.sample(i));
            prop_assert_eq!(split.train.label(i), ds.label(i));
        }
        for i in 0..split.test.len() {
            prop_assert_eq!(split.test.sample(i), ds.sample(split.train.len() + i));
        }
    }

    #[test]
    fn batches_partition_the_dataset(ds in dataset_strategy(), batch in 1usize..10) {
        let mut covered = 0;
        for (features, labels) in ds.batches(batch) {
            prop_assert_eq!(features.rows(), labels.len());
            prop_assert!(features.rows() <= batch);
            covered += features.rows();
        }
        prop_assert_eq!(covered, ds.len());
    }

    #[test]
    fn shuffle_preserves_feature_label_pairs(ds in dataset_strategy(), seed in 0u64..1000) {
        let mut rng = seeded_rng(seed);
        let shuffled = ds.shuffled(&mut rng);
        prop_assert_eq!(shuffled.len(), ds.len());
        // Every (feature row, label) pair in the shuffle exists in the
        // original (multiset equality via sorted signatures).
        let signature = |d: &Dataset| {
            let mut sigs: Vec<(Vec<u32>, usize)> = (0..d.len())
                .map(|i| {
                    (
                        d.sample(i).iter().map(|f| f.to_bits()).collect(),
                        d.label(i),
                    )
                })
                .collect();
            sigs.sort();
            sigs
        };
        prop_assert_eq!(signature(&shuffled), signature(&ds));
    }

    #[test]
    fn class_histogram_sums_to_len(ds in dataset_strategy()) {
        prop_assert_eq!(ds.class_histogram().iter().sum::<usize>(), ds.len());
    }

    #[test]
    fn generator_output_is_balanced_and_finite(
        seed in 0u64..500,
        n in 10usize..120,
        paired in any::<bool>(),
    ) {
        let mut rng = seeded_rng(seed);
        let config = SyntheticImagesConfig {
            num_classes: 4,
            dim: 8,
            paired_parity: paired,
            ..Default::default()
        };
        let gen = SyntheticImages::new(config, &mut rng);
        let (ds, difficulty) = gen.generate(n, &mut rng);
        prop_assert_eq!(ds.len(), n);
        prop_assert_eq!(difficulty.len(), n);
        prop_assert!(ds.features().as_slice().iter().all(|x| x.is_finite()));
        let hist = ds.class_histogram();
        let max = hist.iter().max().unwrap();
        let min = hist.iter().min().unwrap();
        prop_assert!(max - min <= 1, "round-robin assignment stays balanced");
    }

    #[test]
    fn parity_gate_is_consistent_with_labels(seed in 0u64..200) {
        // In paired mode the within-pair identity must be decodable from
        // the parity of the three gate directions.
        let mut rng = seeded_rng(seed);
        let config = SyntheticImagesConfig {
            num_classes: 6,
            dim: 12,
            paired_parity: true,
            ..Default::default()
        };
        let gen = SyntheticImages::new(config, &mut rng);
        let (ds, _) = gen.generate(60, &mut rng);
        // Reconstruct the gate: classes 2c and 2c+1 share a prototype, so
        // identical-prototype rows confirm the pairing.
        for c in 0..3 {
            prop_assert_eq!(gen.prototypes().row(2 * c), gen.prototypes().row(2 * c + 1));
        }
        let _ = ds;
    }
}
