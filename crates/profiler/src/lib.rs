//! Execution-time profiling of neural-network layers (paper §II-C,
//! Table I; FastDeepIoT-style, the paper's \[9\]).
//!
//! The paper's Table I shows that on a mobile device the execution time of
//! a convolutional layer is **not** a linear function of its FLOP count:
//! layers with identical FLOPs differ by ~2.6x, and a layer with *more*
//! FLOPs can run *faster*. The cause is regime changes in the underlying
//! GEMM kernels (SIMD tile occupancy across output channels, cache
//! blocking across input channels). The remedy, per FastDeepIoT, is an
//! automated profiler that "breaks execution models into piece-wise linear
//! regions" and fits a regression per region.
//!
//! This crate provides:
//!
//! - [`ConvSpec`] and [`ConvSpec::flops`]: layer descriptions and FLOP
//!   counting;
//! - [`DeviceModel`]: an analytic mobile-CPU latency model calibrated so
//!   the four Table I rows land on the paper's measured numbers (within a
//!   few percent) — this is our stand-in for the Nexus 5 testbed;
//! - [`PwlRegressionTree`]: a CART-style regression tree with linear leaf
//!   models — the piecewise-linear profiler — plus a naive
//!   linear-in-FLOPs baseline [`FlopsLinearModel`] that demonstrably fails
//!   on the same data;
//! - [`StageCostModel`]: the per-stage cost accessor the serving
//!   runtime's utility-density scheduler reads — analytic priors (priced
//!   on a [`DeviceModel`]) refined online by measured stage latencies.
//!
//! # Examples
//!
//! ```
//! use eugene_profiler::{ConvSpec, DeviceModel};
//!
//! let device = DeviceModel::nexus5_class();
//! let cnn1 = ConvSpec::same_padding(8, 32, 3, 224);
//! let cnn2 = ConvSpec::same_padding(32, 8, 3, 224);
//! assert_eq!(cnn1.flops(), cnn2.flops());
//! // Equal FLOPs, very different latency (Table I).
//! assert!(device.latency_ms(&cnn2) > 2.0 * device.latency_ms(&cnn1));
//! ```

mod device;
mod flops;
mod stage_cost;
mod tree;

pub use device::DeviceModel;
pub use flops::ConvSpec;
pub use stage_cost::StageCostModel;
// Re-exported so cost-model consumers can tag observations without a
// direct tensor dependency.
pub use eugene_tensor::Precision;
pub use tree::{FlopsLinearModel, PwlRegressionTree, TreeConfig};
