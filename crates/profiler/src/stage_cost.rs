use crate::{ConvSpec, DeviceModel};
use eugene_tensor::Precision;

/// Per-stage execution-cost model for a staged network: analytic priors
/// refined online by measured stage latencies.
///
/// The serving runtime's utility-density scheduler needs Δtime — how long
/// the *next* stage of a request will take — before it has run that stage
/// even once. The priors supply that cold-start estimate (priced from the
/// §II-C device model, or any other source), and every measured stage
/// execution then folds into an exponential moving average, so the
/// estimate converges on the deployment's real per-stage latency without
/// ever being undefined.
///
/// # Examples
///
/// ```
/// use eugene_profiler::StageCostModel;
///
/// let mut cost = StageCostModel::from_priors(vec![2.0, 4.0, 8.0]);
/// assert_eq!(cost.estimate_ms(1), 4.0);
/// // Measurements pull the estimate toward observed reality.
/// for _ in 0..100 {
///     cost.observe_ms(1, 10.0);
/// }
/// assert!((cost.estimate_ms(1) - 10.0).abs() < 0.5);
/// // Stages beyond the model fall back to the deepest known stage.
/// assert_eq!(cost.estimate_ms(9), cost.estimate_ms(2));
/// ```
/// Measurements are kept in separate lanes per [`Precision`]: a stage
/// served quantized (i8 kernels) runs several times faster than the
/// same stage in f32, so folding both into one EMA would poison the
/// estimate for whichever precision runs less often. The untagged
/// `observe_ms`/`estimate_ms` are the f32 lane; quantized callers use
/// the `_precision_` variants.
#[derive(Debug, Clone, PartialEq)]
pub struct StageCostModel {
    /// Analytic prior per stage, in milliseconds.
    priors_ms: Vec<f64>,
    /// Measured EMA per stage and precision lane; `None` until that
    /// (stage, precision) pair has run once.
    measured_ms: Vec<[Option<f64>; Precision::COUNT]>,
    /// EMA smoothing factor in `(0, 1]`: weight of the newest sample.
    alpha: f64,
}

/// Fallback estimate when a model is built with no stages at all.
const DEFAULT_STAGE_MS: f64 = 1.0;

impl StageCostModel {
    /// Builds a model from analytic per-stage priors in milliseconds.
    /// Non-finite or non-positive priors are clamped to a small epsilon
    /// so densities derived from them stay finite.
    pub fn from_priors(priors_ms: Vec<f64>) -> Self {
        let priors_ms: Vec<f64> = priors_ms
            .into_iter()
            .map(|p| if p.is_finite() && p > 0.0 { p } else { 1e-3 })
            .collect();
        let measured_ms = vec![[None; Precision::COUNT]; priors_ms.len()];
        Self {
            priors_ms,
            measured_ms,
            alpha: 0.2,
        }
    }

    /// A flat prior: `num_stages` stages of `stage_ms` each.
    pub fn uniform(num_stages: usize, stage_ms: f64) -> Self {
        Self::from_priors(vec![stage_ms; num_stages])
    }

    /// Prices each stage (a sequence of layers) on a device model — the
    /// §II-C profiler supplying the scheduler's cold-start Δtime.
    pub fn from_device(device: &DeviceModel, stages: &[Vec<ConvSpec>]) -> Self {
        Self::from_priors(
            stages
                .iter()
                .map(|layers| device.network_latency_ms(layers))
                .collect(),
        )
    }

    /// Number of stages the model describes.
    pub fn num_stages(&self) -> usize {
        self.priors_ms.len()
    }

    /// Overrides the EMA smoothing factor (clamped to `(0, 1]`).
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha.clamp(1e-3, 1.0);
        self
    }

    /// Folds one measured f32 execution of `stage` (in milliseconds)
    /// into the moving average. Out-of-range stages and junk samples
    /// are ignored.
    pub fn observe_ms(&mut self, stage: usize, sample_ms: f64) {
        self.observe_precision_ms(stage, Precision::F32, sample_ms);
    }

    /// Folds one measured execution of `stage` at `precision` into that
    /// precision lane's moving average. Out-of-range stages and junk
    /// samples are ignored.
    pub fn observe_precision_ms(&mut self, stage: usize, precision: Precision, sample_ms: f64) {
        if stage >= self.measured_ms.len() || !sample_ms.is_finite() || sample_ms < 0.0 {
            return;
        }
        let slot = &mut self.measured_ms[stage][precision.index()];
        *slot = Some(match *slot {
            Some(ema) => ema + self.alpha * (sample_ms - ema),
            None => sample_ms,
        });
    }

    /// Best current estimate of one f32 execution of `stage`, in
    /// milliseconds: the measured EMA when the stage has run, the
    /// analytic prior otherwise. Stages past the end of the model reuse
    /// the deepest known stage (degenerate models fall back to
    /// [`DEFAULT_STAGE_MS`]).
    pub fn estimate_ms(&self, stage: usize) -> f64 {
        self.estimate_precision_ms(stage, Precision::F32)
    }

    /// Best current estimate of one execution of `stage` at
    /// `precision`. Each precision lane prefers its own measured EMA; a
    /// lane that has never run falls back to the analytic prior (which
    /// is f32-derived — conservative for quantized stages, and replaced
    /// by the lane's first real sample).
    pub fn estimate_precision_ms(&self, stage: usize, precision: Precision) -> f64 {
        if self.priors_ms.is_empty() {
            return DEFAULT_STAGE_MS;
        }
        let stage = stage.min(self.priors_ms.len() - 1);
        match self.measured_ms[stage][precision.index()] {
            Some(ema) => ema.max(1e-6),
            None => self.priors_ms[stage],
        }
    }

    /// Estimated cost of running stages `from..until` (exclusive) in
    /// f32, i.e. the remaining work of a request that has finished
    /// `from` stages.
    pub fn remaining_ms(&self, from: usize, until: usize) -> f64 {
        (from..until).map(|s| self.estimate_ms(s)).sum()
    }

    /// [`Self::remaining_ms`] with a per-stage precision lookup, for
    /// engines whose stages run in mixed precision.
    pub fn remaining_precision_ms(
        &self,
        from: usize,
        until: usize,
        precision_of: impl Fn(usize) -> Precision,
    ) -> f64 {
        (from..until)
            .map(|s| self.estimate_precision_ms(s, precision_of(s)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priors_answer_before_any_measurement() {
        let cost = StageCostModel::from_priors(vec![1.0, 2.0, 3.0]);
        assert_eq!(cost.estimate_ms(0), 1.0);
        assert_eq!(cost.estimate_ms(2), 3.0);
        assert_eq!(cost.remaining_ms(1, 3), 5.0);
    }

    #[test]
    fn measurements_converge_and_only_touch_their_stage() {
        let mut cost = StageCostModel::from_priors(vec![1.0, 2.0]);
        for _ in 0..200 {
            cost.observe_ms(0, 7.0);
        }
        assert!((cost.estimate_ms(0) - 7.0).abs() < 1e-3);
        assert_eq!(cost.estimate_ms(1), 2.0, "stage 1 still on its prior");
    }

    #[test]
    fn junk_samples_and_bad_stages_are_ignored() {
        let mut cost = StageCostModel::from_priors(vec![1.0]);
        cost.observe_ms(0, f64::NAN);
        cost.observe_ms(0, -5.0);
        cost.observe_ms(99, 5.0);
        assert_eq!(cost.estimate_ms(0), 1.0);
    }

    #[test]
    fn degenerate_priors_are_clamped() {
        let cost = StageCostModel::from_priors(vec![0.0, f64::INFINITY, -1.0]);
        for s in 0..3 {
            let e = cost.estimate_ms(s);
            assert!(e.is_finite() && e > 0.0, "stage {s}: {e}");
        }
        let empty = StageCostModel::from_priors(vec![]);
        assert_eq!(empty.estimate_ms(0), DEFAULT_STAGE_MS);
        assert_eq!(empty.remaining_ms(0, 3), 3.0 * DEFAULT_STAGE_MS);
    }

    #[test]
    fn device_pricing_matches_network_latency() {
        let device = DeviceModel::nexus5_class();
        let stages = vec![
            vec![ConvSpec::same_padding(8, 16, 3, 32)],
            vec![
                ConvSpec::same_padding(16, 16, 3, 32),
                ConvSpec::same_padding(16, 32, 3, 16),
            ],
        ];
        let cost = StageCostModel::from_device(&device, &stages);
        assert_eq!(cost.num_stages(), 2);
        assert!((cost.estimate_ms(0) - device.network_latency_ms(&stages[0])).abs() < 1e-9);
        assert!((cost.estimate_ms(1) - device.network_latency_ms(&stages[1])).abs() < 1e-9);
        assert!(cost.estimate_ms(1) > cost.estimate_ms(0));
    }

    #[test]
    fn precision_lanes_do_not_poison_each_other() {
        let mut cost = StageCostModel::from_priors(vec![4.0]);
        for _ in 0..200 {
            cost.observe_precision_ms(0, Precision::Int8, 1.0);
        }
        assert!((cost.estimate_precision_ms(0, Precision::Int8) - 1.0).abs() < 1e-3);
        assert_eq!(cost.estimate_ms(0), 4.0, "f32 lane still on its prior");
        for _ in 0..200 {
            cost.observe_ms(0, 8.0);
        }
        assert!((cost.estimate_ms(0) - 8.0).abs() < 1e-3);
        assert!(
            (cost.estimate_precision_ms(0, Precision::Int8) - 1.0).abs() < 1e-3,
            "int8 lane untouched by f32 samples"
        );
        let rem = cost.remaining_precision_ms(0, 1, |_| Precision::Int8);
        assert!((rem - 1.0).abs() < 1e-3);
    }

    #[test]
    fn out_of_range_stage_reuses_deepest_estimate() {
        let mut cost = StageCostModel::from_priors(vec![1.0, 4.0]);
        cost.observe_ms(1, 6.0);
        assert_eq!(cost.estimate_ms(5), cost.estimate_ms(1));
    }
}
