use crate::ConvSpec;
use serde::{Deserialize, Serialize};

/// Number of regression features extracted from a [`ConvSpec`].
const NUM_FEATURES: usize = 4;

/// Feature vector used by the profiler models: mega-MACs, input channels,
/// output channels, and spatial size. These are the "relevant neural
/// network parameters" the FastDeepIoT profiler regresses over within each
/// piecewise-linear region.
fn features(spec: &ConvSpec) -> [f64; NUM_FEATURES] {
    [
        spec.macs() as f64 / 1e6,
        spec.in_channels as f64,
        spec.out_channels as f64,
        spec.input_size as f64,
    ]
}

/// Ordinary least squares with a tiny ridge term, solved by Gaussian
/// elimination on the normal equations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct LinearModel {
    /// `coefficients[0]` is the intercept; the rest align with `features`.
    coefficients: Vec<f64>,
}

impl LinearModel {
    fn fit(xs: &[[f64; NUM_FEATURES]], ys: &[f64]) -> Self {
        let d = NUM_FEATURES + 1;
        let mut ata = vec![0.0; d * d];
        let mut atb = vec![0.0; d];
        for (x, &y) in xs.iter().zip(ys) {
            let mut row = [0.0; NUM_FEATURES + 1];
            row[0] = 1.0;
            row[1..].copy_from_slice(x);
            for i in 0..d {
                atb[i] += row[i] * y;
                for j in 0..d {
                    ata[i * d + j] += row[i] * row[j];
                }
            }
        }
        // Ridge for numerical safety on degenerate leaves.
        for i in 0..d {
            ata[i * d + i] += 1e-6;
        }
        let coefficients = solve_dense(&mut ata, &mut atb, d);
        Self { coefficients }
    }

    fn predict(&self, x: &[f64; NUM_FEATURES]) -> f64 {
        self.coefficients[0]
            + self.coefficients[1..]
                .iter()
                .zip(x)
                .map(|(c, v)| c * v)
                .sum::<f64>()
    }

    fn sse(&self, xs: &[[f64; NUM_FEATURES]], ys: &[f64]) -> f64 {
        xs.iter()
            .zip(ys)
            .map(|(x, &y)| {
                let e = self.predict(x) - y;
                e * e
            })
            .sum()
    }
}

/// Gaussian elimination with partial pivoting on an `n x n` system.
fn solve_dense(a: &mut [f64], b: &mut [f64], n: usize) -> Vec<f64> {
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for r in col + 1..n {
            if a[r * n + col].abs() > a[pivot * n + col].abs() {
                pivot = r;
            }
        }
        if pivot != col {
            for c in 0..n {
                a.swap(col * n + c, pivot * n + c);
            }
            b.swap(col, pivot);
        }
        let diag = a[col * n + col];
        if diag.abs() < 1e-12 {
            continue;
        }
        for r in col + 1..n {
            let factor = a[r * n + col] / diag;
            for c in col..n {
                a[r * n + c] -= factor * a[col * n + c];
            }
            b[r] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = b[i];
        for j in i + 1..n {
            sum -= a[i * n + j] * x[j];
        }
        let diag = a[i * n + i];
        x[i] = if diag.abs() < 1e-12 { 0.0 } else { sum / diag };
    }
    x
}

/// Configuration for [`PwlRegressionTree::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// A split must reduce SSE by at least this relative fraction.
    pub min_improvement: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 4,
            min_samples_leaf: 16,
            min_improvement: 0.02,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf(LinearModel),
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// The FastDeepIoT-style profiler: a regression tree whose leaves are
/// linear models, i.e. a learned piecewise-linear latency function.
///
/// The splits discover the device's regime boundaries (output-channel tile
/// occupancy, input-channel cache spill); each leaf then regresses latency
/// on MACs and channel counts within one regime.
///
/// # Examples
///
/// See `crates/bench/src/bin/table1_profiling.rs` for the end-to-end
/// Table I reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PwlRegressionTree {
    root: Node,
    leaves: usize,
}

impl PwlRegressionTree {
    /// Fits the tree to `(spec, measured latency)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the training set is empty or lengths differ.
    pub fn fit(specs: &[ConvSpec], latencies_ms: &[f64], config: TreeConfig) -> Self {
        assert!(!specs.is_empty(), "training set must be non-empty");
        assert_eq!(specs.len(), latencies_ms.len(), "one latency per spec");
        let xs: Vec<[f64; NUM_FEATURES]> = specs.iter().map(features).collect();
        let mut leaves = 0;
        let root = build(&xs, latencies_ms, 0, &config, &mut leaves);
        Self { root, leaves }
    }

    /// Number of leaf regions the tree discovered.
    pub fn num_leaves(&self) -> usize {
        self.leaves
    }

    /// Predicts the latency of `spec` in milliseconds.
    pub fn predict_ms(&self, spec: &ConvSpec) -> f64 {
        let x = features(spec);
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(model) => return model.predict(&x),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Mean absolute percentage error on a labeled set.
    ///
    /// # Panics
    ///
    /// Panics if the slices are empty or differ in length.
    pub fn mape(&self, specs: &[ConvSpec], latencies_ms: &[f64]) -> f64 {
        mape_of(|s| self.predict_ms(s), specs, latencies_ms)
    }
}

fn build(
    xs: &[[f64; NUM_FEATURES]],
    ys: &[f64],
    depth: usize,
    config: &TreeConfig,
    leaves: &mut usize,
) -> Node {
    let model = LinearModel::fit(xs, ys);
    let parent_sse = model.sse(xs, ys);
    if depth >= config.max_depth || xs.len() < 2 * config.min_samples_leaf || parent_sse <= 1e-9 {
        *leaves += 1;
        return Node::Leaf(model);
    }
    let mut best: Option<(f64, usize, f64)> = None; // (sse, feature, threshold)
    for feature in 0..NUM_FEATURES {
        let mut values: Vec<f64> = xs.iter().map(|x| x[feature]).collect();
        values.sort_by(f64::total_cmp);
        values.dedup();
        if values.len() < 2 {
            continue;
        }
        // Candidate thresholds at deciles of the distinct values.
        for q in 1..10 {
            let idx = values.len() * q / 10;
            if idx == 0 || idx >= values.len() {
                continue;
            }
            let threshold = (values[idx - 1] + values[idx]) / 2.0;
            let (mut lx, mut ly, mut rx, mut ry) = (vec![], vec![], vec![], vec![]);
            for (x, &y) in xs.iter().zip(ys) {
                if x[feature] <= threshold {
                    lx.push(*x);
                    ly.push(y);
                } else {
                    rx.push(*x);
                    ry.push(y);
                }
            }
            if lx.len() < config.min_samples_leaf || rx.len() < config.min_samples_leaf {
                continue;
            }
            let sse =
                LinearModel::fit(&lx, &ly).sse(&lx, &ly) + LinearModel::fit(&rx, &ry).sse(&rx, &ry);
            if best.as_ref().is_none_or(|(b, _, _)| sse < *b) {
                best = Some((sse, feature, threshold));
            }
        }
    }
    match best {
        Some((sse, feature, threshold)) if sse < parent_sse * (1.0 - config.min_improvement) => {
            let (mut lx, mut ly, mut rx, mut ry) = (vec![], vec![], vec![], vec![]);
            for (x, &y) in xs.iter().zip(ys) {
                if x[feature] <= threshold {
                    lx.push(*x);
                    ly.push(y);
                } else {
                    rx.push(*x);
                    ry.push(y);
                }
            }
            Node::Split {
                feature,
                threshold,
                left: Box::new(build(&lx, &ly, depth + 1, config, leaves)),
                right: Box::new(build(&rx, &ry, depth + 1, config, leaves)),
            }
        }
        _ => {
            *leaves += 1;
            Node::Leaf(model)
        }
    }
}

/// The naive baseline the paper argues against: latency as a single linear
/// function of FLOPs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlopsLinearModel {
    intercept: f64,
    slope_per_gflop: f64,
}

impl FlopsLinearModel {
    /// Least-squares fit of `latency = a + b * GFLOPs`.
    ///
    /// # Panics
    ///
    /// Panics if the training set is empty or lengths differ.
    pub fn fit(specs: &[ConvSpec], latencies_ms: &[f64]) -> Self {
        assert!(!specs.is_empty(), "training set must be non-empty");
        assert_eq!(specs.len(), latencies_ms.len(), "one latency per spec");
        let xs: Vec<f64> = specs.iter().map(|s| s.flops() as f64 / 1e9).collect();
        let n = xs.len() as f64;
        let mean_x = xs.iter().sum::<f64>() / n;
        let mean_y = latencies_ms.iter().sum::<f64>() / n;
        let mut cov = 0.0;
        let mut var = 0.0;
        for (x, y) in xs.iter().zip(latencies_ms) {
            cov += (x - mean_x) * (y - mean_y);
            var += (x - mean_x) * (x - mean_x);
        }
        let slope = if var > 1e-12 { cov / var } else { 0.0 };
        Self {
            intercept: mean_y - slope * mean_x,
            slope_per_gflop: slope,
        }
    }

    /// Predicted latency in milliseconds.
    pub fn predict_ms(&self, spec: &ConvSpec) -> f64 {
        self.intercept + self.slope_per_gflop * spec.flops() as f64 / 1e9
    }

    /// Mean absolute percentage error on a labeled set.
    ///
    /// # Panics
    ///
    /// Panics if the slices are empty or differ in length.
    pub fn mape(&self, specs: &[ConvSpec], latencies_ms: &[f64]) -> f64 {
        mape_of(|s| self.predict_ms(s), specs, latencies_ms)
    }
}

fn mape_of(predict: impl Fn(&ConvSpec) -> f64, specs: &[ConvSpec], ys: &[f64]) -> f64 {
    assert!(!specs.is_empty(), "mape of empty set");
    assert_eq!(specs.len(), ys.len(), "one latency per spec");
    specs
        .iter()
        .zip(ys)
        .map(|(s, &y)| (predict(s) - y).abs() / y.max(1e-9))
        .sum::<f64>()
        / specs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceModel;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_specs(n: usize, rng: &mut StdRng) -> Vec<ConvSpec> {
        (0..n)
            .map(|_| {
                ConvSpec::same_padding(
                    rng.gen_range(1..129),
                    rng.gen_range(1..129),
                    3,
                    // Profile at one spatial size, as the paper's table does.
                    112,
                )
            })
            .collect()
    }

    fn labeled(n: usize, seed: u64, noise: f64) -> (Vec<ConvSpec>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let device = DeviceModel::nexus5_class();
        let specs = random_specs(n, &mut rng);
        let ys = specs
            .iter()
            .map(|s| device.measure_ms(s, noise, &mut rng))
            .collect();
        (specs, ys)
    }

    #[test]
    fn tree_fits_device_regimes_much_better_than_flops_line() {
        let (train_s, train_y) = labeled(600, 1, 0.02);
        let (test_s, test_y) = labeled(200, 2, 0.0);
        let tree = PwlRegressionTree::fit(&train_s, &train_y, TreeConfig::default());
        let line = FlopsLinearModel::fit(&train_s, &train_y);
        let tree_err = tree.mape(&test_s, &test_y);
        let line_err = line.mape(&test_s, &test_y);
        assert!(
            tree_err < line_err / 2.0,
            "tree {tree_err:.3} should beat FLOPs line {line_err:.3} by 2x+"
        );
        assert!(tree_err < 0.25, "tree MAPE {tree_err:.3} too high");
        assert!(
            tree.num_leaves() > 1,
            "tree should discover multiple regimes"
        );
    }

    #[test]
    fn tree_predicts_table1_inversion() {
        let (train_s, train_y) = labeled(800, 3, 0.02);
        let tree = PwlRegressionTree::fit(&train_s, &train_y, TreeConfig::default());
        let rows = ConvSpec::table1_rows();
        // Scale the table rows down to the training spatial size: the
        // regime structure is channel-driven, so the inversion persists.
        let scale = |spec: ConvSpec| ConvSpec {
            input_size: 112,
            ..spec
        };
        let t1 = tree.predict_ms(&scale(rows[0].1));
        let t2 = tree.predict_ms(&scale(rows[1].1));
        assert!(
            t2 > 1.5 * t1,
            "learned model should reproduce the equal-FLOPs split: {t1:.1} vs {t2:.1}"
        );
    }

    #[test]
    fn flops_line_cannot_separate_equal_flops_layers() {
        let (train_s, train_y) = labeled(300, 4, 0.0);
        let line = FlopsLinearModel::fit(&train_s, &train_y);
        let a = ConvSpec::same_padding(8, 32, 3, 112);
        let b = ConvSpec::same_padding(32, 8, 3, 112);
        assert_eq!(line.predict_ms(&a), line.predict_ms(&b));
    }

    #[test]
    fn deeper_trees_do_not_underperform_stumps() {
        let (train_s, train_y) = labeled(400, 5, 0.0);
        let stump = PwlRegressionTree::fit(
            &train_s,
            &train_y,
            TreeConfig {
                max_depth: 0,
                ..TreeConfig::default()
            },
        );
        let tree = PwlRegressionTree::fit(&train_s, &train_y, TreeConfig::default());
        assert!(tree.mape(&train_s, &train_y) <= stump.mape(&train_s, &train_y) + 1e-9);
        assert_eq!(stump.num_leaves(), 1);
    }

    #[test]
    fn linear_model_recovers_exact_linear_data() {
        let xs: Vec<[f64; NUM_FEATURES]> = (0..50)
            .map(|i| {
                let v = i as f64;
                [v, 2.0 * v, v * v % 7.0, 1.0]
            })
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x[0] - x[2]).collect();
        let model = LinearModel::fit(&xs, &ys);
        for (x, &y) in xs.iter().zip(&ys) {
            assert!((model.predict(x) - y).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_training_set_panics() {
        PwlRegressionTree::fit(&[], &[], TreeConfig::default());
    }
}
