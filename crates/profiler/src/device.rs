use crate::ConvSpec;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Analytic latency model of a mobile-class CPU running convolution via
/// im2col + GEMM — the reproduction's stand-in for the paper's Nexus 5
/// measurements.
///
/// The dominant nonlinearity in mobile GEMM latency is **SIMD tile
/// occupancy across output channels**: a kernel that vectorizes over
/// output channels wastes most of each vector register when
/// `out_channels` is small, and reaches peak efficiency only once
/// `out_channels` fills a full register tile (~64 lanes' worth of work).
/// A secondary effect is cache blocking across input channels. Both
/// appear in the model as piecewise-linear *efficiency multipliers* on
/// the MAC count, which is exactly the structure the FastDeepIoT profiler
/// ([`crate::PwlRegressionTree`]) is designed to recover.
///
/// The default calibration ([`DeviceModel::nexus5_class`]) lands the four
/// Table I rows on the paper's measured milliseconds within a few percent:
///
/// | row | paper (ms) | model (ms) |
/// |-----|-----------|------------|
/// | CNN1 (8→32)  | 114.9 | ≈ 115 |
/// | CNN2 (32→8)  | 300.2 | ≈ 301 |
/// | CNN3 (66→32) | 908.3 | ≈ 946 |
/// | CNN4 (43→64) | 751.7 | ≈ 752 |
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Milliseconds per MAC at peak efficiency.
    ms_per_mac: f64,
    /// Piecewise-linear efficiency multiplier keyed by output channels:
    /// `(out_channels, multiplier)` knots, strictly increasing in x.
    out_channel_penalty: Vec<(f64, f64)>,
    /// Additional multiplier applied above this many input channels
    /// (cache-blocking spill).
    in_channel_spill_threshold: f64,
    /// The spill multiplier.
    in_channel_spill_penalty: f64,
    /// Fixed per-layer dispatch overhead in ms.
    overhead_ms: f64,
}

impl DeviceModel {
    /// The calibration used throughout the reproduction (see type docs).
    pub fn nexus5_class() -> Self {
        Self {
            ms_per_mac: 0.605e-6,
            out_channel_penalty: vec![
                (1.0, 5.2),
                (8.0, 4.3),
                (16.0, 2.6),
                (32.0, 1.64),
                (64.0, 1.0),
                (256.0, 0.92),
            ],
            in_channel_spill_threshold: 96.0,
            in_channel_spill_penalty: 1.35,
            overhead_ms: 0.4,
        }
    }

    /// A faster edge-accelerator-class profile (used by the collaborative
    /// inferencing experiments for context, roughly Movidius-class for the
    /// workloads in §IV).
    pub fn edge_accelerator_class() -> Self {
        Self {
            ms_per_mac: 0.08e-6,
            out_channel_penalty: vec![(1.0, 3.0), (16.0, 1.6), (64.0, 1.0), (512.0, 0.95)],
            in_channel_spill_threshold: 256.0,
            in_channel_spill_penalty: 1.2,
            overhead_ms: 0.8,
        }
    }

    fn out_penalty(&self, out_channels: f64) -> f64 {
        let knots = &self.out_channel_penalty;
        if out_channels <= knots[0].0 {
            return knots[0].1;
        }
        let last = knots.len() - 1;
        if out_channels >= knots[last].0 {
            return knots[last].1;
        }
        for pair in knots.windows(2) {
            let (x0, y0) = pair[0];
            let (x1, y1) = pair[1];
            if out_channels <= x1 {
                let t = (out_channels - x0) / (x1 - x0);
                return y0 + t * (y1 - y0);
            }
        }
        knots[last].1
    }

    fn in_penalty(&self, in_channels: f64) -> f64 {
        if in_channels > self.in_channel_spill_threshold {
            self.in_channel_spill_penalty
        } else {
            1.0
        }
    }

    /// Deterministic latency of one layer in milliseconds.
    pub fn latency_ms(&self, spec: &ConvSpec) -> f64 {
        let macs = spec.macs() as f64;
        self.overhead_ms
            + macs
                * self.ms_per_mac
                * self.out_penalty(spec.out_channels as f64)
                * self.in_penalty(spec.in_channels as f64)
    }

    /// A noisy "measurement" of the layer's latency, as a real profiling
    /// run would observe: multiplicative noise of the given relative
    /// standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `rel_noise` is negative.
    pub fn measure_ms(&self, spec: &ConvSpec, rel_noise: f64, rng: &mut impl Rng) -> f64 {
        assert!(rel_noise >= 0.0, "relative noise must be non-negative");
        let clean = self.latency_ms(spec);
        if rel_noise == 0.0 {
            return clean;
        }
        // Uniform multiplicative jitter is adequate for regression tests.
        let factor = 1.0 + rng.gen_range(-rel_noise..rel_noise);
        clean * factor.max(0.05)
    }

    /// Latency of a whole network described as a sequence of layers.
    pub fn network_latency_ms(&self, specs: &[ConvSpec]) -> f64 {
        specs.iter().map(|s| self.latency_ms(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eugene_tensor_seed::seeded;

    // Tiny local helper to avoid a tensor dependency just for an RNG.
    mod eugene_tensor_seed {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        pub fn seeded(seed: u64) -> StdRng {
            StdRng::seed_from_u64(seed)
        }
    }

    fn table1() -> [(&'static str, ConvSpec); 4] {
        ConvSpec::table1_rows()
    }

    #[test]
    fn equal_flops_rows_differ_in_latency_by_table1_ratio() {
        let device = DeviceModel::nexus5_class();
        let rows = table1();
        let t1 = device.latency_ms(&rows[0].1);
        let t2 = device.latency_ms(&rows[1].1);
        // Paper: 114.9 vs 300.2 — ratio ~2.6.
        let ratio = t2 / t1;
        assert!(
            (2.2..3.2).contains(&ratio),
            "CNN2/CNN1 latency ratio {ratio} outside Table I shape"
        );
    }

    #[test]
    fn fewer_flops_can_take_longer() {
        let device = DeviceModel::nexus5_class();
        let rows = table1();
        assert!(rows[2].1.flops() < rows[3].1.flops());
        assert!(
            device.latency_ms(&rows[2].1) > device.latency_ms(&rows[3].1),
            "CNN3 must be slower than CNN4 despite fewer FLOPs"
        );
    }

    #[test]
    fn absolute_latencies_are_close_to_paper() {
        let device = DeviceModel::nexus5_class();
        let rows = table1();
        let paper = [114.9, 300.2, 908.3, 751.7];
        for ((name, spec), &expected) in rows.iter().zip(&paper) {
            let got = device.latency_ms(spec);
            let rel = (got - expected).abs() / expected;
            assert!(
                rel < 0.10,
                "{name}: modeled {got:.1} ms vs paper {expected} ms ({}% off)",
                (rel * 100.0) as i32
            );
        }
    }

    #[test]
    fn latency_is_monotone_in_spatial_size() {
        let device = DeviceModel::nexus5_class();
        let small = ConvSpec::same_padding(16, 16, 3, 112);
        let large = ConvSpec::same_padding(16, 16, 3, 224);
        assert!(device.latency_ms(&large) > device.latency_ms(&small));
    }

    #[test]
    fn measurement_noise_brackets_clean_latency() {
        let device = DeviceModel::nexus5_class();
        let spec = ConvSpec::same_padding(8, 32, 3, 224);
        let clean = device.latency_ms(&spec);
        let mut rng = seeded(1);
        for _ in 0..50 {
            let m = device.measure_ms(&spec, 0.05, &mut rng);
            assert!((m - clean).abs() / clean <= 0.05 + 1e-9);
        }
        assert_eq!(device.measure_ms(&spec, 0.0, &mut rng), clean);
    }

    #[test]
    fn network_latency_sums_layers() {
        let device = DeviceModel::nexus5_class();
        let a = ConvSpec::same_padding(8, 16, 3, 64);
        let b = ConvSpec::same_padding(16, 16, 3, 64);
        let total = device.network_latency_ms(&[a, b]);
        assert!((total - device.latency_ms(&a) - device.latency_ms(&b)).abs() < 1e-9);
    }

    #[test]
    fn edge_accelerator_is_faster_than_phone() {
        let phone = DeviceModel::nexus5_class();
        let edge = DeviceModel::edge_accelerator_class();
        let spec = ConvSpec::same_padding(32, 64, 3, 224);
        assert!(edge.latency_ms(&spec) < phone.latency_ms(&spec) / 3.0);
    }
}
