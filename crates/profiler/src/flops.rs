use serde::{Deserialize, Serialize};

/// Description of a 2-D convolutional layer, the workload profiled in the
/// paper's Table I (3x3 kernels, stride 1, same padding, 224x224 inputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel side (e.g. 3).
    pub kernel: usize,
    /// Stride (1 in Table I).
    pub stride: usize,
    /// Square input side in pixels (224 in Table I).
    pub input_size: usize,
}

impl ConvSpec {
    /// A stride-1, same-padding convolution — the Table I configuration.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn same_padding(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        input_size: usize,
    ) -> Self {
        let spec = Self {
            in_channels,
            out_channels,
            kernel,
            stride: 1,
            input_size,
        };
        spec.validate();
        spec
    }

    fn validate(&self) {
        assert!(self.in_channels > 0, "in_channels must be positive");
        assert!(self.out_channels > 0, "out_channels must be positive");
        assert!(self.kernel > 0, "kernel must be positive");
        assert!(self.stride > 0, "stride must be positive");
        assert!(self.input_size > 0, "input_size must be positive");
    }

    /// Output spatial side under same padding.
    pub fn output_size(&self) -> usize {
        self.input_size.div_ceil(self.stride)
    }

    /// Multiply-accumulate count:
    /// `H_out * W_out * k^2 * in_channels * out_channels`.
    pub fn macs(&self) -> u64 {
        let out = self.output_size() as u64;
        out * out
            * (self.kernel * self.kernel) as u64
            * self.in_channels as u64
            * self.out_channels as u64
    }

    /// FLOP count, counting a MAC as two floating-point operations (the
    /// usual convention; the paper's absolute FLOP numbers use a slightly
    /// different constant, which cancels out of every comparison the
    /// experiment makes).
    pub fn flops(&self) -> u64 {
        2 * self.macs()
    }

    /// Bytes touched by the im2col expansion of one output row tile —
    /// a proxy for the cache footprint that drives latency regimes.
    pub fn im2col_bytes(&self) -> u64 {
        (self.kernel * self.kernel * self.in_channels * self.output_size() * 4) as u64
    }

    /// The four labeled rows of the paper's Table I.
    pub fn table1_rows() -> [(&'static str, ConvSpec); 4] {
        [
            ("CNN1", ConvSpec::same_padding(8, 32, 3, 224)),
            ("CNN2", ConvSpec::same_padding(32, 8, 3, 224)),
            ("CNN3", ConvSpec::same_padding(66, 32, 3, 224)),
            ("CNN4", ConvSpec::same_padding(43, 64, 3, 224)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macs_formula_matches_manual_computation() {
        let spec = ConvSpec::same_padding(8, 32, 3, 224);
        let expected = 224u64 * 224 * 9 * 8 * 32;
        assert_eq!(spec.macs(), expected);
        assert_eq!(spec.flops(), 2 * expected);
    }

    #[test]
    fn cnn1_and_cnn2_have_equal_flops() {
        let rows = ConvSpec::table1_rows();
        assert_eq!(rows[0].1.flops(), rows[1].1.flops());
    }

    #[test]
    fn cnn3_has_fewer_flops_than_cnn4() {
        let rows = ConvSpec::table1_rows();
        assert!(rows[2].1.flops() < rows[3].1.flops());
    }

    #[test]
    fn stride_reduces_output_and_macs() {
        let s1 = ConvSpec::same_padding(16, 16, 3, 224);
        let s2 = ConvSpec { stride: 2, ..s1 };
        assert_eq!(s2.output_size(), 112);
        assert!(s2.macs() < s1.macs());
    }

    #[test]
    fn im2col_bytes_grows_with_input_channels() {
        let small = ConvSpec::same_padding(8, 32, 3, 224);
        let big = ConvSpec::same_padding(64, 32, 3, 224);
        assert!(big.im2col_bytes() > small.im2col_bytes());
    }

    #[test]
    #[should_panic(expected = "in_channels")]
    fn zero_channels_rejected() {
        ConvSpec::same_padding(0, 8, 3, 224);
    }
}
