use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Unique identifier assigned to each submitted request.
pub type RequestId = u64;

/// A quality-of-service class with its own latency constraint.
///
/// The paper's §V notes that "an interactive voice chatbot might have
/// significantly tighter latency constraints than an intrusion detection
/// camera" and calls for multiple service classes; this type carries that
/// distinction.
///
/// # Examples
///
/// ```
/// use eugene_serve::ServiceClass;
/// use std::time::Duration;
///
/// let interactive = ServiceClass::new("interactive", Duration::from_millis(50));
/// let batch = ServiceClass::new("batch", Duration::from_secs(5));
/// assert!(interactive.deadline() < batch.deadline());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ServiceClass {
    name: String,
    deadline: Duration,
}

impl ServiceClass {
    /// Creates a class with the given latency constraint.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero.
    pub fn new(name: impl Into<String>, deadline: Duration) -> Self {
        assert!(!deadline.is_zero(), "deadline must be positive");
        Self {
            name: name.into(),
            deadline,
        }
    }

    /// The class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The class's maximum allowed latency.
    pub fn deadline(&self) -> Duration {
        self.deadline
    }
}

/// An inference request: an input vector plus the service class governing
/// its deadline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceRequest {
    /// Input features (the client-supplied data item).
    pub payload: Vec<f32>,
    /// Service class (deadline).
    pub class: ServiceClass,
}

impl InferenceRequest {
    /// Creates a request in the given class.
    pub fn new(payload: Vec<f32>, class: ServiceClass) -> Self {
        Self { payload, class }
    }
}

/// The service's answer to one request — the paper's
/// `(predicted value, confidence)` tuple plus execution telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceResponse {
    /// The request this answers.
    pub id: RequestId,
    /// Predicted class, if at least one stage ran.
    pub predicted: Option<usize>,
    /// Confidence attached to the prediction.
    pub confidence: Option<f32>,
    /// Number of stages executed before the answer was returned.
    pub stages_executed: usize,
    /// Whether the deadline daemon interrupted the task.
    pub expired: bool,
    /// Whether the runtime force-exited the request at an earlier stage
    /// than its confidence threshold asked for (anytime degradation under
    /// overload). A degraded response is still a usable answer:
    /// `predicted`/`confidence` come from the deepest completed stage.
    pub degraded: bool,
    /// Wall-clock service latency.
    pub latency: Duration,
}

impl InferenceResponse {
    /// Whether the service produced a usable prediction.
    pub fn is_answered(&self) -> bool {
        self.predicted.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_class_accessors() {
        let class = ServiceClass::new("interactive", Duration::from_millis(100));
        assert_eq!(class.name(), "interactive");
        assert_eq!(class.deadline(), Duration::from_millis(100));
    }

    #[test]
    #[should_panic(expected = "deadline")]
    fn zero_deadline_rejected() {
        ServiceClass::new("bad", Duration::ZERO);
    }

    #[test]
    fn response_answered_logic() {
        let answered = InferenceResponse {
            id: 1,
            predicted: Some(3),
            confidence: Some(0.8),
            stages_executed: 2,
            expired: false,
            degraded: false,
            latency: Duration::from_millis(5),
        };
        assert!(answered.is_answered());
        let starved = InferenceResponse {
            id: 2,
            predicted: None,
            confidence: None,
            stages_executed: 0,
            expired: true,
            degraded: false,
            latency: Duration::from_millis(50),
        };
        assert!(!starved.is_answered());
    }
}
