use crate::RequestId;
use crossbeam::channel::{unbounded, Receiver};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The paper's deadline daemon: "A daemon process monitors the elapsed
/// time for each task. If the elapsed time for a task exceeds the maximum
/// latency constraint, the daemon process will send a signal to stop the
/// current computation."
///
/// Tasks are registered with their absolute deadline; a monitor thread
/// polls the registry and emits the ids of expired tasks on a kill
/// channel, which the serving runtime drains.
///
/// # Examples
///
/// ```
/// use eugene_serve::DeadlineDaemon;
/// use std::time::{Duration, Instant};
///
/// let daemon = DeadlineDaemon::start(Duration::from_millis(2));
/// daemon.register(7, Instant::now() + Duration::from_millis(10));
/// let killed = daemon.kill_signals().recv_timeout(Duration::from_millis(500)).unwrap();
/// assert_eq!(killed, 7);
/// daemon.shutdown();
/// ```
#[derive(Debug)]
pub struct DeadlineDaemon {
    registry: Arc<Mutex<HashMap<RequestId, Instant>>>,
    kills: Receiver<RequestId>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl DeadlineDaemon {
    /// Starts the monitor thread with the given polling interval.
    ///
    /// # Panics
    ///
    /// Panics if `poll_interval` is zero.
    pub fn start(poll_interval: Duration) -> Self {
        assert!(!poll_interval.is_zero(), "poll interval must be positive");
        let registry: Arc<Mutex<HashMap<RequestId, Instant>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, kills) = unbounded();
        let handle = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("eugene-deadline-daemon".to_owned())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let now = Instant::now();
                        let expired: Vec<RequestId> = {
                            let mut registry = registry.lock();
                            let expired: Vec<RequestId> = registry
                                .iter()
                                .filter(|(_, &deadline)| now >= deadline)
                                .map(|(&id, _)| id)
                                .collect();
                            for id in &expired {
                                registry.remove(id);
                            }
                            expired
                        };
                        for id in expired {
                            if tx.send(id).is_err() {
                                return;
                            }
                        }
                        std::thread::sleep(poll_interval);
                    }
                })
                .expect("spawn daemon thread")
        };
        Self {
            registry,
            kills,
            stop,
            handle: Some(handle),
        }
    }

    /// Registers a task with its absolute deadline.
    pub fn register(&self, id: RequestId, deadline: Instant) {
        self.registry.lock().insert(id, deadline);
    }

    /// Removes a task (it finished in time). Returns whether it was still
    /// registered.
    pub fn deregister(&self, id: RequestId) -> bool {
        self.registry.lock().remove(&id).is_some()
    }

    /// The channel on which expired task ids arrive.
    pub fn kill_signals(&self) -> &Receiver<RequestId> {
        &self.kills
    }

    /// Number of tasks currently monitored.
    pub fn watched(&self) -> usize {
        self.registry.lock().len()
    }

    /// Stops the monitor thread.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for DeadlineDaemon {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expired_task_is_killed_once() {
        let daemon = DeadlineDaemon::start(Duration::from_millis(1));
        daemon.register(1, Instant::now() + Duration::from_millis(5));
        let killed = daemon
            .kill_signals()
            .recv_timeout(Duration::from_millis(500))
            .expect("kill arrives");
        assert_eq!(killed, 1);
        assert_eq!(daemon.watched(), 0);
        // No duplicate signal.
        assert!(daemon
            .kill_signals()
            .recv_timeout(Duration::from_millis(30))
            .is_err());
        daemon.shutdown();
    }

    #[test]
    fn deregistered_task_is_never_killed() {
        let daemon = DeadlineDaemon::start(Duration::from_millis(1));
        daemon.register(2, Instant::now() + Duration::from_millis(20));
        assert!(daemon.deregister(2));
        assert!(!daemon.deregister(2), "second deregister is a no-op");
        assert!(daemon
            .kill_signals()
            .recv_timeout(Duration::from_millis(60))
            .is_err());
        daemon.shutdown();
    }

    #[test]
    fn far_deadlines_are_not_killed_early() {
        let daemon = DeadlineDaemon::start(Duration::from_millis(1));
        daemon.register(3, Instant::now() + Duration::from_secs(60));
        assert!(daemon
            .kill_signals()
            .recv_timeout(Duration::from_millis(40))
            .is_err());
        assert_eq!(daemon.watched(), 1);
        daemon.shutdown();
    }

    #[test]
    fn multiple_expiries_all_signal() {
        let daemon = DeadlineDaemon::start(Duration::from_millis(1));
        for id in 10..13 {
            daemon.register(id, Instant::now() + Duration::from_millis(5));
        }
        let mut killed: Vec<RequestId> = (0..3)
            .map(|_| {
                daemon
                    .kill_signals()
                    .recv_timeout(Duration::from_millis(500))
                    .expect("kill arrives")
            })
            .collect();
        killed.sort_unstable();
        assert_eq!(killed, vec![10, 11, 12]);
        daemon.shutdown();
    }
}
