use crate::RequestId;
use crossbeam::channel::{unbounded, Receiver};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The paper's deadline daemon: "A daemon process monitors the elapsed
/// time for each task. If the elapsed time for a task exceeds the maximum
/// latency constraint, the daemon process will send a signal to stop the
/// current computation."
///
/// Tasks are registered with their absolute deadline; a monitor thread
/// emits the ids of expired tasks on a kill channel, which the serving
/// runtime drains. The monitor is event-driven: it parks until the
/// nearest registered deadline and is woken early when a registration
/// changes the wake-up time, so an idle daemon consumes no CPU (earlier
/// revisions polled the registry every `poll_interval`).
///
/// # Examples
///
/// ```
/// use eugene_serve::DeadlineDaemon;
/// use std::time::{Duration, Instant};
///
/// let daemon = DeadlineDaemon::start(Duration::from_millis(2));
/// daemon.register(7, Instant::now() + Duration::from_millis(10));
/// let killed = daemon.kill_signals().recv_timeout(Duration::from_millis(500)).unwrap();
/// assert_eq!(killed, 7);
/// daemon.shutdown();
/// ```
#[derive(Debug)]
pub struct DeadlineDaemon {
    shared: Arc<Shared>,
    kills: Receiver<RequestId>,
    handle: Option<JoinHandle<()>>,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<State>,
    wake: Condvar,
}

#[derive(Debug)]
struct State {
    registry: HashMap<RequestId, Instant>,
    stop: bool,
}

/// Defensive upper bound on a single park when no deadline is registered;
/// `register`/`shutdown` notify the monitor, so this only guards against a
/// missed wake-up.
const MAX_PARK: Duration = Duration::from_secs(1);

impl DeadlineDaemon {
    /// Starts the monitor thread.
    ///
    /// `poll_interval` is retained for API compatibility with the polling
    /// implementation; the monitor now wakes exactly at the nearest
    /// deadline (or on registry changes), so the value no longer sets a
    /// duty cycle.
    ///
    /// # Panics
    ///
    /// Panics if `poll_interval` is zero.
    pub fn start(poll_interval: Duration) -> Self {
        assert!(!poll_interval.is_zero(), "poll interval must be positive");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                registry: HashMap::new(),
                stop: false,
            }),
            wake: Condvar::new(),
        });
        let (tx, kills) = unbounded();
        let handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("eugene-deadline-daemon".to_owned())
                .spawn(move || {
                    let mut guard = shared.state.lock();
                    loop {
                        if guard.stop {
                            return;
                        }
                        let now = Instant::now();
                        let mut expired = Vec::new();
                        guard.registry.retain(|&id, deadline| {
                            if now >= *deadline {
                                expired.push(id);
                                false
                            } else {
                                true
                            }
                        });
                        let next = guard.registry.values().min().copied();
                        if !expired.is_empty() {
                            // Send without holding the registry lock so
                            // register/deregister never wait on the channel.
                            drop(guard);
                            for id in expired {
                                if tx.send(id).is_err() {
                                    return;
                                }
                            }
                            guard = shared.state.lock();
                            continue;
                        }
                        let park = match next {
                            Some(deadline) => deadline.saturating_duration_since(now),
                            None => MAX_PARK,
                        };
                        if park.is_zero() {
                            continue;
                        }
                        shared.wake.wait_for(&mut guard, park.min(MAX_PARK));
                    }
                })
                .expect("spawn daemon thread")
        };
        Self {
            shared,
            kills,
            handle: Some(handle),
        }
    }

    /// Registers a task with its absolute deadline.
    pub fn register(&self, id: RequestId, deadline: Instant) {
        let mut state = self.shared.state.lock();
        state.registry.insert(id, deadline);
        // The new deadline may be nearer than the monitor's current park
        // target; wake it so it re-aims.
        self.shared.wake.notify_one();
    }

    /// Removes a task (it finished in time). Returns whether it was still
    /// registered.
    pub fn deregister(&self, id: RequestId) -> bool {
        self.shared.state.lock().registry.remove(&id).is_some()
    }

    /// The channel on which expired task ids arrive.
    pub fn kill_signals(&self) -> &Receiver<RequestId> {
        &self.kills
    }

    /// Number of tasks currently monitored.
    pub fn watched(&self) -> usize {
        self.shared.state.lock().registry.len()
    }

    /// Stops the monitor thread.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        {
            let mut state = self.shared.state.lock();
            state.stop = true;
            self.shared.wake.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for DeadlineDaemon {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expired_task_is_killed_once() {
        let daemon = DeadlineDaemon::start(Duration::from_millis(1));
        daemon.register(1, Instant::now() + Duration::from_millis(5));
        let killed = daemon
            .kill_signals()
            .recv_timeout(Duration::from_millis(500))
            .expect("kill arrives");
        assert_eq!(killed, 1);
        assert_eq!(daemon.watched(), 0);
        // No duplicate signal.
        assert!(daemon
            .kill_signals()
            .recv_timeout(Duration::from_millis(30))
            .is_err());
        daemon.shutdown();
    }

    #[test]
    fn deregistered_task_is_never_killed() {
        let daemon = DeadlineDaemon::start(Duration::from_millis(1));
        daemon.register(2, Instant::now() + Duration::from_millis(20));
        assert!(daemon.deregister(2));
        assert!(!daemon.deregister(2), "second deregister is a no-op");
        assert!(daemon
            .kill_signals()
            .recv_timeout(Duration::from_millis(60))
            .is_err());
        daemon.shutdown();
    }

    #[test]
    fn far_deadlines_are_not_killed_early() {
        let daemon = DeadlineDaemon::start(Duration::from_millis(1));
        daemon.register(3, Instant::now() + Duration::from_secs(60));
        assert!(daemon
            .kill_signals()
            .recv_timeout(Duration::from_millis(40))
            .is_err());
        assert_eq!(daemon.watched(), 1);
        daemon.shutdown();
    }

    #[test]
    fn multiple_expiries_all_signal() {
        let daemon = DeadlineDaemon::start(Duration::from_millis(1));
        for id in 10..13 {
            daemon.register(id, Instant::now() + Duration::from_millis(5));
        }
        let mut killed: Vec<RequestId> = (0..3)
            .map(|_| {
                daemon
                    .kill_signals()
                    .recv_timeout(Duration::from_millis(500))
                    .expect("kill arrives")
            })
            .collect();
        killed.sort_unstable();
        assert_eq!(killed, vec![10, 11, 12]);
        daemon.shutdown();
    }

    #[test]
    fn nearer_registration_reaims_the_monitor() {
        // A far deadline parks the monitor long; a subsequently registered
        // near deadline must still fire on time.
        let daemon = DeadlineDaemon::start(Duration::from_millis(1));
        daemon.register(1, Instant::now() + Duration::from_secs(120));
        std::thread::sleep(Duration::from_millis(5));
        daemon.register(2, Instant::now() + Duration::from_millis(10));
        let killed = daemon
            .kill_signals()
            .recv_timeout(Duration::from_millis(500))
            .expect("near deadline fires while far one is parked");
        assert_eq!(killed, 2);
        assert_eq!(daemon.watched(), 1);
        daemon.shutdown();
    }
}
