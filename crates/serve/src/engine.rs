/// Point-in-time counters of an engine's compiled-plan cache, surfaced
/// through [`InferenceEngine::plan_cache_stats`] for observability.
///
/// The serving crate is model-agnostic, so this mirrors (rather than
/// reuses) the plan-cache stats type of the neural-network crate;
/// `eugene-service` converts between the two.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Dispatches served by an already-compiled plan.
    pub hits: u64,
    /// Dispatches that compiled a new plan.
    pub misses: u64,
    /// Times a parameter mutation dropped every cached plan.
    pub invalidations: u64,
    /// Plans currently cached.
    pub entries: usize,
    /// Current cache generation tag.
    pub generation: u64,
}

/// Output of one executed stage: the paper's `(predicted value,
/// confidence)` tuple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageReport {
    /// Predicted class after this stage.
    pub predicted: usize,
    /// Classification confidence after this stage.
    pub confidence: f32,
}

/// A staged model the runtime can serve.
///
/// The serving crate is model-agnostic: `eugene-service` adapts
/// `eugene_nn::StagedNetwork` to this trait, and tests use synthetic
/// engines. Implementations must be shareable across worker threads.
pub trait InferenceEngine: Send + Sync {
    /// Number of stages every session will expose.
    fn num_stages(&self) -> usize;

    /// Precision the engine serves `stage` at. The runtime keys its
    /// latency EMAs by this tag so a quantized stage (several times
    /// faster than f32) never poisons the f32 estimate or vice versa.
    /// Defaults to f32; mixed-precision engines override it.
    fn stage_precision(&self, _stage: usize) -> eugene_profiler::Precision {
        eugene_profiler::Precision::F32
    }

    /// Starts a new inference session over one input.
    fn begin(&self, payload: &[f32]) -> Box<dyn EngineSession>;

    /// Executes the next stage of every session in `batch`, returning one
    /// report slot per session in the same order.
    ///
    /// The default runs the sessions one by one — correct for any engine.
    /// Engines whose stage cost is dominated by matrix products (e.g. the
    /// staged-network engine in `eugene-core`) override this to fuse the
    /// batch into a single multi-row forward via
    /// [`EngineSession::as_any_mut`] downcasts. Overrides must preserve
    /// per-session semantics exactly: the runtime scatters row `i`'s
    /// report back to request `i` as if it had run alone.
    fn next_stage_batch(&self, batch: &mut [Box<dyn EngineSession>]) -> Vec<Option<StageReport>> {
        batch.iter_mut().map(|s| s.next_stage()).collect()
    }

    /// Counters of the engine's compiled-plan cache, when it serves
    /// through one (see `eugene-service`'s staged-network engine).
    /// Engines without plan compilation return `None` (the default).
    fn plan_cache_stats(&self) -> Option<PlanCacheStats> {
        None
    }
}

/// One in-flight inference: executes a single stage per call.
///
/// Sessions move between the coordinator and worker threads, so they must
/// be `Send`.
pub trait EngineSession: Send {
    /// Executes the next stage and reports its classification.
    ///
    /// Returns `None` once all stages have run.
    fn next_stage(&mut self) -> Option<StageReport>;

    /// Number of stages executed so far.
    fn stages_done(&self) -> usize;

    /// Downcasting hook so an engine's
    /// [`InferenceEngine::next_stage_batch`] override can recover its
    /// concrete session type from the boxed trait objects the runtime
    /// hands it. Implementations return `self`.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

#[cfg(test)]
pub(crate) mod testing {
    use super::*;
    use std::thread::sleep;
    use std::time::Duration;

    /// Deterministic engine for tests: confidence follows a fixed ramp and
    /// each stage takes a configurable wall-clock time.
    pub struct RampEngine {
        pub ramp: Vec<f32>,
        pub stage_time: Duration,
    }

    impl InferenceEngine for RampEngine {
        fn num_stages(&self) -> usize {
            self.ramp.len()
        }

        fn begin(&self, payload: &[f32]) -> Box<dyn EngineSession> {
            Box::new(RampSession {
                ramp: self.ramp.clone(),
                stage_time: self.stage_time,
                done: 0,
                predicted: payload.first().copied().unwrap_or(0.0) as usize,
            })
        }
    }

    pub struct RampSession {
        ramp: Vec<f32>,
        stage_time: Duration,
        done: usize,
        predicted: usize,
    }

    impl EngineSession for RampSession {
        fn next_stage(&mut self) -> Option<StageReport> {
            if self.done >= self.ramp.len() {
                return None;
            }
            sleep(self.stage_time);
            let report = StageReport {
                predicted: self.predicted,
                confidence: self.ramp[self.done],
            };
            self.done += 1;
            Some(report)
        }

        fn stages_done(&self) -> usize {
            self.done
        }

        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn ramp_engine_walks_its_ramp() {
        let engine = RampEngine {
            ramp: vec![0.5, 0.9],
            stage_time: Duration::ZERO,
        };
        let mut session = engine.begin(&[3.0]);
        let first = session.next_stage().unwrap();
        assert_eq!(first.confidence, 0.5);
        assert_eq!(first.predicted, 3);
        assert_eq!(session.stages_done(), 1);
        assert_eq!(session.next_stage().unwrap().confidence, 0.9);
        assert!(session.next_stage().is_none());
    }
}
