use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-service-class usage counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassUsage {
    /// Requests answered (including expired ones).
    pub requests: u64,
    /// Stage executions consumed.
    pub stages_executed: u64,
    /// Requests the deadline daemon killed.
    pub expired: u64,
    /// Requests that exited early on confidence.
    pub early_exits: u64,
}

/// Thread-safe per-class usage ledger, shared between the serving
/// coordinator and callers.
///
/// Paper §V: "different applications will have different demands and
/// constraints ... An appropriate pricing structure may be needed that is
/// informed of the true resource cost imposed by clients of each class on
/// the service." The ledger records that true resource cost — stage
/// executions, not requests — per class.
#[derive(Debug, Clone, Default)]
pub struct UsageLedger {
    inner: Arc<Mutex<HashMap<String, ClassUsage>>>,
}

impl UsageLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one finished request.
    pub fn record(&self, class: &str, stages_executed: usize, expired: bool, early_exit: bool) {
        let mut inner = self.inner.lock();
        let usage = inner.entry(class.to_owned()).or_default();
        usage.requests += 1;
        usage.stages_executed += stages_executed as u64;
        if expired {
            usage.expired += 1;
        }
        if early_exit {
            usage.early_exits += 1;
        }
    }

    /// Usage of one class so far.
    pub fn usage(&self, class: &str) -> ClassUsage {
        self.inner.lock().get(class).copied().unwrap_or_default()
    }

    /// Snapshot of every class's usage.
    pub fn snapshot(&self) -> HashMap<String, ClassUsage> {
        self.inner.lock().clone()
    }

    /// Total stage executions across all classes.
    pub fn total_stages(&self) -> u64 {
        self.inner.lock().values().map(|u| u.stages_executed).sum()
    }
}

/// A simple cost model over ledger entries: a fixed fee per request plus a
/// metered fee per executed stage (the "true resource cost").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PricingModel {
    /// Flat cost per request (admission, queueing, bookkeeping).
    pub per_request: f64,
    /// Cost per stage execution (compute).
    pub per_stage: f64,
    /// Discount multiplier applied to expired requests ("no utility is
    /// accrued for tasks that are not completed" — the service still paid
    /// for partial compute, so this models goodwill, not cost).
    pub expired_refund: f64,
}

impl PricingModel {
    /// Creates a pricing model.
    ///
    /// # Panics
    ///
    /// Panics if any component is negative or `expired_refund > 1`.
    pub fn new(per_request: f64, per_stage: f64, expired_refund: f64) -> Self {
        assert!(
            per_request >= 0.0 && per_stage >= 0.0,
            "costs must be non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&expired_refund),
            "refund must be a fraction"
        );
        Self {
            per_request,
            per_stage,
            expired_refund,
        }
    }

    /// Invoice amount for one class's usage.
    pub fn invoice(&self, usage: &ClassUsage) -> f64 {
        let gross = usage.requests as f64 * self.per_request
            + usage.stages_executed as f64 * self.per_stage;
        // Approximate the refund as proportional to the expired share of
        // requests (per-request granularity is not tracked).
        let expired_share = if usage.requests == 0 {
            0.0
        } else {
            usage.expired as f64 / usage.requests as f64
        };
        gross * (1.0 - self.expired_refund * expired_share)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates_per_class() {
        let ledger = UsageLedger::new();
        ledger.record("interactive", 1, false, true);
        ledger.record("interactive", 2, true, false);
        ledger.record("batch", 3, false, false);
        let interactive = ledger.usage("interactive");
        assert_eq!(interactive.requests, 2);
        assert_eq!(interactive.stages_executed, 3);
        assert_eq!(interactive.expired, 1);
        assert_eq!(interactive.early_exits, 1);
        assert_eq!(ledger.usage("batch").stages_executed, 3);
        assert_eq!(ledger.total_stages(), 6);
        assert_eq!(ledger.usage("unknown"), ClassUsage::default());
    }

    #[test]
    fn ledger_is_shareable_across_threads() {
        let ledger = UsageLedger::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let ledger = ledger.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        ledger.record("c", 2, false, false);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ledger.usage("c").requests, 400);
        assert_eq!(ledger.usage("c").stages_executed, 800);
    }

    #[test]
    fn invoice_meters_stages() {
        let pricing = PricingModel::new(1.0, 0.5, 0.0);
        let usage = ClassUsage {
            requests: 10,
            stages_executed: 25,
            expired: 0,
            early_exits: 4,
        };
        assert!((pricing.invoice(&usage) - (10.0 + 12.5)).abs() < 1e-9);
    }

    #[test]
    fn heavier_class_pays_more() {
        // The paper's point: an interactive class that forces deep
        // execution imposes more cost than one that exits early.
        let pricing = PricingModel::new(1.0, 1.0, 0.0);
        let shallow = ClassUsage {
            requests: 10,
            stages_executed: 12,
            ..Default::default()
        };
        let deep = ClassUsage {
            requests: 10,
            stages_executed: 30,
            ..Default::default()
        };
        assert!(pricing.invoice(&deep) > pricing.invoice(&shallow));
    }

    #[test]
    fn expired_refund_discounts() {
        let pricing = PricingModel::new(1.0, 1.0, 0.5);
        let usage = ClassUsage {
            requests: 4,
            stages_executed: 8,
            expired: 2,
            early_exits: 0,
        };
        // Gross 12, half the requests expired, refund 50% of that share.
        assert!((pricing.invoice(&usage) - 12.0 * 0.75).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "refund")]
    fn invalid_refund_rejected() {
        PricingModel::new(1.0, 1.0, 1.5);
    }
}
