use crate::{
    CompletionWaker, InferenceRequest, InferenceResponse, ModelBreakdown, RequestId, RuntimeStats,
    ServingRuntime, StageProgress, StatsSnapshot,
};
use crossbeam::channel::Sender;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// The model name a single-model deployment serves under, and the name
/// [`ModelRegistry::single`] registers its runtime as.
pub const DEFAULT_MODEL: &str = "default";

/// Why a registry submission was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The named model (or the one the dispatcher picked) is not loaded.
    /// The name is returned so the gateway can report it.
    UnknownModel(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownModel(name) => write!(f, "unknown model {name:?}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Data-aware variant selection: picks a model name for a request that
/// named no model, from the request's input features alone.
///
/// This is where SneakPeek-style routing plugs in: a dispatcher built
/// from the compressed variant's calibrated stage-1 confidence sends
/// easy inputs to a cheap early-exit variant and hard inputs to the full
/// model. Any `Fn(&[f32]) -> String + Send + Sync` closure qualifies.
pub trait VariantDispatcher: Send + Sync {
    /// The model name to serve this payload with. Returning a name that
    /// is not currently loaded makes the submission fail with
    /// [`RegistryError::UnknownModel`] — dispatchers should stick to
    /// names they know are registered.
    fn pick(&self, payload: &[f32]) -> String;
}

impl<F> VariantDispatcher for F
where
    F: Fn(&[f32]) -> String + Send + Sync,
{
    fn pick(&self, payload: &[f32]) -> String {
        self(payload)
    }
}

/// One loaded model: its private runtime (own workers, own scheduler,
/// own gather buckets / batch budget) plus its load generation.
struct ModelEntry {
    runtime: ServingRuntime,
    version: u64,
    stats: RuntimeStats,
}

struct RegistryInner {
    models: RwLock<HashMap<String, ModelEntry>>,
    /// Gauges of unloaded generations, kept so per-model counters are
    /// cumulative across a name's reloads rather than resetting.
    retired: Mutex<Vec<(String, RuntimeStats)>>,
    /// Completion waker applied to every current and future runtime, so
    /// a readiness-driven gateway registers once and model churn cannot
    /// silently drop its wakeups.
    waker: Mutex<Option<CompletionWaker>>,
    dispatcher: Mutex<Option<Arc<dyn VariantDispatcher>>>,
    default_model: Mutex<String>,
    versions: AtomicU64,
}

/// A versioned, named collection of live [`ServingRuntime`]s — the model
/// half of the serving control plane.
///
/// Each loaded model owns a full runtime: its own worker pool, scheduler,
/// early-exit threshold, and gather buckets, so per-model worker/batch
/// budgets fall out of the one-runtime-per-model structure rather than
/// needing cross-model arbitration. Models load and unload at runtime;
/// unloading drains the model's in-flight requests while new submissions
/// against the gone name fail fast with [`RegistryError::UnknownModel`].
///
/// Handles are cheap clones over shared state; the gateway, its reactor,
/// and test harnesses all hold the same registry.
///
/// # Submission vs unload ordering
///
/// [`ModelRegistry::submit_to`] holds the model-map read lock across the
/// underlying `submit_with_channels` call, and [`ModelRegistry::unload`]
/// removes the entry under the write lock *before* shutting the runtime
/// down. A submission therefore either lands on a runtime that will
/// drain it, or observes the name as gone — it can never reach a runtime
/// that has stopped accepting (which would panic).
#[derive(Clone)]
pub struct ModelRegistry {
    inner: Arc<RegistryInner>,
}

impl ModelRegistry {
    /// Creates an empty registry whose unnamed submissions resolve to
    /// `default_model` (until a dispatcher overrides that).
    pub fn new(default_model: impl Into<String>) -> Self {
        Self {
            inner: Arc::new(RegistryInner {
                models: RwLock::new(HashMap::new()),
                retired: Mutex::new(Vec::new()),
                waker: Mutex::new(None),
                dispatcher: Mutex::new(None),
                default_model: Mutex::new(default_model.into()),
                versions: AtomicU64::new(0),
            }),
        }
    }

    /// Wraps one runtime as a single-model registry under
    /// [`DEFAULT_MODEL`] — the adapter that keeps a pre-registry
    /// single-model gateway deployment working unchanged.
    pub fn single(runtime: ServingRuntime) -> Self {
        let registry = Self::new(DEFAULT_MODEL);
        registry.load(DEFAULT_MODEL, runtime);
        registry
    }

    /// Loads (or replaces) a named model, returning its load generation.
    ///
    /// Replacement is a drain, not a drop: the previous runtime finishes
    /// its in-flight requests before this call returns, while new
    /// submissions already land on the replacement.
    pub fn load(&self, name: impl Into<String>, runtime: ServingRuntime) -> u64 {
        let name = name.into();
        let version = self.inner.versions.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(waker) = self.inner.waker.lock().expect("waker lock").clone() {
            runtime.set_completion_waker(waker);
        }
        let entry = ModelEntry {
            stats: runtime.stats(),
            runtime,
            version,
        };
        let previous = self
            .inner
            .models
            .write()
            .expect("model map lock")
            .insert(name.clone(), entry);
        if let Some(previous) = previous {
            self.retire(&name, previous);
        }
        version
    }

    /// Unloads a named model, draining its in-flight requests before
    /// returning. Returns `false` if the name was not loaded. Subsequent
    /// submissions naming it fail with [`RegistryError::UnknownModel`].
    pub fn unload(&self, name: &str) -> bool {
        let removed = self
            .inner
            .models
            .write()
            .expect("model map lock")
            .remove(name);
        match removed {
            Some(entry) => {
                self.retire(name, entry);
                true
            }
            None => false,
        }
    }

    /// Retires an entry outside the map lock: counters are preserved for
    /// cumulative per-model stats, then the runtime drains and joins.
    fn retire(&self, name: &str, entry: ModelEntry) {
        self.inner
            .retired
            .lock()
            .expect("retired lock")
            .push((name.to_owned(), entry.stats));
        entry.runtime.shutdown();
    }

    /// Installs the data-aware dispatcher consulted for submissions that
    /// name no model. Replaces any previous dispatcher.
    pub fn set_dispatcher(&self, dispatcher: Arc<dyn VariantDispatcher>) {
        *self.inner.dispatcher.lock().expect("dispatcher lock") = Some(dispatcher);
    }

    /// Registers a completion waker on every loaded runtime, and on every
    /// runtime loaded later (see [`ServingRuntime::set_completion_waker`]).
    pub fn set_completion_waker(&self, waker: CompletionWaker) {
        *self.inner.waker.lock().expect("waker lock") = Some(waker.clone());
        for entry in self.inner.models.read().expect("model map lock").values() {
            entry.runtime.set_completion_waker(waker.clone());
        }
    }

    /// Loaded model names with their load generations, sorted by name.
    pub fn models(&self) -> Vec<(String, u64)> {
        let mut names: Vec<(String, u64)> = self
            .inner
            .models
            .read()
            .expect("model map lock")
            .iter()
            .map(|(name, entry)| (name.clone(), entry.version))
            .collect();
        names.sort();
        names
    }

    /// The model unnamed submissions fall back to when no dispatcher is
    /// installed.
    pub fn default_model(&self) -> String {
        self.inner
            .default_model
            .lock()
            .expect("default model lock")
            .clone()
    }

    /// Whether `name` is currently loaded.
    pub fn contains(&self, name: &str) -> bool {
        self.inner
            .models
            .read()
            .expect("model map lock")
            .contains_key(name)
    }

    /// Resolves the model a request addresses: an explicit name wins,
    /// otherwise the dispatcher (if any) picks from the payload,
    /// otherwise the default model.
    pub fn resolve(&self, model: Option<&str>, payload: &[f32]) -> String {
        match model {
            Some(name) => name.to_owned(),
            None => {
                let dispatcher = self
                    .inner
                    .dispatcher
                    .lock()
                    .expect("dispatcher lock")
                    .clone();
                match dispatcher {
                    Some(dispatcher) => dispatcher.pick(payload),
                    None => self
                        .inner
                        .default_model
                        .lock()
                        .expect("default model lock")
                        .clone(),
                }
            }
        }
    }

    /// Submits a request to the model it resolves to (see
    /// [`ModelRegistry::resolve`]), funneling the response — and optional
    /// stage progress — to the caller's channels. Returns the assigned id
    /// and the resolved model name.
    pub fn submit_to(
        &self,
        model: Option<&str>,
        request: InferenceRequest,
        respond: Sender<InferenceResponse>,
        progress: Option<Sender<StageProgress>>,
    ) -> Result<(RequestId, String), RegistryError> {
        let chosen = self.resolve(model, &request.payload);
        let models = self.inner.models.read().expect("model map lock");
        let entry = models
            .get(&chosen)
            .ok_or_else(|| RegistryError::UnknownModel(chosen.clone()))?;
        // The read lock is held across the submit: an unload's write lock
        // cannot interleave, so the runtime is still accepting here.
        let id = entry
            .runtime
            .submit_with_channels(request, respond, progress);
        Ok((id, chosen))
    }

    /// Live stats handle of one loaded model.
    pub fn stats_of(&self, name: &str) -> Option<RuntimeStats> {
        self.inner
            .models
            .read()
            .expect("model map lock")
            .get(name)
            .map(|entry| entry.stats.clone())
    }

    /// Aggregate snapshot across every loaded model, with a `per_model`
    /// row per name. Rows are cumulative: an unloaded (or replaced)
    /// generation's counters stay in its name's row.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut total = StatsSnapshot::default();
        for (name, stats) in self.inner.retired.lock().expect("retired lock").iter() {
            total.absorb(&stats.snapshot());
            total
                .per_model
                .entry(name.clone())
                .or_default()
                .absorb(&ModelBreakdown::of(stats));
        }
        for (name, entry) in self.inner.models.read().expect("model map lock").iter() {
            total.absorb(&entry.stats.snapshot());
            total
                .per_model
                .entry(name.clone())
                .or_default()
                .absorb(&ModelBreakdown::of(&entry.stats));
        }
        total
    }

    /// Unloads every model, draining each. Idempotent; the handle stays
    /// usable (models can be loaded again afterwards).
    pub fn shutdown(&self) {
        let drained: Vec<(String, ModelEntry)> = self
            .inner
            .models
            .write()
            .expect("model map lock")
            .drain()
            .collect();
        for (name, entry) in drained {
            self.retire(&name, entry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::testing::RampEngine;
    use crate::{RuntimeConfig, ServiceClass};
    use crossbeam::channel::unbounded;
    use eugene_sched::Fifo;
    use std::time::Duration;

    fn runtime(ramp: Vec<f32>, stage_ms: u64, threshold: f32) -> ServingRuntime {
        let engine = Arc::new(RampEngine {
            ramp,
            stage_time: Duration::from_millis(stage_ms),
        });
        ServingRuntime::start(
            engine,
            Box::new(Fifo::new()),
            RuntimeConfig {
                confidence_threshold: threshold,
                ..RuntimeConfig::default()
            },
        )
    }

    fn request(payload: f32) -> InferenceRequest {
        InferenceRequest::new(
            vec![payload],
            ServiceClass::new("test", Duration::from_secs(10)),
        )
    }

    #[test]
    fn named_submissions_route_to_their_model() {
        let registry = ModelRegistry::new("full");
        registry.load("full", runtime(vec![0.5, 0.7, 0.9], 1, 1.0));
        registry.load("compressed", runtime(vec![0.95], 1, 0.9));

        let (tx, rx) = unbounded();
        registry
            .submit_to(Some("compressed"), request(3.0), tx.clone(), None)
            .expect("compressed is loaded");
        let response = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(response.stages_executed, 1, "compressed has one stage");

        // No name resolves to the default model.
        let (id, chosen) = registry
            .submit_to(None, request(4.0), tx, None)
            .expect("default is loaded");
        assert_eq!(chosen, "full");
        let response = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(response.id, id);
        assert_eq!(response.stages_executed, 3, "full runs all stages");
        registry.shutdown();
    }

    #[test]
    fn unknown_model_is_a_clean_error() {
        let registry = ModelRegistry::new(DEFAULT_MODEL);
        let (tx, _rx) = unbounded();
        let err = registry
            .submit_to(Some("nope"), request(0.0), tx, None)
            .unwrap_err();
        assert_eq!(err, RegistryError::UnknownModel("nope".to_owned()));
        registry.shutdown();
    }

    #[test]
    fn unload_drains_in_flight_and_rejects_new_submissions() {
        let registry = ModelRegistry::new(DEFAULT_MODEL);
        registry.load(DEFAULT_MODEL, runtime(vec![0.5, 0.9], 20, 1.0));
        let (tx, rx) = unbounded();
        let mut ids = Vec::new();
        for i in 0..4 {
            let (id, _) = registry
                .submit_to(None, request(i as f32), tx.clone(), None)
                .expect("loaded");
            ids.push(id);
        }
        assert!(registry.unload(DEFAULT_MODEL), "was loaded");
        // Unload drained: every in-flight request already has a response.
        for _ in &ids {
            let response = rx.try_recv().expect("drained before unload returned");
            assert!(ids.contains(&response.id));
            assert_eq!(response.stages_executed, 2);
        }
        // The name is gone now.
        let err = registry
            .submit_to(None, request(9.0), tx, None)
            .unwrap_err();
        assert_eq!(err, RegistryError::UnknownModel(DEFAULT_MODEL.to_owned()));
        assert!(!registry.unload(DEFAULT_MODEL), "second unload is a no-op");
        registry.shutdown();
    }

    #[test]
    fn reload_bumps_version_and_keeps_cumulative_stats() {
        let registry = ModelRegistry::new(DEFAULT_MODEL);
        let v1 = registry.load(DEFAULT_MODEL, runtime(vec![0.9], 1, 1.0));
        let (tx, rx) = unbounded();
        registry
            .submit_to(None, request(1.0), tx.clone(), None)
            .expect("loaded");
        rx.recv_timeout(Duration::from_secs(10)).unwrap();

        let v2 = registry.load(DEFAULT_MODEL, runtime(vec![0.8, 0.9], 1, 1.0));
        assert!(v2 > v1, "replacement is a newer generation");
        assert_eq!(registry.models(), vec![(DEFAULT_MODEL.to_owned(), v2)]);
        registry
            .submit_to(None, request(2.0), tx, None)
            .expect("replacement serves");
        rx.recv_timeout(Duration::from_secs(10)).unwrap();

        let snapshot = registry.snapshot();
        let row = &snapshot.per_model[DEFAULT_MODEL];
        assert_eq!(row.submitted, 2, "counters survive the reload");
        assert_eq!(row.completed, 2);
        registry.shutdown();
    }

    #[test]
    fn dispatcher_picks_variants_from_the_payload() {
        let registry = ModelRegistry::new("full");
        registry.load("full", runtime(vec![0.5, 0.7, 0.9], 1, 1.0));
        registry.load("compressed", runtime(vec![0.95], 1, 0.9));
        registry.set_dispatcher(Arc::new(|payload: &[f32]| {
            if payload[0] < 1.0 {
                "compressed"
            } else {
                "full"
            }
            .to_owned()
        }));

        let (tx, rx) = unbounded();
        let (_, chosen) = registry
            .submit_to(None, request(0.5), tx.clone(), None)
            .unwrap();
        assert_eq!(chosen, "compressed");
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(10))
                .unwrap()
                .stages_executed,
            1
        );
        let (_, chosen) = registry.submit_to(None, request(2.0), tx, None).unwrap();
        assert_eq!(chosen, "full");
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(10))
                .unwrap()
                .stages_executed,
            3
        );
        // An explicit name always beats the dispatcher.
        assert_eq!(registry.resolve(Some("full"), &[0.1]), "full");
        registry.shutdown();
    }
}
