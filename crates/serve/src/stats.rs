use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Live occupancy gauges for a [`crate::ServingRuntime`].
///
/// A cheap cloneable handle over shared atomic counters: the runtime's
/// coordinator updates them as requests move through the pipeline, and any
/// number of observers (admission controllers, metrics exporters) read
/// them without locking. Values are monotonic counters (`submitted`,
/// `completed`) plus instantaneous gauges (`running`, `queued`), so
/// `in_flight` — the admission-control load signal — is derived as
/// `submitted - completed` and can never under-count a request that has
/// been accepted but not yet answered.
#[derive(Clone, Debug, Default)]
pub struct RuntimeStats {
    inner: Arc<Gauges>,
}

#[derive(Debug, Default)]
struct Gauges {
    submitted: AtomicU64,
    completed: AtomicU64,
    running: AtomicUsize,
    queued: AtomicUsize,
    // Micro-batching gauges (all zero when max_batch == 1).
    fused_batches: AtomicU64,
    batched_stages: AtomicU64,
    peak_batch: AtomicUsize,
    singleton_dispatches: AtomicU64,
    gather_wait_micros: AtomicU64,
    gather_waits: AtomicU64,
    // Deadline / degradation gauges.
    deadline_kills: AtomicU64,
    degraded_exits: AtomicU64,
    stale_kills_swallowed: AtomicU64,
}

impl RuntimeStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests accepted via `submit` since startup.
    pub fn submitted(&self) -> u64 {
        self.inner.submitted.load(Ordering::Relaxed)
    }

    /// Requests that have received their final response.
    pub fn completed(&self) -> u64 {
        self.inner.completed.load(Ordering::Relaxed)
    }

    /// Requests accepted but not yet answered (queued + running +
    /// awaiting finalization).
    pub fn in_flight(&self) -> u64 {
        // Read completed first so a concurrent submit+complete pair can
        // only make the difference conservative (too high), never negative.
        let completed = self.completed();
        self.submitted().saturating_sub(completed)
    }

    /// Tasks whose stage is executing on a worker right now.
    pub fn running(&self) -> usize {
        self.inner.running.load(Ordering::Relaxed)
    }

    /// Admitted tasks parked between stages, waiting for a worker.
    pub fn queued(&self) -> usize {
        self.inner.queued.load(Ordering::Relaxed)
    }

    /// Fused stage executions: batches of two or more requests that ran
    /// as one forward.
    pub fn fused_batches(&self) -> u64 {
        self.inner.fused_batches.load(Ordering::Relaxed)
    }

    /// Stage executions that rode inside a fused batch (the occupancy
    /// numerator: `batched_stage_executions / fused_batches` is the mean
    /// batch size).
    pub fn batched_stage_executions(&self) -> u64 {
        self.inner.batched_stages.load(Ordering::Relaxed)
    }

    /// Largest batch fused so far.
    pub fn peak_batch_occupancy(&self) -> usize {
        self.inner.peak_batch.load(Ordering::Relaxed)
    }

    /// Gather buckets flushed with a single member — the batch-of-one
    /// fast path that skips the fused executor entirely.
    pub fn singleton_dispatches(&self) -> u64 {
        self.inner.singleton_dispatches.load(Ordering::Relaxed)
    }

    /// Mean time a request spent parked in a gather bucket before its
    /// stage dispatched (zero if nothing has gathered yet).
    pub fn mean_gather_wait(&self) -> std::time::Duration {
        let waits = self.inner.gather_waits.load(Ordering::Relaxed);
        if waits == 0 {
            return std::time::Duration::ZERO;
        }
        let total = self.inner.gather_wait_micros.load(Ordering::Relaxed);
        std::time::Duration::from_micros(total / waits)
    }

    /// Requests the deadline daemon killed and that were answered
    /// `expired` with no usable result.
    pub fn deadline_kills(&self) -> u64 {
        self.inner.deadline_kills.load(Ordering::Relaxed)
    }

    /// Requests force-exited early with a usable partial result — by the
    /// overload controller or by a deadline that would otherwise have
    /// killed them (anytime degradation).
    pub fn degraded_exits(&self) -> u64 {
        self.inner.degraded_exits.load(Ordering::Relaxed)
    }

    /// Kill signals that raced a just-completed request (the daemon fired
    /// between completion and `deregister`) and were swallowed. These are
    /// bookkeeping noise, never user-visible failures.
    pub fn stale_kills_swallowed(&self) -> u64 {
        self.inner.stale_kills_swallowed.load(Ordering::Relaxed)
    }

    pub(crate) fn note_deadline_kill(&self) {
        self.inner.deadline_kills.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_degraded_exit(&self) {
        self.inner.degraded_exits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_stale_kill_swallowed(&self) {
        self.inner
            .stale_kills_swallowed
            .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_batch_dispatch(&self, size: usize) {
        if size >= 2 {
            self.inner.fused_batches.fetch_add(1, Ordering::Relaxed);
            self.inner
                .batched_stages
                .fetch_add(size as u64, Ordering::Relaxed);
            self.inner.peak_batch.fetch_max(size, Ordering::Relaxed);
        } else {
            self.inner
                .singleton_dispatches
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn note_gather_wait(&self, wait: std::time::Duration) {
        self.inner
            .gather_wait_micros
            .fetch_add(wait.as_micros() as u64, Ordering::Relaxed);
        self.inner.gather_waits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_submitted(&self) {
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_completed(&self) {
        self.inner.completed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn set_occupancy(&self, running: usize, queued: usize) {
        self.inner.running.store(running, Ordering::Relaxed);
        self.inner.queued.store(queued, Ordering::Relaxed);
    }

    /// Point-in-time copy of every gauge, suitable for aggregation across
    /// runtimes (one per shard) or for diffing before/after a workload.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            submitted: self.submitted(),
            completed: self.completed(),
            in_flight: self.in_flight(),
            running: self.running(),
            queued: self.queued(),
            fused_batches: self.fused_batches(),
            batched_stage_executions: self.batched_stage_executions(),
            peak_batch_occupancy: self.peak_batch_occupancy(),
            singleton_dispatches: self.singleton_dispatches(),
            deadline_kills: self.deadline_kills(),
            degraded_exits: self.degraded_exits(),
            stale_kills_swallowed: self.stale_kills_swallowed(),
            per_model: BTreeMap::new(),
            per_tenant: BTreeMap::new(),
        }
    }
}

/// Per-model slice of an aggregate snapshot: the gauges of one named
/// registry entry, cumulative across reloads of the same name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ModelBreakdown {
    pub submitted: u64,
    pub completed: u64,
    pub in_flight: u64,
    pub fused_batches: u64,
}

impl ModelBreakdown {
    /// Reads one runtime's gauges into a breakdown row.
    pub fn of(stats: &RuntimeStats) -> Self {
        Self {
            submitted: stats.submitted(),
            completed: stats.completed(),
            in_flight: stats.in_flight(),
            fused_batches: stats.fused_batches(),
        }
    }

    /// Sums another row into this one (same-name rows across shards or
    /// across a model's reload generations).
    pub fn absorb(&mut self, other: &ModelBreakdown) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.in_flight += other.in_flight;
        self.fused_batches += other.fused_batches;
    }
}

/// Per-tenant slice of an aggregate snapshot: what the gateway's
/// admission layer admitted and shed for one tenant identity.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantBreakdown {
    pub admitted: u64,
    pub shed: u64,
    pub in_flight: u64,
}

impl TenantBreakdown {
    /// Sums another row into this one.
    pub fn absorb(&mut self, other: &TenantBreakdown) {
        self.admitted += other.admitted;
        self.shed += other.shed;
        self.in_flight += other.in_flight;
    }
}

/// Plain-value copy of [`RuntimeStats`] gauges at one instant.
///
/// Unlike the live handle, a snapshot is inert data: it can be summed
/// across shards ([`StatsSnapshot::absorb`] / [`StatsSnapshot::aggregate`])
/// without racing the runtimes that keep updating the originals. Counters
/// add; `peak_batch_occupancy` takes the max (a peak across shards is the
/// largest any one shard fused, not a sum). The `per_model` / `per_tenant`
/// breakdowns merge by name, so aggregating shard snapshots yields one row
/// per model and per tenant across the whole deployment.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub submitted: u64,
    pub completed: u64,
    pub in_flight: u64,
    pub running: usize,
    pub queued: usize,
    pub fused_batches: u64,
    pub batched_stage_executions: u64,
    pub peak_batch_occupancy: usize,
    pub singleton_dispatches: u64,
    pub deadline_kills: u64,
    pub degraded_exits: u64,
    pub stale_kills_swallowed: u64,
    /// One row per registry model (empty for a bare runtime snapshot).
    pub per_model: BTreeMap<String, ModelBreakdown>,
    /// One row per tenant the gateway admission layer has seen (empty
    /// below the gateway layer).
    pub per_tenant: BTreeMap<String, TenantBreakdown>,
}

impl StatsSnapshot {
    /// Folds another snapshot into this one (summing counters, maxing the
    /// peak gauge, merging the per-model / per-tenant rows by name).
    pub fn absorb(&mut self, other: &StatsSnapshot) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.in_flight += other.in_flight;
        self.running += other.running;
        self.queued += other.queued;
        self.fused_batches += other.fused_batches;
        self.batched_stage_executions += other.batched_stage_executions;
        self.peak_batch_occupancy = self.peak_batch_occupancy.max(other.peak_batch_occupancy);
        self.singleton_dispatches += other.singleton_dispatches;
        self.deadline_kills += other.deadline_kills;
        self.degraded_exits += other.degraded_exits;
        self.stale_kills_swallowed += other.stale_kills_swallowed;
        for (name, row) in &other.per_model {
            self.per_model.entry(name.clone()).or_default().absorb(row);
        }
        for (name, row) in &other.per_tenant {
            self.per_tenant.entry(name.clone()).or_default().absorb(row);
        }
    }

    /// Sums a set of per-runtime stats handles into one aggregate view.
    pub fn aggregate<'a>(stats: impl IntoIterator<Item = &'a RuntimeStats>) -> StatsSnapshot {
        let mut total = StatsSnapshot::default();
        for s in stats {
            total.absorb(&s.snapshot());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_track_updates() {
        let stats = RuntimeStats::new();
        assert_eq!(stats.submitted(), 0);
        assert_eq!(stats.in_flight(), 0);

        stats.note_submitted();
        stats.note_submitted();
        let observer = stats.clone();
        assert_eq!(observer.submitted(), 2, "clones share state");
        assert_eq!(observer.in_flight(), 2);

        stats.set_occupancy(1, 1);
        assert_eq!(observer.running(), 1);
        assert_eq!(observer.queued(), 1);

        stats.note_completed();
        assert_eq!(observer.in_flight(), 1);
        stats.note_completed();
        assert_eq!(observer.in_flight(), 0);
        assert_eq!(observer.completed(), 2);
    }

    #[test]
    fn batch_gauges_distinguish_fused_and_singleton_dispatches() {
        let stats = RuntimeStats::new();
        stats.note_batch_dispatch(1);
        stats.note_batch_dispatch(4);
        stats.note_batch_dispatch(2);
        assert_eq!(stats.singleton_dispatches(), 1);
        assert_eq!(stats.fused_batches(), 2);
        assert_eq!(stats.batched_stage_executions(), 6);
        assert_eq!(stats.peak_batch_occupancy(), 4);

        assert_eq!(stats.mean_gather_wait(), std::time::Duration::ZERO);
        stats.note_gather_wait(std::time::Duration::from_micros(100));
        stats.note_gather_wait(std::time::Duration::from_micros(300));
        assert_eq!(
            stats.mean_gather_wait(),
            std::time::Duration::from_micros(200)
        );
    }

    #[test]
    fn in_flight_never_underflows() {
        let stats = RuntimeStats::new();
        stats.note_completed();
        assert_eq!(stats.in_flight(), 0);
    }

    #[test]
    fn snapshots_aggregate_counters_and_max_peaks() {
        let a = RuntimeStats::new();
        a.note_submitted();
        a.note_submitted();
        a.note_completed();
        a.note_batch_dispatch(4);
        let b = RuntimeStats::new();
        b.note_submitted();
        b.note_batch_dispatch(2);
        b.note_batch_dispatch(1);

        let total = StatsSnapshot::aggregate([&a, &b]);
        assert_eq!(total.submitted, 3);
        assert_eq!(total.completed, 1);
        assert_eq!(total.in_flight, 2);
        assert_eq!(total.fused_batches, 2);
        assert_eq!(total.batched_stage_executions, 6);
        assert_eq!(total.peak_batch_occupancy, 4, "peak is a max, not a sum");
        assert_eq!(total.singleton_dispatches, 1);
    }

    #[test]
    fn breakdown_rows_merge_by_name() {
        let mut a = StatsSnapshot::default();
        a.per_model.insert(
            "full".to_owned(),
            ModelBreakdown {
                submitted: 4,
                completed: 3,
                in_flight: 1,
                fused_batches: 2,
            },
        );
        a.per_tenant.insert(
            "acme".to_owned(),
            TenantBreakdown {
                admitted: 4,
                shed: 1,
                in_flight: 1,
            },
        );
        let mut b = StatsSnapshot::default();
        b.per_model.insert(
            "full".to_owned(),
            ModelBreakdown {
                submitted: 6,
                completed: 6,
                in_flight: 0,
                fused_batches: 1,
            },
        );
        b.per_model
            .insert("compressed".to_owned(), ModelBreakdown::default());
        b.per_tenant.insert(
            "zenith".to_owned(),
            TenantBreakdown {
                admitted: 2,
                shed: 0,
                in_flight: 0,
            },
        );

        a.absorb(&b);
        assert_eq!(a.per_model.len(), 2, "rows union across snapshots");
        let full = &a.per_model["full"];
        assert_eq!(full.submitted, 10);
        assert_eq!(full.completed, 9);
        assert_eq!(full.fused_batches, 3);
        assert_eq!(a.per_tenant.len(), 2);
        assert_eq!(a.per_tenant["acme"].admitted, 4);
        assert_eq!(a.per_tenant["zenith"].admitted, 2);
    }
}
