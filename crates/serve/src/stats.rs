use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Live occupancy gauges for a [`crate::ServingRuntime`].
///
/// A cheap cloneable handle over shared atomic counters: the runtime's
/// coordinator updates them as requests move through the pipeline, and any
/// number of observers (admission controllers, metrics exporters) read
/// them without locking. Values are monotonic counters (`submitted`,
/// `completed`) plus instantaneous gauges (`running`, `queued`), so
/// `in_flight` — the admission-control load signal — is derived as
/// `submitted - completed` and can never under-count a request that has
/// been accepted but not yet answered.
#[derive(Clone, Debug, Default)]
pub struct RuntimeStats {
    inner: Arc<Gauges>,
}

#[derive(Debug, Default)]
struct Gauges {
    submitted: AtomicU64,
    completed: AtomicU64,
    running: AtomicUsize,
    queued: AtomicUsize,
}

impl RuntimeStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests accepted via `submit` since startup.
    pub fn submitted(&self) -> u64 {
        self.inner.submitted.load(Ordering::Relaxed)
    }

    /// Requests that have received their final response.
    pub fn completed(&self) -> u64 {
        self.inner.completed.load(Ordering::Relaxed)
    }

    /// Requests accepted but not yet answered (queued + running +
    /// awaiting finalization).
    pub fn in_flight(&self) -> u64 {
        // Read completed first so a concurrent submit+complete pair can
        // only make the difference conservative (too high), never negative.
        let completed = self.completed();
        self.submitted().saturating_sub(completed)
    }

    /// Tasks whose stage is executing on a worker right now.
    pub fn running(&self) -> usize {
        self.inner.running.load(Ordering::Relaxed)
    }

    /// Admitted tasks parked between stages, waiting for a worker.
    pub fn queued(&self) -> usize {
        self.inner.queued.load(Ordering::Relaxed)
    }

    pub(crate) fn note_submitted(&self) {
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_completed(&self) {
        self.inner.completed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn set_occupancy(&self, running: usize, queued: usize) {
        self.inner.running.store(running, Ordering::Relaxed);
        self.inner.queued.store(queued, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_track_updates() {
        let stats = RuntimeStats::new();
        assert_eq!(stats.submitted(), 0);
        assert_eq!(stats.in_flight(), 0);

        stats.note_submitted();
        stats.note_submitted();
        let observer = stats.clone();
        assert_eq!(observer.submitted(), 2, "clones share state");
        assert_eq!(observer.in_flight(), 2);

        stats.set_occupancy(1, 1);
        assert_eq!(observer.running(), 1);
        assert_eq!(observer.queued(), 1);

        stats.note_completed();
        assert_eq!(observer.in_flight(), 1);
        stats.note_completed();
        assert_eq!(observer.in_flight(), 0);
        assert_eq!(observer.completed(), 2);
    }

    #[test]
    fn in_flight_never_underflows() {
        let stats = RuntimeStats::new();
        stats.note_completed();
        assert_eq!(stats.in_flight(), 0);
    }
}
