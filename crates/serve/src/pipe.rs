use crate::RequestId;
use crossbeam::channel::{unbounded, Receiver, Sender};

/// A progress message a worker sends back to the scheduler loop after
/// finishing one stage — the payload that crosses the paper's
/// "named pipe in linux".
#[derive(Debug, Clone, PartialEq)]
pub struct StageProgress {
    /// Which request progressed.
    pub request_id: RequestId,
    /// 0-based index of the stage that just finished.
    pub stage: usize,
    /// Updated classification confidence.
    pub confidence: f32,
    /// Updated predicted class.
    pub predicted: usize,
}

/// The worker-to-scheduler confidence channel (named-pipe analog).
///
/// Workers clone the [`ConfidencePipe::sender`]; the coordinator drains
/// messages via [`ConfidencePipe::receiver`].
///
/// # Examples
///
/// ```
/// use eugene_serve::{ConfidencePipe, StageProgress};
///
/// let pipe = ConfidencePipe::new();
/// pipe.sender().send(StageProgress {
///     request_id: 1,
///     stage: 0,
///     confidence: 0.7,
///     predicted: 4,
/// }).unwrap();
/// let msg = pipe.receiver().recv().unwrap();
/// assert_eq!(msg.stage, 0);
/// ```
#[derive(Debug, Clone)]
pub struct ConfidencePipe {
    sender: Sender<StageProgress>,
    receiver: Receiver<StageProgress>,
}

impl ConfidencePipe {
    /// Creates an unbounded pipe.
    pub fn new() -> Self {
        let (sender, receiver) = unbounded();
        Self { sender, receiver }
    }

    /// The write end, cloneable per worker.
    pub fn sender(&self) -> Sender<StageProgress> {
        self.sender.clone()
    }

    /// The read end for the scheduler loop.
    pub fn receiver(&self) -> &Receiver<StageProgress> {
        &self.receiver
    }
}

impl Default for ConfidencePipe {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn messages_cross_threads_in_order_per_sender() {
        let pipe = ConfidencePipe::new();
        let tx = pipe.sender();
        let handle = thread::spawn(move || {
            for stage in 0..3 {
                tx.send(StageProgress {
                    request_id: 9,
                    stage,
                    confidence: 0.5 + stage as f32 * 0.1,
                    predicted: 2,
                })
                .unwrap();
            }
        });
        handle.join().unwrap();
        let stages: Vec<usize> = (0..3)
            .map(|_| pipe.receiver().recv().unwrap().stage)
            .collect();
        assert_eq!(stages, vec![0, 1, 2]);
    }

    #[test]
    fn multiple_senders_all_arrive() {
        let pipe = ConfidencePipe::new();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = pipe.sender();
                thread::spawn(move || {
                    tx.send(StageProgress {
                        request_id: i,
                        stage: 0,
                        confidence: 0.5,
                        predicted: 0,
                    })
                    .unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut ids: Vec<RequestId> = (0..4)
            .map(|_| pipe.receiver().recv().unwrap().request_id)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}
