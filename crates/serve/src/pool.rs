use crossbeam::channel::{unbounded, Sender};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of worker threads, the analog of the paper's "pool of
/// waiting processes": workers block until a stage job is assigned, run
/// it, and return to the pool.
///
/// # Examples
///
/// ```
/// use eugene_serve::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = WorkerPool::new(4);
/// let counter = Arc::new(AtomicUsize::new(0));
/// for _ in 0..16 {
///     let counter = Arc::clone(&counter);
///     pool.execute(move || {
///         counter.fetch_add(1, Ordering::SeqCst);
///     });
/// }
/// pool.shutdown();
/// assert_eq!(counter.load(Ordering::SeqCst), 16);
/// ```
#[derive(Debug)]
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `size` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "pool needs at least one worker");
        let (sender, receiver) = unbounded::<Job>();
        let workers = (0..size)
            .map(|i| {
                let receiver = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("eugene-worker-{i}"))
                    .spawn(move || {
                        // Channel disconnect is the shutdown signal.
                        while let Ok(job) = receiver.recv() {
                            job();
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job; an idle worker picks it up.
    ///
    /// # Panics
    ///
    /// Panics if called after [`WorkerPool::shutdown`].
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool has been shut down")
            .send(Box::new(job))
            .expect("worker threads alive");
    }

    /// Drains outstanding jobs and joins every worker.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        // Dropping the sender disconnects the channel; workers drain
        // remaining jobs and exit.
        self.sender.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn all_jobs_run_before_shutdown_returns() {
        let pool = WorkerPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn jobs_actually_run_in_parallel() {
        let pool = WorkerPool::new(4);
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let barrier = Arc::clone(&barrier);
            let done = Arc::clone(&done);
            pool.execute(move || {
                // Deadlocks unless all four run simultaneously.
                barrier.wait();
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Give the pool a moment, then join via shutdown.
        std::thread::sleep(Duration::from_millis(50));
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn drop_joins_workers() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..10 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Implicit drop.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn size_reports_worker_count() {
        let pool = WorkerPool::new(5);
        assert_eq!(pool.size(), 5);
        pool.shutdown();
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_size_rejected() {
        WorkerPool::new(0);
    }
}
