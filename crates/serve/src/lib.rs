//! Live serving runtime for staged inference (paper §III-C).
//!
//! The paper's proof-of-concept runs the scheduler in user space: "The
//! scheduler spawns a pool of worker processes. These processes wait on
//! input images to arrive ... The confidence in classification will then
//! be sent to our user-level scheduler through a named pipe in linux ...
//! A daemon process monitors the elapsed time for each task. If the
//! elapsed time for a task exceeds the maximum latency constraint, the
//! daemon process will send a signal to stop the current computation."
//!
//! This crate reproduces that architecture with threads standing in for
//! processes and channels standing in for named pipes:
//!
//! - [`WorkerPool`]: a fixed pool of worker threads executing stage jobs;
//! - [`ConfidencePipe`]: the stage-progress channel from workers back to
//!   the scheduler loop;
//! - [`DeadlineDaemon`]: a monitor thread that fires kill signals for
//!   tasks that exceed their latency constraint;
//! - [`ServingRuntime`]: the coordinator gluing a staged model
//!   ([`InferenceEngine`]), a stage scheduler
//!   ([`eugene_sched::Scheduler`]), the pool, the pipe, and the daemon
//!   into a request/response service;
//! - [`ServiceClass`]: per-class latency constraints (the paper's §V
//!   extension: "the scheduler ... needs to be modified to support
//!   multiple service classes");
//! - [`OverloadPolicy`]: how deadline pressure resolves — kill (report
//!   `expired`) or degrade (utility-density scheduling plus anytime
//!   degradation: force an earlier exit and return the partial answer).
//!
//! # Examples
//!
//! See `examples/serving_pipeline.rs` at the repository root, which serves
//! a trained staged network through this runtime.

mod accounting;
mod batch;
mod daemon;
mod engine;
mod pipe;
mod pool;
mod registry;
mod request;
mod runtime;
mod stats;

pub use accounting::{ClassUsage, PricingModel, UsageLedger};
pub use daemon::DeadlineDaemon;
pub use engine::{EngineSession, InferenceEngine, PlanCacheStats, StageReport};
pub use eugene_profiler::{Precision, StageCostModel};
pub use pipe::{ConfidencePipe, StageProgress};
pub use pool::WorkerPool;
pub use registry::{ModelRegistry, RegistryError, VariantDispatcher, DEFAULT_MODEL};
pub use request::{InferenceRequest, InferenceResponse, RequestId, ServiceClass};
pub use runtime::{CompletionWaker, OverloadPolicy, RuntimeConfig, ServingRuntime};
pub use stats::{ModelBreakdown, RuntimeStats, StatsSnapshot, TenantBreakdown};
