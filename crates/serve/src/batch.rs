//! Stage-level gather buckets for the micro-batching executor.
//!
//! When [`crate::RuntimeConfig::max_batch`] is above one, the coordinator
//! parks schedulable tasks here instead of dispatching them one at a
//! time. Tasks waiting at the same stage index accumulate in a bucket; a
//! bucket is flushed to a worker as one fused stage execution when any of
//! these hold:
//!
//! - it is **full** (`max_batch` members);
//! - its **gather window** has elapsed since the oldest member arrived;
//! - a member is **deadline-urgent** (flushing immediately is the only
//!   way it can still make progress before the deadline daemon kills it —
//!   gathering never delays the daemon itself, which fires regardless);
//! - there are **no potential joiners**: nothing parked or running could
//!   reach this stage, so waiting out the window would buy latency and no
//!   occupancy. A bucket of one flushed this way is the batch-of-one fast
//!   path — it dispatches through the plain per-session stage call.
//!
//! Buckets never own sessions — members are request ids, and the
//! coordinator prunes ids whose task was killed or finalized mid-gather,
//! so an expiring request leaves the bucket without stalling the rest of
//! the batch.

use crate::RequestId;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// One member: the request and when it entered the bucket (for the
/// gather-latency gauge).
#[derive(Debug, Clone, Copy)]
struct Member {
    id: RequestId,
    added: Instant,
}

#[derive(Debug)]
struct Bucket {
    members: Vec<Member>,
}

impl Bucket {
    fn oldest(&self) -> Instant {
        self.members
            .iter()
            .map(|m| m.added)
            .min()
            .expect("bucket never left empty")
    }
}

/// Per-stage gather buckets; see the module docs for the flush rules.
#[derive(Debug)]
pub(crate) struct GatherBuckets {
    max_batch: usize,
    window: Duration,
    buckets: HashMap<usize, Bucket>,
}

impl GatherBuckets {
    pub(crate) fn new(max_batch: usize, window: Duration) -> Self {
        Self {
            max_batch,
            window,
            buckets: HashMap::new(),
        }
    }

    /// Total members across all buckets (already-claimed schedule slots).
    pub(crate) fn total_gathered(&self) -> usize {
        self.buckets.values().map(|b| b.members.len()).sum()
    }

    /// Parks `id` in the bucket for `stage`.
    pub(crate) fn add(&mut self, stage: usize, id: RequestId, now: Instant) {
        self.buckets
            .entry(stage)
            .or_insert_with(|| Bucket {
                members: Vec::new(),
            })
            .members
            .push(Member { id, added: now });
    }

    /// Drops members for which `alive` is false (killed or finalized
    /// mid-gather), then drops empty buckets.
    pub(crate) fn prune(&mut self, alive: impl Fn(RequestId) -> bool) {
        for bucket in self.buckets.values_mut() {
            bucket.members.retain(|m| alive(m.id));
        }
        self.buckets.retain(|_, b| !b.members.is_empty());
    }

    /// Pops up to `max_batch` members of one flush-ready bucket, oldest
    /// members first, returning the stage and each member's gather wait.
    /// Returns `None` when no bucket is ready. The caller is responsible
    /// for only asking while a worker is free — an unflushed bucket keeps
    /// gathering, which is where fusion under overload comes from.
    ///
    /// `urgent(id)` reports whether a member's deadline is close enough
    /// that waiting longer would forfeit it; `joiners(stage)` counts
    /// tasks outside this bucket that could still reach `stage`.
    pub(crate) fn pop_ready(
        &mut self,
        now: Instant,
        urgent: impl Fn(RequestId) -> bool,
        joiners: impl Fn(usize) -> usize,
    ) -> Option<(usize, Vec<(RequestId, Duration)>)> {
        let stage = *self
            .buckets
            .iter()
            .find(|(stage, bucket)| {
                let full = bucket.members.len() >= self.max_batch;
                let window_elapsed = now.saturating_duration_since(bucket.oldest()) >= self.window;
                let any_urgent = bucket.members.iter().any(|m| urgent(m.id));
                full || window_elapsed || any_urgent || joiners(**stage) == 0
            })?
            .0;
        let bucket = self.buckets.get_mut(&stage).expect("bucket present");
        bucket.members.sort_by_key(|m| m.added);
        let take = bucket.members.len().min(self.max_batch);
        let taken: Vec<(RequestId, Duration)> = bucket
            .members
            .drain(..take)
            .map(|m| (m.id, now.saturating_duration_since(m.added)))
            .collect();
        if bucket.members.is_empty() {
            self.buckets.remove(&stage);
        }
        Some((stage, taken))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NEVER_URGENT: fn(RequestId) -> bool = |_| false;
    const NO_JOINERS: fn(usize) -> usize = |_| 0;
    const MANY_JOINERS: fn(usize) -> usize = |_| 9;

    fn window() -> Duration {
        Duration::from_millis(50)
    }

    #[test]
    fn full_bucket_flushes_immediately_even_with_joiners() {
        let mut buckets = GatherBuckets::new(2, window());
        let now = Instant::now();
        buckets.add(0, 1, now);
        buckets.add(0, 2, now);
        buckets.add(0, 3, now);
        let (stage, members) = buckets
            .pop_ready(now, NEVER_URGENT, MANY_JOINERS)
            .expect("full bucket is ready");
        assert_eq!(stage, 0);
        assert_eq!(members.len(), 2, "flush caps at max_batch");
        assert_eq!(buckets.total_gathered(), 1, "remainder keeps gathering");
    }

    #[test]
    fn partial_bucket_waits_for_window_while_joiners_exist() {
        let mut buckets = GatherBuckets::new(4, window());
        let start = Instant::now();
        buckets.add(1, 7, start);
        assert!(
            buckets
                .pop_ready(start, NEVER_URGENT, MANY_JOINERS)
                .is_none(),
            "inside the window with joiners pending: keep gathering"
        );
        let later = start + window();
        let (stage, members) = buckets
            .pop_ready(later, NEVER_URGENT, MANY_JOINERS)
            .expect("window elapsed");
        assert_eq!((stage, members.len()), (1, 1));
        assert!(members[0].1 >= window(), "gather wait is reported");
    }

    #[test]
    fn no_joiners_is_the_batch_of_one_fast_path() {
        let mut buckets = GatherBuckets::new(8, window());
        let now = Instant::now();
        buckets.add(2, 11, now);
        let (stage, members) = buckets
            .pop_ready(now, NEVER_URGENT, NO_JOINERS)
            .expect("nothing can join: flush now");
        assert_eq!((stage, members.len()), (2, 1));
        assert_eq!(buckets.total_gathered(), 0);
    }

    #[test]
    fn urgent_member_overrides_the_window() {
        let mut buckets = GatherBuckets::new(8, Duration::from_secs(3600));
        let now = Instant::now();
        buckets.add(0, 1, now);
        buckets.add(0, 2, now);
        assert!(buckets.pop_ready(now, NEVER_URGENT, MANY_JOINERS).is_none());
        let (_, members) = buckets
            .pop_ready(now, |id| id == 2, MANY_JOINERS)
            .expect("urgent deadline forces the flush");
        assert_eq!(members.len(), 2, "the whole bucket rides along");
    }

    #[test]
    fn prune_drops_dead_members_and_empty_buckets() {
        let mut buckets = GatherBuckets::new(4, window());
        let now = Instant::now();
        buckets.add(0, 1, now);
        buckets.add(0, 2, now);
        buckets.add(1, 3, now);
        buckets.prune(|id| id == 2);
        assert_eq!(buckets.total_gathered(), 1);
        let (stage, members) = buckets
            .pop_ready(now, NEVER_URGENT, NO_JOINERS)
            .expect("survivor still flushes");
        assert_eq!((stage, members[0].0), (0, 2));
        assert!(
            buckets.pop_ready(now, NEVER_URGENT, NO_JOINERS).is_none(),
            "stage-1 bucket vanished with its only member"
        );
    }

    #[test]
    fn flush_order_is_oldest_first() {
        let mut buckets = GatherBuckets::new(2, window());
        let start = Instant::now();
        buckets.add(0, 5, start + Duration::from_millis(2));
        buckets.add(0, 4, start);
        let (_, members) = buckets
            .pop_ready(start + window(), NEVER_URGENT, NO_JOINERS)
            .expect("ready");
        assert_eq!(members[0].0, 4, "earliest arrival dispatches first");
        assert_eq!(members[1].0, 5);
    }
}
