use crate::batch::GatherBuckets;
use crate::{
    ConfidencePipe, DeadlineDaemon, EngineSession, InferenceEngine, InferenceRequest,
    InferenceResponse, RequestId, RuntimeStats, StageProgress, StageReport, UsageLedger,
    WorkerPool,
};
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use eugene_profiler::{Precision, StageCostModel};
use eugene_sched::{Scheduler, TaskView};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A readiness nudge invoked whenever the runtime pushes a completion or
/// a private stage-progress event to a submitter's channel; see
/// [`ServingRuntime::set_completion_waker`].
pub type CompletionWaker = Arc<dyn Fn() + Send + Sync>;

/// Shared slot holding the (optional) registered waker.
type WakerCell = Arc<Mutex<Option<CompletionWaker>>>;

fn current_waker(cell: &WakerCell) -> Option<CompletionWaker> {
    cell.lock().ok().and_then(|guard| guard.clone())
}

/// What the runtime does with a request that cannot finish all the work
/// its confidence threshold asks for before its deadline.
///
/// The paper's anytime-prediction architecture (§II-E) makes every staged
/// request's partial result usable, which turns overload handling into a
/// choice:
///
/// - [`OverloadPolicy::Kill`] (the historical behavior): the deadline
///   daemon interrupts the task and the response is flagged `expired` —
///   the request "missed" even though stages may have completed.
/// - [`OverloadPolicy::Degrade`]: the runtime schedules ready stage-work
///   by marginal utility density (estimated Δconfidence of the next
///   stage, from the online confidence profile, divided by its Δtime,
///   from the [`StageCostModel`]) and an overload controller force-exits
///   requests at earlier stages — before the daemon would kill them —
///   whenever the next stage no longer fits the remaining budget or the
///   parked queue grows past `queue_high_water`. A deadline kill that
///   still arrives is converted into an early exit whenever at least one
///   stage completed: the response carries `degraded: true` and the last
///   stage's `(predicted, confidence)` instead of `expired: true`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Deadline misses are killed and reported `expired` (default).
    #[default]
    Kill,
    /// Utility-density scheduling plus anytime degradation: deadline
    /// pressure shortens answers instead of voiding them.
    Degrade,
}

/// Configuration for [`ServingRuntime`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Worker threads executing stages.
    pub num_workers: usize,
    /// Early-exit threshold: once a task's confidence reaches this value
    /// the service refrains "from executing additional layers" (§II-E).
    /// `1.0` effectively disables early exit.
    pub confidence_threshold: f32,
    /// Poll interval of the deadline daemon.
    pub daemon_poll: Duration,
    /// Maximum requests fused into one batched stage execution. `1` (the
    /// default) disables micro-batching entirely and preserves the
    /// one-request-per-worker dispatch path.
    pub max_batch: usize,
    /// How long a schedulable request may wait in a gather bucket for
    /// same-stage peers before its batch is flushed regardless (see
    /// `crate::batch` for the full flush rules). Only meaningful when
    /// `max_batch > 1`. Gathering never delays the deadline daemon: an
    /// expiring request is killed and finalized mid-gather.
    pub gather_window: Duration,
    /// How deadline pressure resolves: kill (report `expired`) or degrade
    /// (force an earlier exit and report a usable partial answer).
    pub overload: OverloadPolicy,
    /// Parked-queue depth above which the [`OverloadPolicy::Degrade`]
    /// controller starts shedding the lowest-utility-density requests
    /// that already hold a partial answer. Ignored under
    /// [`OverloadPolicy::Kill`].
    pub queue_high_water: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            num_workers: 4,
            confidence_threshold: 1.0,
            daemon_poll: Duration::from_millis(1),
            max_batch: 1,
            gather_window: Duration::from_millis(1),
            overload: OverloadPolicy::Kill,
            queue_high_water: 64,
        }
    }
}

type Submission = (
    RequestId,
    InferenceRequest,
    Sender<InferenceResponse>,
    Option<Sender<StageProgress>>,
);
/// One task's stage outcome: `(id, session, report, panicked)`.
type StageOutcome = (RequestId, Box<dyn EngineSession>, Option<StageReport>, bool);
/// One worker job's outcomes — a single task, or a whole fused batch.
type JobDone = Vec<StageOutcome>;
/// One gathered member handed to the fused dispatcher: `(id, session,
/// private progress channel)`.
type BatchMember = (
    RequestId,
    Box<dyn EngineSession>,
    Option<Sender<StageProgress>>,
);

/// The live serving coordinator (paper §III-C).
///
/// A coordinator thread owns the task table and the scheduler; stage
/// executions are dispatched to a [`WorkerPool`], progress flows back over
/// the [`ConfidencePipe`], and a [`DeadlineDaemon`] kills tasks that
/// exceed their service class's latency constraint. Killed tasks return
/// the result of their last completed stage (or a starvation response if
/// no stage ran) and their worker "is returned to the pool".
///
/// # Examples
///
/// See `examples/serving_pipeline.rs` at the repository root.
/// Process-wide request-id source. Ids must be unique across *all*
/// runtimes, not just within one: a model registry funnels many
/// runtimes' responses into shared channels that demultiplex by id, so
/// per-runtime counters would collide.
static NEXT_REQUEST_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

pub struct ServingRuntime {
    submit_tx: Option<Sender<Submission>>,
    progress_rx: Receiver<StageProgress>,
    ledger: UsageLedger,
    stats: RuntimeStats,
    waker: WakerCell,
    /// A handle to the served engine, retained so observability
    /// surfaces (e.g. plan-cache counters) stay reachable after the
    /// engine moves into the coordinator thread.
    engine: Arc<dyn InferenceEngine>,
    coordinator: Option<JoinHandle<()>>,
}

impl ServingRuntime {
    /// Starts the runtime over `engine` with the given scheduling policy.
    ///
    /// The per-stage cost model starts from a flat 1 ms prior and is
    /// refined online from measured stage latencies; callers with an
    /// analytic profile should use
    /// [`ServingRuntime::start_with_cost_model`].
    ///
    /// # Panics
    ///
    /// Panics if `config.num_workers == 0`.
    pub fn start(
        engine: Arc<dyn InferenceEngine>,
        scheduler: Box<dyn Scheduler>,
        config: RuntimeConfig,
    ) -> Self {
        let cost = StageCostModel::uniform(engine.num_stages().max(1), 1.0);
        Self::start_with_cost_model(engine, scheduler, config, cost)
    }

    /// Starts the runtime with an analytic per-stage cost model (e.g.
    /// priced on the §II-C device profiler) seeding the utility-density
    /// scheduler's Δtime estimates. Measured stage latencies still refine
    /// the model online.
    ///
    /// # Panics
    ///
    /// Panics if `config.num_workers == 0`.
    pub fn start_with_cost_model(
        engine: Arc<dyn InferenceEngine>,
        scheduler: Box<dyn Scheduler>,
        config: RuntimeConfig,
        cost: StageCostModel,
    ) -> Self {
        assert!(config.num_workers > 0, "need at least one worker");
        let (submit_tx, submit_rx) = unbounded::<Submission>();
        let pipe = ConfidencePipe::new();
        let progress_rx = pipe.receiver().clone();
        let ledger = UsageLedger::new();
        let stats = RuntimeStats::new();
        let waker: WakerCell = Arc::new(Mutex::new(None));
        let engine_handle = Arc::clone(&engine);
        let coordinator = {
            let ledger = ledger.clone();
            let stats = stats.clone();
            let waker = Arc::clone(&waker);
            std::thread::Builder::new()
                .name("eugene-coordinator".to_owned())
                .spawn(move || {
                    coordinator_loop(
                        engine, scheduler, config, cost, submit_rx, pipe, ledger, stats, waker,
                    )
                })
                .expect("spawn coordinator")
        };
        Self {
            submit_tx: Some(submit_tx),
            progress_rx,
            ledger,
            stats,
            waker,
            engine: engine_handle,
            coordinator: Some(coordinator),
        }
    }

    /// Counters of the engine's compiled-plan cache, when the served
    /// engine executes through one (`None` for engines without plan
    /// compilation). Lets operators confirm steady-state serving is
    /// all cache hits and that weight mutations invalidate plans.
    pub fn plan_cache_stats(&self) -> Option<crate::PlanCacheStats> {
        self.engine.plan_cache_stats()
    }

    /// Registers a completion waker: a cheap, idempotent nudge the
    /// runtime invokes right after sending a response on a submitter's
    /// respond channel or a stage report on a private progress channel.
    ///
    /// This is the hook a readiness-driven (event-loop) consumer needs:
    /// instead of polling its funnel channels on a timer, it parks in its
    /// poller and lets the runtime wake it exactly when something was
    /// delivered. Spurious invocations are fine (wakers coalesce);
    /// invocation order relative to other wakers is unspecified. A second
    /// call replaces the previous waker.
    pub fn set_completion_waker(&self, waker: CompletionWaker) {
        if let Ok(mut cell) = self.waker.lock() {
            *cell = Some(waker);
        }
    }

    /// Submits a request; the response arrives on the returned channel.
    ///
    /// # Panics
    ///
    /// Panics if called after [`ServingRuntime::shutdown`].
    pub fn submit(&self, request: InferenceRequest) -> (RequestId, Receiver<InferenceResponse>) {
        self.submit_inner(request, None)
    }

    /// Submits a request and additionally returns a private per-request
    /// stage-progress channel, closed once the final response is sent.
    ///
    /// Unlike [`ServingRuntime::progress_events`] — a single shared feed
    /// of every task's progress — the returned receiver only carries this
    /// request's stage reports, so a caller (e.g. a network gateway
    /// streaming partial results) needs no demultiplexing.
    ///
    /// # Panics
    ///
    /// Panics if called after [`ServingRuntime::shutdown`].
    pub fn submit_with_progress(
        &self,
        request: InferenceRequest,
    ) -> (
        RequestId,
        Receiver<InferenceResponse>,
        Receiver<StageProgress>,
    ) {
        let (progress_tx, progress_rx) = unbounded();
        let (id, response_rx) = self.submit_inner(request, Some(progress_tx));
        (id, response_rx, progress_rx)
    }

    /// Submits a request whose response (and optional per-stage progress)
    /// is routed to caller-supplied channels instead of fresh private
    /// ones, returning the assigned [`RequestId`].
    ///
    /// Any number of requests may share the same channels: the response's
    /// [`InferenceResponse::id`] and each progress event's
    /// [`StageProgress::request_id`] identify which request they answer.
    /// This is the funnel the network gateway uses to demultiplex
    /// arbitrarily many in-flight requests per connection over a fixed
    /// set of channels (and threads).
    ///
    /// # Panics
    ///
    /// Panics if called after [`ServingRuntime::shutdown`].
    pub fn submit_with_channels(
        &self,
        request: InferenceRequest,
        respond: Sender<InferenceResponse>,
        progress: Option<Sender<StageProgress>>,
    ) -> RequestId {
        let id = NEXT_REQUEST_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.stats.note_submitted();
        self.submit_tx
            .as_ref()
            .expect("runtime has been shut down")
            .send((id, request, respond, progress))
            .expect("coordinator alive");
        id
    }

    fn submit_inner(
        &self,
        request: InferenceRequest,
        progress: Option<Sender<StageProgress>>,
    ) -> (RequestId, Receiver<InferenceResponse>) {
        let (tx, rx) = unbounded();
        let id = self.submit_with_channels(request, tx, progress);
        (id, rx)
    }

    /// Live occupancy gauges (in-flight, queue depth); the handle stays
    /// valid after shutdown and can be cloned freely.
    pub fn stats(&self) -> RuntimeStats {
        self.stats.clone()
    }

    /// Per-stage progress events (the confidence-pipe read end), for
    /// observability.
    pub fn progress_events(&self) -> &Receiver<StageProgress> {
        &self.progress_rx
    }

    /// The per-service-class usage ledger (paper SV: resource accounting
    /// per class, the input to a pricing structure).
    pub fn usage_ledger(&self) -> &UsageLedger {
        &self.ledger
    }

    /// Stops accepting requests, drains in-flight work, and joins the
    /// coordinator.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.submit_tx.take();
        if let Some(handle) = self.coordinator.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServingRuntime {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

struct ActiveTask {
    /// Service class name, for usage accounting.
    class_name: String,
    /// Present while the task is parked; `None` while a worker runs it.
    session: Option<Box<dyn EngineSession>>,
    observed: Vec<f32>,
    last: Option<StageReport>,
    started: Instant,
    deadline: Instant,
    /// The deadline daemon fired for this task.
    killed: bool,
    /// A stage panicked inside the engine; always finalizes as expired.
    panicked: bool,
    /// The overload controller force-exited this task (or a deadline kill
    /// was converted): it finalizes with its partial answer, not expired.
    degraded: bool,
    /// Parked in a gather bucket awaiting a fused dispatch. The session
    /// stays with the task (the bucket holds only the id), so a deadline
    /// kill mid-gather finalizes it like any parked task.
    gathering: bool,
    /// Stage index a worker is executing right now (`None` while parked);
    /// lets the gather logic count tasks about to reach a bucket's stage.
    running_stage: Option<usize>,
    /// When the current stage was handed to a worker; its elapsed time on
    /// completion feeds the stage cost model's moving average.
    dispatched_at: Option<Instant>,
    num_stages: usize,
    respond: Sender<InferenceResponse>,
    /// Private stage-progress feed for this request, if the submitter
    /// asked for one.
    progress: Option<Sender<StageProgress>>,
}

#[allow(clippy::too_many_arguments)]
fn coordinator_loop(
    engine: Arc<dyn InferenceEngine>,
    mut scheduler: Box<dyn Scheduler>,
    config: RuntimeConfig,
    mut cost: StageCostModel,
    submit_rx: Receiver<Submission>,
    pipe: ConfidencePipe,
    ledger: UsageLedger,
    stats: RuntimeStats,
    waker: WakerCell,
) {
    let pool = WorkerPool::new(config.num_workers);
    let daemon = DeadlineDaemon::start(config.daemon_poll);
    let (done_tx, done_rx) = unbounded::<JobDone>();
    let mut tasks: HashMap<RequestId, ActiveTask> = HashMap::new();
    let batching = config.max_batch > 1;
    let mut buckets = GatherBuckets::new(config.max_batch.max(1), config.gather_window);
    // Online per-stage confidence profile: the Δutility half of the
    // utility-density ordering.
    let mut profile = ConfidenceProfile::new(engine.num_stages());
    // Per-stage serving precisions, sampled once: engines are immutable
    // while serving. Every cost observation and estimate below is keyed
    // by this tag so quantized stages (several times faster) and f32
    // stages keep separate latency EMAs.
    let precisions: Vec<Precision> = (0..engine.num_stages())
        .map(|s| engine.stage_precision(s))
        .collect();
    // Outstanding worker jobs (a fused batch occupies one worker).
    let mut busy_jobs = 0usize;
    // Tasks whose stage is executing right now (>= busy_jobs under fusion).
    let mut running_tasks = 0usize;
    let mut accepting = true;
    scheduler.reset();

    loop {
        // 1. Accept new requests.
        loop {
            match submit_rx.try_recv() {
                Ok((id, request, respond, progress)) => {
                    let session = engine.begin(&request.payload);
                    let now = Instant::now();
                    let deadline = now + request.class.deadline();
                    daemon.register(id, deadline);
                    tasks.insert(
                        id,
                        ActiveTask {
                            class_name: request.class.name().to_owned(),
                            session: Some(session),
                            observed: Vec::new(),
                            last: None,
                            started: now,
                            deadline,
                            killed: false,
                            panicked: false,
                            degraded: false,
                            gathering: false,
                            running_stage: None,
                            dispatched_at: None,
                            num_stages: engine.num_stages(),
                            respond,
                            progress,
                        },
                    );
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    accepting = false;
                    break;
                }
            }
        }

        // 2. Collect finished jobs — deliberately *before* draining kill
        // signals, so a request that completed right at its deadline is
        // observed as complete and the racing kill is recognized as stale.
        // A stage that panicked inside the engine marks its task so it
        // finalizes with whatever it had, rather than deadlocking the
        // runtime.
        while let Ok(entries) = done_rx.try_recv() {
            busy_jobs -= 1;
            for (id, session, report, panicked) in entries {
                running_tasks -= 1;
                if let Some(task) = tasks.get_mut(&id) {
                    let stage = task.running_stage.take();
                    if let Some(report) = report {
                        if let Some(stage) = stage {
                            profile.observe(stage, report.confidence);
                            if let Some(at) = task.dispatched_at {
                                cost.observe_precision_ms(
                                    stage,
                                    precision_at(&precisions, stage),
                                    at.elapsed().as_secs_f64() * 1e3,
                                );
                            }
                        }
                        task.observed.push(report.confidence);
                        task.last = Some(report);
                    }
                    task.dispatched_at = None;
                    if panicked {
                        task.panicked = true;
                    }
                    task.session = Some(session);
                }
            }
        }

        // 3. Apply kill signals from the deadline daemon. A signal whose
        // task already finished — deregistered a moment ago (absent from
        // the table), or parked with its answer already complete — raced
        // the completion and is swallowed rather than counted as a kill.
        while let Ok(id) = daemon.kill_signals().try_recv() {
            match tasks.get_mut(&id) {
                None => stats.note_stale_kill_swallowed(),
                Some(task) => {
                    let complete = task.session.is_some()
                        && (task.observed.len() >= task.num_stages
                            || task
                                .last
                                .is_some_and(|r| r.confidence >= config.confidence_threshold));
                    if complete || task.degraded {
                        stats.note_stale_kill_swallowed();
                    } else {
                        task.killed = true;
                    }
                }
            }
        }

        // 3b. Overload controller (Degrade mode): force-exit requests at
        // an earlier stage *before* the deadline daemon has to kill them —
        // when the estimated next stage no longer fits the remaining
        // budget, and, under queue pressure, the lowest-utility-density
        // parked requests that already hold a partial answer.
        if config.overload == OverloadPolicy::Degrade {
            let now = Instant::now();
            let mut parked_depth = 0usize;
            for task in tasks.values_mut() {
                if task.session.is_none() || task.killed || task.panicked || task.degraded {
                    continue;
                }
                // Already complete: it finalizes this very iteration.
                if task.observed.len() >= task.num_stages
                    || task
                        .last
                        .is_some_and(|r| r.confidence >= config.confidence_threshold)
                {
                    continue;
                }
                parked_depth += 1;
                if task.observed.is_empty() {
                    continue;
                }
                let remaining_ms = task.deadline.saturating_duration_since(now).as_secs_f64() * 1e3;
                let next = task.observed.len();
                if cost.estimate_precision_ms(next, precision_at(&precisions, next)) > remaining_ms
                {
                    task.degraded = true;
                    parked_depth -= 1;
                }
            }
            if parked_depth > config.queue_high_water {
                let mut shedable: Vec<(RequestId, f64)> = tasks
                    .iter()
                    .filter(|(_, t)| {
                        t.session.is_some()
                            && !t.killed
                            && !t.panicked
                            && !t.degraded
                            && !t.observed.is_empty()
                    })
                    .map(|(&id, t)| (id, utility_density(t, &profile, &cost, &precisions)))
                    .collect();
                shedable.sort_by(|a, b| {
                    a.1.partial_cmp(&b.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
                for (id, _) in shedable
                    .into_iter()
                    .take(parked_depth - config.queue_high_water)
                {
                    if let Some(task) = tasks.get_mut(&id) {
                        task.degraded = true;
                    }
                }
            }
        }

        // 4. Finalize tasks that are done, killed, degraded, or confident
        // enough. Gathered tasks keep their session, so a deadline kill
        // mid-gather finalizes here like any parked task (the bucket is
        // pruned below).
        let finished: Vec<RequestId> = tasks
            .iter()
            .filter(|(_, t)| {
                t.session.is_some()
                    && (t.killed
                        || t.panicked
                        || t.degraded
                        || t.observed.len() >= t.num_stages
                        || t.last
                            .is_some_and(|r| r.confidence >= config.confidence_threshold))
            })
            .map(|(&id, _)| id)
            .collect();
        // One nudge covers the whole finalize batch: wakers coalesce.
        let nudge = if finished.is_empty() {
            None
        } else {
            current_waker(&waker)
        };
        for id in finished {
            let task = tasks.remove(&id).expect("task present");
            daemon.deregister(id);
            // Degrade mode turns a deadline kill into an early exit
            // whenever at least one stage completed: the partial answer is
            // the paper's imprecise-computation result, not a miss. A
            // zero-stage kill has nothing to return and stays an expiry,
            // as does any engine panic; a kill that raced *full*
            // completion (only visible once the running stage returned)
            // cut nothing short and is swallowed as stale.
            let fully_done = task.observed.len() >= task.num_stages
                || task
                    .last
                    .is_some_and(|r| r.confidence >= config.confidence_threshold);
            let (expired, degraded) = if task.panicked {
                (true, false)
            } else if task.degraded || (task.killed && config.overload == OverloadPolicy::Degrade) {
                if fully_done {
                    (false, false)
                } else if task.observed.is_empty() {
                    (true, false)
                } else {
                    (false, true)
                }
            } else {
                (task.killed, false)
            };
            if degraded {
                stats.note_degraded_exit();
            } else if task.killed && !task.panicked {
                if expired {
                    stats.note_deadline_kill();
                } else {
                    stats.note_stale_kill_swallowed();
                }
            }
            ledger.record(
                &task.class_name,
                task.observed.len(),
                expired,
                !expired && task.observed.len() < task.num_stages,
            );
            let response = InferenceResponse {
                id,
                predicted: task.last.map(|r| r.predicted),
                confidence: task.last.map(|r| r.confidence),
                stages_executed: task.observed.len(),
                expired,
                degraded,
                latency: task.started.elapsed(),
            };
            // Completion is recorded before the send so a submitter that
            // has received every response observes a consistent gauge.
            stats.note_completed();
            // The submitter may have dropped its receiver; that is fine.
            let _ = task.respond.send(response);
        }
        if let Some(nudge) = nudge {
            nudge();
        }

        // 5. Schedule parked tasks onto free workers — directly when
        // batching is off, through the gather buckets when it is on.
        let free = config.num_workers.saturating_sub(busy_jobs);
        if batching {
            buckets.prune(|id| {
                tasks
                    .get(&id)
                    .is_some_and(|t| !t.killed && !t.panicked && !t.degraded)
            });
            // The scheduler may claim one batch worth of slots per worker
            // — including busy ones, so buckets keep filling while every
            // worker is occupied (that backlog is where fusion under
            // overload comes from) — minus what is already claimed.
            let capacity = (config.num_workers * config.max_batch)
                .saturating_sub(buckets.total_gathered() + running_tasks);
            if capacity > 0 {
                let now = Instant::now();
                for picked in pick_schedulable(
                    &mut scheduler,
                    &tasks,
                    capacity,
                    &config,
                    &profile,
                    &cost,
                    &precisions,
                ) {
                    if let Some(task) = tasks.get_mut(&picked) {
                        task.gathering = true;
                        buckets.add(task.observed.len(), picked, now);
                    }
                }
            }
            let mut free_now = free;
            while free_now > 0 {
                let now = Instant::now();
                let popped = buckets.pop_ready(
                    now,
                    |id| {
                        tasks.get(&id).is_some_and(|t| {
                            // A gathered request is deadline-urgent once
                            // its remaining budget is within one gather
                            // window of its estimated next-stage cost:
                            // waiting longer risks the daemon killing it
                            // before the stage even dispatches.
                            let next = t.observed.len();
                            let margin = urgent_margin(
                                cost.estimate_precision_ms(next, precision_at(&precisions, next)),
                                config.gather_window,
                            );
                            t.deadline.saturating_duration_since(now) <= margin
                        })
                    },
                    |stage| potential_joiners(&tasks, stage),
                );
                let Some((_, members)) = popped else {
                    break;
                };
                let mut batch = Vec::with_capacity(members.len());
                for (id, wait) in members {
                    let Some(task) = tasks.get_mut(&id) else {
                        continue;
                    };
                    task.gathering = false;
                    if task.killed || task.panicked || task.degraded {
                        continue;
                    }
                    let Some(session) = task.session.take() else {
                        continue;
                    };
                    task.running_stage = Some(task.observed.len());
                    task.dispatched_at = Some(now);
                    stats.note_gather_wait(wait);
                    batch.push((id, session, task.progress.clone()));
                }
                if batch.is_empty() {
                    continue;
                }
                stats.note_batch_dispatch(batch.len());
                busy_jobs += 1;
                running_tasks += batch.len();
                free_now -= 1;
                if batch.len() == 1 {
                    // Batch-of-one fast path: plain per-session dispatch.
                    let (id, session, private_tx) = batch.pop().expect("one member");
                    dispatch_single(
                        &pool,
                        id,
                        session,
                        private_tx,
                        pipe.sender(),
                        &done_tx,
                        Arc::clone(&waker),
                    );
                } else {
                    dispatch_batch(
                        &pool,
                        Arc::clone(&engine),
                        batch,
                        pipe.sender(),
                        &done_tx,
                        Arc::clone(&waker),
                    );
                }
            }
        } else if free > 0 {
            let mut dispatched = 0;
            for picked in pick_schedulable(
                &mut scheduler,
                &tasks,
                free,
                &config,
                &profile,
                &cost,
                &precisions,
            ) {
                if dispatched >= free {
                    break;
                }
                let Some(task) = tasks.get_mut(&picked) else {
                    continue;
                };
                let Some(session) = task.session.take() else {
                    continue;
                };
                task.running_stage = Some(task.observed.len());
                task.dispatched_at = Some(Instant::now());
                busy_jobs += 1;
                running_tasks += 1;
                dispatched += 1;
                dispatch_single(
                    &pool,
                    picked,
                    session,
                    task.progress.clone(),
                    pipe.sender(),
                    &done_tx,
                    Arc::clone(&waker),
                );
            }
        }

        // 6. Publish occupancy, exit when drained, otherwise pace the loop.
        stats.set_occupancy(running_tasks, tasks.len().saturating_sub(running_tasks));
        if !accepting && tasks.is_empty() && busy_jobs == 0 {
            break;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    stats.set_occupancy(0, 0);
    pool.shutdown();
    daemon.shutdown();
}

/// Online per-stage confidence profile: the running mean of the
/// confidence every completed stage reported, per stage index. This is
/// the Δutility half of the utility-density ordering — "how much
/// confidence does one more stage typically buy". Unseen stages fall back
/// to a linear ramp prior so cold starts still order sensibly.
struct ConfidenceProfile {
    sums: Vec<f64>,
    counts: Vec<u64>,
    num_stages: usize,
}

impl ConfidenceProfile {
    fn new(num_stages: usize) -> Self {
        let n = num_stages.max(1);
        Self {
            sums: vec![0.0; n],
            counts: vec![0; n],
            num_stages: n,
        }
    }

    fn observe(&mut self, stage: usize, confidence: f32) {
        if stage < self.sums.len() && confidence.is_finite() {
            self.sums[stage] += f64::from(confidence);
            self.counts[stage] += 1;
        }
    }

    /// Expected confidence after executing stage index `stage`.
    fn expected_after(&self, stage: usize) -> f64 {
        let stage = stage.min(self.num_stages - 1);
        if self.counts[stage] > 0 {
            self.sums[stage] / self.counts[stage] as f64
        } else {
            (stage + 1) as f64 / self.num_stages as f64
        }
    }
}

/// Serving precision of `stage`, falling back to f32 for stages past the
/// sampled engine depth (sessions never run stages beyond `num_stages`,
/// but estimates are occasionally asked about them).
fn precision_at(precisions: &[Precision], stage: usize) -> Precision {
    precisions.get(stage).copied().unwrap_or(Precision::F32)
}

/// Marginal utility density of running `task`'s next stage: estimated
/// Δconfidence (confidence profile) over estimated Δtime (stage cost
/// model, at the stage's serving precision), in confidence per
/// millisecond. The floor on the gain keeps fully-plateaued tasks
/// schedulable rather than starved forever.
fn utility_density(
    task: &ActiveTask,
    profile: &ConfidenceProfile,
    cost: &StageCostModel,
    precisions: &[Precision],
) -> f64 {
    let next = task.observed.len();
    let current = task.last.map_or(0.0, |r| f64::from(r.confidence));
    let gain = (profile.expected_after(next) - current).max(1e-4);
    gain / cost
        .estimate_precision_ms(next, precision_at(precisions, next))
        .max(1e-6)
}

/// Remaining-budget threshold below which a gathered request must flush
/// regardless of batching opportunities: one more gather window of waiting
/// plus the estimated cost of the stage itself. Deriving the margin from
/// the request's own next-stage cost fixes both failure modes of the old
/// fixed `2 x gather_window` margin: a short-deadline request with an
/// expensive next stage flushed too late (margin ignored the stage cost,
/// so the stage could no longer finish), and a long-deadline request with
/// a cheap stage flushed pointlessly early under a wide window.
fn urgent_margin(est_next_stage_ms: f64, gather_window: Duration) -> Duration {
    let stage = Duration::from_secs_f64(est_next_stage_ms.max(0.0) / 1e3);
    gather_window.saturating_add(stage)
}

/// Picks at most `capacity` parked, live, not-yet-gathered tasks to run
/// next: by marginal utility density under [`OverloadPolicy::Degrade`],
/// by the configured scheduling policy otherwise.
fn pick_schedulable(
    scheduler: &mut Box<dyn Scheduler>,
    tasks: &HashMap<RequestId, ActiveTask>,
    capacity: usize,
    config: &RuntimeConfig,
    profile: &ConfidenceProfile,
    cost: &StageCostModel,
    precisions: &[Precision],
) -> Vec<RequestId> {
    let mut entries: Vec<(&RequestId, &ActiveTask)> = tasks
        .iter()
        .filter(|(_, t)| {
            t.session.is_some() && !t.killed && !t.panicked && !t.degraded && !t.gathering
        })
        .collect();
    entries.sort_by_key(|(id, _)| **id);
    if config.overload == OverloadPolicy::Degrade {
        // Utility-density order: highest Δconfidence/Δtime first, ties
        // broken toward the nearer deadline, then by id for determinism.
        // Under overload this naturally prefers first stages (largest
        // confidence gain), so every admitted request reaches stage >= 1
        // before anyone's refinement stages run.
        let mut ranked: Vec<(f64, Instant, RequestId)> = entries
            .iter()
            .map(|(id, t)| {
                (
                    utility_density(t, profile, cost, precisions),
                    t.deadline,
                    **id,
                )
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
                .then(a.2.cmp(&b.2))
        });
        return ranked
            .into_iter()
            .take(capacity)
            .map(|(_, _, id)| id)
            .collect();
    }
    let now = Instant::now();
    let views: Vec<TaskView<'_>> = entries
        .iter()
        .map(|(id, t)| {
            let remaining_ms = t.deadline.saturating_duration_since(now).as_millis() as u64;
            TaskView {
                id: **id as usize,
                stages_done: t.observed.len(),
                num_stages: t.num_stages,
                observed: &t.observed,
                admitted_at: 0,
                deadline_remaining_ms: remaining_ms,
                // In stage-execution units, as the schedulers' slack
                // arithmetic expects (they compare this against counts of
                // stages left, not milliseconds).
                remaining_quanta: (remaining_ms as f64
                    / cost
                        .estimate_precision_ms(
                            t.observed.len(),
                            precision_at(precisions, t.observed.len()),
                        )
                        .max(1e-6)) as u64,
            }
        })
        .collect();
    scheduler
        .assign(&views, capacity)
        .into_iter()
        .take(capacity)
        .map(|picked| picked as RequestId)
        .collect()
}

/// Tasks outside the gather buckets that could still reach `stage`: parked
/// tasks already there, and running tasks whose current stage parks them
/// there next. Zero means waiting out the gather window buys nothing.
fn potential_joiners(tasks: &HashMap<RequestId, ActiveTask>, stage: usize) -> usize {
    tasks
        .values()
        .filter(|t| !t.killed && !t.panicked && !t.degraded)
        .filter(|t| match (&t.session, t.running_stage) {
            (Some(_), _) => !t.gathering && t.observed.len() == stage,
            (None, Some(running)) => running + 1 == stage,
            (None, None) => false,
        })
        .count()
}

/// Executes one task's next stage on the pool — the only dispatch path
/// when batching is off, and the batch-of-one fast path when it is on.
fn dispatch_single(
    pool: &WorkerPool,
    id: RequestId,
    mut session: Box<dyn EngineSession>,
    private_tx: Option<Sender<StageProgress>>,
    progress_tx: Sender<StageProgress>,
    done_tx: &Sender<JobDone>,
    waker: WakerCell,
) {
    let done_tx = done_tx.clone();
    pool.execute(move || {
        // A panicking engine must not wedge the coordinator: catch it,
        // return the session, and flag the task.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| session.next_stage()));
        let entry = match outcome {
            Ok(report) => {
                if let Some(r) = report {
                    let event = StageProgress {
                        request_id: id,
                        stage: session.stages_done().saturating_sub(1),
                        confidence: r.confidence,
                        predicted: r.predicted,
                    };
                    if let Some(private_tx) = &private_tx {
                        let _ = private_tx.send(event.clone());
                        // A private progress consumer may be parked in a
                        // poller rather than a blocking recv: nudge it.
                        if let Some(nudge) = current_waker(&waker) {
                            nudge();
                        }
                    }
                    let _ = progress_tx.send(event);
                }
                (id, session, report, false)
            }
            Err(_) => (id, session, None, true),
        };
        let _ = done_tx.send(vec![entry]);
    });
}

/// Executes one fused batch on the pool via the engine's
/// [`InferenceEngine::next_stage_batch`], scattering per-session reports
/// back as individual stage outcomes.
fn dispatch_batch(
    pool: &WorkerPool,
    engine: Arc<dyn InferenceEngine>,
    batch: Vec<BatchMember>,
    progress_tx: Sender<StageProgress>,
    done_tx: &Sender<JobDone>,
    waker: WakerCell,
) {
    let done_tx = done_tx.clone();
    pool.execute(move || {
        let mut ids = Vec::with_capacity(batch.len());
        let mut sessions: Vec<Box<dyn EngineSession>> = Vec::with_capacity(batch.len());
        let mut privates = Vec::with_capacity(batch.len());
        for (id, session, private) in batch {
            ids.push(id);
            sessions.push(session);
            privates.push(private);
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.next_stage_batch(&mut sessions)
        }));
        let entries: JobDone = match outcome {
            Ok(mut reports) => {
                // A misbehaving override must never lose sessions: pad or
                // truncate its report list to the batch size.
                reports.resize(sessions.len(), None);
                let mut nudge_needed = false;
                let entries: JobDone = ids
                    .into_iter()
                    .zip(sessions)
                    .zip(reports)
                    .zip(privates)
                    .map(|(((id, session), report), private_tx)| {
                        if let Some(r) = report {
                            let event = StageProgress {
                                request_id: id,
                                stage: session.stages_done().saturating_sub(1),
                                confidence: r.confidence,
                                predicted: r.predicted,
                            };
                            if let Some(private_tx) = &private_tx {
                                let _ = private_tx.send(event.clone());
                                nudge_needed = true;
                            }
                            let _ = progress_tx.send(event);
                        }
                        (id, session, report, false)
                    })
                    .collect();
                // One nudge covers every private send in the fused batch.
                if nudge_needed {
                    if let Some(nudge) = current_waker(&waker) {
                        nudge();
                    }
                }
                entries
            }
            // A panic inside a fused stage poisons the whole batch: every
            // member finalizes as killed with whatever it already had.
            Err(_) => ids
                .into_iter()
                .zip(sessions)
                .map(|(id, session)| (id, session, None, true))
                .collect(),
        };
        let _ = done_tx.send(entries);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::testing::RampEngine;
    use crate::ServiceClass;
    use eugene_sched::Fifo;

    fn runtime(ramp: Vec<f32>, stage_ms: u64, config: RuntimeConfig) -> ServingRuntime {
        let engine = Arc::new(RampEngine {
            ramp,
            stage_time: Duration::from_millis(stage_ms),
        });
        ServingRuntime::start(engine, Box::new(Fifo::new()), config)
    }

    fn class(deadline_ms: u64) -> ServiceClass {
        ServiceClass::new("test", Duration::from_millis(deadline_ms))
    }

    #[test]
    fn serves_a_request_through_all_stages() {
        let rt = runtime(vec![0.5, 0.7, 0.9], 1, RuntimeConfig::default());
        let (_, rx) = rt.submit(InferenceRequest::new(vec![3.0], class(5_000)));
        let response = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(response.stages_executed, 3);
        assert_eq!(response.predicted, Some(3));
        assert_eq!(response.confidence, Some(0.9));
        assert!(!response.expired);
        rt.shutdown();
    }

    #[test]
    fn early_exit_skips_remaining_stages() {
        let config = RuntimeConfig {
            confidence_threshold: 0.8,
            ..RuntimeConfig::default()
        };
        let rt = runtime(vec![0.85, 0.9, 0.99], 1, config);
        let (_, rx) = rt.submit(InferenceRequest::new(vec![1.0], class(5_000)));
        let response = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(response.stages_executed, 1, "first stage already confident");
        assert_eq!(response.confidence, Some(0.85));
        rt.shutdown();
    }

    #[test]
    fn deadline_interrupts_slow_tasks() {
        // Stages take 30 ms; deadline 40 ms: at most 2 stages can finish.
        let rt = runtime(vec![0.5, 0.7, 0.9], 30, RuntimeConfig::default());
        let (_, rx) = rt.submit(InferenceRequest::new(vec![2.0], class(40)));
        let response = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(response.expired, "task should be killed by the daemon");
        assert!(
            response.stages_executed < 3,
            "ran {} stages",
            response.stages_executed
        );
        if response.stages_executed > 0 {
            assert!(response.is_answered(), "partial results are returned");
        }
        rt.shutdown();
    }

    #[test]
    fn many_concurrent_requests_all_answered() {
        let rt = runtime(vec![0.6, 0.9], 1, RuntimeConfig::default());
        let receivers: Vec<_> = (0..20)
            .map(|i| {
                let (id, rx) = rt.submit(InferenceRequest::new(vec![i as f32], class(10_000)));
                (i, id, rx)
            })
            .collect();
        for (i, id, rx) in receivers {
            let response = rx.recv_timeout(Duration::from_secs(10)).unwrap();
            assert_eq!(response.id, id);
            assert_eq!(response.stages_executed, 2);
            assert_eq!(response.predicted, Some(i));
        }
        rt.shutdown();
    }

    #[test]
    fn progress_events_flow_through_the_pipe() {
        let rt = runtime(vec![0.5, 0.9], 1, RuntimeConfig::default());
        let (_, rx) = rt.submit(InferenceRequest::new(vec![0.0], class(5_000)));
        rx.recv_timeout(Duration::from_secs(10)).unwrap();
        let first = rt
            .progress_events()
            .recv_timeout(Duration::from_secs(1))
            .unwrap();
        assert_eq!(first.stage, 0);
        assert_eq!(first.confidence, 0.5);
        rt.shutdown();
    }

    #[test]
    fn ledger_accounts_per_class_usage() {
        let config = RuntimeConfig {
            confidence_threshold: 0.8,
            ..RuntimeConfig::default()
        };
        let rt = runtime(vec![0.85, 0.9, 0.95], 1, config);
        // Two classes: both early-exit after one stage (0.85 >= 0.8).
        let a = ServiceClass::new("interactive", Duration::from_secs(10));
        let b = ServiceClass::new("batch", Duration::from_secs(10));
        let mut rxs = Vec::new();
        for i in 0..6 {
            let class = if i % 3 == 0 { a.clone() } else { b.clone() };
            rxs.push(rt.submit(InferenceRequest::new(vec![0.0], class)));
        }
        for (_, rx) in rxs {
            rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        let interactive = rt.usage_ledger().usage("interactive");
        let batch = rt.usage_ledger().usage("batch");
        assert_eq!(interactive.requests, 2);
        assert_eq!(batch.requests, 4);
        assert_eq!(interactive.early_exits, 2);
        assert_eq!(interactive.stages_executed, 2);
        assert_eq!(rt.usage_ledger().total_stages(), 6);
        rt.shutdown();
    }

    /// An engine whose second stage always panics.
    struct ExplosiveEngine;
    impl crate::InferenceEngine for ExplosiveEngine {
        fn num_stages(&self) -> usize {
            3
        }
        fn begin(&self, _payload: &[f32]) -> Box<dyn crate::EngineSession> {
            Box::new(ExplosiveSession { done: 0 })
        }
    }
    struct ExplosiveSession {
        done: usize,
    }
    impl crate::EngineSession for ExplosiveSession {
        fn next_stage(&mut self) -> Option<StageReport> {
            if self.done >= 1 {
                panic!("stage 2 explodes");
            }
            self.done += 1;
            Some(StageReport {
                predicted: 0,
                confidence: 0.5,
            })
        }
        fn stages_done(&self) -> usize {
            self.done
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn worker_panic_fails_the_task_without_wedging_the_runtime() {
        let rt = ServingRuntime::start(
            Arc::new(ExplosiveEngine),
            Box::new(Fifo::new()),
            RuntimeConfig::default(),
        );
        let (_, rx) = rt.submit(InferenceRequest::new(vec![0.0], class(5_000)));
        let response = rx.recv_timeout(Duration::from_secs(10)).expect("response");
        assert!(response.expired, "panicked task finalizes as killed");
        assert_eq!(response.stages_executed, 1, "only the good stage counted");
        assert_eq!(response.confidence, Some(0.5));
        // The runtime keeps serving and shuts down cleanly.
        rt.shutdown();
    }

    #[test]
    fn routed_submissions_share_one_funnel_channel() {
        let rt = runtime(vec![0.5, 0.9], 1, RuntimeConfig::default());
        let (respond_tx, respond_rx) = unbounded();
        let (progress_tx, progress_rx) = unbounded();
        let mut ids = Vec::new();
        for i in 0..6 {
            let progress = (i % 2 == 0).then(|| progress_tx.clone());
            ids.push(rt.submit_with_channels(
                InferenceRequest::new(vec![i as f32], class(10_000)),
                respond_tx.clone(),
                progress,
            ));
        }
        drop(respond_tx);
        drop(progress_tx);
        let mut answered = std::collections::HashMap::new();
        for _ in 0..6 {
            let response = respond_rx.recv_timeout(Duration::from_secs(10)).unwrap();
            answered.insert(response.id, response);
        }
        for (i, id) in ids.iter().enumerate() {
            let response = answered.get(id).expect("every id answered exactly once");
            assert_eq!(response.predicted, Some(i));
            assert_eq!(response.stages_executed, 2);
        }
        // Only the even submissions asked for progress: 3 requests x 2
        // stages, every event tagged with a requesting id.
        let events: Vec<_> = progress_rx.iter().collect();
        assert_eq!(events.len(), 6);
        for event in events {
            assert!(ids.contains(&event.request_id));
            assert_eq!(event.request_id % 2, ids[0] % 2, "only even submitters");
        }
        rt.shutdown();
    }

    #[test]
    fn fused_batches_form_under_load_and_answer_correctly() {
        let config = RuntimeConfig {
            num_workers: 1,
            max_batch: 4,
            gather_window: Duration::from_millis(5),
            ..RuntimeConfig::default()
        };
        let rt = runtime(vec![0.5, 0.9], 10, config);
        let rxs: Vec<_> = (0..8)
            .map(|i| rt.submit(InferenceRequest::new(vec![i as f32], class(30_000))))
            .collect();
        for (i, (id, rx)) in rxs.into_iter().enumerate() {
            let response = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            assert_eq!(response.id, id);
            assert_eq!(response.stages_executed, 2);
            assert_eq!(response.predicted, Some(i), "row scattered to wrong task");
            assert!(!response.expired);
        }
        let stats = rt.stats();
        assert!(
            stats.fused_batches() > 0,
            "8 requests through 1 worker with max_batch 4 must fuse"
        );
        assert!(stats.peak_batch_occupancy() >= 2);
        assert!(stats.batched_stage_executions() >= 2);
        rt.shutdown();
    }

    #[test]
    fn batch_of_one_takes_the_singleton_fast_path() {
        let config = RuntimeConfig {
            num_workers: 2,
            max_batch: 4,
            gather_window: Duration::from_millis(2),
            ..RuntimeConfig::default()
        };
        let rt = runtime(vec![0.5, 0.9], 1, config);
        let (_, rx) = rt.submit(InferenceRequest::new(vec![5.0], class(10_000)));
        let response = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(response.stages_executed, 2);
        let stats = rt.stats();
        assert_eq!(
            stats.fused_batches(),
            0,
            "a lone request must never wait to be fused"
        );
        assert!(
            stats.singleton_dispatches() >= 2,
            "each stage flushes as a batch of one"
        );
        rt.shutdown();
    }

    #[test]
    fn deadline_expiry_mid_gather_finalizes_without_stalling_the_batch() {
        // One worker, long stages, and a gather window far longer than any
        // deadline: request C expires while parked for batching and must
        // finalize immediately, while A and B still complete fully.
        let config = RuntimeConfig {
            num_workers: 1,
            max_batch: 2,
            gather_window: Duration::from_millis(500),
            ..RuntimeConfig::default()
        };
        let rt = runtime(vec![0.5, 0.9], 60, config);
        let (_, rx_a) = rt.submit(InferenceRequest::new(vec![0.0], class(10_000)));
        // Let A occupy the worker before B and C arrive.
        std::thread::sleep(Duration::from_millis(20));
        let (_, rx_b) = rt.submit(InferenceRequest::new(vec![1.0], class(10_000)));
        let (_, rx_c) = rt.submit(InferenceRequest::new(vec![2.0], class(30)));
        let started = Instant::now();
        let response_c = rx_c.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(response_c.expired, "C's deadline passed while gathering");
        assert_eq!(response_c.stages_executed, 0);
        assert!(
            started.elapsed() < Duration::from_millis(400),
            "C must not wait out the 500ms gather window, took {:?}",
            started.elapsed()
        );
        let response_a = rx_a.recv_timeout(Duration::from_secs(10)).unwrap();
        let response_b = rx_b.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(!response_a.expired, "A unaffected by C's expiry");
        assert_eq!(response_a.stages_executed, 2);
        assert!(!response_b.expired, "B's batch was not stalled by C");
        assert_eq!(response_b.stages_executed, 2);
        rt.shutdown();
    }

    #[test]
    fn batched_mode_streams_progress_and_accounts_usage() {
        let config = RuntimeConfig {
            num_workers: 1,
            max_batch: 4,
            gather_window: Duration::from_millis(5),
            ..RuntimeConfig::default()
        };
        let rt = runtime(vec![0.4, 0.9], 5, config);
        let (id, response_rx, progress_rx) =
            rt.submit_with_progress(InferenceRequest::new(vec![3.0], class(30_000)));
        let mut others = Vec::new();
        for i in 0..5 {
            others.push(rt.submit(InferenceRequest::new(vec![i as f32], class(30_000))));
        }
        let response = response_rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(response.stages_executed, 2);
        for (_, rx) in others {
            rx.recv_timeout(Duration::from_secs(30)).unwrap();
        }
        let events: Vec<_> = progress_rx.iter().collect();
        assert_eq!(events.len(), 2, "private progress survives fusion");
        for (stage, event) in events.iter().enumerate() {
            assert_eq!(event.request_id, id);
            assert_eq!(event.stage, stage);
        }
        assert_eq!(rt.usage_ledger().total_stages(), 12);
        rt.shutdown();
    }

    #[test]
    fn completion_waker_fires_for_responses_and_private_progress() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let rt = runtime(vec![0.4, 0.9], 1, RuntimeConfig::default());
        let nudges = Arc::new(AtomicUsize::new(0));
        {
            let nudges = Arc::clone(&nudges);
            rt.set_completion_waker(Arc::new(move || {
                nudges.fetch_add(1, Ordering::SeqCst);
            }));
        }
        let (_, response_rx, progress_rx) =
            rt.submit_with_progress(InferenceRequest::new(vec![1.0], class(10_000)));
        response_rx.recv_timeout(Duration::from_secs(10)).unwrap();
        // Two stages streamed privately + one finalize: at least one
        // nudge per delivery point (coalescing across a batch is fine,
        // but a response and its stage events are distinct deliveries).
        // The finalize nudge deliberately fires *after* the response send
        // (nudge-before-send would be a lost wakeup for a parked poller),
        // so it may still be in flight when the response arrives here.
        let deadline = Instant::now() + Duration::from_secs(2);
        while nudges.load(Ordering::SeqCst) < 3 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(
            nudges.load(Ordering::SeqCst) >= 3,
            "expected nudges for 2 private stage events + 1 response, saw {}",
            nudges.load(Ordering::SeqCst)
        );
        assert_eq!(progress_rx.try_iter().count(), 2);
        rt.shutdown();
    }

    #[test]
    fn shutdown_with_no_requests_is_clean() {
        let rt = runtime(vec![0.9], 1, RuntimeConfig::default());
        rt.shutdown();
    }

    #[test]
    fn stats_track_in_flight_and_completion() {
        let rt = runtime(vec![0.5, 0.9], 5, RuntimeConfig::default());
        let stats = rt.stats();
        assert_eq!(stats.in_flight(), 0);
        let rxs: Vec<_> = (0..8)
            .map(|i| rt.submit(InferenceRequest::new(vec![i as f32], class(10_000))))
            .collect();
        assert_eq!(stats.submitted(), 8);
        assert!(stats.in_flight() > 0, "requests are open while queued");
        for (_, rx) in rxs {
            rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        // The coordinator finalizes each response before sending it, so by
        // the time all responses arrived every request is complete.
        assert_eq!(stats.completed(), 8);
        assert_eq!(stats.in_flight(), 0);
        rt.shutdown();
        assert_eq!(stats.running(), 0);
        assert_eq!(stats.queued(), 0);
    }

    #[test]
    fn submit_with_progress_streams_private_stage_reports() {
        let rt = runtime(vec![0.4, 0.6, 0.9], 1, RuntimeConfig::default());
        // A second plain request ensures the private feed is not a
        // broadcast: its stages must not appear on the first's channel.
        let (_, other_rx) = rt.submit(InferenceRequest::new(vec![7.0], class(10_000)));
        let (id, response_rx, progress_rx) =
            rt.submit_with_progress(InferenceRequest::new(vec![1.0], class(10_000)));
        let response = response_rx.recv_timeout(Duration::from_secs(10)).unwrap();
        other_rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(response.stages_executed, 3);
        let events: Vec<_> = progress_rx.iter().collect();
        assert_eq!(events.len(), 3, "one event per stage, channel then closes");
        for (stage, event) in events.iter().enumerate() {
            assert_eq!(event.request_id, id);
            assert_eq!(event.stage, stage);
        }
        assert_eq!(events[2].confidence, 0.9);
        rt.shutdown();
    }

    #[test]
    fn shutdown_with_in_flight_requests_answers_or_closes_every_channel() {
        // Slow stages so shutdown lands while requests are mid-pipeline.
        let rt = runtime(vec![0.3, 0.6, 0.9], 10, RuntimeConfig::default());
        let rxs: Vec<_> = (0..12)
            .map(|i| rt.submit(InferenceRequest::new(vec![i as f32], class(10_000))))
            .collect();
        rt.shutdown();
        // Shutdown drains: every submitted request still gets a response
        // (never a hang, never a lost channel).
        for (id, rx) in rxs {
            let response = rx
                .recv_timeout(Duration::from_secs(10))
                .expect("drained request answered");
            assert_eq!(response.id, id);
            assert_eq!(response.stages_executed, 3);
        }
    }

    /// Satellite regression: a request completing exactly at its deadline
    /// races the daemon's kill signal. Whatever the interleaving — kill
    /// drained before the completion, after it, or after the task is
    /// already deregistered — the kill gauge must count exactly the
    /// responses that actually expired; a racing signal for a completed
    /// request lands only in the stale-swallow gauge.
    #[test]
    fn kill_racing_completion_never_inflates_the_kill_gauge() {
        let rt = runtime(vec![0.9], 1, RuntimeConfig::default());
        let mut expired = 0u64;
        for i in 0..100 {
            // Deadline == stage time: completion and expiry collide.
            let (_, rx) = rt.submit(InferenceRequest::new(vec![i as f32], class(1)));
            let response = rx.recv_timeout(Duration::from_secs(10)).unwrap();
            if response.expired {
                expired += 1;
            } else {
                assert_eq!(response.stages_executed, 1);
            }
        }
        let stats = rt.stats();
        assert_eq!(stats.completed(), 100);
        assert_eq!(
            stats.deadline_kills(),
            expired,
            "every counted kill must correspond to an expired response; \
             stale signals (swallowed: {}) must not be counted",
            stats.stale_kills_swallowed()
        );
        assert_eq!(stats.degraded_exits(), 0, "Kill policy never degrades");
        rt.shutdown();
    }

    /// Satellite regression, direction 1: a request whose next stage is
    /// expensive must turn urgent while the stage still fits its budget —
    /// the old fixed `2 x gather_window` margin ignored the stage cost
    /// and flushed too late whenever the stage outweighed the window.
    #[test]
    fn urgent_margin_covers_an_expensive_next_stage() {
        let window = Duration::from_millis(2);
        let margin = urgent_margin(50.0, window);
        assert!(
            margin >= Duration::from_millis(50),
            "margin {margin:?} must cover the 50ms stage"
        );
        assert!(
            window.saturating_mul(2) < Duration::from_millis(50),
            "the old fixed margin would have flushed too late"
        );
    }

    /// Satellite regression, direction 2: a cheap next stage under a wide
    /// gather window must not be flushed pointlessly early — the derived
    /// margin stays below the old fixed `2 x gather_window`.
    #[test]
    fn urgent_margin_does_not_flush_cheap_stages_early() {
        let window = Duration::from_millis(100);
        let margin = urgent_margin(0.5, window);
        assert!(
            margin < window.saturating_mul(2),
            "margin {margin:?} must be under the old fixed 200ms"
        );
        assert!(margin >= window, "one window of slack is always kept");
    }

    #[test]
    fn degrade_mode_converts_deadline_kill_into_partial_answer() {
        let config = RuntimeConfig {
            overload: OverloadPolicy::Degrade,
            ..RuntimeConfig::default()
        };
        // 3 stages x 30ms against a 40ms deadline: full execution cannot
        // fit, but at least one stage always completes.
        let rt = runtime(vec![0.5, 0.7, 0.9], 30, config);
        let (_, rx) = rt.submit(InferenceRequest::new(vec![2.0], class(40)));
        let response = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(!response.expired, "degrade mode must not report a miss");
        assert!(response.degraded, "the early exit is flagged");
        assert!(response.is_answered(), "partial answer returned");
        assert!(
            (1..3).contains(&response.stages_executed),
            "ran {} stages",
            response.stages_executed
        );
        let stats = rt.stats();
        assert_eq!(stats.deadline_kills(), 0);
        assert!(stats.degraded_exits() >= 1);
        rt.shutdown();
    }

    #[test]
    fn degrade_mode_with_zero_stages_still_expires() {
        let config = RuntimeConfig {
            num_workers: 1,
            overload: OverloadPolicy::Degrade,
            ..RuntimeConfig::default()
        };
        // One worker, one long-running occupant: the starved victim never
        // executes a stage, so there is nothing to degrade to.
        let rt = runtime(vec![0.5, 0.9], 60, config);
        let (_, rx_a) = rt.submit(InferenceRequest::new(vec![0.0], class(10_000)));
        std::thread::sleep(Duration::from_millis(20));
        let (_, rx_b) = rt.submit(InferenceRequest::new(vec![1.0], class(25)));
        let response_b = rx_b.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(response_b.expired, "a zero-stage request has no answer");
        assert!(!response_b.degraded);
        assert_eq!(response_b.stages_executed, 0);
        let response_a = rx_a.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(!response_a.expired);
        rt.shutdown();
    }

    #[test]
    fn degrade_mode_leaves_feasible_requests_alone() {
        let config = RuntimeConfig {
            overload: OverloadPolicy::Degrade,
            ..RuntimeConfig::default()
        };
        let rt = runtime(vec![0.5, 0.7, 0.9], 1, config);
        let (_, rx) = rt.submit(InferenceRequest::new(vec![3.0], class(5_000)));
        let response = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(!response.degraded && !response.expired);
        assert_eq!(response.stages_executed, 3);
        rt.shutdown();
    }

    #[test]
    fn utility_density_prefers_first_stages_and_cheap_work() {
        let mut profile = ConfidenceProfile::new(3);
        // Learned concave ramp: stage 0 -> 0.5, stage 1 -> 0.8, stage 2
        // -> 0.9 (diminishing returns per extra stage).
        for (stage, conf) in [(0usize, 0.5f32), (1, 0.8), (2, 0.9)] {
            profile.observe(stage, conf);
        }
        let cost = StageCostModel::uniform(3, 1.0);
        let fresh = task_at_stage(&[], None);
        let midway = task_at_stage(&[0.5], Some(0.5));
        let deep = task_at_stage(&[0.5, 0.8], Some(0.8));
        let f32s = vec![Precision::F32; 3];
        let d_fresh = utility_density(&fresh, &profile, &cost, &f32s);
        let d_mid = utility_density(&midway, &profile, &cost, &f32s);
        let d_deep = utility_density(&deep, &profile, &cost, &f32s);
        assert!(
            d_fresh > d_mid && d_mid > d_deep,
            "first stages buy the most confidence per ms: {d_fresh} {d_mid} {d_deep}"
        );
        // A costlier next stage lowers density at equal gain.
        let mut pricey = StageCostModel::uniform(3, 1.0);
        pricey.observe_ms(0, 10.0);
        assert!(utility_density(&fresh, &profile, &pricey, &f32s) < d_fresh);
        // A quantized stage 0 keeps its own (cheap) lane: the f32 lane's
        // 10ms samples must not slow the quantized estimate down.
        let mixed = vec![Precision::Int8, Precision::F32, Precision::F32];
        pricey.observe_precision_ms(0, Precision::Int8, 0.5);
        assert!(
            utility_density(&fresh, &profile, &pricey, &mixed) > d_fresh,
            "quantized lane is cheaper than the 1ms prior"
        );
    }

    fn task_at_stage(observed: &[f32], last_conf: Option<f32>) -> ActiveTask {
        let (tx, _rx) = unbounded();
        let now = Instant::now();
        ActiveTask {
            class_name: "test".to_owned(),
            session: None,
            observed: observed.to_vec(),
            last: last_conf.map(|confidence| StageReport {
                predicted: 0,
                confidence,
            }),
            started: now,
            deadline: now + Duration::from_secs(1),
            killed: false,
            panicked: false,
            degraded: false,
            gathering: false,
            running_stage: None,
            dispatched_at: None,
            num_stages: 3,
            respond: tx,
            progress: None,
        }
    }

    #[test]
    fn drop_while_requests_are_in_flight_does_not_deadlock() {
        let rt = runtime(vec![0.5, 0.9], 10, RuntimeConfig::default());
        let rxs: Vec<_> = (0..6)
            .map(|i| rt.submit(InferenceRequest::new(vec![i as f32], class(10_000))))
            .collect();
        drop(rt);
        for (_, rx) in rxs {
            // Either a drained response or a cleanly closed channel; a
            // panic or deadlock would fail the test.
            let _ = rx.recv_timeout(Duration::from_secs(10));
        }
    }
}
