//! Semi-supervised data labeling (paper §II-A, after SenseGAN — the
//! paper's \[8\]).
//!
//! "Unlabeled data carries information on the structure of the input
//! space. ... A small number of labeled points within a cluster can thus
//! inform the labeling of the remaining points. Using this intuition, the
//! GAN learns by playing a game of progressive refinement ...: one entity
//! proposes labels for unlabeled samples, whereas another tries to
//! distinguish the resulting labeled samples from the original labeled
//! ones."
//!
//! This crate implements the same game without the GAN machinery
//! (documented substitution — see DESIGN.md): a **proposer** (a small
//! classifier trained on the currently-accepted labels) proposes labels
//! for unlabeled samples, and a **critic** (cluster-consistency check over
//! a k-means structure of the full input space) rejects proposals that
//! are distinguishable from the real labeled population — i.e. proposals
//! that contradict the cluster a sample lives in. Accepted pseudo-labels
//! join the training pool and the game repeats.
//!
//! The claim this reproduces is SenseGAN's: training on pseudo-labels
//! recovers most of the accuracy of training on ground-truth labels
//! (`label_efficiency` bench).
//!
//! # Examples
//!
//! ```
//! use eugene_label::{KMeans, KMeansConfig};
//! use eugene_tensor::{seeded_rng, Matrix};
//!
//! let points = Matrix::from_rows(&[
//!     &[0.0, 0.0], &[0.1, 0.0], &[5.0, 5.0], &[5.1, 5.0],
//! ]);
//! let km = KMeans::fit(&points, KMeansConfig { k: 2, max_iters: 20 }, &mut seeded_rng(0));
//! let a = km.assign(&[0.05, 0.0]);
//! let b = km.assign(&[5.05, 5.0]);
//! assert_ne!(a, b);
//! ```

mod kmeans;
mod labeler;

pub use kmeans::{KMeans, KMeansConfig};
pub use labeler::{LabelingOutcome, SemiSupervisedLabeler, SemiSupervisedLabelerConfig};
