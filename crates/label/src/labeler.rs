use crate::{KMeans, KMeansConfig};
use eugene_data::Dataset;
use eugene_nn::{StagedNetwork, StagedNetworkConfig, TrainConfig, Trainer};
use eugene_tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for [`SemiSupervisedLabeler`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SemiSupervisedLabelerConfig {
    /// Proposer/critic rounds.
    pub rounds: usize,
    /// Minimum proposer confidence for a proposal to reach the critic.
    pub min_confidence: f32,
    /// Clusters per class used by the critic's structure model.
    pub clusters_per_class: usize,
    /// Hidden width of the proposer network.
    pub proposer_width: usize,
    /// Proposer training epochs per round.
    pub proposer_epochs: usize,
}

impl Default for SemiSupervisedLabelerConfig {
    fn default() -> Self {
        Self {
            rounds: 3,
            min_confidence: 0.55,
            clusters_per_class: 2,
            proposer_width: 32,
            proposer_epochs: 60,
        }
    }
}

/// Result of a labeling run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabelingOutcome {
    /// Pseudo-label per unlabeled sample (`None` = never accepted).
    pub pseudo_labels: Vec<Option<usize>>,
    /// Fraction of unlabeled samples that received a label.
    pub coverage: f64,
    /// Per-round acceptance counts, for inspecting the game's progress.
    pub accepted_per_round: Vec<usize>,
}

impl LabelingOutcome {
    /// Accuracy of the accepted pseudo-labels against ground truth
    /// (evaluation only — ground truth is unknown in production).
    ///
    /// # Panics
    ///
    /// Panics if `truth.len()` differs from the pseudo-label count.
    pub fn pseudo_accuracy(&self, truth: &[usize]) -> f64 {
        assert_eq!(truth.len(), self.pseudo_labels.len(), "labels must align");
        let mut correct = 0;
        let mut labeled = 0;
        for (p, &t) in self.pseudo_labels.iter().zip(truth) {
            if let Some(label) = p {
                labeled += 1;
                if *label == t {
                    correct += 1;
                }
            }
        }
        if labeled == 0 {
            0.0
        } else {
            correct as f64 / labeled as f64
        }
    }
}

/// The SenseGAN-style proposer/critic labeling game (see crate docs).
#[derive(Debug, Clone)]
pub struct SemiSupervisedLabeler {
    config: SemiSupervisedLabelerConfig,
}

impl SemiSupervisedLabeler {
    /// Creates a labeler.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0` or `clusters_per_class == 0`.
    pub fn new(config: SemiSupervisedLabelerConfig) -> Self {
        assert!(config.rounds > 0, "need at least one round");
        assert!(
            config.clusters_per_class > 0,
            "need at least one cluster per class"
        );
        Self { config }
    }

    /// Runs the game: proposes and vets labels for `unlabeled` using the
    /// small `labeled` seed set.
    ///
    /// # Panics
    ///
    /// Panics if `labeled` is empty or dimensionalities differ.
    pub fn label(
        &self,
        labeled: &Dataset,
        unlabeled: &Matrix,
        rng: &mut impl Rng,
    ) -> LabelingOutcome {
        assert!(!labeled.is_empty(), "need a labeled seed set");
        assert_eq!(
            labeled.dim(),
            unlabeled.cols(),
            "labeled and unlabeled dimensionality must match"
        );
        let num_classes = labeled.num_classes();
        let n_unlabeled = unlabeled.rows();

        // Critic structure: cluster the full input space, then label each
        // cluster by majority vote of its *ground-truth-labeled* members.
        // A proposal is "falsified" when it contradicts its cluster.
        let mut all = Matrix::zeros(labeled.len() + n_unlabeled, labeled.dim());
        for i in 0..labeled.len() {
            all.row_mut(i).copy_from_slice(labeled.sample(i));
        }
        for i in 0..n_unlabeled {
            all.row_mut(labeled.len() + i)
                .copy_from_slice(unlabeled.row(i));
        }
        let k = (num_classes * self.config.clusters_per_class).min(all.rows());
        let km = KMeans::fit(&all, KMeansConfig { k, max_iters: 50 }, rng);
        let cluster_majority = majority_by_cluster(&km, labeled, num_classes);
        let unlabeled_clusters: Vec<usize> = (0..n_unlabeled)
            .map(|i| km.assign(unlabeled.row(i)))
            .collect();

        // Proposer/critic rounds.
        let mut pseudo: Vec<Option<usize>> = vec![None; n_unlabeled];
        let mut accepted_per_round = Vec::with_capacity(self.config.rounds);
        for _ in 0..self.config.rounds {
            let pool = self.training_pool(labeled, unlabeled, &pseudo);
            let proposer = self.train_proposer(&pool, rng);
            let logits = proposer.predict_all(unlabeled);
            let last = logits.last().expect("proposer has a stage");
            let mut accepted = 0;
            for i in 0..n_unlabeled {
                if pseudo[i].is_some() {
                    continue;
                }
                let probs = eugene_tensor::softmax(last.row(i));
                let proposal = eugene_tensor::argmax(&probs);
                if probs[proposal] < self.config.min_confidence {
                    continue;
                }
                // Critic: reject proposals the cluster structure can
                // falsify (a labeled-majority cluster disagreeing).
                if let Some(majority) = cluster_majority[unlabeled_clusters[i]] {
                    if majority != proposal {
                        continue;
                    }
                }
                pseudo[i] = Some(proposal);
                accepted += 1;
            }
            accepted_per_round.push(accepted);
            if accepted == 0 {
                break;
            }
        }
        let coverage =
            pseudo.iter().filter(|p| p.is_some()).count() as f64 / n_unlabeled.max(1) as f64;
        LabelingOutcome {
            pseudo_labels: pseudo,
            coverage,
            accepted_per_round,
        }
    }

    /// Combines the seed set with accepted pseudo-labels into a training
    /// pool for the proposer.
    fn training_pool(
        &self,
        labeled: &Dataset,
        unlabeled: &Matrix,
        pseudo: &[Option<usize>],
    ) -> Dataset {
        let extra: Vec<usize> = pseudo
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|_| i))
            .collect();
        let mut features = Matrix::zeros(labeled.len() + extra.len(), labeled.dim());
        let mut labels = Vec::with_capacity(labeled.len() + extra.len());
        for i in 0..labeled.len() {
            features.row_mut(i).copy_from_slice(labeled.sample(i));
            labels.push(labeled.label(i));
        }
        for (j, &i) in extra.iter().enumerate() {
            features
                .row_mut(labeled.len() + j)
                .copy_from_slice(unlabeled.row(i));
            labels.push(pseudo[i].expect("filtered to Some"));
        }
        Dataset::new(features, labels, labeled.num_classes())
    }

    fn train_proposer(&self, pool: &Dataset, rng: &mut impl Rng) -> StagedNetwork {
        let config = StagedNetworkConfig {
            input_dim: pool.dim(),
            num_classes: pool.num_classes(),
            stage_widths: vec![vec![self.config.proposer_width]],
            dropout: 0.0,
            input_skip: false,
        };
        let mut net = StagedNetwork::new(&config, rng);
        // Small batches: the seed pool can be a few dozen samples, and the
        // proposer needs enough gradient steps to become confident.
        Trainer::new(TrainConfig {
            epochs: self.config.proposer_epochs,
            batch_size: 8,
            ..TrainConfig::default()
        })
        .fit(&mut net, pool, rng);
        net
    }
}

impl Default for SemiSupervisedLabeler {
    fn default() -> Self {
        Self::new(SemiSupervisedLabelerConfig::default())
    }
}

/// Majority ground-truth label of each cluster (`None` when a cluster has
/// no labeled members).
fn majority_by_cluster(km: &KMeans, labeled: &Dataset, num_classes: usize) -> Vec<Option<usize>> {
    let mut votes = vec![vec![0usize; num_classes]; km.k()];
    for i in 0..labeled.len() {
        let c = km.assign(labeled.sample(i));
        votes[c][labeled.label(i)] += 1;
    }
    votes
        .into_iter()
        .map(|v| {
            let total: usize = v.iter().sum();
            if total == 0 {
                None
            } else {
                Some(eugene_tensor::argmax(
                    &v.iter().map(|&x| x as f32).collect::<Vec<f32>>(),
                ))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eugene_data::{SyntheticImages, SyntheticImagesConfig};
    use eugene_tensor::seeded_rng;

    /// A mostly-unlabeled problem: 5% labeled seed, 95% unlabeled.
    fn problem(seed: u64) -> (Dataset, Matrix, Vec<usize>) {
        let mut rng = seeded_rng(seed);
        let gen = SyntheticImages::new(
            SyntheticImagesConfig {
                num_classes: 4,
                dim: 10,
                easy_fraction: 0.8,
                medium_fraction: 0.15,
                ..Default::default()
            },
            &mut rng,
        );
        let (full, _) = gen.generate(600, &mut rng);
        let split = full.split(0.05);
        let truth = split.test.labels().to_vec();
        (split.train, split.test.features().clone(), truth)
    }

    #[test]
    fn pseudo_labels_are_mostly_correct() {
        let (labeled, unlabeled, truth) = problem(31);
        let outcome =
            SemiSupervisedLabeler::default().label(&labeled, &unlabeled, &mut seeded_rng(32));
        assert!(outcome.coverage > 0.3, "coverage {}", outcome.coverage);
        let acc = outcome.pseudo_accuracy(&truth);
        assert!(acc > 0.7, "pseudo-label accuracy {acc}");
    }

    #[test]
    fn pseudo_labels_improve_a_downstream_classifier() {
        let (labeled, unlabeled, truth) = problem(33);
        let labeler = SemiSupervisedLabeler::default();
        let outcome = labeler.label(&labeled, &unlabeled, &mut seeded_rng(34));

        // Train on seed-only vs seed+pseudo; evaluate on fresh data.
        let mut rng = seeded_rng(35);
        let gen = SyntheticImages::new(
            SyntheticImagesConfig {
                num_classes: 4,
                dim: 10,
                easy_fraction: 0.8,
                medium_fraction: 0.15,
                ..Default::default()
            },
            &mut seeded_rng(33), // same generator as `problem(33)`
        );
        let (eval, _) = gen.generate(400, &mut rng);

        let train_and_score = |pool: &Dataset, seed: u64| -> f64 {
            let config = StagedNetworkConfig {
                input_dim: pool.dim(),
                num_classes: pool.num_classes(),
                stage_widths: vec![vec![32]],
                dropout: 0.0,
                input_skip: false,
            };
            let mut net = StagedNetwork::new(&config, &mut seeded_rng(seed));
            Trainer::new(TrainConfig {
                epochs: 25,
                ..TrainConfig::default()
            })
            .fit(&mut net, pool, &mut seeded_rng(seed + 1));
            eugene_nn::evaluate_staged(&net, &eval)
                .last()
                .unwrap()
                .accuracy
        };

        let seed_only = train_and_score(&labeled, 40);
        let augmented_pool = labeler.training_pool(&labeled, &unlabeled, &outcome.pseudo_labels);
        let augmented = train_and_score(&augmented_pool, 40);
        assert!(
            augmented > seed_only - 0.02,
            "pseudo-labels should not hurt: {seed_only} -> {augmented}"
        );
        // And they should genuinely help on this mostly-unlabeled setup.
        assert!(
            augmented >= seed_only,
            "expected improvement: {seed_only} -> {augmented} (truth acc {})",
            outcome.pseudo_accuracy(&truth)
        );
    }

    #[test]
    fn acceptance_shrinks_over_rounds() {
        let (labeled, unlabeled, _) = problem(36);
        let outcome =
            SemiSupervisedLabeler::default().label(&labeled, &unlabeled, &mut seeded_rng(37));
        if outcome.accepted_per_round.len() >= 2 {
            let first = outcome.accepted_per_round[0];
            let last = *outcome.accepted_per_round.last().unwrap();
            assert!(
                last <= first,
                "acceptance should not grow: {:?}",
                outcome.accepted_per_round
            );
        }
    }

    #[test]
    #[should_panic(expected = "seed set")]
    fn empty_seed_set_panics() {
        let empty = Dataset::new(Matrix::zeros(0, 4), vec![], 2);
        SemiSupervisedLabeler::default().label(&empty, &Matrix::zeros(5, 4), &mut seeded_rng(38));
    }
}
