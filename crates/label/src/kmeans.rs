use eugene_tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for [`KMeans::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
}

/// Lloyd's k-means with k-means++ initialization — the input-space
/// structure model the labeling critic consults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeans {
    centroids: Matrix,
    inertia: f64,
}

impl KMeans {
    /// Fits `k` clusters to the rows of `points`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `max_iters == 0`, or there are fewer points
    /// than clusters.
    pub fn fit(points: &Matrix, config: KMeansConfig, rng: &mut impl Rng) -> Self {
        assert!(config.k > 0, "k must be positive");
        assert!(config.max_iters > 0, "max_iters must be positive");
        assert!(
            points.rows() >= config.k,
            "need at least k points ({} < {})",
            points.rows(),
            config.k
        );
        let n = points.rows();
        let d = points.cols();
        // k-means++ seeding.
        let mut centroids = Matrix::zeros(config.k, d);
        let first = rng.gen_range(0..n);
        centroids.row_mut(0).copy_from_slice(points.row(first));
        let mut min_dist: Vec<f64> = (0..n)
            .map(|i| dist_sq(points.row(i), centroids.row(0)))
            .collect();
        for c in 1..config.k {
            let total: f64 = min_dist.iter().sum();
            let pick = if total <= 0.0 {
                rng.gen_range(0..n)
            } else {
                let mut target = rng.gen_range(0.0..total);
                let mut chosen = n - 1;
                for (i, &w) in min_dist.iter().enumerate() {
                    if target < w {
                        chosen = i;
                        break;
                    }
                    target -= w;
                }
                chosen
            };
            centroids.row_mut(c).copy_from_slice(points.row(pick));
            for (i, md) in min_dist.iter_mut().enumerate() {
                let d2 = dist_sq(points.row(i), centroids.row(c));
                if d2 < *md {
                    *md = d2;
                }
            }
        }
        // Lloyd iterations.
        let mut assignment = vec![0usize; n];
        for _ in 0..config.max_iters {
            let mut changed = false;
            for (i, slot) in assignment.iter_mut().enumerate() {
                let mut best = 0;
                let mut best_d = f64::INFINITY;
                for c in 0..config.k {
                    let d2 = dist_sq(points.row(i), centroids.row(c));
                    if d2 < best_d {
                        best_d = d2;
                        best = c;
                    }
                }
                if *slot != best {
                    *slot = best;
                    changed = true;
                }
            }
            // Recompute centroids; empty clusters keep their position.
            let mut sums = Matrix::zeros(config.k, d);
            let mut counts = vec![0usize; config.k];
            for (i, &c) in assignment.iter().enumerate() {
                counts[c] += 1;
                let row = sums.row_mut(c);
                for (acc, v) in row.iter_mut().zip(points.row(i)) {
                    *acc += v;
                }
            }
            for (c, &count) in counts.iter().enumerate() {
                if count > 0 {
                    let inv = 1.0 / count as f32;
                    let sum_row: Vec<f32> = sums.row(c).iter().map(|v| v * inv).collect();
                    centroids.row_mut(c).copy_from_slice(&sum_row);
                }
            }
            if !changed {
                break;
            }
        }
        let inertia = (0..n)
            .map(|i| dist_sq(points.row(i), centroids.row(assignment[i])))
            .sum();
        Self { centroids, inertia }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }

    /// Sum of squared distances of training points to their centroids.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// The centroid matrix (`k x dim`).
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// Nearest-centroid assignment of one point.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionality does not match.
    pub fn assign(&self, point: &[f32]) -> usize {
        assert_eq!(
            point.len(),
            self.centroids.cols(),
            "point dimension must match centroids"
        );
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for c in 0..self.k() {
            let d2 = dist_sq(point, self.centroids.row(c));
            if d2 < best_d {
                best_d = d2;
                best = c;
            }
        }
        best
    }

    /// Assigns every row of `points`.
    pub fn assign_all(&self, points: &Matrix) -> Vec<usize> {
        (0..points.rows())
            .map(|i| self.assign(points.row(i)))
            .collect()
    }
}

fn dist_sq(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eugene_tensor::{seeded_rng, standard_normal};

    fn blobs(per_blob: usize, centers: &[(f32, f32)], seed: u64) -> Matrix {
        let mut rng = seeded_rng(seed);
        let mut m = Matrix::zeros(per_blob * centers.len(), 2);
        for (b, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..per_blob {
                let r = b * per_blob + i;
                m[(r, 0)] = cx + standard_normal(&mut rng) * 0.3;
                m[(r, 1)] = cy + standard_normal(&mut rng) * 0.3;
            }
        }
        m
    }

    #[test]
    fn separates_well_spaced_blobs() {
        let points = blobs(40, &[(0.0, 0.0), (6.0, 0.0), (0.0, 6.0)], 1);
        let km = KMeans::fit(
            &points,
            KMeansConfig {
                k: 3,
                max_iters: 50,
            },
            &mut seeded_rng(2),
        );
        let assignments = km.assign_all(&points);
        // Each blob should be internally consistent.
        for b in 0..3 {
            let slice = &assignments[b * 40..(b + 1) * 40];
            let first = slice[0];
            let agree = slice.iter().filter(|&&a| a == first).count();
            assert!(agree >= 38, "blob {b}: only {agree}/40 agree");
        }
    }

    #[test]
    fn more_clusters_never_increase_inertia() {
        let points = blobs(30, &[(0.0, 0.0), (5.0, 5.0)], 3);
        let km2 = KMeans::fit(
            &points,
            KMeansConfig {
                k: 2,
                max_iters: 50,
            },
            &mut seeded_rng(4),
        );
        let km4 = KMeans::fit(
            &points,
            KMeansConfig {
                k: 4,
                max_iters: 50,
            },
            &mut seeded_rng(4),
        );
        assert!(km4.inertia() <= km2.inertia() + 1e-6);
    }

    #[test]
    fn assign_is_nearest_centroid() {
        let points = blobs(20, &[(0.0, 0.0), (8.0, 0.0)], 5);
        let km = KMeans::fit(
            &points,
            KMeansConfig {
                k: 2,
                max_iters: 50,
            },
            &mut seeded_rng(6),
        );
        let near_first = km.assign(&[0.1, 0.1]);
        let near_second = km.assign(&[7.9, 0.0]);
        assert_ne!(near_first, near_second);
    }

    #[test]
    fn deterministic_given_seed() {
        let points = blobs(25, &[(0.0, 0.0), (4.0, 4.0)], 7);
        let a = KMeans::fit(
            &points,
            KMeansConfig {
                k: 2,
                max_iters: 30,
            },
            &mut seeded_rng(8),
        );
        let b = KMeans::fit(
            &points,
            KMeansConfig {
                k: 2,
                max_iters: 30,
            },
            &mut seeded_rng(8),
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least k points")]
    fn too_few_points_rejected() {
        let points = Matrix::zeros(2, 2);
        KMeans::fit(
            &points,
            KMeansConfig { k: 3, max_iters: 5 },
            &mut seeded_rng(9),
        );
    }
}
