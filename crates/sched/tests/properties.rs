//! Property-based tests for the scheduling simulator: conservation and
//! deadline invariants must hold for every policy under every load.

use eugene_sched::{
    DcPredictor, Fifo, OraclePredictor, RoundRobin, RtDeepIot, Scheduler, SimConfig, Simulation,
    TaskProfile, TaskView,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const STAGES: usize = 3;

fn profile_strategy() -> impl Strategy<Value = TaskProfile> {
    (
        prop::collection::vec(0.1f32..0.95, STAGES),
        prop::collection::vec(any::<bool>(), STAGES),
    )
        .prop_map(|(conf, correct)| TaskProfile::new(conf, correct))
}

fn scheduler_strategy() -> impl Strategy<Value = usize> {
    0usize..4
}

fn make_scheduler(kind: usize) -> Box<dyn Scheduler> {
    match kind {
        0 => Box::new(Fifo::new()),
        1 => Box::new(RoundRobin::new()),
        2 => Box::new(RtDeepIot::new(
            OraclePredictor::new(vec![0.5, 0.7, 0.9]),
            2,
            0.1,
        )),
        _ => Box::new(RtDeepIot::new(
            DcPredictor::new(vec![0.5, 0.7, 0.9]),
            1,
            0.1,
        )),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_task_is_retired_exactly_once(
        tasks in prop::collection::vec(profile_strategy(), 1..40),
        workers in 1usize..5,
        concurrency in 1usize..8,
        deadline in 1u64..8,
        kind in scheduler_strategy(),
    ) {
        let n = tasks.len();
        let config = SimConfig {
            num_workers: workers,
            concurrency,
            deadline_quanta: deadline,
            num_classes: 10,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let outcome = Simulation::new(config).run(make_scheduler(kind).as_mut(), tasks, &mut rng);
        prop_assert_eq!(outcome.records.len(), n);
        let mut ids: Vec<usize> = outcome.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), n, "duplicate or missing task records");
    }

    #[test]
    fn stage_counts_and_residence_are_bounded(
        tasks in prop::collection::vec(profile_strategy(), 1..30),
        workers in 1usize..4,
        concurrency in 1usize..6,
        deadline in 1u64..6,
        kind in scheduler_strategy(),
    ) {
        let config = SimConfig {
            num_workers: workers,
            concurrency,
            deadline_quanta: deadline,
            num_classes: 10,
        };
        let mut rng = StdRng::seed_from_u64(8);
        let outcome = Simulation::new(config).run(make_scheduler(kind).as_mut(), tasks, &mut rng);
        for r in &outcome.records {
            prop_assert!(r.stages_executed <= STAGES);
            prop_assert!(r.residence_quanta <= deadline);
            // A task can run at most one stage per quantum.
            prop_assert!(r.stages_executed as u64 <= r.residence_quanta);
            if r.stages_executed == 0 {
                prop_assert!(r.confidence.is_none());
            } else {
                prop_assert!(r.confidence.is_some());
            }
            // Completion and expiry are mutually exclusive outcomes.
            if r.stages_executed == STAGES {
                prop_assert!(!r.expired);
            }
        }
    }

    #[test]
    fn capacity_is_never_exceeded(
        tasks in prop::collection::vec(profile_strategy(), 1..40),
        workers in 1usize..4,
        deadline in 2u64..6,
        kind in scheduler_strategy(),
    ) {
        let config = SimConfig {
            num_workers: workers,
            concurrency: 8,
            deadline_quanta: deadline,
            num_classes: 10,
        };
        let mut rng = StdRng::seed_from_u64(9);
        let outcome = Simulation::new(config).run(make_scheduler(kind).as_mut(), tasks, &mut rng);
        let total_stages: u64 = outcome
            .records
            .iter()
            .map(|r| r.stages_executed as u64)
            .sum();
        prop_assert!(
            total_stages <= outcome.quanta_elapsed * workers as u64,
            "{total_stages} stages in {} quanta with {workers} workers",
            outcome.quanta_elapsed
        );
    }

    #[test]
    fn schedulers_return_at_most_slots_distinct_runnable_ids(
        stages_done in prop::collection::vec(0usize..=STAGES, 1..20),
        slots in 1usize..6,
        kind in scheduler_strategy(),
    ) {
        let observed: Vec<Vec<f32>> = stages_done
            .iter()
            .map(|&d| (0..d).map(|s| 0.3 + 0.2 * s as f32).collect())
            .collect();
        let views: Vec<TaskView<'_>> = stages_done
            .iter()
            .enumerate()
            .map(|(i, &d)| TaskView {
                id: i,
                stages_done: d,
                num_stages: STAGES,
                observed: &observed[i],
                admitted_at: (i % 5) as u64,
                deadline_remaining_ms: 100,
            remaining_quanta: 10,
            })
            .collect();
        let mut scheduler = make_scheduler(kind);
        let picked = scheduler.assign(&views, slots);
        prop_assert!(picked.len() <= slots);
        let mut unique = picked.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), picked.len(), "duplicate assignments");
        for id in &picked {
            let view = views.iter().find(|v| v.id == *id);
            prop_assert!(view.is_some(), "assigned unknown task {id}");
            prop_assert!(
                view.unwrap().stages_done < STAGES,
                "assigned a complete task"
            );
        }
    }

    #[test]
    fn service_accuracy_is_a_probability(
        tasks in prop::collection::vec(profile_strategy(), 1..25),
        kind in scheduler_strategy(),
    ) {
        let config = SimConfig {
            num_workers: 2,
            concurrency: 4,
            deadline_quanta: 4,
            num_classes: 10,
        };
        let mut rng = StdRng::seed_from_u64(10);
        let outcome = Simulation::new(config).run(make_scheduler(kind).as_mut(), tasks, &mut rng);
        let acc = outcome.service_accuracy();
        prop_assert!((0.0..=1.0).contains(&acc));
        prop_assert!(outcome.mean_stages() <= STAGES as f64);
    }
}
