//! End-to-end scheduling comparison on a synthetic calibrated workload:
//! the qualitative ordering of the paper's Fig. 4 must emerge.

use eugene_sched::{
    DcPredictor, Fifo, PwlCurvePredictor, RoundRobin, RtDeepIot, Scheduler, SimConfig, Simulation,
    TaskProfile,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const STAGES: usize = 3;
const NUM_CLASSES: usize = 10;

/// Generates calibrated task profiles: each task has a latent difficulty;
/// confidence rises along a saturating curve, and correctness at each
/// stage is a Bernoulli draw with probability equal to the confidence
/// (i.e. perfectly calibrated — the best case the paper's §III-A
/// calibration step works toward).
fn population(n: usize, seed: u64) -> Vec<TaskProfile> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let start: f32 = rng.gen_range(0.2..0.9);
            let mut conf = Vec::with_capacity(STAGES);
            let mut c = start;
            for _ in 0..STAGES {
                conf.push(c);
                c += 0.55 * (1.0 - c);
            }
            let correct = conf.iter().map(|&p| rng.gen::<f32>() < p).collect();
            TaskProfile::new(conf, correct)
        })
        .collect()
}

fn run(scheduler: &mut dyn Scheduler, concurrency: usize, seed: u64) -> f64 {
    let config = SimConfig {
        num_workers: 4,
        concurrency,
        deadline_quanta: 6,
        num_classes: NUM_CLASSES,
    };
    let tasks = population(400, seed);
    let mut rng = StdRng::seed_from_u64(seed + 1);
    Simulation::new(config)
        .run(scheduler, tasks, &mut rng)
        .service_accuracy()
}

fn pwl_predictor(seed: u64) -> PwlCurvePredictor {
    let curves: Vec<Vec<f32>> = population(300, seed)
        .iter()
        .map(|p| p.confidences().to_vec())
        .collect();
    PwlCurvePredictor::fit(&curves, 10).expect("fit predictor")
}

fn priors(seed: u64) -> Vec<f32> {
    let pop = population(300, seed);
    (0..STAGES)
        .map(|s| pop.iter().map(|p| p.confidence_after(s)).sum::<f32>() / pop.len() as f32)
        .collect()
}

/// Averages accuracy over a few seeds to damp guess noise.
fn mean_accuracy(make: &mut dyn FnMut() -> Box<dyn Scheduler>, concurrency: usize) -> f64 {
    let seeds = [11u64, 22, 33];
    seeds
        .iter()
        .map(|&s| run(make().as_mut(), concurrency, s))
        .sum::<f64>()
        / seeds.len() as f64
}

#[test]
fn rtdeepiot_beats_round_robin_and_fifo_under_contention() {
    let baseline = 1.0 / NUM_CLASSES as f32;
    let mut rt: Box<dyn FnMut() -> Box<dyn Scheduler>> =
        Box::new(|| Box::new(RtDeepIot::new(pwl_predictor(7), 1, baseline)));
    let mut rr: Box<dyn FnMut() -> Box<dyn Scheduler>> = Box::new(|| Box::new(RoundRobin::new()));
    let mut fifo: Box<dyn FnMut() -> Box<dyn Scheduler>> = Box::new(|| Box::new(Fifo::new()));

    let contended = 16;
    let acc_rt = mean_accuracy(&mut rt, contended);
    let acc_rr = mean_accuracy(&mut rr, contended);
    let acc_fifo = mean_accuracy(&mut fifo, contended);

    assert!(
        acc_rt > acc_rr + 0.01,
        "RTDeepIoT {acc_rt:.3} should beat RR {acc_rr:.3}"
    );
    assert!(
        acc_rt > acc_fifo + 0.01,
        "RTDeepIoT {acc_rt:.3} should beat FIFO {acc_fifo:.3}"
    );
}

#[test]
fn accuracy_declines_with_concurrency_for_every_policy() {
    let baseline = 1.0 / NUM_CLASSES as f32;
    type SchedulerMaker = Box<dyn FnMut() -> Box<dyn Scheduler>>;
    let mut makers: Vec<(&str, SchedulerMaker)> = vec![
        (
            "rt",
            Box::new(move || Box::new(RtDeepIot::new(pwl_predictor(7), 1, baseline))),
        ),
        ("rr", Box::new(|| Box::new(RoundRobin::new()))),
        ("fifo", Box::new(|| Box::new(Fifo::new()))),
    ];
    for (name, make) in makers.iter_mut() {
        let light = mean_accuracy(make.as_mut(), 2);
        let heavy = mean_accuracy(make.as_mut(), 20);
        assert!(
            light > heavy,
            "{name}: light load {light:.3} should beat heavy load {heavy:.3}"
        );
    }
}

#[test]
fn dc_variant_lands_between_full_predictor_and_fifo() {
    let baseline = 1.0 / NUM_CLASSES as f32;
    let mut rt: Box<dyn FnMut() -> Box<dyn Scheduler>> =
        Box::new(|| Box::new(RtDeepIot::new(pwl_predictor(7), 1, baseline)));
    let mut dc: Box<dyn FnMut() -> Box<dyn Scheduler>> = Box::new(|| {
        Box::new(
            RtDeepIot::new(DcPredictor::new(priors(7)), 1, baseline).with_name("RTDeepIoT-DC-1"),
        )
    });
    let mut fifo: Box<dyn FnMut() -> Box<dyn Scheduler>> = Box::new(|| Box::new(Fifo::new()));

    let contended = 16;
    let acc_rt = mean_accuracy(&mut rt, contended);
    let acc_dc = mean_accuracy(&mut dc, contended);
    let acc_fifo = mean_accuracy(&mut fifo, contended);
    assert!(
        acc_dc >= acc_fifo - 0.01,
        "DC {acc_dc:.3} should not trail FIFO {acc_fifo:.3}"
    );
    assert!(
        acc_rt >= acc_dc - 0.02,
        "full predictor {acc_rt:.3} should not trail DC {acc_dc:.3}"
    );
}

#[test]
fn rtdeepiot_is_fairer_than_fifo() {
    // Fairness in stage allocation: the standard deviation of per-task
    // executed stages under contention (the mechanism behind Fig. 4c).
    let baseline = 1.0 / NUM_CLASSES as f32;
    let config = SimConfig {
        num_workers: 4,
        concurrency: 16,
        deadline_quanta: 6,
        num_classes: NUM_CLASSES,
    };
    let stage_spread = |sched: &mut dyn Scheduler| -> f64 {
        let tasks = population(400, 55);
        let mut rng = StdRng::seed_from_u64(56);
        let outcome = Simulation::new(config).run(sched, tasks, &mut rng);
        let stages: Vec<f64> = outcome
            .records
            .iter()
            .map(|r| r.stages_executed as f64)
            .collect();
        let mean = stages.iter().sum::<f64>() / stages.len() as f64;
        (stages.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / stages.len() as f64).sqrt()
    };
    let mut rt = RtDeepIot::new(pwl_predictor(7), 1, baseline);
    let mut fifo = Fifo::new();
    let spread_rt = stage_spread(&mut rt);
    let spread_fifo = stage_spread(&mut fifo);
    assert!(
        spread_rt < spread_fifo,
        "RTDeepIoT stage spread {spread_rt:.3} should be below FIFO {spread_fifo:.3}"
    );
}
