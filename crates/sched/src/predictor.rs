use eugene_gp::{GpParams, GpRegressor, PiecewiseLinear};
use std::collections::HashMap;

/// Predicts the confidence a task will reach at a future stage from the
/// confidences observed so far (the paper's "dynamic confidence curve",
/// §III-B).
///
/// `history` holds the observed confidences of the stages already executed
/// (`history.len()` = completed stage count); `target` is the 0-based
/// stage whose post-execution confidence is being predicted and must be
/// `>= history.len()`.
pub trait ConfidencePredictor: Send {
    /// Predicted confidence after executing stage `target`.
    fn predict(&self, history: &[f32], target: usize) -> f32;

    /// Number of stages the predictor was built for.
    fn num_stages(&self) -> usize;
}

/// The paper's predictor: per stage pair `(l, t)` a Gaussian process
/// `GPl→t` is fit on training confidence curves, then compressed into a
/// piecewise-linear function by profiling it on the grid `{0, 1/M, …, 1}`
/// — only the compressed form is evaluated at run time.
#[derive(Debug, Clone)]
pub struct PwlCurvePredictor {
    /// `curves[(from, to)]`: confidence after stage `from` -> predicted
    /// confidence after stage `to` (0-based stages).
    curves: HashMap<(usize, usize), PiecewiseLinear>,
    /// Mean training confidence per stage, used before any stage has run.
    priors: Vec<f32>,
}

impl PwlCurvePredictor {
    /// Fits the predictor from training confidence curves.
    ///
    /// `training_curves[i][s]` is sample `i`'s confidence after stage `s`
    /// (as produced by evaluating a trained staged network on its training
    /// split). `segments` is the piecewise-linear grid resolution `M`.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`eugene_gp::GpError`] if a GP cannot be
    /// fit (e.g. fewer than one training curve).
    ///
    /// # Panics
    ///
    /// Panics if curves disagree on the stage count or `segments == 0`.
    pub fn fit(training_curves: &[Vec<f32>], segments: usize) -> Result<Self, eugene_gp::GpError> {
        assert!(segments > 0, "segments must be positive");
        let num_stages = training_curves.first().map(Vec::len).unwrap_or_default();
        assert!(
            training_curves.iter().all(|c| c.len() == num_stages),
            "all training curves must cover the same stages"
        );
        let n = training_curves.len().max(1) as f32;
        let mut priors = vec![0.0f32; num_stages];
        for curve in training_curves {
            for (s, &c) in curve.iter().enumerate() {
                priors[s] += c / n;
            }
        }
        let mut curves = HashMap::new();
        for from in 0..num_stages {
            for to in from + 1..num_stages {
                let xs: Vec<f64> = training_curves.iter().map(|c| c[from] as f64).collect();
                let ys: Vec<f64> = training_curves.iter().map(|c| c[to] as f64).collect();
                let gp = GpRegressor::fit(&xs, &ys, GpParams::default())?;
                let pwl =
                    PiecewiseLinear::profile(|x| gp.predict_mean(x).clamp(0.0, 1.0), segments);
                curves.insert((from, to), pwl);
            }
        }
        Ok(Self { curves, priors })
    }

    /// The per-stage training-mean confidences.
    pub fn priors(&self) -> &[f32] {
        &self.priors
    }

    /// The compressed curve for a stage pair, if present.
    pub fn curve(&self, from: usize, to: usize) -> Option<&PiecewiseLinear> {
        self.curves.get(&(from, to))
    }
}

impl ConfidencePredictor for PwlCurvePredictor {
    fn predict(&self, history: &[f32], target: usize) -> f32 {
        assert!(target < self.priors.len(), "target stage out of range");
        assert!(
            target >= history.len(),
            "target stage {target} already executed ({} done)",
            history.len()
        );
        match history.last() {
            None => self.priors[target],
            Some(&last) => {
                let from = history.len() - 1;
                if from == target {
                    return last;
                }
                match self.curves.get(&(from, target)) {
                    Some(pwl) => pwl.eval(last as f64) as f32,
                    None => self.priors[target],
                }
            }
        }
    }

    fn num_stages(&self) -> usize {
        self.priors.len()
    }
}

/// The RTDeepIoT-DC ablation: "it assumes that the confidence will
/// continue to increase with the same slope", i.e. the gain observed in
/// the latest executed stage is extrapolated linearly to every future
/// stage. Before any stage has run it falls back to per-stage priors like
/// the full predictor.
#[derive(Debug, Clone)]
pub struct DcPredictor {
    priors: Vec<f32>,
}

impl DcPredictor {
    /// Creates the predictor from per-stage prior confidences (training
    /// means), which also define the stage count.
    ///
    /// # Panics
    ///
    /// Panics if `priors` is empty.
    pub fn new(priors: Vec<f32>) -> Self {
        assert!(!priors.is_empty(), "need at least one stage prior");
        Self { priors }
    }
}

impl ConfidencePredictor for DcPredictor {
    fn predict(&self, history: &[f32], target: usize) -> f32 {
        assert!(target < self.priors.len(), "target stage out of range");
        assert!(target >= history.len(), "target stage already executed");
        match history.len() {
            0 => self.priors[target],
            n => {
                let last = history[n - 1];
                let slope = if n >= 2 {
                    last - history[n - 2]
                } else {
                    last - self.priors[0].min(last)
                };
                let steps = (target + 1 - n) as f32;
                (last + slope * steps).clamp(0.0, 1.0)
            }
        }
    }

    fn num_stages(&self) -> usize {
        self.priors.len()
    }
}

/// A test-only predictor with perfect knowledge of one fixed curve; useful
/// for exercising schedulers deterministically.
#[derive(Debug, Clone)]
pub struct OraclePredictor {
    curve: Vec<f32>,
}

impl OraclePredictor {
    /// Creates an oracle that answers with `curve[target]` always.
    ///
    /// # Panics
    ///
    /// Panics if `curve` is empty.
    pub fn new(curve: Vec<f32>) -> Self {
        assert!(!curve.is_empty(), "need at least one stage");
        Self { curve }
    }
}

impl ConfidencePredictor for OraclePredictor {
    fn predict(&self, _history: &[f32], target: usize) -> f32 {
        self.curve[target]
    }

    fn num_stages(&self) -> usize {
        self.curve.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic monotone curves: conf(s+1) = conf(s) + gain * (1 - conf).
    fn synthetic_curves(n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                let start = 0.2 + 0.6 * (i as f32 / n as f32);
                let mut curve = vec![start];
                for _ in 1..3 {
                    let prev = *curve.last().unwrap();
                    curve.push(prev + 0.5 * (1.0 - prev));
                }
                curve
            })
            .collect()
    }

    #[test]
    fn pwl_predictor_learns_monotone_refinement() {
        let predictor = PwlCurvePredictor::fit(&synthetic_curves(60), 10).unwrap();
        // Low stage-1 confidence predicts a big stage-2 gain.
        let low = predictor.predict(&[0.3], 1);
        assert!((low - 0.65).abs() < 0.1, "predicted {low}, wanted ~0.65");
        // High stage-1 confidence predicts saturation.
        let high = predictor.predict(&[0.9], 1);
        assert!(high > 0.85, "predicted {high}");
        // The predicted *gain* is larger for the uncertain task, which is
        // the property the greedy scheduler exploits.
        assert!(low - 0.3 > high - 0.9);
    }

    #[test]
    fn pwl_predictor_uses_priors_before_any_stage() {
        let curves = synthetic_curves(40);
        let predictor = PwlCurvePredictor::fit(&curves, 10).unwrap();
        let want: f32 = curves.iter().map(|c| c[0]).sum::<f32>() / 40.0;
        assert!((predictor.predict(&[], 0) - want).abs() < 1e-4);
    }

    #[test]
    fn pwl_predictor_prefers_pairwise_curve_from_latest_stage() {
        let predictor = PwlCurvePredictor::fit(&synthetic_curves(60), 10).unwrap();
        assert!(predictor.curve(0, 1).is_some());
        assert!(predictor.curve(1, 2).is_some());
        assert!(predictor.curve(0, 2).is_some());
        assert!(predictor.curve(1, 0).is_none());
        // With stages 1 and 2 done, GP2->3 should drive the prediction.
        let two_done = predictor.predict(&[0.4, 0.7], 2);
        let expected = predictor.curve(1, 2).unwrap().eval(0.7) as f32;
        assert!((two_done - expected).abs() < 1e-6);
    }

    #[test]
    fn dc_predictor_extrapolates_last_slope() {
        let dc = DcPredictor::new(vec![0.5, 0.7, 0.8]);
        // Observed 0.5 then 0.6: slope 0.1, so stage 3 predicts 0.7.
        let p = dc.predict(&[0.5, 0.6], 2);
        assert!((p - 0.7).abs() < 1e-6);
    }

    #[test]
    fn dc_predictor_clamps_to_unit_interval() {
        let dc = DcPredictor::new(vec![0.5, 0.7, 0.8]);
        let p = dc.predict(&[0.5, 0.99], 2);
        assert!(p <= 1.0);
        let down = dc.predict(&[0.9, 0.2], 2);
        assert!(down >= 0.0);
    }

    #[test]
    fn dc_predictor_uses_priors_when_nothing_ran() {
        let dc = DcPredictor::new(vec![0.5, 0.7, 0.8]);
        assert_eq!(dc.predict(&[], 1), 0.7);
    }

    #[test]
    #[should_panic(expected = "already executed")]
    fn predicting_the_past_panics() {
        let dc = DcPredictor::new(vec![0.5, 0.7]);
        dc.predict(&[0.5, 0.6], 0);
    }

    #[test]
    fn oracle_ignores_history() {
        let o = OraclePredictor::new(vec![0.1, 0.2, 0.3]);
        assert_eq!(o.predict(&[], 2), 0.3);
        assert_eq!(o.predict(&[0.9], 2), 0.3);
        assert_eq!(o.num_stages(), 3);
    }
}
