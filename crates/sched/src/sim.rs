use crate::{TaskId, TaskProfile, TaskState};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A scheduler's read-only view of one active task.
#[derive(Debug, Clone, Copy)]
pub struct TaskView<'a> {
    /// Task identity (arrival index).
    pub id: TaskId,
    /// Stages executed so far.
    pub stages_done: usize,
    /// Total stages in the task's network.
    pub num_stages: usize,
    /// Confidences observed so far (one per executed stage).
    pub observed: &'a [f32],
    /// Quantum at which the task was admitted.
    pub admitted_at: u64,
    /// Deadline budget left, in milliseconds for wall-clock runtimes and
    /// in quanta for the simulator (whose quantum is its time unit).
    ///
    /// Historically named `deadline_at` while actually holding a
    /// remaining-budget *duration*; renamed so no consumer mistakes it
    /// for a timestamp again.
    pub deadline_remaining_ms: u64,
    /// Stage executions' worth of time left before the deadline daemon
    /// kills the task — the remaining budget divided by the (estimated)
    /// cost of one stage.
    pub remaining_quanta: u64,
}

/// A stage-scheduling policy.
///
/// Once per simulation quantum the scheduler sees every active task and
/// the number of free worker slots, and returns the ids of tasks that
/// should each execute **one** stage this quantum. Duplicate ids, ids of
/// complete tasks, and ids beyond `slots` are ignored by the simulator
/// (defensive, so buggy policies degrade rather than corrupt the run).
pub trait Scheduler: Send {
    /// Chooses up to `slots` distinct tasks to advance one stage.
    fn assign(&mut self, tasks: &[TaskView<'_>], slots: usize) -> Vec<TaskId>;

    /// Human-readable policy name used in reports ("RTDeepIoT-1", "RR" ...).
    fn name(&self) -> &str;

    /// Called when a simulation run starts, so stateful policies reset.
    fn reset(&mut self) {}
}

/// Closed-loop simulation parameters.
///
/// The paper's scalability test varies "the number of concurrent tasks";
/// we model that as a multiprogramming level: `concurrency` tasks are in
/// the system at all times (arrivals backfill departures), sharing
/// `num_workers` workers, with the deadline daemon killing any task
/// resident longer than `deadline_quanta` (one quantum = one stage
/// execution time, the paper's "equal stage execution times" assumption).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Parallel stage executions per quantum (worker-pool size).
    pub num_workers: usize,
    /// Multiprogramming level — the paper's "number of concurrent tasks".
    pub concurrency: usize,
    /// Maximum residence time before the daemon kills a task.
    pub deadline_quanta: u64,
    /// Number of classes; an unserved task answers with a uniform random
    /// guess, correct with probability `1 / num_classes`.
    pub num_classes: usize,
}

/// Outcome of one task.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TaskRecord {
    /// Task identity (arrival index).
    pub id: TaskId,
    /// Stages the task actually executed.
    pub stages_executed: usize,
    /// Whether the answer the service returned was correct. Tasks killed
    /// before any stage ran return a uniform random guess.
    pub correct: bool,
    /// Whether the deadline daemon killed the task before completion.
    pub expired: bool,
    /// Confidence attached to the returned answer (`None` when guessing).
    pub confidence: Option<f32>,
    /// Residence time in quanta.
    pub residence_quanta: u64,
    /// Deadline budget the task had left at retirement (0 when the
    /// daemon killed it). Deserialization also accepts the field's
    /// misleading pre-rename name `deadline_at`, so old result dumps
    /// still parse (see the manual impl below — the offline serde
    /// stand-in has no `#[serde(alias)]`).
    pub deadline_remaining_ms: u64,
}

// Hand-written so `deadline_remaining_ms` deserializes from its deprecated
// pre-rename spelling `deadline_at` too (defaulting to 0 when a very old
// dump carries neither); everything else mirrors the derive.
impl serde::Deserialize for TaskRecord {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object for `TaskRecord`"))?;
        fn field<T: serde::Deserialize>(
            entries: &[(String, serde::Value)],
            name: &str,
        ) -> Result<T, serde::Error> {
            match serde::obj_get(entries, name) {
                Some(v) => T::deserialize(v),
                None => Err(serde::Error::missing_field(name, "TaskRecord")),
            }
        }
        let deadline_remaining_ms = match serde::obj_get(entries, "deadline_remaining_ms")
            .or_else(|| serde::obj_get(entries, "deadline_at"))
        {
            Some(v) => u64::deserialize(v)?,
            None => 0,
        };
        Ok(Self {
            id: field(entries, "id")?,
            stages_executed: field(entries, "stages_executed")?,
            correct: field(entries, "correct")?,
            expired: field(entries, "expired")?,
            confidence: field(entries, "confidence")?,
            residence_quanta: field(entries, "residence_quanta")?,
            deadline_remaining_ms,
        })
    }
}

/// Aggregate outcome of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Per-task records in completion order.
    pub records: Vec<TaskRecord>,
    /// Total quanta simulated.
    pub quanta_elapsed: u64,
}

impl SimOutcome {
    /// Fraction of tasks whose returned answer was correct — the paper's
    /// "service accuracy".
    pub fn service_accuracy(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.correct).count() as f64 / self.records.len() as f64
    }

    /// Mean number of stages executed per task.
    pub fn mean_stages(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .map(|r| r.stages_executed)
            .sum::<usize>() as f64
            / self.records.len() as f64
    }

    /// Fraction of tasks that ran every stage.
    pub fn completion_rate(&self, num_stages: usize) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .filter(|r| r.stages_executed == num_stages)
            .count() as f64
            / self.records.len() as f64
    }

    /// Fraction of tasks the deadline daemon killed.
    pub fn expiry_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.expired).count() as f64 / self.records.len() as f64
    }
}

/// The closed-loop discrete-event simulator driving Fig. 4.
#[derive(Debug, Clone)]
pub struct Simulation {
    config: SimConfig,
}

impl Simulation {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if any config field is zero.
    pub fn new(config: SimConfig) -> Self {
        assert!(config.num_workers > 0, "need at least one worker");
        assert!(config.concurrency > 0, "concurrency must be positive");
        assert!(config.deadline_quanta > 0, "deadline must be positive");
        assert!(config.num_classes > 0, "num_classes must be positive");
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs `scheduler` over the task stream, consuming each profile once.
    ///
    /// `rng` supplies the uniform guesses of tasks that never ran a stage.
    pub fn run(
        &self,
        scheduler: &mut dyn Scheduler,
        tasks: Vec<TaskProfile>,
        rng: &mut impl Rng,
    ) -> SimOutcome {
        scheduler.reset();
        let mut pending: VecDeque<(TaskId, TaskProfile)> = tasks.into_iter().enumerate().collect();
        let mut active: Vec<TaskState> = Vec::new();
        let mut records = Vec::new();
        let mut now: u64 = 0;
        while !pending.is_empty() || !active.is_empty() {
            // Admission: keep the multiprogramming level topped up.
            while active.len() < self.config.concurrency {
                match pending.pop_front() {
                    Some((id, profile)) => active.push(TaskState::new(id, profile, now)),
                    None => break,
                }
            }
            // Scheduling decision.
            let views: Vec<TaskView<'_>> = active
                .iter()
                .map(|t| TaskView {
                    id: t.id,
                    stages_done: t.stages_done(),
                    num_stages: t.profile.num_stages(),
                    observed: &t.observed,
                    admitted_at: t.admitted_at,
                    deadline_remaining_ms: (t.admitted_at + self.config.deadline_quanta)
                        .saturating_sub(now),
                    remaining_quanta: (t.admitted_at + self.config.deadline_quanta)
                        .saturating_sub(now),
                })
                .collect();
            let assignments = scheduler.assign(&views, self.config.num_workers);
            // Execute: one stage per distinct, valid id, capped at slots.
            let mut used = 0;
            let mut ran_this_quantum: Vec<TaskId> = Vec::new();
            for id in assignments {
                if used >= self.config.num_workers || ran_this_quantum.contains(&id) {
                    continue;
                }
                if let Some(task) = active.iter_mut().find(|t| t.id == id) {
                    if !task.is_complete() {
                        task.run_next_stage();
                        ran_this_quantum.push(id);
                        used += 1;
                    }
                }
            }
            now += 1;
            // Retire completed tasks and let the daemon kill expired ones.
            let deadline = self.config.deadline_quanta;
            let num_classes = self.config.num_classes;
            let mut i = 0;
            while i < active.len() {
                let task = &active[i];
                let complete = task.is_complete();
                let expired = !complete && now - task.admitted_at >= deadline;
                if complete || expired {
                    let task = active.swap_remove(i);
                    records.push(Self::retire(task, expired, now, deadline, num_classes, rng));
                } else {
                    i += 1;
                }
            }
        }
        records.sort_by_key(|r| r.id);
        SimOutcome {
            records,
            quanta_elapsed: now,
        }
    }

    fn retire(
        task: TaskState,
        expired: bool,
        now: u64,
        deadline: u64,
        num_classes: usize,
        rng: &mut impl Rng,
    ) -> TaskRecord {
        let correct = match task.current_correct() {
            Some(c) => c,
            // Never ran: the service answers with a uniform guess.
            None => rng.gen_range(0..num_classes) == 0,
        };
        TaskRecord {
            id: task.id,
            stages_executed: task.stages_done(),
            correct,
            expired,
            confidence: task.last_confidence(),
            residence_quanta: now - task.admitted_at,
            deadline_remaining_ms: (task.admitted_at + deadline).saturating_sub(now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fifo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn easy_tasks(n: usize) -> Vec<TaskProfile> {
        (0..n)
            .map(|_| TaskProfile::new(vec![0.6, 0.8, 0.95], vec![true, true, true]))
            .collect()
    }

    #[test]
    fn uncontended_run_completes_everything() {
        let config = SimConfig {
            num_workers: 4,
            concurrency: 2,
            deadline_quanta: 10,
            num_classes: 10,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = Simulation::new(config).run(&mut Fifo::new(), easy_tasks(6), &mut rng);
        assert_eq!(outcome.records.len(), 6);
        assert_eq!(outcome.completion_rate(3), 1.0);
        assert_eq!(outcome.expiry_rate(), 0.0);
        assert_eq!(outcome.service_accuracy(), 1.0);
        assert_eq!(outcome.mean_stages(), 3.0);
    }

    #[test]
    fn overload_expires_tasks() {
        // 1 worker, 10 concurrent tasks, deadline 2: most tasks starve.
        let config = SimConfig {
            num_workers: 1,
            concurrency: 10,
            deadline_quanta: 2,
            num_classes: 1_000_000, // guesses effectively never correct
        };
        let mut rng = StdRng::seed_from_u64(2);
        let outcome = Simulation::new(config).run(&mut Fifo::new(), easy_tasks(20), &mut rng);
        assert_eq!(outcome.records.len(), 20);
        assert!(
            outcome.expiry_rate() > 0.5,
            "expiry {}",
            outcome.expiry_rate()
        );
        assert!(outcome.service_accuracy() < 0.5);
    }

    #[test]
    fn records_cover_every_task_exactly_once() {
        let config = SimConfig {
            num_workers: 2,
            concurrency: 3,
            deadline_quanta: 4,
            num_classes: 10,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let outcome = Simulation::new(config).run(&mut Fifo::new(), easy_tasks(11), &mut rng);
        let mut ids: Vec<TaskId> = outcome.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..11).collect::<Vec<_>>());
    }

    #[test]
    fn residence_respects_deadline() {
        let config = SimConfig {
            num_workers: 1,
            concurrency: 5,
            deadline_quanta: 3,
            num_classes: 10,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let outcome = Simulation::new(config).run(&mut Fifo::new(), easy_tasks(10), &mut rng);
        for r in &outcome.records {
            assert!(
                r.residence_quanta <= 3,
                "task {} stayed {}",
                r.id,
                r.residence_quanta
            );
        }
    }

    /// A hostile scheduler that assigns duplicates and bogus ids.
    struct Hostile;
    impl Scheduler for Hostile {
        fn assign(&mut self, tasks: &[TaskView<'_>], _slots: usize) -> Vec<TaskId> {
            let mut out = vec![9999, 9999];
            if let Some(t) = tasks.first() {
                out.extend([t.id; 8]);
            }
            out
        }
        fn name(&self) -> &str {
            "hostile"
        }
    }

    #[test]
    fn simulator_is_defensive_against_bad_schedulers() {
        let config = SimConfig {
            num_workers: 2,
            concurrency: 2,
            deadline_quanta: 6,
            num_classes: 10,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = Simulation::new(config).run(&mut Hostile, easy_tasks(4), &mut rng);
        assert_eq!(outcome.records.len(), 4);
        // Each quantum at most one stage per task despite duplicate asks.
        for r in &outcome.records {
            assert!(r.stages_executed <= 3);
        }
    }

    #[test]
    fn empty_task_stream_returns_empty_outcome() {
        let config = SimConfig {
            num_workers: 1,
            concurrency: 1,
            deadline_quanta: 1,
            num_classes: 2,
        };
        let mut rng = StdRng::seed_from_u64(6);
        let outcome = Simulation::new(config).run(&mut Fifo::new(), vec![], &mut rng);
        assert!(outcome.records.is_empty());
        assert_eq!(outcome.quanta_elapsed, 0);
        assert_eq!(outcome.service_accuracy(), 0.0);
    }
}
