use crate::{Scheduler, TaskId, TaskView};

/// Stage-level round-robin (the paper's RR baseline): "select a stage to
/// run among all the deep learning services in a round-robin manner."
///
/// The policy cycles a cursor over task ids so every active task advances
/// at the same rate regardless of how much an extra stage would help it.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    /// Id after which the next scan starts, for fair rotation.
    cursor: Option<TaskId>,
}

impl RoundRobin {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn assign(&mut self, tasks: &[TaskView<'_>], slots: usize) -> Vec<TaskId> {
        // Order by id, rotate so the scan starts just after the cursor.
        let mut runnable: Vec<&TaskView<'_>> = tasks
            .iter()
            .filter(|t| t.stages_done < t.num_stages)
            .collect();
        runnable.sort_by_key(|t| t.id);
        if runnable.is_empty() {
            return Vec::new();
        }
        let start = match self.cursor {
            Some(cursor) => runnable.iter().position(|t| t.id > cursor).unwrap_or(0),
            None => 0,
        };
        let picked: Vec<TaskId> = (0..runnable.len().min(slots))
            .map(|i| runnable[(start + i) % runnable.len()].id)
            .collect();
        self.cursor = picked.last().copied().or(self.cursor);
        picked
    }

    fn name(&self) -> &str {
        "RR"
    }

    fn reset(&mut self) {
        self.cursor = None;
    }
}

/// First-in-first-out run-to-completion (the paper's FIFO baseline):
/// workers serve the earliest-admitted tasks and "run all stages to the
/// end" before later tasks get a turn.
#[derive(Debug, Clone, Default)]
pub struct Fifo;

impl Fifo {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for Fifo {
    fn assign(&mut self, tasks: &[TaskView<'_>], slots: usize) -> Vec<TaskId> {
        let mut runnable: Vec<&TaskView<'_>> = tasks
            .iter()
            .filter(|t| t.stages_done < t.num_stages)
            .collect();
        // Earliest admission first; ties broken by arrival index.
        runnable.sort_by_key(|t| (t.admitted_at, t.id));
        runnable.iter().take(slots).map(|t| t.id).collect()
    }

    fn name(&self) -> &str {
        "FIFO"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(id: TaskId, stages_done: usize, admitted_at: u64) -> TaskView<'static> {
        TaskView {
            id,
            stages_done,
            num_stages: 3,
            observed: &[],
            admitted_at,
            deadline_remaining_ms: 10,
            remaining_quanta: 10,
        }
    }

    #[test]
    fn round_robin_rotates_across_calls() {
        let mut rr = RoundRobin::new();
        let tasks = [view(0, 0, 0), view(1, 0, 0), view(2, 0, 0), view(3, 0, 0)];
        let first = rr.assign(&tasks, 2);
        let second = rr.assign(&tasks, 2);
        assert_eq!(first, vec![0, 1]);
        assert_eq!(second, vec![2, 3]);
        let third = rr.assign(&tasks, 2);
        assert_eq!(third, vec![0, 1], "rotation should wrap");
    }

    #[test]
    fn round_robin_skips_complete_tasks() {
        let mut rr = RoundRobin::new();
        let tasks = [view(0, 3, 0), view(1, 1, 0)];
        assert_eq!(rr.assign(&tasks, 2), vec![1]);
    }

    #[test]
    fn round_robin_reset_restarts_rotation() {
        let mut rr = RoundRobin::new();
        let tasks = [view(0, 0, 0), view(1, 0, 0)];
        rr.assign(&tasks, 1);
        rr.reset();
        assert_eq!(rr.assign(&tasks, 1), vec![0]);
    }

    #[test]
    fn fifo_prefers_earliest_admission() {
        let mut fifo = Fifo::new();
        let tasks = [view(5, 0, 7), view(2, 1, 3), view(9, 2, 3)];
        // admitted_at 3 before 7; id 2 before id 9 at the same time.
        assert_eq!(fifo.assign(&tasks, 2), vec![2, 9]);
    }

    #[test]
    fn fifo_runs_same_task_until_complete() {
        let mut fifo = Fifo::new();
        let tasks = [view(0, 2, 0), view(1, 0, 1)];
        // Task 0 still has a stage left and is earliest: it keeps its slot.
        assert_eq!(fifo.assign(&tasks, 1), vec![0]);
    }

    #[test]
    fn empty_task_list_yields_no_assignments() {
        assert!(RoundRobin::new().assign(&[], 4).is_empty());
        assert!(Fifo::new().assign(&[], 4).is_empty());
    }
}
