use crate::{Scheduler, TaskId, TaskView};

/// Deadline-aware scheduling adapter (paper §V future work: "the
/// scheduler described in this paper needs to be modified to support
/// multiple service classes and account for different execution cost and
/// constraints").
///
/// The adapter reserves worker slots for *critical* tasks — tasks whose
/// remaining time budget barely covers their remaining stages plus a
/// configurable slack — ordered by tightest deadline first, and hands the
/// remaining slots to the wrapped utility-maximizing policy. A tight-
/// deadline interactive request therefore finishes even when a pure
/// utility maximizer would have preferred spending the slot on a
/// higher-gain batch task.
///
/// # Examples
///
/// ```
/// use eugene_sched::{DeadlineAware, Fifo};
///
/// let policy = DeadlineAware::new(Fifo::new(), 1);
/// assert_eq!(policy.name(), "EDF+FIFO");
/// # use eugene_sched::Scheduler;
/// ```
pub struct DeadlineAware<S> {
    inner: S,
    /// A task is critical when
    /// `remaining_quanta <= stages_remaining + slack`.
    slack: u64,
    name: String,
}

impl<S: Scheduler> DeadlineAware<S> {
    /// Wraps `inner`, reserving slots for tasks within `slack` quanta of
    /// missing their deadline.
    pub fn new(inner: S, slack: u64) -> Self {
        let name = format!("EDF+{}", inner.name());
        Self { inner, slack, name }
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn is_critical(&self, t: &TaskView<'_>) -> bool {
        let stages_remaining = (t.num_stages - t.stages_done) as u64;
        stages_remaining > 0 && t.remaining_quanta <= stages_remaining + self.slack
    }
}

impl<S: Scheduler> Scheduler for DeadlineAware<S> {
    fn assign(&mut self, tasks: &[TaskView<'_>], slots: usize) -> Vec<TaskId> {
        // 1. Critical tasks, tightest deadline first.
        let mut critical: Vec<&TaskView<'_>> = tasks
            .iter()
            .filter(|t| t.stages_done < t.num_stages && self.is_critical(t))
            .collect();
        critical.sort_by_key(|t| (t.remaining_quanta, t.id));
        let mut picked: Vec<TaskId> = critical.iter().take(slots).map(|t| t.id).collect();
        if picked.len() >= slots {
            return picked;
        }
        // 2. Delegate leftover capacity to the inner policy over the
        //    non-critical tasks.
        let rest: Vec<TaskView<'_>> = tasks
            .iter()
            .filter(|t| !picked.contains(&t.id))
            .copied()
            .collect();
        for id in self.inner.assign(&rest, slots - picked.len()) {
            if !picked.contains(&id) && picked.len() < slots {
                picked.push(id);
            }
        }
        picked
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fifo, OraclePredictor, RtDeepIot, SimConfig, Simulation, TaskProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn view(
        id: TaskId,
        stages_done: usize,
        remaining_quanta: u64,
        observed: &'static [f32],
    ) -> TaskView<'static> {
        TaskView {
            id,
            stages_done,
            num_stages: 3,
            observed,
            admitted_at: 0,
            deadline_remaining_ms: 100,
            remaining_quanta,
        }
    }

    #[test]
    fn critical_task_preempts_high_gain_task() {
        // Task 0: huge predicted gain but a loose deadline. Task 1: about
        // to expire with one stage left. EDF must pick task 1.
        let inner = RtDeepIot::new(OraclePredictor::new(vec![0.5, 0.9, 0.99]), 1, 0.1);
        let mut policy = DeadlineAware::new(inner, 0);
        let tasks = [view(0, 0, 10, &[]), view(1, 2, 1, &[0.3, 0.35])];
        assert_eq!(policy.assign(&tasks, 1), vec![1]);
    }

    #[test]
    fn leftover_slots_go_to_the_inner_policy() {
        let inner = RtDeepIot::new(OraclePredictor::new(vec![0.5, 0.9, 0.99]), 1, 0.1);
        let mut policy = DeadlineAware::new(inner, 0);
        let tasks = [view(0, 0, 10, &[]), view(1, 2, 1, &[0.3, 0.35])];
        let picked = policy.assign(&tasks, 2);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0], 1, "critical first");
        assert!(picked.contains(&0));
    }

    #[test]
    fn multiple_critical_tasks_order_by_deadline() {
        let mut policy = DeadlineAware::new(Fifo::new(), 1);
        let tasks = [
            view(0, 2, 3, &[0.4, 0.5]),
            view(1, 2, 1, &[0.4, 0.5]),
            view(2, 2, 2, &[0.4, 0.5]),
        ];
        assert_eq!(policy.assign(&tasks, 3), vec![1, 2, 0]);
    }

    #[test]
    fn completed_tasks_are_never_critical() {
        let mut policy = DeadlineAware::new(Fifo::new(), 5);
        let tasks = [view(0, 3, 0, &[0.4, 0.5, 0.6])];
        assert!(policy.assign(&tasks, 2).is_empty());
    }

    #[test]
    fn edf_wrapper_reduces_expiries_under_load() {
        // Mixed profiles under contention: the EDF-wrapped policy should
        // expire no more tasks than the bare utility maximizer.
        let profiles = |n: usize| -> Vec<TaskProfile> {
            (0..n)
                .map(|i| {
                    let start = 0.2 + (i % 7) as f32 * 0.1;
                    let mid = start + 0.5 * (1.0 - start);
                    TaskProfile::new(
                        vec![start, mid, mid + 0.5 * (1.0 - mid)],
                        vec![i % 3 != 0, i % 3 != 0, true],
                    )
                })
                .collect()
        };
        let config = SimConfig {
            num_workers: 2,
            concurrency: 8,
            deadline_quanta: 5,
            num_classes: 10,
        };
        let run = |wrapped: bool| -> f64 {
            let inner = RtDeepIot::new(OraclePredictor::new(vec![0.5, 0.75, 0.9]), 1, 0.1);
            let mut rng = StdRng::seed_from_u64(9);
            let outcome = if wrapped {
                Simulation::new(config).run(
                    &mut DeadlineAware::new(inner, 1),
                    profiles(200),
                    &mut rng,
                )
            } else {
                let mut inner = inner;
                Simulation::new(config).run(&mut inner, profiles(200), &mut rng)
            };
            outcome.completion_rate(3)
        };
        let wrapped = run(true);
        let bare = run(false);
        assert!(
            wrapped >= bare,
            "EDF wrapper should not complete fewer tasks: {wrapped} vs {bare}"
        );
    }
}
