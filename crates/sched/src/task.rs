use serde::{Deserialize, Serialize};

/// Identifier of a task within one simulation run (its arrival index).
pub type TaskId = usize;

/// What one inference task *would* report after each stage.
///
/// Because the staged network is deterministic, a test sample's per-stage
/// outputs can be pre-computed once: `stage_confidences[s]` is the
/// classification confidence after stage `s`, and `stage_correct[s]` is
/// whether the stage-`s` prediction matches the true label. The scheduler
/// sees only the confidences of stages it has actually executed — exactly
/// what the worker processes report over the named pipe in the paper's
/// implementation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskProfile {
    stage_confidences: Vec<f32>,
    stage_correct: Vec<bool>,
}

impl TaskProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if the vectors are empty, differ in length, or a confidence
    /// lies outside `[0, 1]`.
    pub fn new(stage_confidences: Vec<f32>, stage_correct: Vec<bool>) -> Self {
        assert!(!stage_confidences.is_empty(), "need at least one stage");
        assert_eq!(
            stage_confidences.len(),
            stage_correct.len(),
            "confidences and correctness must align"
        );
        assert!(
            stage_confidences.iter().all(|c| (0.0..=1.0).contains(c)),
            "confidences must lie in [0, 1]"
        );
        Self {
            stage_confidences,
            stage_correct,
        }
    }

    /// Number of stages in the underlying network.
    pub fn num_stages(&self) -> usize {
        self.stage_confidences.len()
    }

    /// Confidence reported after stage `s` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn confidence_after(&self, s: usize) -> f32 {
        self.stage_confidences[s]
    }

    /// Whether the prediction after stage `s` is correct.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn correct_after(&self, s: usize) -> bool {
        self.stage_correct[s]
    }

    /// All per-stage confidences.
    pub fn confidences(&self) -> &[f32] {
        &self.stage_confidences
    }
}

/// Live state of a task inside the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskState {
    /// The task's identity (arrival index).
    pub id: TaskId,
    /// The pre-computed stage outcomes.
    pub profile: TaskProfile,
    /// Simulation quantum at which the task was admitted.
    pub admitted_at: u64,
    /// Confidences observed so far, one per executed stage.
    pub observed: Vec<f32>,
}

impl TaskState {
    /// Creates a fresh task admitted at `now`.
    pub fn new(id: TaskId, profile: TaskProfile, now: u64) -> Self {
        Self {
            id,
            profile,
            admitted_at: now,
            observed: Vec::new(),
        }
    }

    /// Number of stages executed so far.
    pub fn stages_done(&self) -> usize {
        self.observed.len()
    }

    /// Whether every stage has been executed.
    pub fn is_complete(&self) -> bool {
        self.stages_done() == self.profile.num_stages()
    }

    /// Executes the next stage, recording its observed confidence.
    ///
    /// # Panics
    ///
    /// Panics if the task is already complete.
    pub fn run_next_stage(&mut self) -> f32 {
        assert!(!self.is_complete(), "task {} already complete", self.id);
        let conf = self.profile.confidence_after(self.stages_done());
        self.observed.push(conf);
        conf
    }

    /// The latest observed confidence, if any stage has run.
    pub fn last_confidence(&self) -> Option<f32> {
        self.observed.last().copied()
    }

    /// Whether the answer the task would emit *right now* (its latest
    /// completed stage) is correct; `None` if no stage has run.
    pub fn current_correct(&self) -> Option<bool> {
        if self.observed.is_empty() {
            None
        } else {
            Some(self.profile.correct_after(self.observed.len() - 1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> TaskProfile {
        TaskProfile::new(vec![0.4, 0.6, 0.8], vec![false, true, true])
    }

    #[test]
    fn profile_accessors() {
        let p = profile();
        assert_eq!(p.num_stages(), 3);
        assert_eq!(p.confidence_after(1), 0.6);
        assert!(!p.correct_after(0));
        assert!(p.correct_after(2));
    }

    #[test]
    fn state_progresses_through_stages() {
        let mut t = TaskState::new(0, profile(), 5);
        assert_eq!(t.stages_done(), 0);
        assert_eq!(t.last_confidence(), None);
        assert_eq!(t.current_correct(), None);
        assert_eq!(t.run_next_stage(), 0.4);
        assert_eq!(t.current_correct(), Some(false));
        assert_eq!(t.run_next_stage(), 0.6);
        assert_eq!(t.run_next_stage(), 0.8);
        assert!(t.is_complete());
        assert_eq!(t.current_correct(), Some(true));
        assert_eq!(t.admitted_at, 5);
    }

    #[test]
    #[should_panic(expected = "already complete")]
    fn running_past_last_stage_panics() {
        let mut t = TaskState::new(0, TaskProfile::new(vec![0.9], vec![true]), 0);
        t.run_next_stage();
        t.run_next_stage();
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_profile_vectors_panic() {
        TaskProfile::new(vec![0.5, 0.6], vec![true]);
    }

    #[test]
    #[should_panic(expected = "[0, 1]")]
    fn out_of_range_confidence_panics() {
        TaskProfile::new(vec![1.5], vec![true]);
    }
}
