use crate::{ConfidencePredictor, Scheduler, TaskId, TaskView};
use std::collections::{HashMap, VecDeque};

/// One planned stage execution.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PlannedStage {
    id: TaskId,
    /// The stage index this entry schedules (must still be the task's next
    /// stage when popped, else the entry is stale and dropped).
    stage: usize,
    /// Confidence the predictor expected after this stage at plan time.
    predicted: f32,
}

/// The Eugene scheduler (paper §III): greedy utility maximization with a
/// lookahead timeline.
///
/// "The algorithm picks a stage of a task with the maximum differential
/// utility (where utility ... is set equal to the estimated confidence in
/// results). This selected stage is added to the future timeline. A
/// lookahead parameter, k, specifies how many items will be added to the
/// timeline before the scheduler quits. When the timeline has been
/// executed, the algorithm restarts again with the most recent utility
/// estimates."
///
/// The differential utility of running a task's next stage is the
/// predicted confidence after that stage minus the task's current
/// confidence (its latest observed value, or a chance-level baseline for
/// tasks that have not run yet). Plugging in [`crate::PwlCurvePredictor`]
/// yields RTDeepIoT-k; plugging in [`crate::DcPredictor`] yields the
/// RTDeepIoT-DC-k ablation.
///
/// A side effect the paper highlights: because saturated (high-confidence)
/// tasks gain little from another stage, the greedy rule naturally routes
/// capacity to uncertain tasks, improving fairness (Fig. 4c).
pub struct RtDeepIot<P> {
    predictor: P,
    lookahead: usize,
    baseline_confidence: f32,
    timeline: VecDeque<PlannedStage>,
    name: String,
}

impl<P: ConfidencePredictor> RtDeepIot<P> {
    /// Creates the scheduler.
    ///
    /// `lookahead` is the paper's `k`; `baseline_confidence` is the
    /// confidence attributed to a task before any stage runs (chance
    /// level, `1 / num_classes`).
    ///
    /// # Panics
    ///
    /// Panics if `lookahead == 0` or the baseline is outside `[0, 1]`.
    pub fn new(predictor: P, lookahead: usize, baseline_confidence: f32) -> Self {
        assert!(lookahead > 0, "lookahead must be positive");
        assert!(
            (0.0..=1.0).contains(&baseline_confidence),
            "baseline confidence must be in [0, 1]"
        );
        Self {
            predictor,
            lookahead,
            baseline_confidence,
            timeline: VecDeque::new(),
            name: format!("RTDeepIoT-{lookahead}"),
        }
    }

    /// Overrides the display name (the bench uses "RTDeepIoT-DC-k" for the
    /// constant-slope variant).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The lookahead parameter `k`.
    pub fn lookahead(&self) -> usize {
        self.lookahead
    }

    /// Greedily plans up to `k` stage executions against the simulated
    /// state, advancing the simulation as it plans.
    fn refill(&self, sim: &mut HashMap<TaskId, SimTask>) -> Vec<PlannedStage> {
        let mut planned = Vec::with_capacity(self.lookahead);
        for _ in 0..self.lookahead {
            let mut best: Option<(f32, TaskId)> = None;
            for (&id, task) in sim.iter() {
                if task.next_stage >= task.num_stages {
                    continue;
                }
                let current = task
                    .history
                    .last()
                    .copied()
                    .unwrap_or(self.baseline_confidence);
                let predicted = self.predictor.predict(&task.history, task.next_stage);
                let gain = predicted - current;
                // Ties broken by lower id for determinism.
                let better = match best {
                    None => true,
                    Some((best_gain, best_id)) => {
                        gain > best_gain || (gain == best_gain && id < best_id)
                    }
                };
                if better {
                    best = Some((gain, id));
                }
            }
            let Some((_, id)) = best else { break };
            let task = sim.get_mut(&id).expect("selected task exists");
            let predicted = self.predictor.predict(&task.history, task.next_stage);
            planned.push(PlannedStage {
                id,
                stage: task.next_stage,
                predicted,
            });
            task.history.push(predicted);
            task.next_stage += 1;
        }
        planned
    }
}

#[derive(Debug, Clone)]
struct SimTask {
    history: Vec<f32>,
    next_stage: usize,
    num_stages: usize,
}

impl<P: ConfidencePredictor> Scheduler for RtDeepIot<P> {
    fn assign(&mut self, tasks: &[TaskView<'_>], slots: usize) -> Vec<TaskId> {
        // Simulated planning state: real observations, extended by
        // predicted values as stages are planned/picked this quantum.
        let mut sim: HashMap<TaskId, SimTask> = tasks
            .iter()
            .map(|t| {
                (
                    t.id,
                    SimTask {
                        history: t.observed.to_vec(),
                        next_stage: t.stages_done,
                        num_stages: t.num_stages,
                    },
                )
            })
            .collect();
        let mut picked: Vec<TaskId> = Vec::with_capacity(slots);
        let mut deferred: VecDeque<PlannedStage> = VecDeque::new();

        // Phase 1: drain the plan carried over from earlier quanta. These
        // entries predate this quantum's `sim`, so picking one advances it.
        let carried: Vec<PlannedStage> = self.timeline.drain(..).collect();
        for entry in carried {
            if picked.len() >= slots {
                deferred.push_back(entry);
                continue;
            }
            match sim.get_mut(&entry.id) {
                // Stale: task departed (completed or killed).
                None => continue,
                Some(task) => {
                    if entry.stage != task.next_stage {
                        // Stale: the task progressed differently.
                        continue;
                    }
                    if picked.contains(&entry.id) {
                        // One stage per task per quantum; keep for later,
                        // and advance sim so re-planning is consistent.
                        task.history.push(entry.predicted);
                        task.next_stage += 1;
                        deferred.push_back(entry);
                        continue;
                    }
                    task.history.push(entry.predicted);
                    task.next_stage += 1;
                    picked.push(entry.id);
                }
            }
        }

        // Phase 2: re-plan in lookahead-k batches until the slots are
        // filled or no work remains. `refill` advances `sim` itself.
        while picked.len() < slots {
            let fresh = self.refill(&mut sim);
            if fresh.is_empty() {
                break;
            }
            for entry in fresh {
                if picked.len() < slots && !picked.contains(&entry.id) {
                    picked.push(entry.id);
                } else {
                    deferred.push_back(entry);
                }
            }
        }

        // Whatever could not run this quantum is the carried-over plan.
        self.timeline = deferred;
        picked
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn reset(&mut self) {
        self.timeline.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DcPredictor, OraclePredictor, PwlCurvePredictor};

    fn view(id: TaskId, observed: &'static [f32]) -> TaskView<'static> {
        TaskView {
            id,
            stages_done: observed.len(),
            num_stages: 3,
            observed,
            admitted_at: 0,
            deadline_remaining_ms: 10,
            remaining_quanta: 10,
        }
    }

    /// A predictor matching the "diminishing returns" shape: the gain of
    /// the next stage is half the distance to 1.0.
    fn saturating_predictor() -> PwlCurvePredictor {
        let curves: Vec<Vec<f32>> = (0..50)
            .map(|i| {
                let start = 0.15 + 0.7 * (i as f32 / 50.0);
                let mid = start + 0.5 * (1.0 - start);
                let end = mid + 0.5 * (1.0 - mid);
                vec![start, mid, end]
            })
            .collect();
        PwlCurvePredictor::fit(&curves, 12).unwrap()
    }

    #[test]
    fn prefers_low_confidence_tasks_for_extra_stages() {
        let mut sched = RtDeepIot::new(saturating_predictor(), 1, 0.1);
        // Task 0 is uncertain after stage 1; task 1 is nearly saturated.
        let tasks = [view(0, &[0.3]), view(1, &[0.95])];
        let picked = sched.assign(&tasks, 1);
        assert_eq!(picked, vec![0], "uncertain task should win the slot");
    }

    #[test]
    fn schedules_first_stages_before_refinement_under_contention() {
        let mut sched = RtDeepIot::new(saturating_predictor(), 1, 0.1);
        // Task 0 already confident after one stage; task 1 never ran.
        // Running task 1's first stage gains ~ (prior - 0.1), far more
        // than pushing task 0 from 0.9 toward 1.0.
        let tasks = [view(0, &[0.9]), view(1, &[])];
        let picked = sched.assign(&tasks, 1);
        assert_eq!(picked, vec![1]);
    }

    #[test]
    fn fills_all_slots_with_distinct_tasks() {
        let mut sched = RtDeepIot::new(saturating_predictor(), 2, 0.1);
        let tasks = [view(0, &[]), view(1, &[]), view(2, &[]), view(3, &[])];
        let picked = sched.assign(&tasks, 3);
        assert_eq!(picked.len(), 3);
        let mut unique = picked.clone();
        unique.dedup();
        assert_eq!(unique.len(), 3);
    }

    #[test]
    fn carries_planned_stage_to_next_quantum() {
        // Lookahead 3 with one task: plan = [stage0, stage1, stage2], but
        // only one stage may run per quantum. The rest must survive.
        let mut sched = RtDeepIot::new(saturating_predictor(), 3, 0.1);
        let t0 = [view(0, &[])];
        let picked = sched.assign(&t0, 4);
        assert_eq!(picked, vec![0]);
        assert!(!sched.timeline.is_empty(), "remaining plan should persist");
        // Next quantum the task has one stage done.
        let t1 = [view(0, &[0.5])];
        let picked = sched.assign(&t1, 4);
        assert_eq!(picked, vec![0]);
    }

    #[test]
    fn stale_entries_for_departed_tasks_are_dropped() {
        let mut sched = RtDeepIot::new(saturating_predictor(), 3, 0.1);
        let t0 = [view(7, &[])];
        sched.assign(&t0, 1);
        // Task 7 expired; a new task appears. Stale plan must not block it.
        let t1 = [view(8, &[])];
        let picked = sched.assign(&t1, 1);
        assert_eq!(picked, vec![8]);
    }

    #[test]
    fn dc_variant_is_constructible_and_named() {
        let sched = RtDeepIot::new(DcPredictor::new(vec![0.5, 0.7, 0.8]), 2, 0.1)
            .with_name("RTDeepIoT-DC-2");
        assert_eq!(sched.name(), "RTDeepIoT-DC-2");
        assert_eq!(sched.lookahead(), 2);
    }

    #[test]
    fn oracle_predictor_drives_deterministic_choice() {
        // Oracle says stage outputs are [0.2, 0.9, 0.95] for every task;
        // a task with stage 1 done at 0.2 gains 0.7 from stage 2; a fresh
        // task gains 0.2 - baseline(0.1) = 0.1 from stage 1.
        let mut sched = RtDeepIot::new(OraclePredictor::new(vec![0.2, 0.9, 0.95]), 1, 0.1);
        let tasks = [view(0, &[]), view(1, &[0.2])];
        assert_eq!(sched.assign(&tasks, 1), vec![1]);
    }

    #[test]
    #[should_panic(expected = "lookahead")]
    fn zero_lookahead_rejected() {
        RtDeepIot::new(OraclePredictor::new(vec![0.5]), 0, 0.1);
    }
}
