//! Utility-maximizing stage scheduling (RTDeepIoT) and baselines, with a
//! discrete-event simulator reproducing the paper's Fig. 4.
//!
//! Paper §III: staged inference lets a server choose, per task, how many
//! network stages to execute. The Eugene scheduler ("for historic reasons
//! ... RTDeepIoT") greedily picks the task stage with the **maximum
//! differential utility**, where utility is the predicted increase in
//! classification confidence, and a lookahead parameter `k` controls how
//! many stage selections are planned before re-planning. A daemon enforces
//! a per-task latency constraint; unfinished tasks accrue no utility.
//!
//! This crate models that system:
//!
//! - [`TaskProfile`]/[`TaskState`]: a task is one inference request; its
//!   profile records what each stage *would* report (confidence,
//!   correctness), pre-computed from a real staged network;
//! - [`ConfidencePredictor`]: the dynamic confidence-curve models —
//!   [`PwlCurvePredictor`] (GP-fit, piecewise-linear-compressed, §III-B)
//!   and [`DcPredictor`] (the constant-slope RTDeepIoT-DC ablation);
//! - [`Scheduler`] implementations: [`RtDeepIot`] (greedy lookahead-`k`),
//!   [`RoundRobin`], and [`Fifo`];
//! - [`Simulation`]: a closed-loop multiprogramming simulator — `N`
//!   concurrent tasks share `W` workers under a deadline — that produces
//!   the service-accuracy curves of Fig. 4a/4b/4c.
//!
//! # Examples
//!
//! ```
//! use eugene_sched::{Fifo, SimConfig, Simulation, TaskProfile};
//! use rand::SeedableRng;
//!
//! // Two synthetic tasks: confidence grows with each stage.
//! let tasks = vec![
//!     TaskProfile::new(vec![0.5, 0.7, 0.9], vec![false, true, true]),
//!     TaskProfile::new(vec![0.8, 0.9, 0.95], vec![true, true, true]),
//! ];
//! let config = SimConfig { num_workers: 2, concurrency: 2, deadline_quanta: 4, num_classes: 10 };
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let outcome = Simulation::new(config).run(&mut Fifo::new(), tasks, &mut rng);
//! assert_eq!(outcome.records.len(), 2);
//! assert!(outcome.service_accuracy() > 0.9);
//! ```

mod baselines;
mod class_aware;
mod greedy;
mod predictor;
mod sim;
mod task;

pub use baselines::{Fifo, RoundRobin};
pub use class_aware::DeadlineAware;
pub use greedy::RtDeepIot;
pub use predictor::{ConfidencePredictor, DcPredictor, OraclePredictor, PwlCurvePredictor};
pub use sim::{Scheduler, SimConfig, SimOutcome, Simulation, TaskRecord, TaskView};
pub use task::{TaskId, TaskProfile, TaskState};
