//! A persistent, process-wide worker pool for data-parallel kernels.
//!
//! The blocked matmul kernels in [`crate::kernels`] split their output-row
//! ranges across cores. Spawning threads per call would dwarf the work for
//! all but enormous matrices, so this module keeps one lazily-started pool
//! (built on the vendored crossbeam channel) alive for the life of the
//! process: workers block on a job channel, run a slice of a kernel, and
//! go back to waiting.
//!
//! The pool is shared by every caller in the process — the serving
//! runtime's batched forwards, training, and benches all draw from the
//! same threads — and is sized by the [`set_parallelism`] knob. The
//! default (`0`, "auto") resolves to the machine's available parallelism.
//! `set_parallelism(1)` forces every kernel onto the sequential path,
//! which small matrices take regardless of the knob (see
//! [`crate::kernels`] for the size threshold).
//!
//! # Examples
//!
//! ```
//! use eugene_tensor::{parallelism, set_parallelism};
//!
//! let previous = parallelism();
//! set_parallelism(2);
//! assert_eq!(parallelism(), 2);
//! set_parallelism(0); // back to auto
//! assert!(parallelism() >= 1);
//! set_parallelism(previous);
//! ```

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Upper bound on pool threads, a defensive cap against absurd knob values.
const MAX_WORKERS: usize = 64;

/// Configured parallelism; `0` means "auto" (available parallelism).
static PARALLELISM: AtomicUsize = AtomicUsize::new(0);

/// Sets the number of threads kernels may use (the `parallelism(n)` knob).
///
/// `0` restores the default: the machine's available parallelism. `1`
/// disables threading entirely. Values above an internal cap (64) are
/// clamped. The setting is global: it governs every matrix product in the
/// process, so a service sets it once at startup.
pub fn set_parallelism(threads: usize) {
    PARALLELISM.store(threads.min(MAX_WORKERS), Ordering::Relaxed);
}

/// The effective number of threads kernels may use right now (never 0).
pub fn parallelism() -> usize {
    match PARALLELISM.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(MAX_WORKERS),
        n => n,
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    tx: Sender<Job>,
    rx: Receiver<Job>,
    /// Worker threads spawned so far; grows on demand up to the knob.
    spawned: Mutex<usize>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let (tx, rx) = unbounded::<Job>();
        Pool {
            tx,
            rx,
            spawned: Mutex::new(0),
        }
    })
}

/// Ensures at least `helpers` worker threads exist (workers are helpers:
/// the calling thread always participates in a parallel region itself).
fn ensure_workers(helpers: usize) {
    let pool = pool();
    let mut spawned = pool.spawned.lock().expect("pool spawn lock");
    while *spawned < helpers.min(MAX_WORKERS) {
        let rx = pool.rx.clone();
        let index = *spawned;
        std::thread::Builder::new()
            .name(format!("eugene-gemm-{index}"))
            .spawn(move || {
                // Channel disconnect never happens (the pool is 'static);
                // workers simply serve jobs for the life of the process.
                while let Ok(job) = rx.recv() {
                    job();
                }
            })
            .expect("spawn kernel pool worker");
        *spawned += 1;
    }
}

/// Count-down latch: the caller waits until every helper has finished its
/// share of a parallel region, which is what makes the lifetime erasure in
/// [`parallel_chunks_mut`] sound.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Self {
            remaining: Mutex::new(count),
            done: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut remaining = self.remaining.lock().expect("latch lock");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("latch lock");
        while *remaining > 0 {
            remaining = self.done.wait(remaining).expect("latch wait");
        }
    }
}

/// A `&(dyn Fn..)` with its lifetime erased so helper jobs can be
/// `'static`. Soundness: [`parallel_chunks_mut`] does not return (or
/// unwind) past the helpers — the latch guard below blocks until every
/// helper is done — so the borrow outlives all uses.
#[derive(Clone, Copy)]
struct ErasedBody {
    ptr: *const (dyn Fn(usize, &mut [f32]) + Sync),
}
unsafe impl Send for ErasedBody {}
unsafe impl Sync for ErasedBody {}

/// Raw base pointer of the output buffer, erased for the same reason.
#[derive(Clone, Copy)]
struct ErasedOut {
    ptr: *mut f32,
    len: usize,
}
unsafe impl Send for ErasedOut {}
unsafe impl Sync for ErasedOut {}

struct Region {
    out: ErasedOut,
    body: ErasedBody,
    chunk_len: usize,
    num_chunks: usize,
    next: AtomicUsize,
    panicked: AtomicBool,
    latch: Latch,
}

impl Region {
    /// Claims and runs chunks until none remain. Returns `false` if the
    /// body panicked (the panic itself is swallowed here and re-raised on
    /// the calling thread, so a pool worker never dies).
    fn run(&self) {
        loop {
            let chunk = self.next.fetch_add(1, Ordering::Relaxed);
            if chunk >= self.num_chunks {
                return;
            }
            let start = chunk * self.chunk_len;
            let end = (start + self.chunk_len).min(self.out.len);
            // SAFETY: chunks are disjoint [start, end) ranges of the
            // original &mut [f32], claimed at most once each via the
            // atomic counter, and the caller keeps the borrow alive until
            // the latch opens.
            let slice =
                unsafe { std::slice::from_raw_parts_mut(self.out.ptr.add(start), end - start) };
            let body = unsafe { &*self.body.ptr };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                body(chunk, slice);
            }));
            if outcome.is_err() {
                self.panicked.store(true, Ordering::Relaxed);
                return;
            }
        }
    }
}

/// Waits for the region's helpers even if the caller's own chunk panics,
/// so helper jobs never outlive the borrows they were handed.
struct WaitGuard<'a> {
    region: &'a Region,
}

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        self.region.latch.wait();
    }
}

/// Splits `out` into consecutive chunks of `chunk_len` elements and runs
/// `body(chunk_index, chunk)` over them on up to `threads` threads (the
/// calling thread included). Blocks until every chunk has run.
///
/// Chunk `i` covers `out[i * chunk_len .. (i + 1) * chunk_len]` (the last
/// chunk may be shorter), so a kernel can derive its row range from the
/// chunk index alone. Results are deterministic: which thread runs a
/// chunk never affects what the chunk computes.
///
/// # Panics
///
/// Panics if `chunk_len == 0`, or (re-raised) if `body` panicked on any
/// thread.
pub(crate) fn parallel_chunks_mut(
    out: &mut [f32],
    chunk_len: usize,
    threads: usize,
    body: impl Fn(usize, &mut [f32]) + Sync,
) {
    assert!(chunk_len > 0, "chunk_len must be positive");
    let num_chunks = out.len().div_ceil(chunk_len);
    let threads = threads.clamp(1, num_chunks.max(1));
    if threads <= 1 || num_chunks <= 1 {
        for chunk in 0..num_chunks {
            let start = chunk * chunk_len;
            let end = (start + chunk_len).min(out.len());
            body(chunk, &mut out[start..end]);
        }
        return;
    }

    let helpers = threads - 1;
    ensure_workers(helpers);
    let body_ref: &(dyn Fn(usize, &mut [f32]) + Sync) = &body;
    let region = Arc::new(Region {
        out: ErasedOut {
            ptr: out.as_mut_ptr(),
            len: out.len(),
        },
        // SAFETY: the WaitGuard below keeps this frame alive until every
        // helper has dropped its Region reference's last use of `body`.
        body: ErasedBody {
            ptr: unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize, &mut [f32]) + Sync),
                    *const (dyn Fn(usize, &mut [f32]) + Sync),
                >(body_ref as *const _)
            },
        },
        chunk_len,
        num_chunks,
        next: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
        latch: Latch::new(helpers),
    });

    {
        let guard = WaitGuard { region: &region };
        for _ in 0..helpers {
            let region = Arc::clone(&region);
            pool()
                .tx
                .send(Box::new(move || {
                    region.run();
                    region.latch.count_down();
                }))
                .expect("kernel pool alive");
        }
        // The caller is a full participant, not just a dispatcher.
        region.run();
        drop(guard); // blocks until every helper is done
    }

    if region.panicked.load(Ordering::Relaxed) {
        panic!("a parallel kernel chunk panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_round_trips_and_clamps() {
        let previous = PARALLELISM.load(Ordering::Relaxed);
        set_parallelism(3);
        assert_eq!(parallelism(), 3);
        set_parallelism(10_000);
        assert_eq!(parallelism(), MAX_WORKERS);
        set_parallelism(0);
        assert!(parallelism() >= 1);
        PARALLELISM.store(previous, Ordering::Relaxed);
    }

    #[test]
    fn chunks_cover_the_buffer_exactly_once() {
        for threads in [1, 2, 4] {
            let mut data = vec![0.0_f32; 1003];
            parallel_chunks_mut(&mut data, 64, threads, |chunk, slice| {
                for (i, x) in slice.iter_mut().enumerate() {
                    *x += (chunk * 64 + i) as f32;
                }
            });
            for (i, x) in data.iter().enumerate() {
                assert_eq!(*x, i as f32, "element {i} with {threads} threads");
            }
        }
    }

    #[test]
    fn results_do_not_depend_on_thread_count() {
        let run = |threads: usize| {
            let mut data = vec![1.0_f32; 777];
            parallel_chunks_mut(&mut data, 50, threads, |chunk, slice| {
                for x in slice.iter_mut() {
                    *x += (chunk as f32).sin();
                }
            });
            data
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(4));
    }

    #[test]
    fn short_buffer_runs_inline() {
        let mut data = vec![0.0_f32; 5];
        parallel_chunks_mut(&mut data, 64, 8, |chunk, slice| {
            assert_eq!(chunk, 0);
            slice.fill(2.0);
        });
        assert_eq!(data, vec![2.0; 5]);
    }

    #[test]
    fn body_panic_is_reraised_without_killing_workers() {
        let attempt = std::panic::catch_unwind(|| {
            let mut data = vec![0.0_f32; 512];
            parallel_chunks_mut(&mut data, 8, 4, |chunk, _slice| {
                if chunk == 3 {
                    panic!("boom");
                }
            });
        });
        assert!(attempt.is_err(), "panic must propagate to the caller");
        // The pool still works afterwards.
        let mut data = vec![0.0_f32; 512];
        parallel_chunks_mut(&mut data, 8, 4, |_chunk, slice| slice.fill(1.0));
        assert_eq!(data.iter().sum::<f32>(), 512.0);
    }
}
