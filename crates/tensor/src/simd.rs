//! Explicit-SIMD f32 GEMM tier: AVX2/FMA 4×16 micro-kernel with runtime
//! CPU-feature detection, a portable fused twin, and a forced-path
//! override.
//!
//! # Kernel tiers and dispatch order
//!
//! `gemm_rrr` (the funnel every matmul/t_matmul/matmul_t call drains
//! into) resolves one of three paths per call:
//!
//! 1. **`SimdAvx2`** — packed, cache-blocked 4×16 micro-kernel built on
//!    `_mm256_fmadd_ps`. Chosen automatically when the host reports
//!    `avx2` **and** `fma`.
//! 2. **`PortableFused`** — a scalar twin of the AVX2 kernel using
//!    `f32::mul_add` in the *identical per-element accumulation order*.
//!    Chosen when SIMD is requested but the host lacks AVX2/FMA, or
//!    forced for parity testing.
//! 3. **`ScalarLegacy`** — the pre-existing blocked mul-then-add kernel
//!    in [`crate::kernels`], still bitwise-equal to the naive
//!    `*_reference` implementations. Forced via `EUGENE_SIMD=0` /
//!    [`set_simd_mode`]`(SimdMode::ForceScalar)`.
//!
//! # Parity contract
//!
//! FMA rounds once per multiply-add where the legacy kernel rounds
//! twice, so the SIMD tier **cannot** be bitwise-equal to the scalar
//! tier. The contract is instead:
//!
//! - `SimdAvx2` == `PortableFused` **bitwise**, for every shape: both
//!   compute each output element as a fold of single-rounded
//!   `mul_add`s in ascending-k order. This is what
//!   `kernel_properties` asserts when it forces each path in turn.
//! - `ScalarLegacy` stays bitwise-equal to `matmul_reference` (the
//!   pre-existing contract, unchanged).
//! - Both tiers stay within a small relative error of the reference,
//!   and both preserve the *row-independence invariant*: an output row
//!   depends only on its own lhs row, never on batch shape, so the
//!   serving runtime's fused micro-batches scatter bitwise-identical
//!   rows. Every path here — including the small-matrix path and edge
//!   tiles — accumulates in strictly ascending k order with one
//!   rounding per step to keep that guarantee.
//!
//! # Forcing a path
//!
//! Set the `EUGENE_SIMD` environment variable before first use
//! (`0`/`off`/`scalar`, `1`/`on`/`simd`/`avx2`, `portable`/`fused`,
//! `auto`), or call [`set_simd_mode`] at runtime (takes precedence over
//! the environment; mirrors `set_parallelism`).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::alloc::{is_panel_aligned, AlignedVec};

/// Requested kernel-path policy (the user-facing override knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdMode {
    /// Pick the fastest correct path for the host (default).
    Auto,
    /// Force the legacy blocked scalar kernel (reference-bitwise tier).
    ForceScalar,
    /// Force the SIMD tier (AVX2 when available, portable twin else).
    ForceSimd,
    /// Force the portable fused twin — the bitwise oracle for the AVX2
    /// kernel, useful only for parity testing.
    ForcePortable,
}

/// The concrete f32 path a `gemm_rrr` call will take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ResolvedPath {
    ScalarLegacy,
    /// 8×32 AVX-512F micro-kernel (same per-element fold as AVX2).
    SimdAvx512,
    SimdAvx2,
    PortableFused,
}

const MODE_UNSET: u8 = u8::MAX;
static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

fn mode_to_u8(mode: SimdMode) -> u8 {
    match mode {
        SimdMode::Auto => 0,
        SimdMode::ForceScalar => 1,
        SimdMode::ForceSimd => 2,
        SimdMode::ForcePortable => 3,
    }
}

fn mode_from_u8(raw: u8) -> SimdMode {
    match raw {
        1 => SimdMode::ForceScalar,
        2 => SimdMode::ForceSimd,
        3 => SimdMode::ForcePortable,
        _ => SimdMode::Auto,
    }
}

fn env_default() -> SimdMode {
    static ENV: OnceLock<SimdMode> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("EUGENE_SIMD") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "0" | "off" | "false" | "scalar" | "none" => SimdMode::ForceScalar,
            "1" | "on" | "true" | "simd" | "avx2" | "force" => SimdMode::ForceSimd,
            "portable" | "fused" => SimdMode::ForcePortable,
            _ => SimdMode::Auto,
        },
        Err(_) => SimdMode::Auto,
    })
}

/// Overrides kernel-path selection for this process, taking precedence
/// over the `EUGENE_SIMD` environment variable. Thread-safe; affects
/// subsequent matmuls on every thread.
pub fn set_simd_mode(mode: SimdMode) {
    MODE.store(mode_to_u8(mode), Ordering::Relaxed);
}

/// The currently requested kernel-path policy ([`SimdMode::Auto`] unless
/// overridden by `EUGENE_SIMD` or [`set_simd_mode`]).
pub fn simd_mode() -> SimdMode {
    match MODE.load(Ordering::Relaxed) {
        MODE_UNSET => env_default(),
        raw => mode_from_u8(raw),
    }
}

/// Whether the host supports the AVX2+FMA micro-kernel.
pub fn avx2_fma_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVAIL: OnceLock<bool> = OnceLock::new();
        *AVAIL.get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the host supports the 512-bit micro-kernel.
pub fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVAIL: OnceLock<bool> = OnceLock::new();
        // Requires the AVX2+FMA tier too: the small-matrix path of the
        // wide tier reuses the AVX2 fused function.
        *AVAIL.get_or_init(|| is_x86_feature_detected!("avx512f") && avx2_fma_available())
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn resolve(mode: SimdMode, avx512: bool, avx2_fma: bool) -> ResolvedPath {
    match mode {
        SimdMode::ForceScalar => ResolvedPath::ScalarLegacy,
        SimdMode::ForcePortable => ResolvedPath::PortableFused,
        SimdMode::ForceSimd => {
            if avx512 {
                ResolvedPath::SimdAvx512
            } else if avx2_fma {
                ResolvedPath::SimdAvx2
            } else {
                ResolvedPath::PortableFused
            }
        }
        SimdMode::Auto => {
            if avx512 {
                ResolvedPath::SimdAvx512
            } else if avx2_fma {
                ResolvedPath::SimdAvx2
            } else {
                ResolvedPath::ScalarLegacy
            }
        }
    }
}

pub(crate) fn resolved_path() -> ResolvedPath {
    resolve(simd_mode(), avx512_available(), avx2_fma_available())
}

/// Whether matmuls currently run on the fused SIMD tier (vector kernel
/// or its portable twin) rather than the legacy scalar kernel.
pub fn simd_active() -> bool {
    resolved_path() != ResolvedPath::ScalarLegacy
}

/// Short name of the ISA tier the f32 GEMM currently resolves to —
/// recorded in benchmark result JSON so curves are comparable across
/// hosts.
pub fn isa_tier() -> &'static str {
    match resolved_path() {
        ResolvedPath::ScalarLegacy => "scalar",
        ResolvedPath::SimdAvx512 => "avx512f",
        ResolvedPath::SimdAvx2 => "avx2_fma",
        ResolvedPath::PortableFused => "portable_fused",
    }
}

/// Runtime-detected CPU features relevant to the kernel tiers, for
/// benchmark metadata ([`cpu_features`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuFeatures {
    pub avx2: bool,
    pub fma: bool,
    pub avx512f: bool,
    pub avx512vl: bool,
    pub avx512vnni: bool,
    pub avxvnni: bool,
}

impl CpuFeatures {
    /// The detected features as `(name, present)` pairs, in a stable
    /// order, for serialization into results JSON.
    pub fn entries(&self) -> [(&'static str, bool); 6] {
        [
            ("avx2", self.avx2),
            ("fma", self.fma),
            ("avx512f", self.avx512f),
            ("avx512vl", self.avx512vl),
            ("avx512vnni", self.avx512vnni),
            ("avxvnni", self.avxvnni),
        ]
    }
}

/// Detects the kernel-relevant CPU features via
/// `is_x86_feature_detected!` (all-false off x86_64).
pub fn cpu_features() -> CpuFeatures {
    #[cfg(target_arch = "x86_64")]
    {
        CpuFeatures {
            avx2: is_x86_feature_detected!("avx2"),
            fma: is_x86_feature_detected!("fma"),
            avx512f: is_x86_feature_detected!("avx512f"),
            avx512vl: is_x86_feature_detected!("avx512vl"),
            avx512vnni: is_x86_feature_detected!("avx512vnni"),
            avxvnni: is_x86_feature_detected!("avxvnni"),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        CpuFeatures::default()
    }
}

// ---------------------------------------------------------------------
// Fused f32 GEMM (the SIMD tier's two implementations).
// ---------------------------------------------------------------------

/// k-blocking depth: one packed B block spans `KC × n` and A quads span
/// `KC × MR`, sized to stay cache-resident (matches the scalar tier).
const KC: usize = 256;
/// AVX2 micro-kernel row count.
const MR: usize = 4;
/// AVX2 micro-kernel column count (two 8-lane vectors).
const NR: usize = 16;
/// AVX-512 micro-kernel row count.
const MR_W: usize = 8;
/// AVX-512 micro-kernel column count (two 16-lane vectors).
const NR_W: usize = 32;

/// Which fused f32 implementation executes (Portable is the scalar
/// `mul_add` twin; both vector ISAs compute the identical per-element
/// fold, so all three are bitwise-interchangeable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FusedIsa {
    Portable,
    Avx2,
    Avx512,
}

/// Elementwise tail folded into the GEMM: `out = relu(out + bias)`,
/// applied to each output element exactly once, after its accumulation
/// completes (the last k block for the blocked kernels).
///
/// The ops are the same scalar sequence as the separate layer-walk
/// passes — `add_row_broadcast` (`*dst += src`) then `f32::max(x, 0.0)`
/// — in the same order, so a fused dispatch stays **bitwise** equal to
/// the unfused one on every tier. Deliberately no vector-intrinsic
/// variant: `_mm256_max_ps` has operand-order semantics for ±0.0/NaN
/// that `f32::max` does not share.
#[derive(Clone, Copy, Default)]
pub(crate) struct Epilogue<'a> {
    /// Per-column bias (length n), added before the activation.
    pub bias: Option<&'a [f32]>,
    /// Whether to clamp at zero after the bias add.
    pub relu: bool,
}

impl Epilogue<'_> {
    pub(crate) fn is_noop(&self) -> bool {
        self.bias.is_none() && !self.relu
    }

    /// Applies the tail to rows `r0..r0+nrows`, columns `j0..j0+jw` of
    /// `out`, a slab of rows with stride `n`. Row indices are local to
    /// the slab; column indices are absolute (they index `bias`).
    pub(crate) fn apply(
        &self,
        out: &mut [f32],
        n: usize,
        r0: usize,
        nrows: usize,
        j0: usize,
        jw: usize,
    ) {
        if self.is_noop() {
            return;
        }
        for r in r0..r0 + nrows {
            let row = &mut out[r * n + j0..r * n + j0 + jw];
            match self.bias {
                Some(bias) => {
                    let b = &bias[j0..j0 + jw];
                    if self.relu {
                        for (o, &bj) in row.iter_mut().zip(b) {
                            *o = (*o + bj).max(0.0);
                        }
                    } else {
                        for (o, &bj) in row.iter_mut().zip(b) {
                            *o += bj;
                        }
                    }
                }
                None => {
                    for o in row.iter_mut() {
                        *o = o.max(0.0);
                    }
                }
            }
        }
    }
}

/// Pre-packed f32 GEMM weights: the column panels
/// [`gemm_blocked_fused_rows`] would otherwise rebuild from the
/// row-major weight matrix on **every** dispatch, packed once and
/// reused. Packing is pure layout (columns past `n` zero-padded, like
/// the per-call path), so a prepacked product is bitwise identical to
/// an on-the-fly one.
///
/// The panel geometry depends on the resolved kernel path at pack time
/// (AVX-512 vs AVX2 widths; the scalar/portable tiers use no panels).
/// A consumer whose resolved path no longer matches simply ignores the
/// pack and falls back to per-call packing — same result, original
/// speed — so a mode flip via `EUGENE_SIMD`/[`set_simd_mode`] is safe,
/// never wrong.
pub struct PackedRhs {
    k: usize,
    n: usize,
    /// Panel width the pack was built for; 0 when the resolved path at
    /// pack time keeps no panels (scalar/portable tiers, non-x86 hosts).
    nr: usize,
    wide: bool,
    panels: AlignedVec<f32>,
}

impl PackedRhs {
    /// Packs a row-major `k × n` weight slice for the currently
    /// resolved kernel path.
    pub fn pack(k: usize, n: usize, data: &[f32]) -> Self {
        assert_eq!(data.len(), k * n, "weight slice must be k*n");
        let inert = Self {
            k,
            n,
            nr: 0,
            wide: false,
            panels: AlignedVec::new(),
        };
        if k == 0 || n == 0 {
            return inert;
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            inert
        }
        #[cfg(target_arch = "x86_64")]
        {
            let (wide, nr) = match resolved_path() {
                ResolvedPath::SimdAvx512 => (true, NR_W),
                ResolvedPath::SimdAvx2 => (false, NR),
                ResolvedPath::ScalarLegacy | ResolvedPath::PortableFused => return inert,
            };
            let np = n.div_ceil(nr);
            // One `np * kc * nr` slab per k block, concatenated in
            // ascending-kb order (only the last block is short of KC).
            let mut total = 0;
            let mut kb = 0;
            while kb < k {
                total += np * KC.min(k - kb) * nr;
                kb += KC.min(k - kb);
            }
            let mut panels = AlignedVec::new();
            panels.ensure_len(total);
            let mut kb = 0;
            let mut off = 0;
            while kb < k {
                let kc = KC.min(k - kb);
                let block = np * kc * nr;
                pack_b_fused(
                    &mut panels.as_mut_slice()[off..off + block],
                    data,
                    kb,
                    kc,
                    n,
                    np,
                    nr,
                );
                off += block;
                kb += kc;
            }
            Self {
                k,
                n,
                nr,
                wide,
                panels,
            }
        }
    }

    /// `(k, n)` shape the pack was built from.
    pub fn shape(&self) -> (usize, usize) {
        (self.k, self.n)
    }

    /// Heap bytes held by the packed panels (0 on panel-less tiers).
    pub fn packed_bytes(&self) -> usize {
        self.panels.len() * std::mem::size_of::<f32>()
    }

    /// Whether this pack can feed a blocked kernel of the given width
    /// and shape directly.
    #[cfg(target_arch = "x86_64")]
    fn matches(&self, wide: bool, k: usize, n: usize) -> bool {
        self.nr != 0 && self.wide == wide && self.k == k && self.n == n
    }
}

#[cfg(target_arch = "x86_64")]
struct PackBufs {
    a: AlignedVec<f32>,
    b: AlignedVec<f32>,
}

#[cfg(target_arch = "x86_64")]
thread_local! {
    static PACK_SCRATCH: std::cell::RefCell<PackBufs> = const {
        std::cell::RefCell::new(PackBufs {
            a: AlignedVec::new(),
            b: AlignedVec::new(),
        })
    };
}

/// Fused-tier GEMM: `out[m×n] += lhs[m×k] · rhs[k×n]`, all row-major,
/// with an optional pre-packed `rhs` (`prepacked`, ignored when its
/// geometry doesn't match the dispatch) and an optional fused epilogue
/// (`ep`, applied to every output element exactly once after its
/// accumulation completes). `isa` selects the implementation (caller
/// must have verified feature availability for the vector ISAs). All
/// three produce bitwise-identical results.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_fused(
    m: usize,
    k: usize,
    n: usize,
    lhs: &[f32],
    rhs: &[f32],
    out: &mut [f32],
    isa: FusedIsa,
    small_flops: usize,
    parallel_min_flops: usize,
    prepacked: Option<&PackedRhs>,
    ep: Epilogue<'_>,
) {
    debug_assert_eq!(lhs.len(), m * k);
    debug_assert_eq!(rhs.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // A k==0 product contributes nothing, but the epilogue still
        // applies (the layer-walk would add bias/relu to the zeros).
        ep.apply(out, n, 0, m, 0, n);
        return;
    }
    let flops = m.saturating_mul(k).saturating_mul(n);
    if isa == FusedIsa::Portable {
        // Portable twin: plain fused triple loop. Per-element math is a
        // fold of single-rounded mul_adds in ascending k — identical to
        // the vector kernels' per-lane computation for every shape.
        gemm_small_fused_portable(m, k, n, lhs, rhs, out);
        ep.apply(out, n, 0, m, 0, n);
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (flops, small_flops, parallel_min_flops, prepacked);
        gemm_small_fused_portable(m, k, n, lhs, rhs, out);
        ep.apply(out, n, 0, m, 0, n);
    }
    #[cfg(target_arch = "x86_64")]
    gemm_fused_vector(
        m,
        k,
        n,
        lhs,
        rhs,
        out,
        isa == FusedIsa::Avx512,
        flops,
        small_flops,
        parallel_min_flops,
        prepacked,
        ep,
    );
}

#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn gemm_fused_vector(
    m: usize,
    k: usize,
    n: usize,
    lhs: &[f32],
    rhs: &[f32],
    out: &mut [f32],
    wide: bool,
    flops: usize,
    small_flops: usize,
    parallel_min_flops: usize,
    prepacked: Option<&PackedRhs>,
    ep: Epilogue<'_>,
) {
    // A pack built for another width/shape (e.g. after a mode flip) is
    // ignored, not trusted: the per-call packing path gives the same
    // bits at the original speed.
    let prepacked = prepacked.filter(|p| p.matches(wide, k, n));
    if flops <= small_flops {
        // SAFETY: the caller established AVX2+FMA availability for any
        // vector isa (avx512_available() implies it too).
        unsafe { gemm_small_fused_avx2(m, k, n, lhs, rhs, out) };
        ep.apply(out, n, 0, m, 0, n);
        return;
    }
    let mr = if wide { MR_W } else { MR };
    let threads = crate::pool::parallelism();
    if threads > 1 && flops >= parallel_min_flops && m >= 2 * mr {
        // Same split policy as the scalar tier: a few tile-aligned
        // chunks per thread so a straggler doesn't serialize the tail.
        let chunk_rows = m.div_ceil(threads * 4).max(mr).next_multiple_of(mr);
        crate::pool::parallel_chunks_mut(out, chunk_rows * n, threads, |chunk, out_chunk| {
            let row0 = chunk * chunk_rows;
            let rows = out_chunk.len() / n;
            gemm_blocked_fused_rows(row0, rows, k, n, lhs, rhs, out_chunk, wide, prepacked, ep);
        });
        return;
    }
    gemm_blocked_fused_rows(0, m, k, n, lhs, rhs, out, wide, prepacked, ep);
}

/// Cache-blocked packed vector path over `rows` rows starting at
/// `row0`. `out` holds exactly those rows. Safe wrapper: does all the
/// packing, delegating tiles to the unsafe width-specific kernels.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn gemm_blocked_fused_rows(
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
    lhs: &[f32],
    rhs: &[f32],
    out: &mut [f32],
    wide: bool,
    prepacked: Option<&PackedRhs>,
    ep: Epilogue<'_>,
) {
    if rows == 0 {
        return;
    }
    let (mr, nr) = if wide { (MR_W, NR_W) } else { (MR, NR) };
    let np = n.div_ceil(nr);
    PACK_SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        let PackBufs { a, b } = &mut *scratch;
        let mut kb = 0;
        // Byte-for-byte the same panel layout whether read from the
        // prepack (offset pre_off walks its concatenated k blocks) or
        // rebuilt per call.
        let mut pre_off = 0;
        while kb < k {
            let kc = KC.min(k - kb);
            let last = kb + kc == k;
            let bbase = match prepacked {
                Some(p) => {
                    debug_assert!(pre_off + np * kc * nr <= p.panels.len());
                    // SAFETY: pre_off stays within the pack's panel
                    // buffer (same block walk as pack time).
                    unsafe { p.panels.as_ptr().add(pre_off) }
                }
                None => {
                    b.ensure_len(np * kc * nr);
                    pack_b_fused(b.as_mut_slice(), rhs, kb, kc, n, np, nr);
                    b.as_ptr()
                }
            };
            debug_assert!(is_panel_aligned(bbase));
            let mut i = 0;
            while i < rows {
                let tile_rows = mr.min(rows - i);
                a.ensure_len(kc * mr);
                pack_a_fused(a.as_mut_slice(), lhs, k, row0 + i, tile_rows, kb, kc, mr);
                let abase = a.as_ptr();
                debug_assert!(is_panel_aligned(abase));
                for p in 0..np {
                    let j0 = p * nr;
                    let jw = nr.min(n - j0);
                    // SAFETY: panels hold kc*mr and kc*nr packed
                    // elements; tile bounds are checked here; ISA
                    // availability was established by the caller of
                    // gemm_fused.
                    unsafe {
                        let bpanel = bbase.add(p * kc * nr);
                        if tile_rows == mr && jw == nr {
                            let c = out.as_mut_ptr().add(i * n + j0);
                            if wide {
                                micro_kernel_8x32_avx512(abase, kc, bpanel, c, n);
                            } else {
                                micro_kernel_4x16_avx2(abase, kc, bpanel, c, n);
                            }
                        } else if wide {
                            micro_kernel_edge_avx512(
                                abase, kc, bpanel, out, i, j0, tile_rows, jw, n,
                            );
                        } else {
                            micro_kernel_edge_avx2(abase, kc, bpanel, out, i, j0, tile_rows, jw, n);
                        }
                    }
                    // The micro-kernel tail: once this tile's
                    // accumulation is complete (final k block), fold
                    // the elementwise chain in while the tile is still
                    // cache-hot.
                    if last {
                        ep.apply(out, n, i, tile_rows, j0, jw);
                    }
                }
                i += mr;
            }
            if prepacked.is_some() {
                pre_off += np * kc * nr;
            }
            kb += kc;
        }
    });
}

/// Packs `rhs[kb..kb+kc, :]` into `np` column panels of `nr` columns,
/// k-major within each panel: `b[p*kc*nr + kk*nr + j]`. Columns past n
/// are zero-padded (their outputs are discarded — padding columns is
/// bitwise-safe, unlike padding k).
#[cfg(target_arch = "x86_64")]
fn pack_b_fused(b: &mut [f32], rhs: &[f32], kb: usize, kc: usize, n: usize, np: usize, nr: usize) {
    for p in 0..np {
        let j0 = p * nr;
        let jw = nr.min(n - j0);
        let panel = &mut b[p * kc * nr..(p + 1) * kc * nr];
        for kk in 0..kc {
            let src = &rhs[(kb + kk) * n + j0..(kb + kk) * n + j0 + jw];
            let dst = &mut panel[kk * nr..kk * nr + nr];
            dst[..jw].copy_from_slice(src);
            dst[jw..].fill(0.0);
        }
    }
}

/// Packs `tile_rows` rows of `lhs` (starting at `row`) over `kb..kb+kc`
/// into k-major layout `a[kk*mr + r]`. Rows past `tile_rows` are
/// zero-padded; their outputs land in discarded tile lanes.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn pack_a_fused(
    a: &mut [f32],
    lhs: &[f32],
    k: usize,
    row: usize,
    tile_rows: usize,
    kb: usize,
    kc: usize,
    mr: usize,
) {
    for kk in 0..kc {
        let dst = &mut a[kk * mr..kk * mr + mr];
        for (r, slot) in dst.iter_mut().enumerate() {
            *slot = if r < tile_rows {
                lhs[(row + r) * k + kb + kk]
            } else {
                0.0
            };
        }
    }
}

/// The 8×32 AVX-512F micro-kernel: `c[8×32] += apanel[kc×8] ·
/// bpanel[kc×32]` with `c` rows `stride` elements apart. Sixteen
/// independent zmm accumulator chains; each output lane sees exactly
/// one `vfmadd` per k step in ascending order — the same per-element
/// fold as the AVX2 kernel and the portable twin.
///
/// # Safety
///
/// Caller must ensure AVX-512F is available, `apanel`/`bpanel` hold
/// `kc*8` / `kc*32` elements (64-byte aligned), and `c` is valid for 8
/// rows of 32 f32 at `stride`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn micro_kernel_8x32_avx512(
    apanel: *const f32,
    kc: usize,
    bpanel: *const f32,
    c: *mut f32,
    stride: usize,
) {
    use std::arch::x86_64::*;
    debug_assert!(is_panel_aligned(apanel));
    debug_assert!(is_panel_aligned(bpanel));
    let mut acc: [[__m512; 2]; MR_W] = [[_mm512_setzero_ps(); 2]; MR_W];
    for (r, row_acc) in acc.iter_mut().enumerate() {
        row_acc[0] = _mm512_loadu_ps(c.add(r * stride));
        row_acc[1] = _mm512_loadu_ps(c.add(r * stride + 16));
    }
    for kk in 0..kc {
        let b0 = _mm512_load_ps(bpanel.add(kk * NR_W));
        let b1 = _mm512_load_ps(bpanel.add(kk * NR_W + 16));
        for (r, row_acc) in acc.iter_mut().enumerate() {
            let a = _mm512_set1_ps(*apanel.add(kk * MR_W + r));
            row_acc[0] = _mm512_fmadd_ps(a, b0, row_acc[0]);
            row_acc[1] = _mm512_fmadd_ps(a, b1, row_acc[1]);
        }
    }
    for (r, row_acc) in acc.iter().enumerate() {
        _mm512_storeu_ps(c.add(r * stride), row_acc[0]);
        _mm512_storeu_ps(c.add(r * stride + 16), row_acc[1]);
    }
}

/// Edge-tile wrapper for the AVX-512 kernel: stages the valid
/// `tile_rows × jw` C region into an aligned 8×32 temp, runs the full
/// kernel, and copies the valid region back (padding lanes are computed
/// and discarded).
///
/// # Safety
///
/// Same panel requirements as [`micro_kernel_8x32_avx512`]; `out` must
/// hold rows `i..i+tile_rows` with row stride `n` and `j0 + jw <= n`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn micro_kernel_edge_avx512(
    apanel: *const f32,
    kc: usize,
    bpanel: *const f32,
    out: &mut [f32],
    i: usize,
    j0: usize,
    tile_rows: usize,
    jw: usize,
    n: usize,
) {
    #[repr(align(64))]
    struct Tile([f32; MR_W * NR_W]);
    let mut tile = Tile([0.0; MR_W * NR_W]);
    for r in 0..tile_rows {
        let row = &out[(i + r) * n + j0..(i + r) * n + j0 + jw];
        tile.0[r * NR_W..r * NR_W + jw].copy_from_slice(row);
    }
    micro_kernel_8x32_avx512(apanel, kc, bpanel, tile.0.as_mut_ptr(), NR_W);
    for r in 0..tile_rows {
        let row = &mut out[(i + r) * n + j0..(i + r) * n + j0 + jw];
        row.copy_from_slice(&tile.0[r * NR_W..r * NR_W + jw]);
    }
}

/// The 4×16 AVX2/FMA micro-kernel: `c[4×16] += apanel[kc×4] ·
/// bpanel[kc×16]` with `c` rows `stride` elements apart. Eight
/// independent accumulator chains (4 rows × 2 vectors) hide the FMA
/// latency; each output lane sees exactly one `vfmaddps` per k step in
/// ascending order.
///
/// # Safety
///
/// Caller must ensure AVX2+FMA are available, `apanel`/`bpanel` hold
/// `kc*4` / `kc*16` elements (32-byte aligned), and `c` is valid for 4
/// rows of 16 f32 at `stride`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn micro_kernel_4x16_avx2(
    apanel: *const f32,
    kc: usize,
    bpanel: *const f32,
    c: *mut f32,
    stride: usize,
) {
    use std::arch::x86_64::*;
    debug_assert!(is_panel_aligned(apanel));
    debug_assert!(is_panel_aligned(bpanel));
    let mut acc00 = _mm256_loadu_ps(c);
    let mut acc01 = _mm256_loadu_ps(c.add(8));
    let mut acc10 = _mm256_loadu_ps(c.add(stride));
    let mut acc11 = _mm256_loadu_ps(c.add(stride + 8));
    let mut acc20 = _mm256_loadu_ps(c.add(2 * stride));
    let mut acc21 = _mm256_loadu_ps(c.add(2 * stride + 8));
    let mut acc30 = _mm256_loadu_ps(c.add(3 * stride));
    let mut acc31 = _mm256_loadu_ps(c.add(3 * stride + 8));
    for kk in 0..kc {
        let b0 = _mm256_load_ps(bpanel.add(kk * NR));
        let b1 = _mm256_load_ps(bpanel.add(kk * NR + 8));
        let a0 = _mm256_set1_ps(*apanel.add(kk * MR));
        let a1 = _mm256_set1_ps(*apanel.add(kk * MR + 1));
        let a2 = _mm256_set1_ps(*apanel.add(kk * MR + 2));
        let a3 = _mm256_set1_ps(*apanel.add(kk * MR + 3));
        acc00 = _mm256_fmadd_ps(a0, b0, acc00);
        acc01 = _mm256_fmadd_ps(a0, b1, acc01);
        acc10 = _mm256_fmadd_ps(a1, b0, acc10);
        acc11 = _mm256_fmadd_ps(a1, b1, acc11);
        acc20 = _mm256_fmadd_ps(a2, b0, acc20);
        acc21 = _mm256_fmadd_ps(a2, b1, acc21);
        acc30 = _mm256_fmadd_ps(a3, b0, acc30);
        acc31 = _mm256_fmadd_ps(a3, b1, acc31);
    }
    _mm256_storeu_ps(c, acc00);
    _mm256_storeu_ps(c.add(8), acc01);
    _mm256_storeu_ps(c.add(stride), acc10);
    _mm256_storeu_ps(c.add(stride + 8), acc11);
    _mm256_storeu_ps(c.add(2 * stride), acc20);
    _mm256_storeu_ps(c.add(2 * stride + 8), acc21);
    _mm256_storeu_ps(c.add(3 * stride), acc30);
    _mm256_storeu_ps(c.add(3 * stride + 8), acc31);
}

/// Edge-tile wrapper: stages the valid `quad × jw` C region into an
/// aligned 4×16 temp (padding lanes zeroed — their values are computed
/// and discarded), runs the full micro-kernel, and copies the valid
/// region back. Valid lanes see the exact same instruction sequence as
/// interior tiles, so edges stay bitwise-consistent.
///
/// # Safety
///
/// Same panel requirements as [`micro_kernel_4x16_avx2`]; `out` must
/// hold rows `i..i+quad` with row stride `n` and `j0 + jw <= n`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn micro_kernel_edge_avx2(
    apanel: *const f32,
    kc: usize,
    bpanel: *const f32,
    out: &mut [f32],
    i: usize,
    j0: usize,
    quad: usize,
    jw: usize,
    n: usize,
) {
    #[repr(align(64))]
    struct Tile([f32; MR * NR]);
    let mut tile = Tile([0.0; MR * NR]);
    for r in 0..quad {
        let row = &out[(i + r) * n + j0..(i + r) * n + j0 + jw];
        tile.0[r * NR..r * NR + jw].copy_from_slice(row);
    }
    micro_kernel_4x16_avx2(apanel, kc, bpanel, tile.0.as_mut_ptr(), NR);
    for r in 0..quad {
        let row = &mut out[(i + r) * n + j0..(i + r) * n + j0 + jw];
        row.copy_from_slice(&tile.0[r * NR..r * NR + jw]);
    }
}

/// Small-matrix fused path, AVX2+FMA codegen: the i-k-j loop with
/// `mul_add`, which LLVM vectorizes to `vfmaddps` under the target
/// features. Per-element semantics are identical to the portable twin
/// and the packed kernel: one fused round per k step, ascending k.
///
/// # Safety
///
/// Caller must ensure AVX2+FMA are available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gemm_small_fused_avx2(
    m: usize,
    k: usize,
    n: usize,
    lhs: &[f32],
    rhs: &[f32],
    out: &mut [f32],
) {
    gemm_small_fused_body(m, k, n, lhs, rhs, out);
}

/// Portable fused twin — the bitwise oracle for the whole SIMD tier.
pub(crate) fn gemm_small_fused_portable(
    m: usize,
    k: usize,
    n: usize,
    lhs: &[f32],
    rhs: &[f32],
    out: &mut [f32],
) {
    gemm_small_fused_body(m, k, n, lhs, rhs, out);
}

#[inline(always)]
fn gemm_small_fused_body(m: usize, k: usize, n: usize, lhs: &[f32], rhs: &[f32], out: &mut [f32]) {
    for i in 0..m {
        let lrow = &lhs[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &a) in lrow.iter().enumerate() {
            let brow = &rhs[kk * n..(kk + 1) * n];
            for (o, &b) in orow.iter_mut().zip(brow) {
                *o = a.mul_add(b, *o);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_fused(m: usize, k: usize, n: usize, lhs: &[f32], rhs: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc = lhs[i * k + kk].mul_add(rhs[kk * n + j], acc);
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn vector_paths_match_portable_twin_bitwise() {
        let mut isas = Vec::new();
        if avx2_fma_available() {
            isas.push(FusedIsa::Avx2);
        }
        if avx512_available() {
            isas.push(FusedIsa::Avx512);
        }
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (4, 256, 16),
            (5, 257, 17),
            (3, 300, 33),
            (8, 512, 19),
            (37, 301, 29),
            (12, 64, 16),
            (9, 280, 37),
            (16, 512, 64),
        ] {
            let lhs = fill(m as u64 * 31 + k as u64, m * k);
            let rhs = fill(n as u64 * 17 + 7, k * n);
            let mut portable = vec![0.0f32; m * n];
            gemm_fused(
                m,
                k,
                n,
                &lhs,
                &rhs,
                &mut portable,
                FusedIsa::Portable,
                0,
                usize::MAX,
                None,
                Epilogue::default(),
            );
            for &isa in &isas {
                let mut simd = vec![0.0f32; m * n];
                gemm_fused(
                    m,
                    k,
                    n,
                    &lhs,
                    &rhs,
                    &mut simd,
                    isa,
                    0,
                    usize::MAX,
                    None,
                    Epilogue::default(),
                );
                for (idx, (a, b)) in simd.iter().zip(&portable).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{isa:?} ({m}x{k}x{n}) idx {idx}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_tier_matches_naive_fused_bitwise() {
        // The packed/blocked kernel preserves per-element ascending-k
        // single-rounded accumulation, so it equals the naive fused
        // triple loop bitwise — k-blocking must not reorder anything.
        for &(m, k, n) in &[(6usize, 520usize, 35usize), (4, 256, 16), (2, 513, 40)] {
            let lhs = fill(99 + m as u64, m * k);
            let rhs = fill(7 + n as u64, k * n);
            let expect = naive_fused(m, k, n, &lhs, &rhs);
            let isa = if avx512_available() {
                FusedIsa::Avx512
            } else if avx2_fma_available() {
                FusedIsa::Avx2
            } else {
                FusedIsa::Portable
            };
            let mut got = vec![0.0f32; m * n];
            gemm_fused(
                m,
                k,
                n,
                &lhs,
                &rhs,
                &mut got,
                isa,
                0,
                usize::MAX,
                None,
                Epilogue::default(),
            );
            for (idx, (a, b)) in got.iter().zip(&expect).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "({m}x{k}x{n}) idx {idx}");
            }
        }
    }

    fn host_isa() -> FusedIsa {
        if avx512_available() {
            FusedIsa::Avx512
        } else if avx2_fma_available() {
            FusedIsa::Avx2
        } else {
            FusedIsa::Portable
        }
    }

    #[test]
    fn epilogue_matches_separate_passes_bitwise() {
        // Fusing bias+relu into the kernel tail must equal "gemm, then
        // add_row_broadcast, then max(0.0)" element for element — the
        // layer-walk contract the stage compiler relies on.
        let isa = host_isa();
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (8, 512, 512), // forces the blocked path
            (5, 300, 37),  // edge tiles in both dimensions
            (2, 16, 9),    // small path
        ] {
            let lhs = fill(3 + m as u64, m * k);
            let rhs = fill(5 + n as u64, k * n);
            let bias = fill(11 + n as u64, n);
            let mut unfused = vec![0.0f32; m * n];
            gemm_fused(
                m,
                k,
                n,
                &lhs,
                &rhs,
                &mut unfused,
                isa,
                0,
                usize::MAX,
                None,
                Epilogue::default(),
            );
            for row in unfused.chunks_exact_mut(n) {
                for (o, &b) in row.iter_mut().zip(&bias) {
                    *o += b;
                }
                for o in row.iter_mut() {
                    *o = o.max(0.0);
                }
            }
            let mut fused = vec![0.0f32; m * n];
            gemm_fused(
                m,
                k,
                n,
                &lhs,
                &rhs,
                &mut fused,
                isa,
                0,
                usize::MAX,
                None,
                Epilogue {
                    bias: Some(&bias),
                    relu: true,
                },
            );
            for (idx, (a, b)) in fused.iter().zip(&unfused).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "({m}x{k}x{n}) idx {idx}");
            }
        }
    }

    #[test]
    fn prepacked_rhs_matches_on_the_fly_packing_bitwise() {
        let isa = host_isa();
        for &(m, k, n) in &[(8usize, 512usize, 512usize), (6, 520, 35), (3, 257, 48)] {
            let lhs = fill(21 + m as u64, m * k);
            let rhs = fill(23 + n as u64, k * n);
            let pack = PackedRhs::pack(k, n, &rhs);
            assert_eq!(pack.shape(), (k, n));
            let mut plain = vec![0.0f32; m * n];
            gemm_fused(
                m,
                k,
                n,
                &lhs,
                &rhs,
                &mut plain,
                isa,
                0,
                usize::MAX,
                None,
                Epilogue::default(),
            );
            let mut pre = vec![0.0f32; m * n];
            gemm_fused(
                m,
                k,
                n,
                &lhs,
                &rhs,
                &mut pre,
                isa,
                0,
                usize::MAX,
                Some(&pack),
                Epilogue::default(),
            );
            for (idx, (a, b)) in pre.iter().zip(&plain).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "({m}x{k}x{n}) idx {idx}");
            }
        }
    }

    #[test]
    fn epilogue_applies_even_when_k_is_zero() {
        // A degenerate k==0 product is all zeros, but the layer-walk
        // would still add bias and clamp — so must the fused path.
        let bias = [1.5f32, -2.0, 0.25];
        let mut out = vec![0.0f32; 2 * 3];
        gemm_fused(
            2,
            0,
            3,
            &[],
            &[],
            &mut out,
            host_isa(),
            0,
            usize::MAX,
            None,
            Epilogue {
                bias: Some(&bias),
                relu: true,
            },
        );
        assert_eq!(out, vec![1.5, 0.0, 0.25, 1.5, 0.0, 0.25]);
    }

    #[test]
    fn mode_resolution_is_pure() {
        // The global override is exercised (serially) by the
        // kernel_properties integration suite; here we only check the
        // pure resolution table so unit tests never flip process state.
        use ResolvedPath::*;
        assert_eq!(resolve(SimdMode::ForceScalar, true, true), ScalarLegacy);
        assert_eq!(resolve(SimdMode::ForceScalar, false, false), ScalarLegacy);
        assert_eq!(resolve(SimdMode::ForceSimd, true, true), SimdAvx512);
        assert_eq!(resolve(SimdMode::ForceSimd, false, true), SimdAvx2);
        assert_eq!(resolve(SimdMode::ForceSimd, false, false), PortableFused);
        assert_eq!(resolve(SimdMode::ForcePortable, true, true), PortableFused);
        assert_eq!(resolve(SimdMode::Auto, true, true), SimdAvx512);
        assert_eq!(resolve(SimdMode::Auto, false, true), SimdAvx2);
        assert_eq!(resolve(SimdMode::Auto, false, false), ScalarLegacy);
    }

    #[test]
    fn feature_report_is_consistent() {
        let feats = cpu_features();
        assert_eq!(avx2_fma_available(), feats.avx2 && feats.fma);
        let entries = feats.entries();
        assert_eq!(entries[0].0, "avx2");
        assert_eq!(entries.len(), 6);
    }
}
