use std::error::Error;
use std::fmt;

/// Error returned when matrix dimensions do not satisfy an operation's
/// requirements.
///
/// # Examples
///
/// ```
/// use eugene_tensor::Matrix;
///
/// let err = Matrix::try_from_vec(2, 3, vec![0.0; 5]).unwrap_err();
/// assert!(err.to_string().contains("2x3"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    op: &'static str,
    expected: String,
    actual: String,
}

impl ShapeError {
    pub(crate) fn new(
        op: &'static str,
        expected: impl Into<String>,
        actual: impl Into<String>,
    ) -> Self {
        Self {
            op,
            expected: expected.into(),
            actual: actual.into(),
        }
    }

    /// The operation that rejected the shapes (e.g. `"matmul"`).
    pub fn op(&self) -> &str {
        self.op
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape mismatch in {}: expected {}, got {}",
            self.op, self.expected, self.actual
        )
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_operation_and_shapes() {
        let err = ShapeError::new("matmul", "2x3", "4x5");
        let text = err.to_string();
        assert!(text.contains("matmul"));
        assert!(text.contains("2x3"));
        assert!(text.contains("4x5"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShapeError>();
    }
}
