//! Dense matrix and vector math substrate for the Eugene reproduction.
//!
//! Eugene's staged neural networks, Gaussian-process regressors, and model
//! compression all operate on small dense matrices. This crate provides a
//! deliberately compact, dependency-light implementation of exactly the
//! linear algebra those subsystems need: a row-major [`Matrix`] with
//! matrix/vector products, element-wise maps, reductions, and the
//! probability helpers (softmax, entropy, argmax) used throughout the
//! confidence-calibration pipeline.
//!
//! # Examples
//!
//! ```
//! use eugene_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

mod alloc;
mod error;
mod kernels;
mod matrix;
mod pool;
mod precision;
mod quant;
mod rng;
mod simd;
mod stats;

pub use alloc::{is_panel_aligned, AlignedVec, PANEL_ALIGN};
pub use error::ShapeError;
pub use matrix::Matrix;
pub use pool::{parallelism, set_parallelism};
pub use precision::Precision;
pub use quant::{
    qgemm, quant_tier_name, quantize_symmetric, row_scales, symmetric_scale, QuantizedRhs,
};
pub use rng::{seeded_rng, standard_normal, xavier_uniform};
pub use simd::{
    avx2_fma_available, avx512_available, cpu_features, isa_tier, set_simd_mode, simd_active,
    simd_mode, CpuFeatures, PackedRhs, SimdMode,
};
pub use stats::{argmax, entropy, log_softmax, mean, softmax, softmax_in_place, std_dev, variance};
