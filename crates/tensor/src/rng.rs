use crate::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic random-number generator from a seed.
///
/// Every experiment in the reproduction is seeded so that tables and
/// figures regenerate byte-for-byte.
///
/// # Examples
///
/// ```
/// use eugene_tensor::seeded_rng;
/// use rand::Rng;
///
/// let mut a = seeded_rng(7);
/// let mut b = seeded_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws one standard-normal sample using the Box-Muller transform.
///
/// `rand` 0.8 without `rand_distr` has no normal distribution; Box-Muller
/// over two uniforms is exact and adequate for weight initialization and
/// synthetic data generation.
pub fn standard_normal(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Initializes a `rows x cols` weight matrix with Xavier/Glorot uniform
/// scaling, the initialization used for all networks in the reproduction.
///
/// # Examples
///
/// ```
/// use eugene_tensor::{seeded_rng, xavier_uniform};
///
/// let w = xavier_uniform(4, 8, &mut seeded_rng(0));
/// assert_eq!(w.shape(), (4, 8));
/// let limit = (6.0_f32 / 12.0).sqrt();
/// assert!(w.max_abs() <= limit);
/// ```
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-limit..=limit))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a: Vec<u32> = {
            let mut rng = seeded_rng(42);
            (0..8).map(|_| rng.gen()).collect()
        };
        let b: Vec<u32> = {
            let mut rng = seeded_rng(42);
            (0..8).map(|_| rng.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let xs: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn standard_normal_has_reasonable_moments() {
        let mut rng = seeded_rng(3);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn xavier_respects_limit_and_is_not_constant() {
        let mut rng = seeded_rng(9);
        let w = xavier_uniform(16, 16, &mut rng);
        let limit = (6.0_f32 / 32.0).sqrt();
        assert!(w.max_abs() <= limit + 1e-6);
        let first = w.as_slice()[0];
        assert!(w.as_slice().iter().any(|&x| x != first));
    }
}
