//! Quantized i8×i8→i32 GEMM tier.
//!
//! # Quantization scheme
//!
//! - **Weights** (the rhs): per-tensor *symmetric* scale, zero-point 0:
//!   `q = round(w / s_B)` clamped to `[-127, 127]`, `s_B =
//!   max|w| / 127`. Quantized **on pack** into [`QuantizedRhs`]: the
//!   packed panels are built once and reused across every k-sweep and
//!   every subsequent matmul against the weight.
//! - **Activations** (the lhs): per-**row** symmetric scale, computed at
//!   matmul time. Per-row (not per-tensor) matters for serving: a row's
//!   scale depends only on that row, so a fused micro-batch row is
//!   bitwise identical to its solo forward no matter which requests
//!   were batched alongside — the same row-independence invariant the
//!   f32 kernels uphold.
//! - **Accumulation** is exact `i32`; the dequant epilogue computes
//!   `out[i][j] += (acc as f32) * (s_A[i] * s_B)`. Because the integer
//!   part is exact and the float epilogue is a fixed two-rounding
//!   expression, **every kernel tier produces bitwise-identical f32
//!   output** — the cross-tier parity the proptests assert.
//!
//! # Kernel tiers (dispatch order)
//!
//! 1. **AVX-512 VNNI** (`vpdpbusd`, full 512-bit zmm, 32-column
//!    panels): activations offset to u8 (`q + 128`); the epilogue
//!    subtracts `128 · colsum(B)` (precomputed at pack time) to undo
//!    the offset exactly.
//! 2. **AVX-VNNI** — the 256-bit variant via `_mm256_dpbusd_avx_epi32`
//!    for hybrid cores without AVX-512.
//! 3. **AVX2 `vpmaddwd`** — both sides widened to i16 at pack time;
//!    `madd` of i16 pairs is exact (no `vpmaddubsw` saturation hazard).
//! 4. **Scalar** — plain i32 loops over the row-major `i8` copy; always
//!    available, used when `EUGENE_SIMD` forces scalar and when a
//!    `QuantizedRhs` packed under one tier is used under another.
//!
//! i32 accumulation is overflow-safe for `k <= 65536`
//! (`k · 255 · 127 < 2^31`), asserted at matmul time.
//!
//! NaN activations quantize to 0 (saturating cast) and non-finite
//! values are ignored when choosing scales — quantization is a lossy
//! tier by contract; the analytic error bound in `kernel_properties`
//! only holds for finite inputs.

use crate::alloc::{is_panel_aligned, AlignedVec};
use crate::kernels::PARALLEL_MIN_FLOPS;
use crate::simd::SimdMode;

/// Columns per packed panel (two 8-lane i32 vectors wide) for the
/// 256-bit kernel tiers.
const NR: usize = 16;
/// Columns per packed panel for the 512-bit VNNI tier (two zmm wide).
const NR_W: usize = 32;
/// Rows per quantized micro-kernel invocation.
const MR: usize = 4;
/// i32 accumulation overflow bound: `k * 255 * 127 < 2^31`.
const MAX_K: usize = 65536;

/// Which quantized kernel implementation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum QuantTier {
    Scalar,
    MaddAvx2,
    VnniAvx,
    Vnni512,
}

fn detect_tier() -> QuantTier {
    match crate::simd::simd_mode() {
        // Forced-scalar and the portable-fused parity mode both pin the
        // quantized path to the scalar kernel (it IS the portable one —
        // all tiers are bitwise-identical anyway).
        SimdMode::ForceScalar | SimdMode::ForcePortable => QuantTier::Scalar,
        SimdMode::Auto | SimdMode::ForceSimd => detect_hw_tier(),
    }
}

fn detect_hw_tier() -> QuantTier {
    #[cfg(target_arch = "x86_64")]
    {
        static TIER: std::sync::OnceLock<QuantTier> = std::sync::OnceLock::new();
        *TIER.get_or_init(|| {
            if is_x86_feature_detected!("avx512vnni") {
                QuantTier::Vnni512
            } else if is_x86_feature_detected!("avxvnni") {
                QuantTier::VnniAvx
            } else if is_x86_feature_detected!("avx2") {
                QuantTier::MaddAvx2
            } else {
                QuantTier::Scalar
            }
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        QuantTier::Scalar
    }
}

/// Short name of the i8-kernel tier currently in effect, for benchmark
/// result metadata.
pub fn quant_tier_name() -> &'static str {
    match detect_tier() {
        QuantTier::Scalar => "scalar_i32",
        QuantTier::MaddAvx2 => "avx2_maddwd",
        QuantTier::VnniAvx => "avx_vnni",
        QuantTier::Vnni512 => "avx512_vnni",
    }
}

/// Symmetric quantization scale for a slice: `max|x| / 127`, with
/// non-finite values ignored and an all-zero (or empty) slice mapping
/// to scale 1.0 so division stays well-defined.
pub fn symmetric_scale(values: &[f32]) -> f32 {
    let max_abs = values.iter().fold(0.0f32, |m, &x| {
        let a = x.abs();
        if a.is_finite() {
            m.max(a)
        } else {
            m
        }
    });
    if max_abs > 0.0 {
        max_abs / 127.0
    } else {
        1.0
    }
}

#[inline]
fn quantize_one(x: f32, scale: f32) -> i8 {
    // `as` casts saturate and map NaN to 0, matching the documented
    // lossy contract; the explicit clamp keeps symmetric range [-127, 127].
    (x / scale).round().clamp(-127.0, 127.0) as i8
}

/// Quantizes a slice symmetrically, returning the i8 values and the
/// scale (helper for `eugene-compress` reports and tests).
pub fn quantize_symmetric(values: &[f32]) -> (Vec<i8>, f32) {
    let scale = symmetric_scale(values);
    (
        values.iter().map(|&x| quantize_one(x, scale)).collect(),
        scale,
    )
}

/// A weight matrix quantized and packed for the i8 GEMM tier.
///
/// Holds the per-tensor scale, a row-major `i8` copy (the scalar
/// fallback and repack source), per-column sums (the u8-offset
/// compensation for the VNNI tiers), and the panel layout for the
/// kernel tier detected at pack time.
///
/// # Examples
///
/// ```
/// use eugene_tensor::{Matrix, QuantizedRhs};
///
/// let w = Matrix::from_vec(2, 3, vec![0.5, -1.0, 0.25, 1.0, 0.0, -0.5]);
/// let q = QuantizedRhs::pack(2, 3, w.as_slice());
/// assert_eq!(q.shape(), (2, 3));
/// let x = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
/// let y = x.matmul_quantized(&q);
/// let exact = x.matmul(&w);
/// for (a, b) in y.as_slice().iter().zip(exact.as_slice()) {
///     assert!((a - b).abs() < 0.05);
/// }
/// ```
pub struct QuantizedRhs {
    k: usize,
    n: usize,
    scale: f32,
    /// Row-major `k × n` quantized weights — scalar-kernel layout.
    qdata: Vec<i8>,
    /// `sum_k qdata[k][j]` per column, over real k only.
    colsums: Vec<i32>,
    tier: QuantTier,
    /// VNNI panel bytes (i8 stored as raw u8), or empty.
    panels_u8: AlignedVec<u8>,
    /// `vpmaddwd` panel i16s, or empty.
    panels_i16: AlignedVec<i16>,
}

impl std::fmt::Debug for QuantizedRhs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "QuantizedRhs({}x{}, scale {:.3e}, {:?})",
            self.k, self.n, self.scale, self.tier
        )
    }
}

impl QuantizedRhs {
    /// Quantizes a row-major `k × n` weight slice with a per-tensor
    /// symmetric scale and packs panels for the current kernel tier.
    pub fn pack(k: usize, n: usize, data: &[f32]) -> Self {
        assert_eq!(data.len(), k * n, "weight slice must be k*n");
        let scale = symmetric_scale(data);
        let qdata: Vec<i8> = data.iter().map(|&x| quantize_one(x, scale)).collect();
        let mut colsums = vec![0i32; n];
        for kk in 0..k {
            for j in 0..n {
                colsums[j] += qdata[kk * n + j] as i32;
            }
        }
        let tier = detect_tier();
        let mut rhs = Self {
            k,
            n,
            scale,
            qdata,
            colsums,
            tier,
            panels_u8: AlignedVec::new(),
            panels_i16: AlignedVec::new(),
        };
        rhs.build_panels();
        rhs
    }

    /// `(k, n)` of the original weight matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.k, self.n)
    }

    /// The per-tensor symmetric weight scale `s_B`.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Heap bytes held by the quantized representation (row-major copy
    /// plus packed panels) — for compression reports.
    pub fn packed_bytes(&self) -> usize {
        self.qdata.len() + self.colsums.len() * 4 + self.panels_u8.len() + self.panels_i16.len() * 2
    }

    fn build_panels(&mut self) {
        let (k, n) = (self.k, self.n);
        match self.tier {
            QuantTier::Scalar => {}
            QuantTier::Vnni512 => {
                // Panel p, k-quad kq: 128 bytes = cols [j0..j0+16) then
                // [j0+16..j0+32), each column contributing 4 consecutive
                // k bytes — the zmm lane layout `vpdpbusd` consumes.
                let np = n.div_ceil(NR_W);
                let kq4 = k.div_ceil(4);
                self.panels_u8.ensure_len(np * kq4 * 128);
                let buf = self.panels_u8.as_mut_slice();
                buf.fill(0);
                for p in 0..np {
                    let j0 = p * NR_W;
                    let jw = NR_W.min(n - j0);
                    for kq in 0..kq4 {
                        let base = (p * kq4 + kq) * 128;
                        for j in 0..jw {
                            let half = (j / 16) * 64;
                            let lane = (j % 16) * 4;
                            for t in 0..4 {
                                let kk = kq * 4 + t;
                                if kk < k {
                                    buf[base + half + lane + t] = self.qdata[kk * n + j0 + j] as u8;
                                }
                            }
                        }
                    }
                }
            }
            QuantTier::VnniAvx => {
                // Panel p, k-quad kq: 64 bytes = cols [j0..j0+8) then
                // [j0+8..j0+16), each column contributing 4 consecutive
                // k bytes — the lane layout `vpdpbusd` consumes.
                let np = n.div_ceil(NR);
                let kq4 = k.div_ceil(4);
                self.panels_u8.ensure_len(np * kq4 * 64);
                let buf = self.panels_u8.as_mut_slice();
                buf.fill(0);
                for p in 0..np {
                    let j0 = p * NR;
                    let jw = NR.min(n - j0);
                    for kq in 0..kq4 {
                        let base = (p * kq4 + kq) * 64;
                        for j in 0..jw {
                            let half = (j / 8) * 32;
                            let lane = (j % 8) * 4;
                            for t in 0..4 {
                                let kk = kq * 4 + t;
                                if kk < k {
                                    buf[base + half + lane + t] = self.qdata[kk * n + j0 + j] as u8;
                                }
                            }
                        }
                    }
                }
            }
            QuantTier::MaddAvx2 => {
                // Panel p, k-pair kp: 32 i16 = cols [j0..j0+8) then
                // [j0+8..j0+16), each column contributing its two
                // adjacent-k values — the pair layout `vpmaddwd`
                // horizontally adds.
                let np = n.div_ceil(NR);
                let kp2 = k.div_ceil(2);
                self.panels_i16.ensure_len(np * kp2 * 32);
                let buf = self.panels_i16.as_mut_slice();
                buf.fill(0);
                for p in 0..np {
                    let j0 = p * NR;
                    let jw = NR.min(n - j0);
                    for kp in 0..kp2 {
                        let base = (p * kp2 + kp) * 32;
                        for j in 0..jw {
                            let half = (j / 8) * 16;
                            let lane = (j % 8) * 2;
                            for t in 0..2 {
                                let kk = kp * 2 + t;
                                if kk < k {
                                    buf[base + half + lane + t] =
                                        self.qdata[kk * n + j0 + j] as i16;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Per-row activation scales for a row-major `m × k` lhs — exposed so
/// tests can reproduce the exact scales the kernel uses when deriving
/// the analytic error bound.
pub fn row_scales(m: usize, k: usize, lhs: &[f32]) -> Vec<f32> {
    (0..m)
        .map(|i| symmetric_scale(&lhs[i * k..(i + 1) * k]))
        .collect()
}

/// Quantized GEMM: `out[m×n] += dequant(quant(lhs) · rhs)`, row-major.
/// Activations are quantized on the fly (per-row symmetric); the
/// integer product is exact, so every kernel tier yields bitwise-equal
/// f32 results.
pub fn qgemm(m: usize, k: usize, n: usize, lhs: &[f32], rhs: &QuantizedRhs, out: &mut [f32]) {
    assert_eq!(rhs.k, k, "rhs packed for k={}, got {k}", rhs.k);
    assert_eq!(rhs.n, n, "rhs packed for n={}, got {n}", rhs.n);
    debug_assert_eq!(lhs.len(), m * k);
    debug_assert_eq!(out.len(), m * n);
    assert!(k <= MAX_K, "quantized GEMM limited to k <= {MAX_K}");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // A pack built under one tier only runs under that tier; any
    // mismatch (mode flipped after packing) falls back to the exact
    // scalar kernel on the row-major copy — bitwise-identical output.
    let tier = if detect_tier() == rhs.tier {
        rhs.tier
    } else {
        QuantTier::Scalar
    };
    let threads = crate::pool::parallelism();
    let flops = m.saturating_mul(k).saturating_mul(n);
    if threads > 1 && flops >= PARALLEL_MIN_FLOPS && m >= 2 * MR {
        let chunk_rows = m.div_ceil(threads * 4).max(MR).next_multiple_of(MR);
        crate::pool::parallel_chunks_mut(out, chunk_rows * n, threads, |chunk, out_chunk| {
            let row0 = chunk * chunk_rows;
            let rows = out_chunk.len() / n;
            qgemm_rows(row0, rows, k, n, lhs, rhs, out_chunk, tier);
        });
    } else {
        qgemm_rows(0, m, k, n, lhs, rhs, out, tier);
    }
}

#[allow(clippy::too_many_arguments)]
fn qgemm_rows(
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
    lhs: &[f32],
    rhs: &QuantizedRhs,
    out: &mut [f32],
    tier: QuantTier,
) {
    #[cfg(target_arch = "x86_64")]
    match tier {
        QuantTier::Scalar => qgemm_rows_scalar(row0, rows, k, n, lhs, rhs, out),
        QuantTier::Vnni512 => qgemm_rows_vnni512(row0, rows, k, n, lhs, rhs, out),
        _ => qgemm_rows_simd(row0, rows, k, n, lhs, rhs, out, tier),
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = tier;
        qgemm_rows_scalar(row0, rows, k, n, lhs, rhs, out);
    }
}

fn qgemm_rows_scalar(
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
    lhs: &[f32],
    rhs: &QuantizedRhs,
    out: &mut [f32],
) {
    let mut qa = vec![0i8; k];
    for i in 0..rows {
        let arow = &lhs[(row0 + i) * k..(row0 + i + 1) * k];
        let sa = symmetric_scale(arow);
        for (q, &x) in qa.iter_mut().zip(arow) {
            *q = quantize_one(x, sa);
        }
        let orow = &mut out[i * n..(i + 1) * n];
        let deq = sa * rhs.scale;
        for (j, o) in orow.iter_mut().enumerate() {
            let mut acc = 0i32;
            for (kk, &a) in qa.iter().enumerate() {
                acc += a as i32 * rhs.qdata[kk * n + j] as i32;
            }
            *o += acc as f32 * deq;
        }
    }
}

#[cfg(target_arch = "x86_64")]
struct QuantScratch {
    a_u8: AlignedVec<u8>,
    a_i16: AlignedVec<i16>,
    qa: Vec<i8>,
}

#[cfg(target_arch = "x86_64")]
thread_local! {
    static Q_SCRATCH: std::cell::RefCell<QuantScratch> = const {
        std::cell::RefCell::new(QuantScratch {
            a_u8: AlignedVec::new(),
            a_i16: AlignedVec::new(),
            qa: Vec::new(),
        })
    };
}

/// i32 accumulator tile shared by every SIMD quant kernel, sized for
/// the widest (4×32); the 256-bit tiers use the first 4×16 lanes.
#[cfg(target_arch = "x86_64")]
#[repr(align(64))]
struct AccTile([i32; MR * NR_W]);

#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn qgemm_rows_simd(
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
    lhs: &[f32],
    rhs: &QuantizedRhs,
    out: &mut [f32],
    tier: QuantTier,
) {
    let np = n.div_ceil(NR);
    let kq4 = k.div_ceil(4);
    let kp2 = k.div_ceil(2);
    Q_SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        let QuantScratch { a_u8, a_i16, qa } = &mut *scratch;
        qa.resize(MR * k, 0);
        let mut i = 0;
        while i < rows {
            let quad = MR.min(rows - i);
            // Per-row symmetric scales + quantization (rows past `quad`
            // stay zero — their tile lanes are computed and discarded).
            let mut scales = [1.0f32; MR];
            for r in 0..MR {
                let qrow = &mut qa[r * k..(r + 1) * k];
                if r < quad {
                    let arow = &lhs[(row0 + i + r) * k..(row0 + i + r + 1) * k];
                    let sa = symmetric_scale(arow);
                    scales[r] = sa;
                    for (q, &x) in qrow.iter_mut().zip(arow) {
                        *q = quantize_one(x, sa);
                    }
                } else {
                    qrow.fill(0);
                }
            }
            match tier {
                QuantTier::VnniAvx => {
                    a_u8.ensure_len(kq4 * 16);
                    let buf = a_u8.as_mut_slice();
                    // u8 offset: qa + 128; padded k slots hold 128
                    // (qa = 0), which the colsum compensation cancels
                    // exactly because the matching B bytes are 0.
                    buf.fill(128);
                    for r in 0..quad {
                        for kk in 0..k {
                            buf[(kk / 4) * 16 + r * 4 + (kk % 4)] =
                                (qa[r * k + kk] as i16 + 128) as u8;
                        }
                    }
                }
                QuantTier::MaddAvx2 => {
                    a_i16.ensure_len(kp2 * 8);
                    let buf = a_i16.as_mut_slice();
                    buf.fill(0);
                    for r in 0..quad {
                        for kk in 0..k {
                            buf[(kk / 2) * 8 + r * 2 + (kk % 2)] = qa[r * k + kk] as i16;
                        }
                    }
                }
                QuantTier::Scalar | QuantTier::Vnni512 => {
                    unreachable!("routed before qgemm_rows_simd")
                }
            }
            for p in 0..np {
                let j0 = p * NR;
                let jw = NR.min(n - j0);
                let mut acc = AccTile([0i32; MR * NR_W]);
                match tier {
                    // SAFETY: tier was feature-detected; panels hold
                    // kq4*64 / kp2*32 packed elements per column panel
                    // and the A scratch holds kq4*16 / kp2*8.
                    QuantTier::VnniAvx => unsafe {
                        qk4x16_vnni_avx(
                            a_u8.as_ptr(),
                            kq4,
                            rhs.panels_u8.as_ptr().add(p * kq4 * 64),
                            acc.0.as_mut_ptr(),
                        );
                    },
                    QuantTier::MaddAvx2 => unsafe {
                        qk4x16_madd_avx2(
                            a_i16.as_ptr(),
                            kp2,
                            rhs.panels_i16.as_ptr().add(p * kp2 * 32),
                            acc.0.as_mut_ptr(),
                        );
                    },
                    QuantTier::Scalar | QuantTier::Vnni512 => unreachable!(),
                }
                let offset_compensation = tier == QuantTier::VnniAvx;
                for r in 0..quad {
                    let deq = scales[r] * rhs.scale;
                    let orow = &mut out[(i + r) * n + j0..(i + r) * n + j0 + jw];
                    for (j, o) in orow.iter_mut().enumerate() {
                        let mut raw = acc.0[r * NR + j];
                        if offset_compensation {
                            raw -= 128 * rhs.colsums[j0 + j];
                        }
                        *o += raw as f32 * deq;
                    }
                }
            }
            i += MR;
        }
    });
}

/// Dedicated 512-bit VNNI driver: per-row quantization, A packing, and
/// the dequant epilogue all run as AVX-512 vector code (the generic
/// driver's scalar quantize loop — a libm `roundf` call per element at
/// the default x86-64 baseline — would otherwise dominate the runtime).
/// Output is bitwise-identical to the scalar tier: the vector quantizer
/// reproduces `quantize_one` exactly (IEEE division, round half away
/// from zero via an RNE-then-fix sequence, NaN→0) and the fused
/// epilogue keeps the scalar tier's two-rounding `cvt·mul, add` shape.
#[cfg(target_arch = "x86_64")]
fn qgemm_rows_vnni512(
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
    lhs: &[f32],
    rhs: &QuantizedRhs,
    out: &mut [f32],
) {
    let np = n.div_ceil(NR_W);
    let kq4 = k.div_ceil(4);
    Q_SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        let a_u8 = &mut scratch.a_u8;
        a_u8.ensure_len(kq4 * 16);
        let mut i = 0;
        while i < rows {
            let quad = MR.min(rows - i);
            let buf = a_u8.as_mut_slice();
            // Padded k slots and unused rows hold the u8 offset value
            // 128 (q = 0); the colsum compensation cancels them exactly
            // because the matching B bytes are 0.
            buf.fill(128);
            let mut scales = [1.0f32; MR];
            for r in 0..quad {
                let arow = &lhs[(row0 + i + r) * k..(row0 + i + r + 1) * k];
                // SAFETY: tier was feature-detected (avx512vnni implies
                // avx512f); buf holds kq4*16 bytes.
                scales[r] = unsafe { quantize_pack_row_avx512(arow, r, buf.as_mut_ptr()) };
            }
            for p in 0..np {
                let j0 = p * NR_W;
                let jw = NR_W.min(n - j0);
                // SAFETY: panels hold kq4*128 bytes per column panel,
                // colsums has n >= j0+jw entries, and `out` rows are
                // n-strided with quad rows valid at row i.
                unsafe {
                    let bpanel = rhs.panels_u8.as_ptr().add(p * kq4 * 128);
                    if jw == NR_W {
                        qk4x32_vnni512_fused(
                            a_u8.as_ptr(),
                            kq4,
                            bpanel,
                            rhs.colsums.as_ptr().add(j0),
                            &scales,
                            rhs.scale,
                            quad,
                            out.as_mut_ptr().add(i * n + j0),
                            n,
                        );
                    } else {
                        let mut acc = AccTile([0i32; MR * NR_W]);
                        qk4x32_vnni512(a_u8.as_ptr(), kq4, bpanel, acc.0.as_mut_ptr());
                        for r in 0..quad {
                            let deq = scales[r] * rhs.scale;
                            let orow = &mut out[(i + r) * n + j0..(i + r) * n + j0 + jw];
                            for (j, o) in orow.iter_mut().enumerate() {
                                let raw = acc.0[r * NR_W + j] - 128 * rhs.colsums[j0 + j];
                                *o += raw as f32 * deq;
                            }
                        }
                    }
                }
            }
            i += MR;
        }
    });
}

/// Quantizes one activation row (per-row symmetric scale) directly into
/// the interleaved u8 A-panel layout (`buf[(kk/4)*16 + r*4 + kk%4]`,
/// offset by +128), returning the scale. Bitwise-equivalent to
/// `symmetric_scale` + `quantize_one` per element:
///
/// - the max-|x| reduction is over the same filtered set (max is
///   order-independent);
/// - division is IEEE-exact in both forms;
/// - `f32::round` (half away from zero) is reproduced as
///   round-to-nearest-even (`vcvtps2dq`) plus a ±1 fix on exact-half
///   lanes, after a float clamp to ±127 that makes the conversion
///   overflow-free (inf saturates to ±127 as in the scalar clamp);
/// - NaN lanes are zeroed via an ordered-compare mask (scalar: NaN
///   casts to 0).
///
/// # Safety
///
/// Requires avx512f; `buf` must hold `ceil(k/4)*16` bytes, `r < 4`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn quantize_pack_row_avx512(arow: &[f32], r: usize, buf: *mut u8) -> f32 {
    use std::arch::x86_64::*;
    let k = arow.len();
    let absmask = _mm512_set1_epi32(0x7fff_ffff);
    let inf = _mm512_set1_ps(f32::INFINITY);
    let mut vmax = _mm512_setzero_ps();
    let mut kk = 0;
    while kk + 16 <= k {
        let x = _mm512_loadu_ps(arow.as_ptr().add(kk));
        let a = _mm512_castsi512_ps(_mm512_and_si512(_mm512_castps_si512(x), absmask));
        // NaN compares unordered (false) and +inf fails `< inf`, so
        // only finite magnitudes enter the running max.
        let fin = _mm512_cmp_ps_mask::<_CMP_LT_OQ>(a, inf);
        vmax = _mm512_mask_max_ps(vmax, fin, vmax, a);
        kk += 16;
    }
    let mut lanes = [0.0f32; 16];
    _mm512_storeu_ps(lanes.as_mut_ptr(), vmax);
    let mut max_abs = lanes.iter().fold(0.0f32, |m, &v| m.max(v));
    while kk < k {
        let a = arow[kk].abs();
        if a.is_finite() {
            max_abs = max_abs.max(a);
        }
        kk += 1;
    }
    let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };

    let vscale = _mm512_set1_ps(scale);
    let clamp_lo = _mm512_set1_ps(-127.0);
    let clamp_hi = _mm512_set1_ps(127.0);
    let half = _mm512_set1_ps(0.5);
    let neg_half = _mm512_set1_ps(-0.5);
    let zero_ps = _mm512_setzero_ps();
    let one = _mm512_set1_epi32(1);
    let offset = _mm512_set1_epi32(128);
    let mut tmp = [0u8; 16];
    let mut kk = 0;
    while kk + 16 <= k {
        let x = _mm512_loadu_ps(arow.as_ptr().add(kk));
        let q = _mm512_div_ps(x, vscale);
        // Float clamp first: ±inf saturate to ±127 and the integer
        // conversion below can no longer overflow. NaN propagation here
        // is irrelevant — NaN lanes are zeroed at the end.
        let qc = _mm512_min_ps(_mm512_max_ps(q, clamp_lo), clamp_hi);
        let t = _mm512_cvtps_epi32(qc); // round to nearest even
        let d = _mm512_sub_ps(qc, _mm512_cvtepi32_ps(t)); // exact
                                                          // Promote half-even to half-away-from-zero: an exact +0.5
                                                          // residue on a positive lane was rounded down, an exact -0.5
                                                          // residue on a negative lane was rounded up.
        let fix_up = _mm512_cmp_ps_mask::<_CMP_EQ_OQ>(d, half)
            & _mm512_cmp_ps_mask::<_CMP_GT_OQ>(qc, zero_ps);
        let fix_dn = _mm512_cmp_ps_mask::<_CMP_EQ_OQ>(d, neg_half)
            & _mm512_cmp_ps_mask::<_CMP_LT_OQ>(qc, zero_ps);
        let t = _mm512_mask_add_epi32(t, fix_up, t, one);
        let t = _mm512_mask_sub_epi32(t, fix_dn, t, one);
        let ord = _mm512_cmp_ps_mask::<_CMP_ORD_Q>(x, x);
        let t = _mm512_maskz_mov_epi32(ord, t);
        let t = _mm512_add_epi32(t, offset);
        _mm_storeu_si128(tmp.as_mut_ptr() as *mut __m128i, _mm512_cvtepi32_epi8(t));
        // 16 quantized k-bytes scatter as four 4-byte groups, one per
        // k-quad, at this row's lane in the interleaved panel.
        let src = tmp.as_ptr() as *const u32;
        for g in 0..4 {
            let dst = buf.add((kk / 4 + g) * 16 + r * 4) as *mut u32;
            dst.write_unaligned(src.add(g).read_unaligned());
        }
        kk += 16;
    }
    while kk < k {
        let q = quantize_one(arow[kk], scale);
        *buf.add((kk / 4) * 16 + r * 4 + (kk % 4)) = (q as i16 + 128) as u8;
        kk += 1;
    }
    scale
}

/// AVX-512 VNNI 4×32 kernel: `acc[r][j] += Σ_k (qa[r][k]+128) · qb[k][j]`
/// via full-width `vpdpbusd` (each zmm lane folds 4 k-bytes, two zmm
/// cover the 32-column panel).
///
/// # Safety
///
/// Requires avx512vnni; `apanel` holds `kq4*16` bytes (32-byte
/// aligned), `bpanel` holds `kq4*128` bytes (64-byte aligned), `acc`
/// holds `4*32` i32 (64-byte aligned, row stride 32).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512vnni")]
unsafe fn qk4x32_vnni512(apanel: *const u8, kq4: usize, bpanel: *const u8, acc: *mut i32) {
    use std::arch::x86_64::*;
    debug_assert!(is_panel_aligned(apanel));
    debug_assert!(is_panel_aligned(bpanel));
    let mut a00 = _mm512_setzero_si512();
    let mut a01 = _mm512_setzero_si512();
    let mut a10 = _mm512_setzero_si512();
    let mut a11 = _mm512_setzero_si512();
    let mut a20 = _mm512_setzero_si512();
    let mut a21 = _mm512_setzero_si512();
    let mut a30 = _mm512_setzero_si512();
    let mut a31 = _mm512_setzero_si512();
    for kq in 0..kq4 {
        let b0 = _mm512_load_si512(bpanel.add(kq * 128) as *const __m512i);
        let b1 = _mm512_load_si512(bpanel.add(kq * 128 + 64) as *const __m512i);
        let abase = apanel.add(kq * 16) as *const i32;
        let v0 = _mm512_set1_epi32(abase.read());
        let v1 = _mm512_set1_epi32(abase.add(1).read());
        let v2 = _mm512_set1_epi32(abase.add(2).read());
        let v3 = _mm512_set1_epi32(abase.add(3).read());
        a00 = _mm512_dpbusd_epi32(a00, v0, b0);
        a01 = _mm512_dpbusd_epi32(a01, v0, b1);
        a10 = _mm512_dpbusd_epi32(a10, v1, b0);
        a11 = _mm512_dpbusd_epi32(a11, v1, b1);
        a20 = _mm512_dpbusd_epi32(a20, v2, b0);
        a21 = _mm512_dpbusd_epi32(a21, v2, b1);
        a30 = _mm512_dpbusd_epi32(a30, v3, b0);
        a31 = _mm512_dpbusd_epi32(a31, v3, b1);
    }
    let out = acc as *mut __m512i;
    _mm512_store_si512(out, a00);
    _mm512_store_si512(out.add(1), a01);
    _mm512_store_si512(out.add(2), a10);
    _mm512_store_si512(out.add(3), a11);
    _mm512_store_si512(out.add(4), a20);
    _mm512_store_si512(out.add(5), a21);
    _mm512_store_si512(out.add(6), a30);
    _mm512_store_si512(out.add(7), a31);
}

/// [`qk4x32_vnni512`] with the dequant epilogue fused in: after the
/// dpbusd sweep, each row's accumulators get the exact i32 offset
/// compensation (`acc - 128·colsum`, the shift is exact), then the same
/// two-rounding f32 sequence as the scalar epilogue — `cvt`, `mul` by
/// the row's dequant factor, `add` into `out` — so results stay
/// bitwise-identical while never leaving vector registers.
///
/// # Safety
///
/// Requires avx512vnni; panel requirements as [`qk4x32_vnni512`];
/// `colsums` must hold 32 i32; `out` must be valid for `rows` rows of
/// 32 f32 at stride `n`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512vnni")]
#[allow(clippy::too_many_arguments)]
unsafe fn qk4x32_vnni512_fused(
    apanel: *const u8,
    kq4: usize,
    bpanel: *const u8,
    colsums: *const i32,
    scales: &[f32; MR],
    wscale: f32,
    rows: usize,
    out: *mut f32,
    n: usize,
) {
    use std::arch::x86_64::*;
    debug_assert!(is_panel_aligned(apanel));
    debug_assert!(is_panel_aligned(bpanel));
    let mut acc = [[_mm512_setzero_si512(); 2]; MR];
    for kq in 0..kq4 {
        let b0 = _mm512_load_si512(bpanel.add(kq * 128) as *const __m512i);
        let b1 = _mm512_load_si512(bpanel.add(kq * 128 + 64) as *const __m512i);
        let abase = apanel.add(kq * 16) as *const i32;
        for (r, row_acc) in acc.iter_mut().enumerate() {
            let v = _mm512_set1_epi32(abase.add(r).read());
            row_acc[0] = _mm512_dpbusd_epi32(row_acc[0], v, b0);
            row_acc[1] = _mm512_dpbusd_epi32(row_acc[1], v, b1);
        }
    }
    let comp0 = _mm512_slli_epi32::<7>(_mm512_loadu_si512(colsums as *const __m512i));
    let comp1 = _mm512_slli_epi32::<7>(_mm512_loadu_si512(colsums.add(16) as *const __m512i));
    for (r, row_acc) in acc.iter().enumerate().take(rows) {
        let deq = _mm512_set1_ps(scales[r] * wscale);
        let o = out.add(r * n);
        let raw0 = _mm512_sub_epi32(row_acc[0], comp0);
        let raw1 = _mm512_sub_epi32(row_acc[1], comp1);
        let f0 = _mm512_mul_ps(_mm512_cvtepi32_ps(raw0), deq);
        let f1 = _mm512_mul_ps(_mm512_cvtepi32_ps(raw1), deq);
        _mm512_storeu_ps(o, _mm512_add_ps(_mm512_loadu_ps(o), f0));
        _mm512_storeu_ps(o.add(16), _mm512_add_ps(_mm512_loadu_ps(o.add(16)), f1));
    }
}

/// AVX-VNNI 4×16 variant of [`qk4x32_vnni512`] for cores exposing
/// `vpdpbusd` without AVX-512.
///
/// # Safety
///
/// Requires avxvnni; `apanel` holds `kq4*16` bytes (32-byte aligned),
/// `bpanel` holds `kq4*64` bytes (32-byte aligned), `acc` holds `4*16`
/// i32 (32-byte aligned, row stride 16).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avxvnni")]
unsafe fn qk4x16_vnni_avx(apanel: *const u8, kq4: usize, bpanel: *const u8, acc: *mut i32) {
    use std::arch::x86_64::*;
    debug_assert!(is_panel_aligned(apanel));
    debug_assert!(is_panel_aligned(bpanel));
    let mut a00 = _mm256_setzero_si256();
    let mut a01 = _mm256_setzero_si256();
    let mut a10 = _mm256_setzero_si256();
    let mut a11 = _mm256_setzero_si256();
    let mut a20 = _mm256_setzero_si256();
    let mut a21 = _mm256_setzero_si256();
    let mut a30 = _mm256_setzero_si256();
    let mut a31 = _mm256_setzero_si256();
    for kq in 0..kq4 {
        let b0 = _mm256_load_si256(bpanel.add(kq * 64) as *const __m256i);
        let b1 = _mm256_load_si256(bpanel.add(kq * 64 + 32) as *const __m256i);
        let abase = apanel.add(kq * 16) as *const i32;
        let v0 = _mm256_set1_epi32(abase.read());
        let v1 = _mm256_set1_epi32(abase.add(1).read());
        let v2 = _mm256_set1_epi32(abase.add(2).read());
        let v3 = _mm256_set1_epi32(abase.add(3).read());
        a00 = _mm256_dpbusd_avx_epi32(a00, v0, b0);
        a01 = _mm256_dpbusd_avx_epi32(a01, v0, b1);
        a10 = _mm256_dpbusd_avx_epi32(a10, v1, b0);
        a11 = _mm256_dpbusd_avx_epi32(a11, v1, b1);
        a20 = _mm256_dpbusd_avx_epi32(a20, v2, b0);
        a21 = _mm256_dpbusd_avx_epi32(a21, v2, b1);
        a30 = _mm256_dpbusd_avx_epi32(a30, v3, b0);
        a31 = _mm256_dpbusd_avx_epi32(a31, v3, b1);
    }
    let out = acc as *mut __m256i;
    _mm256_store_si256(out, a00);
    _mm256_store_si256(out.add(1), a01);
    _mm256_store_si256(out.add(2), a10);
    _mm256_store_si256(out.add(3), a11);
    _mm256_store_si256(out.add(4), a20);
    _mm256_store_si256(out.add(5), a21);
    _mm256_store_si256(out.add(6), a30);
    _mm256_store_si256(out.add(7), a31);
}

/// AVX2 4×16 kernel on i16-widened operands: `vpmaddwd` multiplies 16
/// i16 pairs and adds adjacent products (exact for |q| ≤ 127), then
/// `vpaddd` accumulates.
///
/// # Safety
///
/// Requires avx2; `apanel` holds `kp2*8` i16 (32-byte aligned),
/// `bpanel` holds `kp2*32` i16 (32-byte aligned), `acc` holds `4*16`
/// i32 (32-byte aligned, row stride 16).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn qk4x16_madd_avx2(apanel: *const i16, kp2: usize, bpanel: *const i16, acc: *mut i32) {
    use std::arch::x86_64::*;
    debug_assert!(is_panel_aligned(apanel));
    debug_assert!(is_panel_aligned(bpanel));
    let mut a00 = _mm256_setzero_si256();
    let mut a01 = _mm256_setzero_si256();
    let mut a10 = _mm256_setzero_si256();
    let mut a11 = _mm256_setzero_si256();
    let mut a20 = _mm256_setzero_si256();
    let mut a21 = _mm256_setzero_si256();
    let mut a30 = _mm256_setzero_si256();
    let mut a31 = _mm256_setzero_si256();
    for kp in 0..kp2 {
        let b0 = _mm256_load_si256(bpanel.add(kp * 32) as *const __m256i);
        let b1 = _mm256_load_si256(bpanel.add(kp * 32 + 16) as *const __m256i);
        let abase = apanel.add(kp * 8) as *const i32;
        let v0 = _mm256_set1_epi32(abase.read());
        let v1 = _mm256_set1_epi32(abase.add(1).read());
        let v2 = _mm256_set1_epi32(abase.add(2).read());
        let v3 = _mm256_set1_epi32(abase.add(3).read());
        a00 = _mm256_add_epi32(a00, _mm256_madd_epi16(v0, b0));
        a01 = _mm256_add_epi32(a01, _mm256_madd_epi16(v0, b1));
        a10 = _mm256_add_epi32(a10, _mm256_madd_epi16(v1, b0));
        a11 = _mm256_add_epi32(a11, _mm256_madd_epi16(v1, b1));
        a20 = _mm256_add_epi32(a20, _mm256_madd_epi16(v2, b0));
        a21 = _mm256_add_epi32(a21, _mm256_madd_epi16(v2, b1));
        a30 = _mm256_add_epi32(a30, _mm256_madd_epi16(v3, b0));
        a31 = _mm256_add_epi32(a31, _mm256_madd_epi16(v3, b1));
    }
    let out = acc as *mut __m256i;
    _mm256_store_si256(out, a00);
    _mm256_store_si256(out.add(1), a01);
    _mm256_store_si256(out.add(2), a10);
    _mm256_store_si256(out.add(3), a11);
    _mm256_store_si256(out.add(4), a20);
    _mm256_store_si256(out.add(5), a21);
    _mm256_store_si256(out.add(6), a30);
    _mm256_store_si256(out.add(7), a31);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1 << 24) as f32) - 0.5
            })
            .collect()
    }

    fn qgemm_with_tier(
        m: usize,
        k: usize,
        n: usize,
        lhs: &[f32],
        rhs_data: &[f32],
        tier: QuantTier,
    ) -> Option<Vec<f32>> {
        if !tier_available(tier) {
            return None;
        }
        // Build a pack with the requested tier by hand.
        let scale = symmetric_scale(rhs_data);
        let qdata: Vec<i8> = rhs_data.iter().map(|&x| quantize_one(x, scale)).collect();
        let mut colsums = vec![0i32; n];
        for kk in 0..k {
            for j in 0..n {
                colsums[j] += qdata[kk * n + j] as i32;
            }
        }
        let mut rhs = QuantizedRhs {
            k,
            n,
            scale,
            qdata,
            colsums,
            tier,
            panels_u8: AlignedVec::new(),
            panels_i16: AlignedVec::new(),
        };
        rhs.build_panels();
        let mut out = vec![0.0f32; m * n];
        qgemm_rows(0, m, k, n, lhs, &rhs, &mut out, tier);
        Some(out)
    }

    fn tier_available(tier: QuantTier) -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            match tier {
                QuantTier::Scalar => true,
                QuantTier::MaddAvx2 => is_x86_feature_detected!("avx2"),
                QuantTier::VnniAvx => is_x86_feature_detected!("avxvnni"),
                QuantTier::Vnni512 => is_x86_feature_detected!("avx512vnni"),
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            matches!(tier, QuantTier::Scalar)
        }
    }

    #[test]
    fn all_available_tiers_are_bitwise_identical() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (4, 16, 16),
            (5, 33, 17),
            (3, 257, 31),
            (11, 300, 29),
            (8, 512, 48),
        ] {
            let lhs = fill(m as u64 * 7 + k as u64, m * k);
            let rhs = fill(n as u64 * 13 + 3, k * n);
            let base = qgemm_with_tier(m, k, n, &lhs, &rhs, QuantTier::Scalar).unwrap();
            for tier in [QuantTier::MaddAvx2, QuantTier::VnniAvx, QuantTier::Vnni512] {
                if let Some(out) = qgemm_with_tier(m, k, n, &lhs, &rhs, tier) {
                    for (idx, (a, b)) in out.iter().zip(&base).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "{tier:?} ({m}x{k}x{n}) idx {idx}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn quantized_tracks_exact_product_within_bound() {
        let (m, k, n) = (6usize, 128usize, 24usize);
        let lhs = fill(41, m * k);
        let rhs_data = fill(42, k * n);
        let rhs = QuantizedRhs::pack(k, n, &rhs_data);
        let mut out = vec![0.0f32; m * n];
        qgemm(m, k, n, &lhs, &rhs, &mut out);
        let scales = row_scales(m, k, &lhs);
        for i in 0..m {
            for j in 0..n {
                let exact: f64 = (0..k)
                    .map(|kk| lhs[i * k + kk] as f64 * rhs_data[kk * n + j] as f64)
                    .sum();
                // Round-off bound: 0.5*sB per |a|, 0.5*sA per |b|, plus
                // the cross term (see kernel_properties for the full
                // derivation).
                let sa = scales[i] as f64;
                let sb = rhs.scale() as f64;
                let abs_a: f64 = (0..k).map(|kk| lhs[i * k + kk].abs() as f64).sum();
                let abs_b: f64 = (0..k).map(|kk| rhs_data[kk * n + j].abs() as f64).sum();
                let bound = 0.5 * sb * abs_a + 0.5 * sa * abs_b + 0.25 * k as f64 * sa * sb + 1e-4;
                let got = out[i * n + j] as f64;
                assert!(
                    (got - exact).abs() <= bound,
                    "({i},{j}): got {got}, exact {exact}, bound {bound}"
                );
            }
        }
    }

    #[test]
    fn rows_are_bitwise_independent_of_batch_shape() {
        let (m, k, n) = (9usize, 77usize, 21usize);
        let lhs = fill(5, m * k);
        let rhs_data = fill(6, k * n);
        let rhs = QuantizedRhs::pack(k, n, &rhs_data);
        let mut batched = vec![0.0f32; m * n];
        qgemm(m, k, n, &lhs, &rhs, &mut batched);
        for i in 0..m {
            let mut solo = vec![0.0f32; n];
            qgemm(1, k, n, &lhs[i * k..(i + 1) * k], &rhs, &mut solo);
            assert_eq!(
                &batched[i * n..(i + 1) * n],
                &solo[..],
                "row {i} differs between batched and solo quantized forward"
            );
        }
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        // All-zero weights, NaN activations, empty dims.
        let rhs = QuantizedRhs::pack(3, 2, &[0.0; 6]);
        assert_eq!(rhs.scale(), 1.0);
        let mut out = vec![0.0f32; 2];
        qgemm(1, 3, 2, &[f32::NAN, 1.0, -1.0], &rhs, &mut out);
        assert!(out.iter().all(|x| *x == 0.0));
        let mut empty: Vec<f32> = vec![];
        qgemm(0, 3, 2, &[], &rhs, &mut empty);
        let (q, s) = quantize_symmetric(&[1.0, -2.0, 0.5]);
        assert_eq!(s, 2.0 / 127.0);
        assert_eq!(q[1], -127);
    }
}
