//! Cache-blocked, optionally parallel GEMM kernels.
//!
//! All three matrix products on [`crate::Matrix`] funnel into one
//! row-major kernel, `gemm_rrr` (`C += A * B` with every operand
//! row-major). The transposed variants pack the transposed operand into a
//! row-major buffer first, so they reuse the same inner loops:
//!
//! - `matmul`:   `gemm_rrr(A, B)`
//! - `t_matmul`: `gemm_rrr(pack(Aᵀ), B)`
//! - `matmul_t`: `gemm_rrr(A, pack(Bᵀ))`
//!
//! # Blocking scheme
//!
//! The kernel tiles the k dimension in blocks of `KC` so each sweep reads
//! a `KC x n` slab of `B` that stays cache-resident, and processes output
//! rows in quads (`MR = 4`). For each quad x k-block it packs the four
//! `A` rows into a k-major panel (`panel[kk * 4 + r]`), then runs a
//! 4-row x 4-k micro-kernel whose inner loop walks columns contiguously
//! in both `B` and `C` — 16 multiply-adds per four (reused) `B` loads,
//! which the autovectorizer turns into wide SIMD over `j`.
//!
//! # Determinism and row independence
//!
//! Every path — the small-matrix fast path, the 4-row micro-kernel, the
//! 1-row remainder kernel, and every parallel row split — accumulates
//! each output element in strictly ascending `k` order, one rounded
//! multiply-add per step. Floating-point addition applied left-to-right
//! is a single fixed sequence, so an output row is **bitwise identical**
//! no matter which path computed it, how many rows were computed
//! alongside it, or how many threads ran. The serving runtime's
//! micro-batching leans on this: a fused batch forward must reproduce
//! each request's solo forward exactly.
//!
//! # Thresholds
//!
//! Products with `m * k * n <= SMALL_FLOPS` take a plain i-k-j loop —
//! the scheduler's and GP's tiny matrices gain nothing from packing.
//! Blocked products split rows across the [`crate::pool`] only when
//! `m * k * n >= PARALLEL_MIN_FLOPS` and the `parallelism` knob allows
//! more than one thread.

use crate::pool;

/// Below this many multiply-adds the plain loop beats the blocked kernel.
pub(crate) const SMALL_FLOPS: usize = 32 * 32 * 32;

/// Below this many multiply-adds a parallel split costs more than it saves.
pub(crate) const PARALLEL_MIN_FLOPS: usize = 64 * 64 * 64;

/// k-dimension block size: a `KC x n` slab of `B` per sweep.
const KC: usize = 256;

/// Output rows per micro-kernel invocation.
const MR: usize = 4;

/// `out += lhs * rhs` where `lhs` is `m x k`, `rhs` is `k x n`, and `out`
/// is `m x n`, all row-major. `out` is normally freshly zeroed by the
/// caller; the kernel accumulates into whatever it holds.
///
/// Dispatches to the kernel tier resolved by [`crate::simd`]: the
/// AVX-512F or AVX2/FMA micro-kernel (or their portable fused twin)
/// when the SIMD tier is active, the legacy blocked scalar kernel
/// below otherwise.
pub(crate) fn gemm_rrr(m: usize, k: usize, n: usize, lhs: &[f32], rhs: &[f32], out: &mut [f32]) {
    gemm_rrr_epilogue(
        m,
        k,
        n,
        lhs,
        rhs,
        None,
        out,
        crate::simd::Epilogue::default(),
    );
}

/// `gemm_rrr` plus an optional pre-packed `rhs` and a fused elementwise
/// tail (`out = relu(out + bias)`), the stage compiler's entry point.
///
/// Every tier applies the identical scalar tail after the identical
/// accumulation it would have produced unfused, so a fused call is
/// **bitwise** equal to `gemm_rrr` followed by separate bias/relu
/// passes — on the scalar tier, the SIMD tiers, and the portable twin
/// alike. `prepacked` panels built for a different tier are ignored
/// (the call repacks on the fly), never trusted.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_rrr_epilogue(
    m: usize,
    k: usize,
    n: usize,
    lhs: &[f32],
    rhs: &[f32],
    prepacked: Option<&crate::simd::PackedRhs>,
    out: &mut [f32],
    ep: crate::simd::Epilogue<'_>,
) {
    use crate::simd::{FusedIsa, ResolvedPath};
    let isa = match crate::simd::resolved_path() {
        ResolvedPath::ScalarLegacy => {
            gemm_rrr_scalar(m, k, n, lhs, rhs, out);
            if m > 0 && n > 0 {
                ep.apply(out, n, 0, m, 0, n);
            }
            return;
        }
        ResolvedPath::SimdAvx512 => FusedIsa::Avx512,
        ResolvedPath::SimdAvx2 => FusedIsa::Avx2,
        ResolvedPath::PortableFused => FusedIsa::Portable,
    };
    crate::simd::gemm_fused(
        m,
        k,
        n,
        lhs,
        rhs,
        out,
        isa,
        SMALL_FLOPS,
        PARALLEL_MIN_FLOPS,
        prepacked,
        ep,
    );
}

/// The legacy scalar tier: bitwise-equal to the `*_reference`
/// implementations (mul-then-add, ascending k). Kept both as the
/// portable fallback and as the reference-bitwise contract anchor.
pub(crate) fn gemm_rrr_scalar(
    m: usize,
    k: usize,
    n: usize,
    lhs: &[f32],
    rhs: &[f32],
    out: &mut [f32],
) {
    debug_assert_eq!(lhs.len(), m * k);
    debug_assert_eq!(rhs.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let flops = m * k * n;
    if flops <= SMALL_FLOPS {
        gemm_small(m, k, n, lhs, rhs, out);
        return;
    }
    let threads = pool::parallelism();
    if threads > 1 && flops >= PARALLEL_MIN_FLOPS && m >= 2 * MR {
        // Aim for a few chunks per thread so a straggler core doesn't
        // serialize the tail; quad-align chunks so only the last chunk
        // sees remainder rows.
        let chunk_rows = m.div_ceil(threads * 4).max(MR).next_multiple_of(MR);
        pool::parallel_chunks_mut(out, chunk_rows * n, threads, |chunk, out_chunk| {
            let row0 = chunk * chunk_rows;
            let rows = out_chunk.len() / n;
            gemm_blocked_rows(row0, rows, k, n, lhs, rhs, out_chunk);
        });
    } else {
        gemm_blocked_rows(0, m, k, n, lhs, rhs, out);
    }
}

/// Plain i-k-j product for small shapes. No zero-skip: `0.0 * NaN` must
/// propagate per IEEE 754, and on dense data the branch is pure overhead.
fn gemm_small(m: usize, k: usize, n: usize, lhs: &[f32], rhs: &[f32], out: &mut [f32]) {
    for i in 0..m {
        let arow = &lhs[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &a) in arow.iter().enumerate() {
            let brow = &rhs[kk * n..(kk + 1) * n];
            for (o, &b) in orow.iter_mut().zip(brow) {
                *o += a * b;
            }
        }
    }
}

/// Blocked kernel over output rows `row0 .. row0 + rows`, writing into
/// `out`, a borrow of exactly those rows (`rows * n` elements).
fn gemm_blocked_rows(
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
    lhs: &[f32],
    rhs: &[f32],
    out: &mut [f32],
) {
    let mut panel = [0.0_f32; KC * MR];
    let mut kb = 0;
    while kb < k {
        let kc = KC.min(k - kb);
        let rhs_block = &rhs[kb * n..(kb + kc) * n];
        let mut i = 0;
        while i + MR <= rows {
            pack_quad(&mut panel, lhs, k, row0 + i, kb, kc);
            micro_kernel_4(&panel, kc, rhs_block, n, &mut out[i * n..(i + MR) * n]);
            i += MR;
        }
        while i < rows {
            let arow = &lhs[(row0 + i) * k + kb..(row0 + i) * k + kb + kc];
            row_kernel(arow, kc, rhs_block, n, &mut out[i * n..(i + 1) * n]);
            i += 1;
        }
        kb += kc;
    }
}

/// Packs four `A` rows (columns `kb .. kb + kc`) k-major into `panel`:
/// `panel[kk * MR + r] = lhs[(row + r) * k + kb + kk]`.
fn pack_quad(panel: &mut [f32; KC * MR], lhs: &[f32], k: usize, row: usize, kb: usize, kc: usize) {
    for r in 0..MR {
        let arow = &lhs[(row + r) * k + kb..(row + r) * k + kb + kc];
        for (kk, &a) in arow.iter().enumerate() {
            panel[kk * MR + r] = a;
        }
    }
}

/// 4-row x 4-k micro-kernel: per `j`, four reused `B` values feed sixteen
/// multiply-adds. Each row's element accumulates left-to-right in
/// ascending `k`, matching the sequential paths bitwise.
fn micro_kernel_4(
    panel: &[f32; KC * MR],
    kc: usize,
    rhs_block: &[f32],
    n: usize,
    out4: &mut [f32],
) {
    let (o0, rest) = out4.split_at_mut(n);
    let (o1, rest) = rest.split_at_mut(n);
    let (o2, o3) = rest.split_at_mut(n);
    let mut kk = 0;
    while kk + 4 <= kc {
        let a = &panel[kk * MR..(kk + 4) * MR];
        let b0 = &rhs_block[kk * n..(kk + 1) * n];
        let b1 = &rhs_block[(kk + 1) * n..(kk + 2) * n];
        let b2 = &rhs_block[(kk + 2) * n..(kk + 3) * n];
        let b3 = &rhs_block[(kk + 3) * n..(kk + 4) * n];
        for j in 0..n {
            o0[j] = (((o0[j] + a[0] * b0[j]) + a[4] * b1[j]) + a[8] * b2[j]) + a[12] * b3[j];
            o1[j] = (((o1[j] + a[1] * b0[j]) + a[5] * b1[j]) + a[9] * b2[j]) + a[13] * b3[j];
            o2[j] = (((o2[j] + a[2] * b0[j]) + a[6] * b1[j]) + a[10] * b2[j]) + a[14] * b3[j];
            o3[j] = (((o3[j] + a[3] * b0[j]) + a[7] * b1[j]) + a[11] * b2[j]) + a[15] * b3[j];
        }
        kk += 4;
    }
    while kk < kc {
        let a = &panel[kk * MR..(kk + 1) * MR];
        let b = &rhs_block[kk * n..(kk + 1) * n];
        for j in 0..n {
            o0[j] += a[0] * b[j];
            o1[j] += a[1] * b[j];
            o2[j] += a[2] * b[j];
            o3[j] += a[3] * b[j];
        }
        kk += 1;
    }
}

/// 1-row remainder kernel with the same 4-k unroll and accumulation order
/// as the quad kernel, so remainder rows match quad rows bitwise.
fn row_kernel(arow: &[f32], kc: usize, rhs_block: &[f32], n: usize, out: &mut [f32]) {
    let o = &mut out[..n];
    let mut kk = 0;
    while kk + 4 <= kc {
        let a0 = arow[kk];
        let a1 = arow[kk + 1];
        let a2 = arow[kk + 2];
        let a3 = arow[kk + 3];
        let b0 = &rhs_block[kk * n..(kk + 1) * n];
        let b1 = &rhs_block[(kk + 1) * n..(kk + 2) * n];
        let b2 = &rhs_block[(kk + 2) * n..(kk + 3) * n];
        let b3 = &rhs_block[(kk + 3) * n..(kk + 4) * n];
        for j in 0..n {
            o[j] = (((o[j] + a0 * b0[j]) + a1 * b1[j]) + a2 * b2[j]) + a3 * b3[j];
        }
        kk += 4;
    }
    while kk < kc {
        let a = arow[kk];
        let b = &rhs_block[kk * n..(kk + 1) * n];
        for j in 0..n {
            o[j] += a * b[j];
        }
        kk += 1;
    }
}

/// Transposes a `rows x cols` row-major buffer into a fresh
/// `cols x rows` row-major buffer, tiled for cache locality.
pub(crate) fn transpose_pack(rows: usize, cols: usize, src: &[f32]) -> Vec<f32> {
    debug_assert_eq!(src.len(), rows * cols);
    const TILE: usize = 32;
    let mut dst = vec![0.0_f32; rows * cols];
    let mut r0 = 0;
    while r0 < rows {
        let rt = TILE.min(rows - r0);
        let mut c0 = 0;
        while c0 < cols {
            let ct = TILE.min(cols - c0);
            for r in r0..r0 + rt {
                let base = r * cols;
                for c in c0..c0 + ct {
                    dst[c * rows + r] = src[base + c];
                }
            }
            c0 += ct;
        }
        r0 += rt;
    }
    dst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_pattern(len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| ((i * 37 + 11) % 97) as f32 * 0.25 - 12.0)
            .collect()
    }

    fn gemm_naive(m: usize, k: usize, n: usize, lhs: &[f32], rhs: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for kk in 0..k {
                let a = lhs[i * k + kk];
                for j in 0..n {
                    out[i * n + j] += a * rhs[kk * n + j];
                }
            }
        }
        out
    }

    #[test]
    fn blocked_matches_naive_across_awkward_shapes() {
        // Shapes straddle the quad width, the 4-k unroll, and KC itself.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 4, 4),
            (5, 9, 6),
            (17, 23, 13),
            (33, 257, 19),
            (64, 300, 31),
        ] {
            let lhs = fill_pattern(m * k);
            let rhs = fill_pattern(k * n);
            let mut out = vec![0.0; m * n];
            gemm_rrr(m, k, n, &lhs, &rhs, &mut out);
            let naive = gemm_naive(m, k, n, &lhs, &rhs);
            for (i, (a, b)) in out.iter().zip(&naive).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-3 * b.abs().max(1.0),
                    "{m}x{k}x{n} element {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn rows_are_bitwise_independent_of_batch_shape() {
        // The serving runtime fuses request rows into one forward and
        // requires each row to equal its solo forward bitwise.
        let k = 300;
        let n = 130;
        let m = 11;
        let lhs = fill_pattern(m * k);
        let rhs = fill_pattern(k * n);
        let mut batched = vec![0.0; m * n];
        gemm_rrr(m, k, n, &lhs, &rhs, &mut batched);
        for i in 0..m {
            let mut solo = vec![0.0; n];
            gemm_rrr(1, k, n, &lhs[i * k..(i + 1) * k], &rhs, &mut solo);
            assert_eq!(
                &batched[i * n..(i + 1) * n],
                &solo[..],
                "row {i} differs between batched and solo forward"
            );
        }
    }

    #[test]
    fn results_identical_across_parallelism_settings() {
        let m = 96;
        let k = 80;
        let n = 72; // above PARALLEL_MIN_FLOPS
        let lhs = fill_pattern(m * k);
        let rhs = fill_pattern(k * n);
        let previous = crate::pool::parallelism();
        let run = |threads: usize| {
            crate::pool::set_parallelism(threads);
            let mut out = vec![0.0; m * n];
            gemm_rrr(m, k, n, &lhs, &rhs, &mut out);
            out
        };
        let serial = run(1);
        let two = run(2);
        let four = run(4);
        crate::pool::set_parallelism(previous);
        assert_eq!(serial, two);
        assert_eq!(serial, four);
    }

    #[test]
    fn transpose_pack_round_trips() {
        for &(rows, cols) in &[(1, 1), (3, 5), (33, 40), (70, 65)] {
            let src = fill_pattern(rows * cols);
            let t = transpose_pack(rows, cols, &src);
            let back = transpose_pack(cols, rows, &t);
            assert_eq!(src, back, "{rows}x{cols}");
        }
    }

    #[test]
    fn empty_dims_are_noops() {
        let mut out = vec![0.0; 0];
        gemm_rrr(0, 3, 4, &[], &fill_pattern(12), &mut out);
        let mut out = vec![5.0; 6];
        gemm_rrr(2, 0, 3, &[], &[], &mut out);
        assert_eq!(out, vec![5.0; 6], "k == 0 leaves out untouched");
    }
}
