use crate::ShapeError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

/// A dense, row-major `f32` matrix.
///
/// This is the workhorse type of the reproduction: network weights,
/// activation batches, kernel (Gram) matrices, and pruning masks are all
/// `Matrix` values. A `rows x cols` matrix stores `rows * cols` elements
/// contiguously, row by row.
///
/// # Examples
///
/// ```
/// use eugene_tensor::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m[(1, 2)], 6.0);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// use eugene_tensor::Matrix;
    /// let z = Matrix::zeros(2, 2);
    /// assert_eq!(z.sum(), 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Creates a `rows x cols` matrix with every element set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`. Use [`Matrix::try_from_vec`]
    /// for a fallible variant.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        Self::try_from_vec(rows, cols, data).expect("buffer length must equal rows * cols")
    }

    /// Creates a matrix from a flat row-major buffer, validating its length.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `data.len() != rows * cols`.
    ///
    /// # Examples
    ///
    /// ```
    /// use eugene_tensor::Matrix;
    /// assert!(Matrix::try_from_vec(2, 2, vec![1.0; 4]).is_ok());
    /// assert!(Matrix::try_from_vec(2, 2, vec![1.0; 3]).is_err());
    /// ```
    pub fn try_from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new(
                "from_vec",
                format!("{rows}x{cols} ({} elements)", rows * cols),
                format!("{} elements", data.len()),
            ));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length or if `rows` is
    /// empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                cols,
                "row {i} has length {} but expected {cols}",
                row.len()
            );
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a single-row matrix from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Creates a single-column matrix from a slice.
    pub fn col_vector(values: &[f32]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its flat row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(
            r < self.rows,
            "row index {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(
            r < self.rows,
            "row index {r} out of bounds for {} rows",
            self.rows
        );
        let cols = self.cols;
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(
            c < self.cols,
            "column index {c} out of bounds for {} columns",
            self.cols
        );
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`. Use [`Matrix::try_matmul`]
    /// for a fallible variant.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.try_matmul(rhs).expect("inner dimensions must agree")
    }

    /// Matrix product `self * rhs`, validating dimensions.
    ///
    /// Runs on the cache-blocked kernels in [`crate::kernels`], splitting
    /// output rows across the shared worker pool for large products (see
    /// [`crate::set_parallelism`]). Each output row is bitwise identical
    /// whether computed alone, inside a larger batch, or on any thread
    /// count — the serving runtime's micro-batching depends on this.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `self.cols() != rhs.rows()`.
    pub fn try_matmul(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != rhs.rows {
            return Err(ShapeError::new(
                "matmul",
                format!("lhs cols == rhs rows (lhs is {}x{})", self.rows, self.cols),
                format!("rhs is {}x{}", rhs.rows, rhs.cols),
            ));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        crate::kernels::gemm_rrr(
            self.rows,
            self.cols,
            rhs.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
        );
        Ok(out)
    }

    /// Quantizes this matrix as GEMM weights: per-tensor symmetric i8
    /// with panels packed for the current quantized kernel tier. The
    /// pack is built once and reused across every subsequent
    /// [`Matrix::matmul_quantized`] call and k-sweep.
    pub fn quantized_rhs(&self) -> crate::QuantizedRhs {
        crate::QuantizedRhs::pack(self.rows, self.cols, &self.data)
    }

    /// Matrix product `self * rhs` on the quantized i8 kernel tier:
    /// activations are quantized per-row on the fly, accumulation is
    /// exact i32, and the result is dequantized back to f32. Output
    /// rows remain bitwise independent of batch shape, like the f32
    /// kernels.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` was not packed for shape `(self.cols(), n)`.
    pub fn matmul_quantized(&self, rhs: &crate::QuantizedRhs) -> Matrix {
        let (k, n) = rhs.shape();
        assert_eq!(
            self.cols, k,
            "matmul_quantized requires lhs cols == packed rhs rows (lhs is {}x{}, rhs packed {}x{})",
            self.rows, self.cols, k, n
        );
        let mut out = Matrix::zeros(self.rows, n);
        crate::quant::qgemm(self.rows, k, n, &self.data, rhs, &mut out.data);
        out
    }

    /// Resets to a zero-filled `rows x cols` matrix, reusing the
    /// existing allocation whenever capacity allows. The arena-reuse
    /// primitive behind compiled-plan buffers: after warm-up, a plan's
    /// intermediates never touch the allocator again.
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Pre-packs this matrix as f32 GEMM weights for the current kernel
    /// tier (the f32 analog of [`Matrix::quantized_rhs`]): the column
    /// panels the blocked kernel would rebuild on every product are
    /// built once and reused by [`Matrix::matmul_epilogue_into`].
    /// Packing is pure layout, so prepacked products stay bitwise equal
    /// to per-call-packed ones.
    pub fn prepacked_rhs(&self) -> crate::PackedRhs {
        crate::PackedRhs::pack(self.rows, self.cols, &self.data)
    }

    /// Matrix product with a fused elementwise tail, into a caller-owned
    /// buffer: `out = relu(self * rhs + bias)` with both the bias add
    /// and the relu optional, and `rhs` optionally pre-packed
    /// ([`Matrix::prepacked_rhs`]). `out` is reshaped in place
    /// ([`Matrix::reset_zeroed`]), so steady-state calls allocate
    /// nothing.
    ///
    /// Bitwise equal to `self.matmul(rhs)` followed by
    /// [`Matrix::add_row_broadcast`] and a `max(0.0)` map, on every
    /// kernel tier — the compiled-plan path relies on this to reproduce
    /// the layer-walk exactly.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`, if `bias` is present with
    /// length other than `rhs.cols()`, or if `prepacked` was built from
    /// a different shape.
    pub fn matmul_epilogue_into(
        &self,
        rhs: &Matrix,
        prepacked: Option<&crate::PackedRhs>,
        bias: Option<&[f32]>,
        relu: bool,
        out: &mut Matrix,
    ) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul_epilogue_into requires lhs cols == rhs rows (lhs is {}x{}, rhs is {}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        if let Some(b) = bias {
            assert_eq!(
                b.len(),
                rhs.cols,
                "bias must have length {} (got {})",
                rhs.cols,
                b.len()
            );
        }
        if let Some(p) = prepacked {
            assert_eq!(
                p.shape(),
                (rhs.rows, rhs.cols),
                "prepacked panels were built for another shape"
            );
        }
        out.reset_zeroed(self.rows, rhs.cols);
        crate::kernels::gemm_rrr_epilogue(
            self.rows,
            self.cols,
            rhs.cols,
            &self.data,
            &rhs.data,
            prepacked,
            &mut out.data,
            crate::simd::Epilogue { bias, relu },
        );
    }

    /// Quantized-tier sibling of [`Matrix::matmul_epilogue_into`]:
    /// `out = relu(self * rhs + bias)` over the i8 kernel, with the
    /// elementwise tail applied after dequantization in the exact
    /// layer-walk order (bitwise equal to [`Matrix::matmul_quantized`]
    /// followed by the separate bias/relu passes). The weights are
    /// already packed per tier inside [`crate::QuantizedRhs`].
    ///
    /// # Panics
    ///
    /// Panics if `rhs` was not packed for shape `(self.cols(), n)` or
    /// if `bias` is present with length other than `n`.
    pub fn matmul_quantized_epilogue_into(
        &self,
        rhs: &crate::QuantizedRhs,
        bias: Option<&[f32]>,
        relu: bool,
        out: &mut Matrix,
    ) {
        let (k, n) = rhs.shape();
        assert_eq!(
            self.cols, k,
            "matmul_quantized_epilogue_into requires lhs cols == packed rhs rows (lhs is {}x{}, rhs packed {}x{})",
            self.rows, self.cols, k, n
        );
        if let Some(b) = bias {
            assert_eq!(b.len(), n, "bias must have length {n} (got {})", b.len());
        }
        out.reset_zeroed(self.rows, n);
        crate::quant::qgemm(self.rows, k, n, &self.data, rhs, &mut out.data);
        if self.rows > 0 && n > 0 {
            crate::simd::Epilogue { bias, relu }.apply(&mut out.data, n, 0, self.rows, 0, n);
        }
    }

    /// Matrix product `self^T * rhs`.
    ///
    /// Packs `self^T` into a row-major buffer and reuses the blocked
    /// [`crate::kernels`] path, so backward passes get the same blocking
    /// and parallelism as forward ones.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "t_matmul requires equal row counts (lhs {}x{}, rhs {}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let packed = crate::kernels::transpose_pack(self.rows, self.cols, &self.data);
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        crate::kernels::gemm_rrr(
            self.cols,
            self.rows,
            rhs.cols,
            &packed,
            &rhs.data,
            &mut out.data,
        );
        out
    }

    /// Matrix product `self * rhs^T`.
    ///
    /// Packs `rhs^T` into a row-major buffer and reuses the blocked
    /// [`crate::kernels`] path.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_t requires equal column counts (lhs {}x{}, rhs {}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let packed = crate::kernels::transpose_pack(rhs.rows, rhs.cols, &rhs.data);
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        crate::kernels::gemm_rrr(
            self.rows,
            self.cols,
            rhs.rows,
            &self.data,
            &packed,
            &mut out.data,
        );
        out
    }

    /// Naive i-k-j product retained as the correctness reference for the
    /// blocked kernels (property tests) and as the bench baseline. Unlike
    /// the pre-blocking kernel it never skips zero multiplicands, so IEEE
    /// non-finite propagation (`0.0 * NaN = NaN`) holds here too.
    pub fn matmul_reference(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul_reference requires lhs cols == rhs rows (lhs {}x{}, rhs {}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let out_row = i * rhs.cols;
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                let rhs_row = k * rhs.cols;
                for j in 0..rhs.cols {
                    out.data[out_row + j] += a * rhs.data[rhs_row + j];
                }
            }
        }
        out
    }

    /// Naive reference for [`Matrix::t_matmul`]; see
    /// [`Matrix::matmul_reference`].
    pub fn t_matmul_reference(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "t_matmul_reference requires equal row counts (lhs {}x{}, rhs {}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            let lhs_row = k * self.cols;
            let rhs_row = k * rhs.cols;
            for i in 0..self.cols {
                let a = self.data[lhs_row + i];
                let out_row = i * rhs.cols;
                for j in 0..rhs.cols {
                    out.data[out_row + j] += a * rhs.data[rhs_row + j];
                }
            }
        }
        out
    }

    /// Naive reference for [`Matrix::matmul_t`]; see
    /// [`Matrix::matmul_reference`].
    pub fn matmul_t_reference(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_t_reference requires equal column counts (lhs {}x{}, rhs {}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let lhs_row = i * self.cols;
            for j in 0..rhs.rows {
                let rhs_row = j * rhs.cols;
                let mut acc = 0.0;
                for k in 0..self.cols {
                    acc += self.data[lhs_row + k] * rhs.data[rhs_row + k];
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(
            v.len(),
            self.cols,
            "matvec requires vector length {} (got {})",
            self.cols,
            v.len()
        );
        let mut out = vec![0.0; self.rows];
        for (r, out_r) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v) {
                acc += a * b;
            }
            *out_r = acc;
        }
        out
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().copied().map(f).collect(),
        }
    }

    /// Element-wise map in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Combines two equal-shaped matrices element-wise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_with(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "element-wise op requires equal shapes ({}x{} vs {}x{})",
            self.rows,
            self.cols,
            rhs.rows,
            rhs.cols
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Adds `scale * rhs` to `self` in place (a fused AXPY).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled(&mut self, rhs: &Matrix, scale: f32) {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "add_scaled requires equal shapes ({}x{} vs {}x{})",
            self.rows,
            self.cols,
            rhs.rows,
            rhs.cols
        );
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += scale * b;
        }
    }

    /// Multiplies every element by `scale` in place.
    pub fn scale_in_place(&mut self, scale: f32) {
        for x in &mut self.data {
            *x *= scale;
        }
    }

    /// Adds `row` (a 1 x cols vector) to every row; used for bias terms.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()`.
    pub fn add_row_broadcast(&mut self, row: &[f32]) {
        assert_eq!(
            row.len(),
            self.cols,
            "broadcast row must have length {} (got {})",
            self.cols,
            row.len()
        );
        for r in 0..self.rows {
            let base = r * self.cols;
            for (dst, &src) in self.data[base..base + self.cols].iter_mut().zip(row) {
                *dst += src;
            }
        }
    }

    /// Sums each column into a vector of length `cols`.
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let base = r * self.cols;
            for (c, out_c) in out.iter_mut().enumerate() {
                *out_c += self.data[base + c];
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Square of the Frobenius norm.
    pub fn frobenius_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Maximum absolute element, or `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, x| m.max(x.abs()))
    }

    /// Concatenates two matrices horizontally (`[self | rhs]`).
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hconcat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "hconcat requires equal row counts ({} vs {})",
            self.rows, rhs.rows
        );
        let cols = self.cols + rhs.cols;
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(rhs.row(r));
        }
        out
    }

    /// Extracts a sub-matrix keeping only the listed rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &r in indices {
            data.extend_from_slice(self.row(r));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Extracts a sub-matrix keeping only the listed columns, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        for &c in indices {
            assert!(
                c < self.cols,
                "column index {c} out of bounds for {} columns",
                self.cols
            );
        }
        let mut data = Vec::with_capacity(indices.len() * self.rows);
        for r in 0..self.rows {
            let base = r * self.cols;
            for &c in indices {
                data.push(self.data[base + c]);
            }
        }
        Matrix {
            rows: self.rows,
            cols: indices.len(),
            data,
        }
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self[(r, c)])?;
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a + b)
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a - b)
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;

    fn mul(self, scale: f32) -> Matrix {
        self.map(|x| x * scale)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        self.add_scaled(rhs, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
        a.shape() == b.shape()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn zeros_and_filled() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert_eq!(z.sum(), 0.0);
        let f = Matrix::filled(2, 2, 1.5);
        assert_eq!(f.sum(), 6.0);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matmul(&Matrix::identity(2)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        let expected = Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]);
        assert_eq!(c, expected);
    }

    #[test]
    fn try_matmul_rejects_mismatched_inner_dims() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.try_matmul(&b).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        assert!(approx_eq(&a.t_matmul(&b), &a.transpose().matmul(&b), 1e-6));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0], &[9.0, 10.0]]);
        assert!(approx_eq(&a.matmul_t(&b), &a.matmul(&b.transpose()), 1e-6));
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = [5.0, 6.0];
        let got = a.matvec(&v);
        let expected = a.matmul(&Matrix::col_vector(&v));
        assert_eq!(got, expected.into_vec());
    }

    #[test]
    fn row_and_col_access() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn add_row_broadcast_adds_bias_to_each_row() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn sum_rows_accumulates_columns() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.sum_rows(), vec![4.0, 6.0]);
    }

    #[test]
    fn select_rows_and_cols() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        let rows = a.select_rows(&[2, 0]);
        assert_eq!(
            rows,
            Matrix::from_rows(&[&[7.0, 8.0, 9.0], &[1.0, 2.0, 3.0]])
        );
        let cols = a.select_cols(&[1]);
        assert_eq!(cols, Matrix::from_rows(&[&[2.0], &[5.0], &[8.0]]));
    }

    #[test]
    fn operators_add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(&a + &b, Matrix::from_rows(&[&[4.0, 6.0]]));
        assert_eq!(&b - &a, Matrix::from_rows(&[&[2.0, 2.0]]));
        assert_eq!(&a * 2.0, Matrix::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut a = Matrix::from_rows(&[&[1.0, 1.0]]);
        let b = Matrix::from_rows(&[&[2.0, 3.0]]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a, Matrix::from_rows(&[&[2.0, 2.5]]));
    }

    #[test]
    fn hadamard_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, 8.0]]));
    }

    #[test]
    fn frobenius_and_max_abs() {
        let a = Matrix::from_rows(&[&[3.0, -4.0]]);
        assert_eq!(a.frobenius_sq(), 25.0);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    #[should_panic(expected = "row index")]
    fn row_out_of_bounds_panics() {
        Matrix::zeros(1, 1).row(1);
    }

    #[test]
    fn debug_is_nonempty() {
        let repr = format!("{:?}", Matrix::zeros(1, 1));
        assert!(repr.contains("Matrix 1x1"));
    }

    #[test]
    fn matmul_propagates_nan_and_inf_through_zero_coefficients() {
        // Regression: the old kernel skipped k terms where the lhs value
        // was exactly 0.0, silently dropping 0.0 * NaN and 0.0 * inf
        // contributions that IEEE 754 requires to poison the output.
        let lhs = Matrix::from_rows(&[&[0.0, 1.0]]);
        let rhs = Matrix::from_rows(&[&[f32::NAN, f32::INFINITY], &[2.0, 3.0]]);
        let out = lhs.matmul(&rhs);
        assert!(out[(0, 0)].is_nan(), "0.0 * NaN must yield NaN");
        assert!(out[(0, 1)].is_nan(), "0.0 * inf must yield NaN");

        let t_out = lhs.transpose().t_matmul(&rhs);
        assert!(t_out[(0, 0)].is_nan(), "t_matmul must propagate NaN too");
        assert!(t_out[(0, 1)].is_nan());

        let mt_out = lhs.matmul_t(&rhs.transpose());
        assert!(mt_out[(0, 0)].is_nan(), "matmul_t must propagate NaN too");
        assert!(mt_out[(0, 1)].is_nan());
    }

    #[test]
    fn reference_kernels_match_blocked_kernels() {
        let a = Matrix::from_rows(&[&[1.5, -2.0, 0.5], &[0.0, 3.0, -1.0]]);
        let b = Matrix::from_rows(&[&[2.0, 1.0], &[-1.0, 0.5], &[4.0, -3.0]]);
        assert!(approx_eq(&a.matmul(&b), &a.matmul_reference(&b), 1e-6));
        assert!(approx_eq(&a.t_matmul(&a), &a.t_matmul_reference(&a), 1e-6));
        assert!(approx_eq(&b.matmul_t(&b), &b.matmul_t_reference(&b), 1e-6));
    }

    #[test]
    fn matmul_epilogue_into_matches_separate_passes_bitwise() {
        let fill = |seed: usize, len: usize| -> Vec<f32> {
            (0..len)
                .map(|i| (((i * 31 + seed * 17 + 5) % 101) as f32) * 0.33 - 16.0)
                .collect()
        };
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (8, 512, 512), (5, 300, 37)] {
            let lhs = Matrix::from_vec(m, k, fill(m, m * k));
            let rhs = Matrix::from_vec(k, n, fill(n, k * n));
            let bias = fill(m + n, n);
            let mut expect = lhs.matmul(&rhs);
            expect.add_row_broadcast(&bias);
            let expect = expect.map(|x| x.max(0.0));
            let pack = rhs.prepacked_rhs();
            let mut got = Matrix::zeros(0, 0);
            for prepacked in [None, Some(&pack)] {
                lhs.matmul_epilogue_into(&rhs, prepacked, Some(&bias), true, &mut got);
                assert_eq!(got.shape(), (m, n));
                for (a, b) in got.as_slice().iter().zip(expect.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{m}x{k}x{n}");
                }
            }
        }
    }

    #[test]
    fn matmul_quantized_epilogue_into_matches_separate_passes_bitwise() {
        let m = 6;
        let k = 64;
        let n = 40;
        let lhs = Matrix::from_vec(
            m,
            k,
            (0..m * k).map(|i| ((i % 17) as f32) * 0.1 - 0.8).collect(),
        );
        let w = Matrix::from_vec(
            k,
            n,
            (0..k * n).map(|i| ((i % 23) as f32) * 0.05 - 0.5).collect(),
        );
        let bias: Vec<f32> = (0..n).map(|i| (i as f32) * 0.01 - 0.2).collect();
        let q = w.quantized_rhs();
        let mut expect = lhs.matmul_quantized(&q);
        expect.add_row_broadcast(&bias);
        let expect = expect.map(|x| x.max(0.0));
        let mut got = Matrix::zeros(0, 0);
        lhs.matmul_quantized_epilogue_into(&q, Some(&bias), true, &mut got);
        assert_eq!(got.shape(), (m, n));
        for (a, b) in got.as_slice().iter().zip(expect.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn reset_zeroed_reuses_capacity_and_zeroes() {
        let mut m = Matrix::filled(4, 8, 3.0);
        let ptr = m.as_slice().as_ptr();
        m.reset_zeroed(2, 8);
        assert_eq!(m.shape(), (2, 8));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(m.as_slice().as_ptr(), ptr, "shrinking must not reallocate");
    }

    #[test]
    fn iter_rows_yields_each_row() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let rows: Vec<&[f32]> = a.iter_rows().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    }
}
