//! Probability and summary-statistics helpers shared by the calibration,
//! scheduling, and evaluation code.

/// Index of the largest element; ties resolve to the first maximum.
///
/// Used to turn a softmax probability vector into a predicted class.
///
/// # Panics
///
/// Panics if `values` is empty.
///
/// # Examples
///
/// ```
/// use eugene_tensor::argmax;
/// assert_eq!(argmax(&[0.1, 0.7, 0.2]), 1);
/// ```
pub fn argmax(values: &[f32]) -> usize {
    assert!(!values.is_empty(), "argmax of an empty slice");
    let mut best = 0;
    for (i, &v) in values.iter().enumerate().skip(1) {
        if v > values[best] {
            best = i;
        }
    }
    best
}

/// Numerically stable softmax over `logits`.
///
/// # Examples
///
/// ```
/// use eugene_tensor::softmax;
/// let p = softmax(&[1.0, 2.0, 3.0]);
/// assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
/// assert!(p[2] > p[1] && p[1] > p[0]);
/// ```
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let mut out = logits.to_vec();
    softmax_in_place(&mut out);
    out
}

/// Numerically stable softmax, transforming `logits` in place.
pub fn softmax_in_place(logits: &mut [f32]) {
    if logits.is_empty() {
        return;
    }
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in logits.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in logits.iter_mut() {
        *x /= sum;
    }
}

/// Numerically stable log-softmax over `logits`.
pub fn log_softmax(logits: &[f32]) -> Vec<f32> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = logits.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
    logits.iter().map(|&x| x - max - log_sum).collect()
}

/// Shannon entropy `H(p) = -sum p ln p` (natural log) of a probability
/// vector. Zero entries contribute zero, matching the `p ln p -> 0` limit.
///
/// Entropy is the regularizer in the paper's calibration loss (Eq. 4).
///
/// # Examples
///
/// ```
/// use eugene_tensor::entropy;
/// assert!(entropy(&[1.0, 0.0]) < 1e-6);
/// let uniform = entropy(&[0.5, 0.5]);
/// assert!((uniform - 0.5_f32.ln().abs() * 1.0).abs() < 1e-5);
/// ```
pub fn entropy(probs: &[f32]) -> f32 {
    probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f32>() / values.len() as f32
}

/// Population variance; `0.0` for slices with fewer than two elements.
pub fn variance(values: &[f32]) -> f32 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|x| (x - m).powi(2)).sum::<f32>() / values.len() as f32
}

/// Population standard deviation.
pub fn std_dev(values: &[f32]) -> f32 {
    variance(values).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_first_tie_wins() {
        assert_eq!(argmax(&[0.5, 0.5, 0.1]), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn argmax_empty_panics() {
        argmax(&[]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_shift_invariant() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let q = softmax(&[101.0, 102.0, 103.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        for (a, b) in p.iter().zip(&q) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_large_logits_without_overflow() {
        let p = softmax(&[1000.0, 999.0]);
        assert!(p.iter().all(|x| x.is_finite()));
        assert!(p[0] > p[1]);
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let logits = [0.3, -1.2, 2.5];
        let ls = log_softmax(&logits);
        let p = softmax(&logits);
        for (a, b) in ls.iter().zip(&p) {
            assert!((a.exp() - b).abs() < 1e-6);
        }
    }

    #[test]
    fn entropy_is_maximal_for_uniform() {
        let k = 10;
        let uniform = vec![1.0 / k as f32; k];
        let h_uniform = entropy(&uniform);
        let mut peaked = vec![0.01; k];
        peaked[0] = 1.0 - 0.09;
        let h_peaked = entropy(&peaked);
        assert!(h_uniform > h_peaked);
        assert!((h_uniform - (k as f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn entropy_of_one_hot_is_zero() {
        assert_eq!(entropy(&[0.0, 1.0, 0.0]), 0.0);
    }

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-6);
        assert!((variance(&xs) - 4.0).abs() < 1e-6);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_and_singleton_stats() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }
}
