//! 64-byte-aligned growable buffers for kernel pack panels.
//!
//! The explicit-SIMD micro-kernels in [`crate::simd`] and [`crate::quant`]
//! read their packed A/B panels with aligned vector loads. `Vec<f32>`
//! only guarantees the allocator's default alignment, so panels live in
//! an [`AlignedVec`]: a minimal, dependency-free buffer whose storage is
//! always aligned to [`AlignedVec::ALIGN`] bytes (64 — one cache line,
//! enough for AVX-512 and therefore for the 32-byte AVX2 loads the
//! kernels require today). Every micro-kernel `debug_assert!`s its panel
//! pointers against [`is_panel_aligned`].

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::ptr::NonNull;

/// Alignment, in bytes, of every [`AlignedVec`] allocation.
pub const PANEL_ALIGN: usize = 64;

/// Returns whether `ptr` meets the 32-byte alignment the AVX2 panel
/// loads require (allocations actually provide [`PANEL_ALIGN`]).
#[inline]
pub fn is_panel_aligned<T>(ptr: *const T) -> bool {
    (ptr as usize).is_multiple_of(32)
}

/// A growable, 64-byte-aligned buffer of plain-old-data elements.
///
/// Unlike `Vec`, growing never preserves contents: pack buffers are
/// fully rewritten before each use, so [`AlignedVec::ensure_len`]
/// documents its contents as unspecified after a grow.
///
/// # Examples
///
/// ```
/// use eugene_tensor::AlignedVec;
///
/// let mut buf: AlignedVec<f32> = AlignedVec::new();
/// buf.ensure_len(100);
/// buf.as_mut_slice()[..100].fill(1.0);
/// assert_eq!(buf.as_slice().as_ptr() as usize % 64, 0);
/// ```
pub struct AlignedVec<T: Copy + Default> {
    ptr: Option<NonNull<T>>,
    len: usize,
    cap: usize,
}

impl<T: Copy + Default> AlignedVec<T> {
    /// Alignment, in bytes, of the backing allocation.
    pub const ALIGN: usize = PANEL_ALIGN;

    /// Creates an empty buffer (no allocation yet).
    pub const fn new() -> Self {
        Self {
            ptr: None,
            len: 0,
            cap: 0,
        }
    }

    /// Creates a buffer of `len` default-filled elements.
    pub fn zeroed(len: usize) -> Self {
        let mut v = Self::new();
        v.ensure_len(len);
        v.as_mut_slice().fill(T::default());
        v
    }

    /// Current length in elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn layout(cap: usize) -> Layout {
        Layout::from_size_align(cap * std::mem::size_of::<T>(), Self::ALIGN)
            .expect("aligned panel layout")
    }

    /// Makes the buffer exactly `len` elements long, reallocating if the
    /// capacity is too small. Contents are **unspecified** after a call
    /// that grows capacity — callers fully rewrite pack panels anyway.
    pub fn ensure_len(&mut self, len: usize) {
        if len > self.cap {
            let new_cap = len.next_power_of_two().max(64);
            let layout = Self::layout(new_cap);
            // SAFETY: layout has non-zero size (new_cap >= 64, T is a
            // non-ZST numeric in practice; ZSTs never reach here because
            // size 0 layouts are rejected by the alloc call guard below).
            assert!(layout.size() > 0, "AlignedVec of zero-sized type");
            let raw = unsafe { alloc(layout) };
            let Some(new_ptr) = NonNull::new(raw.cast::<T>()) else {
                handle_alloc_error(layout);
            };
            if let Some(old) = self.ptr.take() {
                // SAFETY: old was allocated with layout(self.cap).
                unsafe { dealloc(old.as_ptr().cast(), Self::layout(self.cap)) };
            }
            self.ptr = Some(new_ptr);
            self.cap = new_cap;
        }
        self.len = len;
    }

    /// The buffer as an immutable slice.
    pub fn as_slice(&self) -> &[T] {
        match self.ptr {
            // SAFETY: ptr is valid for cap >= len elements.
            Some(p) => unsafe { std::slice::from_raw_parts(p.as_ptr(), self.len) },
            None => &[],
        }
    }

    /// The buffer as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match self.ptr {
            // SAFETY: ptr is valid for cap >= len elements and uniquely
            // borrowed through &mut self.
            Some(p) => unsafe { std::slice::from_raw_parts_mut(p.as_ptr(), self.len) },
            None => &mut [],
        }
    }

    /// Raw base pointer (null-dangling when empty); always 64-byte
    /// aligned when non-empty.
    pub fn as_ptr(&self) -> *const T {
        match self.ptr {
            Some(p) => p.as_ptr(),
            None => std::ptr::NonNull::dangling().as_ptr(),
        }
    }
}

impl<T: Copy + Default> Default for AlignedVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default> Drop for AlignedVec<T> {
    fn drop(&mut self) {
        if let Some(p) = self.ptr.take() {
            // SAFETY: allocated with layout(self.cap) in ensure_len.
            unsafe { dealloc(p.as_ptr().cast(), Self::layout(self.cap)) };
        }
    }
}

// SAFETY: AlignedVec owns its allocation; T: Copy has no interior
// mutability or thread affinity.
unsafe impl<T: Copy + Default + Send> Send for AlignedVec<T> {}
unsafe impl<T: Copy + Default + Sync> Sync for AlignedVec<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_64_byte_aligned() {
        for len in [1usize, 7, 64, 1000, 4097] {
            let mut v: AlignedVec<f32> = AlignedVec::new();
            v.ensure_len(len);
            assert_eq!(v.as_ptr() as usize % 64, 0, "len {len}");
            assert!(is_panel_aligned(v.as_ptr()));
            assert_eq!(v.len(), len);
            v.as_mut_slice().fill(3.0);
            assert!(v.as_slice().iter().all(|&x| x == 3.0));
        }
    }

    #[test]
    fn growth_and_shrink_track_len() {
        let mut v: AlignedVec<i16> = AlignedVec::new();
        assert!(v.is_empty());
        v.ensure_len(10);
        v.as_mut_slice().fill(5);
        v.ensure_len(4);
        assert_eq!(v.as_slice(), &[5i16; 4][..]);
        v.ensure_len(2000);
        assert_eq!(v.len(), 2000);
        assert_eq!(v.as_ptr() as usize % 64, 0);
    }

    #[test]
    fn zeroed_is_default_filled() {
        let v: AlignedVec<i32> = AlignedVec::zeroed(33);
        assert!(v.as_slice().iter().all(|&x| x == 0));
    }
}
