//! Numeric precision tags for kernel and stage execution.

/// The numeric precision a computation (a layer, a network stage, a
/// kernel call) executes in.
///
/// Threaded from the kernel tier up through `eugene-nn` stage configs
/// and the serving runtime's cost model: quantized stages and f32
/// stages have very different latencies, so everything that estimates
/// or observes stage cost keys on this tag to avoid poisoning one
/// precision's EMA with the other's samples.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum Precision {
    /// Full-precision f32 kernels (the default tier).
    #[default]
    F32,
    /// Quantized i8×i8→i32 kernels with f32 dequantization.
    Int8,
}

impl Precision {
    /// Number of distinct precision tags (for per-precision tables).
    pub const COUNT: usize = 2;

    /// Stable dense index for per-precision lookup tables.
    pub fn index(self) -> usize {
        match self {
            Precision::F32 => 0,
            Precision::Int8 => 1,
        }
    }

    /// Short stable name (used in results JSON and logs).
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_stable() {
        assert_eq!(Precision::F32.index(), 0);
        assert_eq!(Precision::Int8.index(), 1);
        assert_eq!(Precision::COUNT, 2);
        assert_eq!(Precision::default(), Precision::F32);
        assert_eq!(Precision::Int8.to_string(), "int8");
    }
}
