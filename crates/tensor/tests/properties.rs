//! Property-based tests for the linear-algebra substrate.

use eugene_tensor::{argmax, entropy, softmax, Matrix};
use proptest::prelude::*;

/// Strategy producing a matrix with the given shape and small finite values.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol)
}

proptest! {
    #[test]
    fn matmul_associativity(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(approx_eq(&left, &right, 1e-2));
    }

    #[test]
    fn matmul_distributes_over_addition(a in matrix(3, 3), b in matrix(3, 3), c in matrix(3, 3)) {
        let left = a.matmul(&(&b + &c));
        let right = &a.matmul(&b) + &a.matmul(&c);
        prop_assert!(approx_eq(&left, &right, 1e-3));
    }

    #[test]
    fn transpose_reverses_product(a in matrix(3, 4), b in matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(approx_eq(&left, &right, 1e-3));
    }

    #[test]
    fn t_matmul_agrees_with_transpose(a in matrix(4, 3), b in matrix(4, 2)) {
        prop_assert!(approx_eq(&a.t_matmul(&b), &a.transpose().matmul(&b), 1e-3));
    }

    #[test]
    fn matmul_t_agrees_with_transpose(a in matrix(3, 4), b in matrix(2, 4)) {
        prop_assert!(approx_eq(&a.matmul_t(&b), &a.matmul(&b.transpose()), 1e-3));
    }

    #[test]
    fn addition_commutes(a in matrix(4, 4), b in matrix(4, 4)) {
        prop_assert!(approx_eq(&(&a + &b), &(&b + &a), 1e-6));
    }

    #[test]
    fn hadamard_commutes(a in matrix(2, 6), b in matrix(2, 6)) {
        prop_assert!(approx_eq(&a.hadamard(&b), &b.hadamard(&a), 1e-6));
    }

    #[test]
    fn select_rows_identity(a in matrix(5, 3)) {
        let all: Vec<usize> = (0..5).collect();
        prop_assert_eq!(a.select_rows(&all), a.clone());
    }

    #[test]
    fn softmax_is_a_distribution(logits in prop::collection::vec(-20.0f32..20.0, 1..16)) {
        let p = softmax(&logits);
        prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn softmax_preserves_argmax(logits in prop::collection::vec(-20.0f32..20.0, 2..16)) {
        let p = softmax(&logits);
        prop_assert_eq!(argmax(&logits), argmax(&p));
    }

    #[test]
    fn entropy_bounded_by_log_k(logits in prop::collection::vec(-10.0f32..10.0, 2..12)) {
        let p = softmax(&logits);
        let h = entropy(&p);
        prop_assert!(h >= -1e-5);
        prop_assert!(h <= (p.len() as f32).ln() + 1e-4);
    }

    #[test]
    fn sum_rows_matches_manual(a in matrix(4, 3)) {
        let sums = a.sum_rows();
        for c in 0..3 {
            let manual: f32 = (0..4).map(|r| a[(r, c)]).sum();
            prop_assert!((sums[c] - manual).abs() < 1e-4);
        }
    }
}
