//! Property tests pinning the blocked/parallel kernels to the retained
//! naive references across random shapes, including sizes that are not
//! multiples of the tile widths and `parallelism(1)`.

use eugene_tensor::{set_parallelism, Matrix};
use proptest::prelude::*;

/// Random `(m, k, n)` shapes straddling the quad width (4), the 4-k
/// unroll, and the small/blocked-path threshold.
fn shapes() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..48, 1usize..96, 1usize..48)
}

fn within(a: &Matrix, b: &Matrix, tol: f32) -> Result<(), proptest::CaseError> {
    prop_assert_eq!(a.shape(), b.shape());
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        prop_assert!(
            (x - y).abs() <= tol,
            "element {} differs: {} vs {}",
            i,
            x,
            y
        );
    }
    Ok(())
}

proptest! {
    #[test]
    fn kernels_match_references_across_random_shapes(
        (m, k, n) in shapes(),
        lhs in prop::collection::vec(-10.0f32..10.0, 48 * 96),
        rhs in prop::collection::vec(-10.0f32..10.0, 96 * 48),
    ) {
        let a = Matrix::from_vec(m, k, lhs[..m * k].to_vec());
        let b = Matrix::from_vec(k, n, rhs[..k * n].to_vec());
        within(&a.matmul(&b), &a.matmul_reference(&b), 1e-6)?;

        let at = Matrix::from_vec(k, m, lhs[..k * m].to_vec());
        within(&at.t_matmul(&b), &at.t_matmul_reference(&b), 1e-6)?;

        let bt = Matrix::from_vec(n, k, rhs[..n * k].to_vec());
        within(&a.matmul_t(&bt), &a.matmul_t_reference(&bt), 1e-6)?;
    }

    #[test]
    fn parallelism_one_matches_auto(
        lhs in prop::collection::vec(-5.0f32..5.0, 40 * 80),
        rhs in prop::collection::vec(-5.0f32..5.0, 80 * 36),
    ) {
        // 40 x 80 x 36 is above the parallel threshold, so the two runs
        // take different dispatch paths yet must agree bitwise.
        let a = Matrix::from_vec(40, 80, lhs);
        let b = Matrix::from_vec(80, 36, rhs);
        set_parallelism(1);
        let serial = a.matmul(&b);
        set_parallelism(0);
        let auto = a.matmul(&b);
        prop_assert_eq!(serial.as_slice(), auto.as_slice());
    }
}

/// Large non-multiple-of-tile shape crossing KC (256): the blocked path
/// must still match the reference exactly (identical accumulation order).
#[test]
fn blocked_path_is_bitwise_equal_to_reference_past_kc() {
    let m = 37;
    let k = 301; // crosses the KC = 256 k-block boundary
    let n = 29;
    let a = Matrix::from_vec(
        m,
        k,
        (0..m * k)
            .map(|i| ((i * 31 + 7) % 113) as f32 * 0.125 - 7.0)
            .collect(),
    );
    let b = Matrix::from_vec(
        k,
        n,
        (0..k * n)
            .map(|i| ((i * 17 + 3) % 127) as f32 * 0.0625 - 4.0)
            .collect(),
    );
    assert_eq!(a.matmul(&b).as_slice(), a.matmul_reference(&b).as_slice());
}
