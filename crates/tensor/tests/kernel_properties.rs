//! Property tests pinning every kernel tier to its contract across
//! random shapes straddling the tile widths (MR = 4, NR = 16), the 4-k
//! unroll, the small/blocked threshold, and KC (256).
//!
//! The parity contract (see `crates/tensor/src/simd.rs`):
//!
//! - **Scalar tier** (`SimdMode::ForceScalar`): bitwise-equal to the
//!   naive `*_reference` kernels — the pre-existing contract.
//! - **SIMD tier**: the AVX2/FMA kernel is bitwise-equal to the
//!   portable fused twin (`ForceSimd` vs `ForcePortable`), and both
//!   stay within accumulated-rounding tolerance of the reference (FMA
//!   rounds once per step where the reference rounds twice, so the
//!   tiers cannot be bitwise-equal to *each other*).
//! - **Quantized tier**: every i8 kernel (VNNI / maddwd / scalar) is
//!   bitwise-identical (exact i32 accumulation), and the dequantized
//!   result tracks the exact product within the analytic bound derived
//!   from the symmetric scales.
//!
//! `simd_mode` is process-global, so every test that sets or depends on
//! it serializes on [`mode_lock`] and restores the ambient mode.

use eugene_tensor::{
    qgemm, row_scales, set_parallelism, set_simd_mode, simd_mode, Matrix, SimdMode,
};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes tests around the process-global kernel-path override.
fn mode_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

/// Runs `body` with the kernel path forced to `mode`, restoring the
/// previous mode afterwards (panic-safe via the poison-tolerant lock).
fn with_mode<R>(mode: SimdMode, body: impl FnOnce() -> R) -> R {
    let before = simd_mode();
    set_simd_mode(mode);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
    set_simd_mode(before);
    match result {
        Ok(r) => r,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Random `(m, k, n)` shapes straddling the quad height (MR = 4), the
/// panel width (NR = 16), and the small/blocked-path threshold.
fn shapes() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..48, 1usize..96, 1usize..48)
}

/// Shapes whose k crosses the KC = 256 k-block boundary.
fn deep_shapes() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..12, 200usize..320, 1usize..40)
}

fn assert_bitwise(a: &Matrix, b: &Matrix, what: &str) -> Result<(), proptest::CaseError> {
    prop_assert_eq!(a.shape(), b.shape());
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        prop_assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{}: element {} differs: {} vs {}",
            what,
            i,
            x,
            y
        );
    }
    Ok(())
}

/// Rounding-aware proximity: the error of k single- vs double-rounded
/// accumulation steps scales with the *intermediate* partial-sum
/// magnitudes (bounded by Σ|aᵢ·bᵢ|), not with the possibly-cancelled
/// final value, so the tolerance is absolute in that bound.
fn within_rounding(
    a: &Matrix,
    b: &Matrix,
    k: usize,
    max_abs_product: f32,
) -> Result<(), proptest::CaseError> {
    prop_assert_eq!(a.shape(), b.shape());
    let tol = 4.0 * f32::EPSILON * (k as f32) * (k as f32) * max_abs_product + 1e-6;
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        prop_assert!(
            (x - y).abs() <= tol,
            "element {} differs: {} vs {} (tol {})",
            i,
            x,
            y,
            tol
        );
    }
    Ok(())
}

proptest! {
    /// The scalar tier keeps the original contract: bitwise-equal to
    /// the naive references for all three product variants.
    #[test]
    fn scalar_tier_matches_references_bitwise(
        (m, k, n) in shapes(),
        lhs in prop::collection::vec(-10.0f32..10.0, 48 * 96),
        rhs in prop::collection::vec(-10.0f32..10.0, 96 * 48),
    ) {
        let _guard = mode_lock();
        with_mode(SimdMode::ForceScalar, || {
            let a = Matrix::from_vec(m, k, lhs[..m * k].to_vec());
            let b = Matrix::from_vec(k, n, rhs[..k * n].to_vec());
            assert_bitwise(&a.matmul(&b), &a.matmul_reference(&b), "matmul")?;

            let at = Matrix::from_vec(k, m, lhs[..k * m].to_vec());
            assert_bitwise(&at.t_matmul(&b), &at.t_matmul_reference(&b), "t_matmul")?;

            let bt = Matrix::from_vec(n, k, rhs[..n * k].to_vec());
            assert_bitwise(&a.matmul_t(&bt), &a.matmul_t_reference(&bt), "matmul_t")?;
            Ok(())
        })?;
    }

    /// Forced-SIMD == forced-portable bitwise: the AVX2/FMA kernel and
    /// its portable `mul_add` twin are interchangeable on every shape
    /// (on hosts without AVX2+FMA both force the portable twin and the
    /// assertion is trivially true — the tolerance check still bites).
    #[test]
    fn simd_tier_matches_portable_twin_bitwise(
        (m, k, n) in shapes(),
        lhs in prop::collection::vec(-10.0f32..10.0, 48 * 96),
        rhs in prop::collection::vec(-10.0f32..10.0, 96 * 48),
    ) {
        let _guard = mode_lock();
        let a = Matrix::from_vec(m, k, lhs[..m * k].to_vec());
        let b = Matrix::from_vec(k, n, rhs[..k * n].to_vec());
        let simd = with_mode(SimdMode::ForceSimd, || a.matmul(&b));
        let portable = with_mode(SimdMode::ForcePortable, || a.matmul(&b));
        assert_bitwise(&simd, &portable, "simd vs portable")?;
        // Both fused results stay near the (twice-rounding) reference:
        // per-element error is bounded by k rounding steps at partial
        // sums no larger than k · max|a·b| (inputs are in ±10).
        let reference = a.matmul_reference(&b);
        within_rounding(&simd, &reference, k, 100.0)?;
    }

    /// The SIMD tier crosses the KC k-block boundary without reordering
    /// accumulation: the packed/blocked kernel equals the unblocked
    /// portable twin bitwise even for k > KC.
    #[test]
    fn simd_blocking_preserves_accumulation_order_past_kc(
        (m, k, n) in deep_shapes(),
        seed in any::<u64>(),
    ) {
        let _guard = mode_lock();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        };
        let a = Matrix::from_vec(m, k, (0..m * k).map(|_| next()).collect());
        let b = Matrix::from_vec(k, n, (0..k * n).map(|_| next()).collect());
        let simd = with_mode(SimdMode::ForceSimd, || a.matmul(&b));
        let portable = with_mode(SimdMode::ForcePortable, || a.matmul(&b));
        assert_bitwise(&simd, &portable, "deep simd vs portable")?;
    }

    #[test]
    fn parallelism_one_matches_auto(
        lhs in prop::collection::vec(-5.0f32..5.0, 40 * 80),
        rhs in prop::collection::vec(-5.0f32..5.0, 80 * 36),
    ) {
        let _guard = mode_lock();
        // 40 x 80 x 36 is above the parallel threshold, so the two runs
        // take different dispatch paths yet must agree bitwise —
        // whichever tier is ambient.
        let a = Matrix::from_vec(40, 80, lhs);
        let b = Matrix::from_vec(80, 36, rhs);
        set_parallelism(1);
        let serial = a.matmul(&b);
        set_parallelism(0);
        let auto = a.matmul(&b);
        prop_assert_eq!(serial.as_slice(), auto.as_slice());
    }

    /// i8 GEMM vs the exact f32 product, within the analytic bound
    /// derived from the symmetric scales: quantizing a to â = a + δa
    /// with |δa| ≤ s_A/2 and b likewise gives
    ///   |Σ âb̂ − Σ ab| ≤ (s_B/2)·Σ|a| + (s_A/2)·Σ|b| + k·(s_A·s_B)/4,
    /// plus a small slack for the f32 dequant arithmetic itself.
    #[test]
    fn quantized_gemm_stays_within_analytic_bound(
        (m, k, n) in shapes(),
        lhs in prop::collection::vec(-10.0f32..10.0, 48 * 96),
        rhs in prop::collection::vec(-10.0f32..10.0, 96 * 48),
    ) {
        let _guard = mode_lock();
        let a = Matrix::from_vec(m, k, lhs[..m * k].to_vec());
        let b = Matrix::from_vec(k, n, rhs[..k * n].to_vec());
        let packed = b.quantized_rhs();
        let got = a.matmul_quantized(&packed);
        let scales = row_scales(m, k, a.as_slice());
        let sb = packed.scale() as f64;
        for (i, &sa) in scales.iter().enumerate() {
            let sa = sa as f64;
            let abs_a: f64 = (0..k).map(|kk| a.as_slice()[i * k + kk].abs() as f64).sum();
            for j in 0..n {
                let exact: f64 = (0..k)
                    .map(|kk| a.as_slice()[i * k + kk] as f64 * b.as_slice()[kk * n + j] as f64)
                    .sum();
                let abs_b: f64 = (0..k).map(|kk| b.as_slice()[kk * n + j].abs() as f64).sum();
                let bound =
                    0.5 * sb * abs_a + 0.5 * sa * abs_b + 0.25 * k as f64 * sa * sb + 1e-3;
                let gotv = got.as_slice()[i * n + j] as f64;
                prop_assert!(
                    (gotv - exact).abs() <= bound,
                    "({}, {}): got {}, exact {}, bound {}",
                    i, j, gotv, exact, bound
                );
            }
        }
    }

    /// Forced-scalar i8 == ambient-tier i8 bitwise: integer
    /// accumulation is exact, so every quantized kernel tier must agree
    /// to the last bit, including packs built under different tiers.
    #[test]
    fn quantized_tiers_agree_bitwise(
        (m, k, n) in shapes(),
        lhs in prop::collection::vec(-10.0f32..10.0, 48 * 96),
        rhs in prop::collection::vec(-10.0f32..10.0, 96 * 48),
    ) {
        let _guard = mode_lock();
        let a = Matrix::from_vec(m, k, lhs[..m * k].to_vec());
        let b = Matrix::from_vec(k, n, rhs[..k * n].to_vec());
        let fast = with_mode(SimdMode::Auto, || {
            let packed = b.quantized_rhs();
            a.matmul_quantized(&packed)
        });
        let scalar = with_mode(SimdMode::ForceScalar, || {
            let packed = b.quantized_rhs();
            a.matmul_quantized(&packed)
        });
        assert_bitwise(&fast, &scalar, "quant auto vs scalar")?;
    }
}

/// Large non-multiple-of-tile shape crossing KC (256): the scalar
/// blocked path must still match the reference exactly (identical
/// accumulation order) — the pre-existing anchor test, pinned to the
/// scalar tier it has always described.
#[test]
fn blocked_path_is_bitwise_equal_to_reference_past_kc() {
    let _guard = mode_lock();
    with_mode(SimdMode::ForceScalar, || {
        let m = 37;
        let k = 301; // crosses the KC = 256 k-block boundary
        let n = 29;
        let a = Matrix::from_vec(
            m,
            k,
            (0..m * k)
                .map(|i| ((i * 31 + 7) % 113) as f32 * 0.125 - 7.0)
                .collect(),
        );
        let b = Matrix::from_vec(
            k,
            n,
            (0..k * n)
                .map(|i| ((i * 17 + 3) % 127) as f32 * 0.0625 - 4.0)
                .collect(),
        );
        assert_eq!(a.matmul(&b).as_slice(), a.matmul_reference(&b).as_slice());
    });
}

/// The forced-path override round-trips and reports a coherent tier.
#[test]
fn simd_mode_override_round_trips() {
    let _guard = mode_lock();
    let before = simd_mode();
    set_simd_mode(SimdMode::ForceScalar);
    assert_eq!(simd_mode(), SimdMode::ForceScalar);
    assert!(!eugene_tensor::simd_active());
    assert_eq!(eugene_tensor::isa_tier(), "scalar");
    set_simd_mode(SimdMode::ForcePortable);
    assert!(eugene_tensor::simd_active());
    assert_eq!(eugene_tensor::isa_tier(), "portable_fused");
    set_simd_mode(before);
}

/// Quantized matmul through the raw qgemm entry point accumulates into
/// (rather than overwrites) its output, matching gemm_rrr semantics.
#[test]
fn qgemm_accumulates_into_out() {
    let _guard = mode_lock();
    let a = Matrix::from_vec(2, 3, vec![1.0, 0.0, -1.0, 0.5, 2.0, 0.25]);
    let b = Matrix::from_vec(3, 2, vec![1.0, -1.0, 0.5, 0.25, 2.0, -0.5]);
    let packed = b.quantized_rhs();
    let mut out = vec![10.0f32; 4];
    qgemm(2, 3, 2, a.as_slice(), &packed, &mut out);
    let fresh = a.matmul_quantized(&packed);
    for (o, f) in out.iter().zip(fresh.as_slice()) {
        assert!((o - (f + 10.0)).abs() < 1e-5, "{o} vs {f} + 10");
    }
}
