//! Ablation bench for paper §III-B: "Gaussian process is notorious for
//! its long inference time, which is unacceptable for a runtime
//! predictor" — hence the piecewise-linear compression. This bench
//! quantifies the gap on confidence-curve-sized GPs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eugene_gp::{GpParams, GpRegressor, PiecewiseLinear};
use std::hint::black_box;

fn fit_gp(n: usize) -> GpRegressor {
    let xs: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| 0.3 + 0.6 * x - 0.1 * (6.0 * x).sin())
        .collect();
    GpRegressor::fit(&xs, &ys, GpParams::default()).expect("fit")
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("confidence_curve_prediction");
    for n in [100usize, 400] {
        let gp = fit_gp(n);
        let pwl = PiecewiseLinear::profile(|x| gp.predict_mean(x), 10);
        group.bench_with_input(BenchmarkId::new("exact_gp", n), &gp, |b, gp| {
            b.iter(|| black_box(gp.predict_mean(black_box(0.37))));
        });
        group.bench_with_input(BenchmarkId::new("pwl_compressed", n), &pwl, |b, pwl| {
            b.iter(|| black_box(pwl.eval(black_box(0.37))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
