//! Per-stage inference cost of the experiment network — the unit of work
//! the RTDeepIoT scheduler allocates, and the early-exit saving: running
//! one stage costs about a third of running all three.

use criterion::{criterion_group, criterion_main, Criterion};
use eugene_nn::{StagedNetwork, StagedNetworkConfig};
use eugene_tensor::seeded_rng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let config = StagedNetworkConfig::three_stage(32, 10);
    let network = StagedNetwork::new(&config, &mut seeded_rng(3));
    let sample: Vec<f32> = (0..32).map(|i| (i as f32).sin()).collect();

    c.bench_function("one_stage", |b| {
        b.iter(|| {
            let mut session = network.begin_inference(black_box(&sample));
            black_box(session.next_stage())
        });
    });
    c.bench_function("all_three_stages", |b| {
        b.iter(|| black_box(network.classify(black_box(&sample))));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
