//! Scheduling-decision throughput: one `assign` call of each policy over
//! a contended task set — the per-quantum overhead the user-space
//! scheduler adds to the serving loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eugene_sched::{Fifo, PwlCurvePredictor, RoundRobin, RtDeepIot, Scheduler, TaskView};
use std::hint::black_box;

fn predictor() -> PwlCurvePredictor {
    let curves: Vec<Vec<f32>> = (0..100)
        .map(|i| {
            let start = 0.2 + 0.6 * (i as f32 / 100.0);
            let mid = start + 0.5 * (1.0 - start);
            vec![start, mid, mid + 0.5 * (1.0 - mid)]
        })
        .collect();
    PwlCurvePredictor::fit(&curves, 10).expect("fit")
}

fn views(n: usize, observed: &[Vec<f32>]) -> Vec<TaskView<'_>> {
    (0..n)
        .map(|i| TaskView {
            id: i,
            stages_done: observed[i].len(),
            num_stages: 3,
            observed: &observed[i],
            admitted_at: 0,
            deadline_remaining_ms: 10,
            remaining_quanta: 10,
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("assign");
    for &n in &[8usize, 32, 128] {
        let observed: Vec<Vec<f32>> = (0..n)
            .map(|i| match i % 3 {
                0 => vec![],
                1 => vec![0.4 + (i % 10) as f32 * 0.05],
                _ => vec![0.4, 0.7],
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("rtdeepiot_k1", n), &n, |b, &n| {
            let mut sched = RtDeepIot::new(predictor(), 1, 0.1);
            let v = views(n, &observed);
            b.iter(|| {
                sched.reset();
                black_box(sched.assign(black_box(&v), 4))
            });
        });
        group.bench_with_input(BenchmarkId::new("round_robin", n), &n, |b, &n| {
            let mut sched = RoundRobin::new();
            let v = views(n, &observed);
            b.iter(|| black_box(sched.assign(black_box(&v), 4)));
        });
        group.bench_with_input(BenchmarkId::new("fifo", n), &n, |b, &n| {
            let mut sched = Fifo::new();
            let v = views(n, &observed);
            b.iter(|| black_box(sched.assign(black_box(&v), 4)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
