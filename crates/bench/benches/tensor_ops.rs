//! Microbenchmarks of the dense-linear-algebra substrate: matmul shapes
//! representative of the staged networks (batch x 64 hidden layers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eugene_tensor::{seeded_rng, xavier_uniform};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut rng = seeded_rng(1);
    let mut group = c.benchmark_group("matmul");
    for &(m, k, n) in &[(1usize, 32usize, 64usize), (32, 64, 64), (128, 64, 10)] {
        let a = xavier_uniform(m, k, &mut rng);
        let b = xavier_uniform(k, n, &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{k}x{n}")),
            &(a, b),
            |bencher, (a, b)| {
                bencher.iter(|| black_box(a.matmul(black_box(b))));
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("matvec");
    for &dim in &[64usize, 256] {
        let a = xavier_uniform(dim, dim, &mut rng);
        let v: Vec<f32> = (0..dim).map(|i| (i as f32).cos()).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(dim),
            &(a, v),
            |bencher, (a, v)| {
                bencher.iter(|| black_box(a.matvec(black_box(v))));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
