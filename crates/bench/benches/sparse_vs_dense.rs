//! Quantifies the §II-B claim that sparse-matrix savings "do not scale
//! proportionally to the fraction of zero entries": CSR vs dense
//! matrix-vector products across densities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eugene_compress::CsrMatrix;
use eugene_tensor::{seeded_rng, xavier_uniform};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut rng = seeded_rng(5);
    let dense = xavier_uniform(256, 256, &mut rng);
    let v: Vec<f32> = (0..256).map(|i| (i as f32).sin()).collect();

    let mut group = c.benchmark_group("matvec_256");
    group.bench_function("dense", |b| {
        b.iter(|| black_box(dense.matvec(black_box(&v))));
    });
    for keep in [0.5f32, 0.25, 0.1, 0.02] {
        // Threshold chosen to retain roughly `keep` of the entries.
        let mut magnitudes: Vec<f32> = dense.as_slice().iter().map(|x| x.abs()).collect();
        magnitudes.sort_by(f32::total_cmp);
        let cut = ((1.0 - keep) * magnitudes.len() as f32) as usize;
        let csr = CsrMatrix::from_dense(&dense, magnitudes[cut.min(magnitudes.len() - 1)]);
        group.bench_with_input(
            BenchmarkId::new("csr", format!("{:.0}%", csr.density() * 100.0)),
            &csr,
            |b, csr| {
                b.iter(|| black_box(csr.matvec(black_box(&v))));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
