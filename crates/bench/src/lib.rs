//! Shared experiment harness for the table/figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper (see DESIGN.md's experiment index). They share the workload
//! defined here: the synthetic CIFAR-10 stand-in, a three-stage network
//! deliberately overfit so it exhibits the miscalibration of the paper's
//! Fig. 2, and helpers for printing aligned tables and dumping JSON
//! results under `results/`.

use eugene_calibrate::{EntropyCalibrator, EntropyCalibratorConfig};
use eugene_data::{Dataset, SyntheticImages, SyntheticImagesConfig};
use eugene_nn::{
    evaluate_staged, StageEval, StagedNetwork, StagedNetworkConfig, TrainConfig, Trainer,
};
use eugene_tensor::seeded_rng;
use serde::Serialize;
use std::path::PathBuf;

/// The trained experiment artifacts shared by the calibration, GP, and
/// scheduling benches.
pub struct Workload {
    /// The trained (uncalibrated) three-stage network.
    pub network: StagedNetwork,
    /// Training split (50 000 images in the paper; scaled down here).
    pub train: Dataset,
    /// Calibration split: held out from training, used to measure the
    /// confidence/accuracy gap the calibration controller closes.
    pub calib: Dataset,
    /// Test split, untouched by training and calibration.
    pub test: Dataset,
}

/// Workload scale knobs, so quick runs and full runs share code.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Training samples.
    pub train_size: usize,
    /// Test samples.
    pub test_size: usize,
    /// Training epochs (high on purpose: the paper's Fig. 2a needs an
    /// overconfident, overfit network).
    pub epochs: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            train_size: 1500,
            test_size: 2000,
            epochs: 140,
            seed: 20190710, // ICDCS 2019 opened July 7-10
        }
    }
}

impl Workload {
    /// Builds and trains the standard workload.
    pub fn standard(config: WorkloadConfig) -> Self {
        let mut rng = seeded_rng(config.seed);
        // Parity-gated pairs make depth genuinely matter (the paper's
        // staged ResNet shows ~65/80/88% per-stage accuracy; this workload
        // lands at ~72/82/86%).
        let gen = SyntheticImages::new(
            SyntheticImagesConfig {
                paired_parity: true,
                easy_fraction: 0.60,
                medium_fraction: 0.25,
                noise: 0.30,
                ..Default::default()
            },
            &mut rng,
        );
        let (train, _) = gen.generate(config.train_size, &mut rng);
        let (calib, _) = gen.generate(config.test_size / 2, &mut rng);
        let (test, _) = gen.generate(config.test_size, &mut rng);
        let arch = StagedNetworkConfig::three_stage(train.dim(), train.num_classes());
        let mut network = StagedNetwork::new(&arch, &mut rng);
        Trainer::new(TrainConfig {
            epochs: config.epochs,
            learning_rate: 1.5e-3,
            ..TrainConfig::default()
        })
        .fit(&mut network, &train, &mut rng);
        Self {
            network,
            train,
            calib,
            test,
        }
    }

    /// Per-stage evaluations on the test split.
    pub fn test_evals(&self) -> Vec<StageEval> {
        evaluate_staged(&self.network, &self.test)
    }

    /// Per-stage evaluations on the training split.
    pub fn train_evals(&self) -> Vec<StageEval> {
        evaluate_staged(&self.network, &self.train)
    }

    /// Returns an entropy-calibrated copy of the network (the RTDeepIoT
    /// calibration row): fine-tuned on the training split while the
    /// feedback controller measures the gap on the calibration split; the
    /// test split stays untouched for evaluation.
    pub fn calibrated_network(&self, seed: u64) -> StagedNetwork {
        let mut copy = self.network.clone();
        EntropyCalibrator::new(EntropyCalibratorConfig::default()).calibrate(
            &mut copy,
            &self.calib,
            &mut seeded_rng(seed),
        );
        copy
    }

    /// Per-sample confidence curves (`n x stages`) of a network over a
    /// dataset — the training input of the paper's GP regressors.
    pub fn confidence_curves(network: &StagedNetwork, data: &Dataset) -> Vec<Vec<f32>> {
        let evals = evaluate_staged(network, data);
        (0..data.len())
            .map(|i| evals.iter().map(|e| e.confidences[i]).collect())
            .collect()
    }
}

/// Host ISA metadata stamped into results JSON, so a throughput number
/// can always be traced back to the kernel tier and CPU features that
/// produced it.
#[derive(Debug, Clone, Serialize)]
pub struct HostIsa {
    /// f32 kernel tier dispatch picks on this host.
    pub tier: &'static str,
    /// i8 kernel tier dispatch picks on this host.
    pub quant_tier: &'static str,
    /// Whether the SIMD tier is actually vectorized here (false means
    /// the portable fused twin is standing in).
    pub simd_active: bool,
    /// Raw `is_x86_feature_detected!` results, by feature name.
    pub features: std::collections::BTreeMap<String, bool>,
}

/// Detects [`HostIsa`] for the current process.
pub fn host_isa() -> HostIsa {
    HostIsa {
        tier: eugene_tensor::isa_tier(),
        quant_tier: eugene_tensor::quant_tier_name(),
        simd_active: eugene_tensor::simd_active(),
        features: eugene_tensor::cpu_features()
            .entries()
            .into_iter()
            .map(|(name, present)| (name.to_owned(), present))
            .collect(),
    }
}

/// Actual core count of the benchmarking host (1 if undetectable).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("  {}", padded.join("  "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Writes a JSON result document under `results/`, creating the directory
/// if needed; EXPERIMENTS.md references these files.
///
/// # Panics
///
/// Panics if the filesystem write fails (bench binaries want loud
/// failures).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let body = serde_json::to_string_pretty(value).expect("serialize result");
    std::fs::write(&path, body).expect("write result file");
    println!("  [saved {}]", path.display());
}

/// Parses a `--flag` style argument from the command line.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_workload_trains_and_is_miscalibrated() {
        let workload = Workload::standard(WorkloadConfig {
            train_size: 400,
            test_size: 400,
            epochs: 30,
            seed: 1,
        });
        let evals = workload.test_evals();
        assert_eq!(evals.len(), 3);
        assert!(evals[2].accuracy > 0.3, "accuracy {}", evals[2].accuracy);
        // Overfit network: mean confidence exceeds accuracy on test data.
        let gap = evals[2].mean_confidence() as f64 - evals[2].accuracy;
        assert!(gap > 0.0, "expected overconfidence, gap {gap}");
    }

    #[test]
    fn confidence_curves_align_with_dataset() {
        let workload = Workload::standard(WorkloadConfig {
            train_size: 200,
            test_size: 100,
            epochs: 5,
            seed: 2,
        });
        let curves = Workload::confidence_curves(&workload.network, &workload.test);
        assert_eq!(curves.len(), 100);
        assert!(curves.iter().all(|c| c.len() == 3));
    }
}
