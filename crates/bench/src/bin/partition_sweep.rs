//! Extension experiment for paper §IV-A: optimal client/server split of
//! the staged model as a function of link bandwidth, with and without
//! early-exit awareness.
//!
//! The paper poses the question ("how should the inference model be
//! partitioned among nodes?") without an evaluation; this bench supplies
//! one on the reproduction's workload. Expected shape: at high bandwidth
//! everything offloads (split 0); as bandwidth collapses the split moves
//! deviceward until the device runs everything; and early-exit
//! probability shifts every crossover toward the device, because locally
//! answered requests never pay for the link.
//!
//! Run: `cargo run --release -p eugene-bench --bin partition_sweep`

use eugene_bench::{print_table, write_json, Workload, WorkloadConfig};
use eugene_partition::{AdaptivePartitioner, EarlyExitProfile, PartitionPlanner, StageCost};
use eugene_profiler::{ConvSpec, DeviceModel};
use serde::Serialize;

const RTT_MS: f64 = 20.0;
const EXIT_THRESHOLD: f32 = 0.9;

#[derive(Serialize)]
struct SweepRow {
    bandwidth_bytes_per_sec: f64,
    split_no_exits: usize,
    latency_no_exits_ms: f64,
    split_with_exits: usize,
    latency_with_exits_ms: f64,
    local_fraction_with_exits: f64,
}

fn main() {
    println!("training and calibrating the three-stage workload...");
    let workload = Workload::standard(WorkloadConfig::default());
    let network = workload.calibrated_network(8);

    // Stage compute priced on the Table I device machinery: a three-stage
    // conv trunk (paper Fig. 3 geometry) on a Nexus-5-class client versus
    // an edge-accelerator server; boundary activations shrink with depth.
    // Exit probabilities come from the trained staged workload above —
    // the statistical interface is the same.
    let device = DeviceModel::nexus5_class();
    let server = DeviceModel::edge_accelerator_class();
    let conv_stages: [(&[ConvSpec], u64); 3] = [
        (
            &[
                ConvSpec::same_padding(3, 16, 3, 112),
                ConvSpec::same_padding(16, 16, 3, 112),
            ],
            16 * 28 * 28 * 4, // pooled activation crossing the link
        ),
        (
            &[
                ConvSpec::same_padding(16, 48, 3, 56),
                ConvSpec::same_padding(48, 48, 3, 56),
                ConvSpec::same_padding(48, 48, 3, 56),
            ],
            48 * 14 * 14 * 4,
        ),
        (
            &[
                ConvSpec::same_padding(48, 96, 3, 28),
                ConvSpec::same_padding(96, 96, 3, 28),
                ConvSpec::same_padding(96, 96, 3, 28),
            ],
            10 * 4, // final logits
        ),
    ];
    let stages: Vec<StageCost> = conv_stages
        .iter()
        .map(|(layers, boundary)| StageCost::from_conv_stage(&device, &server, layers, *boundary))
        .collect();
    println!(
        "stage costs (device ms / server ms / boundary B): {:?}",
        stages
            .iter()
            .map(|s| (
                (s.device_ms * 100.0).round() / 100.0,
                (s.server_ms * 1000.0).round() / 1000.0,
                s.boundary_bytes
            ))
            .collect::<Vec<_>>()
    );
    let input_bytes = 3 * 112 * 112 * 4; // raw RGB frame
    let planner = PartitionPlanner::new(stages, input_bytes).expect("stages exist");

    let curves = Workload::confidence_curves(&network, &workload.calib);
    let exits =
        EarlyExitProfile::from_confidence_curves(&curves, EXIT_THRESHOLD).expect("curves exist");
    let no_exits = EarlyExitProfile::new(vec![0.0, 0.0, 1.0]).expect("static profile");
    println!(
        "measured early exits at threshold {EXIT_THRESHOLD}: by stage {:?}",
        (0..3)
            .map(|s| ((exits.exit_by(s) * 100.0).round()) / 100.0)
            .collect::<Vec<_>>()
    );

    let bandwidths = [
        100.0e6, 10.0e6, 3.0e6, 1.5e6, 1.0e6, 700.0e3, 400.0e3, 200.0e3, 100.0e3, 30.0e3, 3.0e3,
    ];
    let with_exits = AdaptivePartitioner::sweep_bandwidths(&planner, &exits, RTT_MS, &bandwidths);
    let without = AdaptivePartitioner::sweep_bandwidths(&planner, &no_exits, RTT_MS, &bandwidths);

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for ((b, plan_exit), (_, plan_plain)) in with_exits.iter().zip(&without) {
        rows.push(vec![
            format!("{:.0} KB/s", b / 1e3),
            plan_plain.split.to_string(),
            format!("{:.1}", plan_plain.expected_latency_ms),
            plan_exit.split.to_string(),
            format!("{:.1}", plan_exit.expected_latency_ms),
            format!("{:.0}%", plan_exit.local_answer_fraction * 100.0),
        ]);
        json.push(SweepRow {
            bandwidth_bytes_per_sec: *b,
            split_no_exits: plan_plain.split,
            latency_no_exits_ms: plan_plain.expected_latency_ms,
            split_with_exits: plan_exit.split,
            latency_with_exits_ms: plan_exit.expected_latency_ms,
            local_fraction_with_exits: plan_exit.local_answer_fraction,
        });
    }
    print_table(
        "Partitioning sweep (paper SIV-A): split point vs bandwidth",
        &[
            "bandwidth",
            "split (no exits)",
            "E[lat] ms",
            "split (exits)",
            "E[lat] ms",
            "answered locally",
        ],
        &rows,
    );

    // Shape checks.
    let first = json.first().expect("rows");
    let last = json.last().expect("rows");
    let exit_leq_plain_everywhere = json
        .iter()
        .all(|r| r.latency_with_exits_ms <= r.latency_no_exits_ms + 1e-9);
    let exit_split_geq = json.iter().all(|r| r.split_with_exits >= r.split_no_exits);
    println!(
        "\nShape checks: fast link offloads fully (split {}): {}; dead link runs on device \
         (split {}): {}; early exits never hurt latency: {}; early exits never move the split \
         serverward: {}",
        first.split_no_exits,
        first.split_no_exits == 0,
        last.split_with_exits,
        last.split_with_exits == planner.num_stages(),
        exit_leq_plain_everywhere,
        exit_split_geq,
    );
    write_json("partition_sweep", &json);
}
