//! Reproduces **Table II**: Expected Calibration Error of three
//! confidence-estimation methods on the three-stage network.
//!
//! Paper numbers (three-stage ResNet on CIFAR-10):
//!
//! | stage | Uncalibrated | RDeepSense | RTDeepIoT |
//! |-------|-------------|------------|-----------|
//! | 1     | 0.134       | 0.058      | 0.010     |
//! | 2     | 0.146       | 0.046      | 0.012     |
//! | 3     | 0.123       | 0.054      | 0.008     |
//!
//! The shape to match: RTDeepIoT (entropy calibration) < RDeepSense
//! (MC-dropout) < Uncalibrated at every stage, with roughly an order of
//! magnitude between the endpoints.
//!
//! Run: `cargo run --release -p eugene-bench --bin table2_ece [--sweep]`

use eugene_bench::{has_flag, print_table, write_json, Workload, WorkloadConfig};
use eugene_calibrate::{ece, EntropyCalibrator, EntropyCalibratorConfig, McDropout};
use eugene_nn::{evaluate_staged, TrainConfig, Trainer};
use eugene_tensor::seeded_rng;
use serde::Serialize;

const BINS: usize = 10;

#[derive(Serialize)]
struct Table2 {
    uncalibrated: Vec<f64>,
    rdeepsense: Vec<f64>,
    rtdeepiot: Vec<f64>,
}

fn main() {
    println!("training the three-stage workload (overfit on purpose)...");
    let workload = Workload::standard(WorkloadConfig::default());

    // Column 1: uncalibrated test-set ECE.
    let uncal: Vec<f64> = workload
        .test_evals()
        .iter()
        .map(|e| ece(&e.confidences, &e.correct, BINS))
        .collect();

    // Column 2: RDeepSense baseline — MC-dropout averaging.
    let mc = McDropout::new(20).evaluate(&workload.network, &workload.test, &mut seeded_rng(7));
    let rdeep: Vec<f64> = mc
        .iter()
        .map(|e| ece(&e.confidences, &e.correct, BINS))
        .collect();

    // Column 3: RTDeepIoT — entropy-regularized fine-tuning (Eq. 4),
    // calibrated on the training split, measured on the test split.
    let calibrated = workload.calibrated_network(8);
    let rt: Vec<f64> = evaluate_staged(&calibrated, &workload.test)
        .iter()
        .map(|e| ece(&e.confidences, &e.correct, BINS))
        .collect();

    let rows: Vec<Vec<String>> = (0..3)
        .map(|s| {
            vec![
                format!("Stage {}", s + 1),
                format!("{:.3}", uncal[s]),
                format!("{:.3}", rdeep[s]),
                format!("{:.3}", rt[s]),
            ]
        })
        .collect();
    print_table(
        "Table II: ECE of confidence calibration methods (test split)",
        &["", "Uncalibrated", "RDeepSense", "RTDeepIoT"],
        &rows,
    );
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nShape check: RTDeepIoT {:.3} < RDeepSense {:.3} < Uncalibrated {:.3}: {}",
        mean(&rt),
        mean(&rdeep),
        mean(&uncal),
        mean(&rt) < mean(&rdeep) && mean(&rdeep) < mean(&uncal),
    );
    write_json(
        "table2_ece",
        &Table2 {
            uncalibrated: uncal,
            rdeepsense: rdeep,
            rtdeepiot: rt,
        },
    );

    if has_flag("--sweep") {
        alpha_sweep(&workload);
    }
}

/// Ablation: ECE as a function of the entropy-regularization strength,
/// demonstrating the paper's sign rule (overconfident nets need the
/// entropy-*rewarding* sign) and the sensitivity to magnitude.
fn alpha_sweep(workload: &Workload) {
    let mut rows = Vec::new();
    #[derive(Serialize)]
    struct SweepPoint {
        alpha: f32,
        mean_test_ece: f64,
        mean_test_accuracy: f64,
    }
    let mut sweep = Vec::new();
    for &alpha in &[-3.0f32, -1.5, -0.8, -0.3, 0.0, 0.3, 0.8] {
        let mut net = workload.network.clone();
        if alpha != 0.0 {
            Trainer::new(TrainConfig {
                epochs: 15,
                learning_rate: 3e-4,
                entropy_alpha: alpha,
                ..TrainConfig::default()
            })
            .fit(&mut net, &workload.train, &mut seeded_rng(9));
        }
        let evals = evaluate_staged(&net, &workload.test);
        let mean_ece = evals
            .iter()
            .map(|e| ece(&e.confidences, &e.correct, BINS))
            .sum::<f64>()
            / evals.len() as f64;
        let mean_acc = evals.iter().map(|e| e.accuracy).sum::<f64>() / evals.len() as f64;
        rows.push(vec![
            format!("{alpha:+.1}"),
            format!("{mean_ece:.3}"),
            format!("{mean_acc:.3}"),
        ]);
        sweep.push(SweepPoint {
            alpha,
            mean_test_ece: mean_ece,
            mean_test_accuracy: mean_acc,
        });
    }
    print_table(
        "Ablation: entropy-regularization strength (alpha) sweep",
        &["alpha", "mean ECE", "mean accuracy"],
        &rows,
    );
    // The automatic controller's result, for reference: per-head logit
    // scales below 1.0 confirm the overconfident-network correction.
    let chosen = EntropyCalibrator::new(EntropyCalibratorConfig::default());
    let mut net = workload.network.clone();
    let outcome = chosen.calibrate(&mut net, &workload.calib, &mut seeded_rng(10));
    println!(
        "controller result: per-head scales {:?} ({} rounds)",
        outcome
            .scales
            .iter()
            .map(|s| (s * 100.0).round() / 100.0)
            .collect::<Vec<_>>(),
        outcome.rounds_run
    );
    write_json("table2_alpha_sweep", &sweep);
}
