//! Kernel throughput bench: GFLOP/s of the kernel tiers — naive
//! reference, blocked scalar, SIMD f32 (AVX-512F/AVX2+FMA when the host
//! has them), and the quantized i8 tier — across matrix sizes and thread
//! counts, with the host's detected ISA recorded alongside the numbers.
//!
//! Regenerates `results/kernel_throughput.json`. Run with `--quick` for a
//! CI smoke pass over small sizes; quick mode still asserts a
//! conservative speedup floor so a silently de-vectorized build fails CI.

use eugene_bench::{has_flag, host_cores, host_isa, print_table, write_json, HostIsa};
use eugene_tensor::{
    seeded_rng, set_parallelism, set_simd_mode, standard_normal, Matrix, SimdMode,
};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct KernelPoint {
    size: usize,
    threads: usize,
    /// Naive triple-loop reference (single-thread, measured once per size).
    gflops_reference: f64,
    /// Legacy cache-blocked scalar kernel (`EUGENE_SIMD=0` tier).
    gflops_scalar_blocked: f64,
    /// Explicit-SIMD f32 tier (portable fused twin off x86_64).
    gflops_simd: f64,
    /// Quantized i8 tier, in GFLOP/s-equivalent (same 2n^3 op count).
    gops_quantized: f64,
    simd_vs_scalar: f64,
    quant_vs_simd: f64,
}

#[derive(Serialize)]
struct KernelThroughputDoc {
    quick: bool,
    /// `available_parallelism` of the machine that produced the numbers.
    host_cores: usize,
    isa: HostIsa,
    sizes: Vec<usize>,
    threads: Vec<usize>,
    points: Vec<KernelPoint>,
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = seeded_rng(seed);
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| standard_normal(&mut rng))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Times `op` over enough repetitions to exceed the measurement target
/// and returns GFLOP/s for an `n^3` product (2*n^3 flops per multiply).
fn gflops(n: usize, quick: bool, op: impl Fn() -> Matrix) -> f64 {
    let flops = 2.0 * (n as f64).powi(3);
    // Warm up (page in the pool, fill caches).
    let sink = op();
    std::hint::black_box(sink.as_slice()[0]);
    let target = if quick { 0.01 } else { 0.08 };
    let mut reps = 0u32;
    let start = Instant::now();
    loop {
        let out = op();
        std::hint::black_box(out.as_slice()[0]);
        reps += 1;
        if start.elapsed().as_secs_f64() >= target {
            break;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    flops * f64::from(reps) / secs / 1e9
}

fn main() {
    let quick = has_flag("--quick");
    let host_cores = host_cores();
    let sizes: Vec<usize> = if quick {
        vec![64, 128]
    } else {
        vec![64, 128, 256, 512]
    };
    let threads: Vec<usize> = if quick { vec![1, 2] } else { vec![1, 2, 4] };
    let isa = host_isa();

    println!(
        "kernel_throughput: host has {host_cores} core(s), f32 tier {}, i8 tier {}",
        isa.tier, isa.quant_tier
    );
    let mut points = Vec::new();
    let mut rows = Vec::new();
    for &n in &sizes {
        let a = random_matrix(n, n, 0xA5 + n as u64);
        let b = random_matrix(n, n, 0x5A + n as u64);
        // Weights are packed once at deploy time; only the activation
        // quantization and the i8 kernel are on the serving path.
        let packed = b.quantized_rhs();
        set_parallelism(1);
        set_simd_mode(SimdMode::ForceScalar);
        let reference = gflops(n, quick, || a.matmul_reference(&b));
        for &t in &threads {
            set_parallelism(t);
            set_simd_mode(SimdMode::ForceScalar);
            let scalar = gflops(n, quick, || a.matmul(&b));
            set_simd_mode(SimdMode::ForceSimd);
            let simd = gflops(n, quick, || a.matmul(&b));
            let quant = gflops(n, quick, || a.matmul_quantized(&packed));
            let simd_vs_scalar = simd / scalar;
            let quant_vs_simd = quant / simd;
            rows.push(vec![
                format!("{n}"),
                format!("{t}"),
                format!("{reference:.2}"),
                format!("{scalar:.2}"),
                format!("{simd:.2}"),
                format!("{quant:.2}"),
                format!("{simd_vs_scalar:.2}x"),
                format!("{quant_vs_simd:.2}x"),
            ]);
            points.push(KernelPoint {
                size: n,
                threads: t,
                gflops_reference: reference,
                gflops_scalar_blocked: scalar,
                gflops_simd: simd,
                gops_quantized: quant,
                simd_vs_scalar,
                quant_vs_simd,
            });
        }
    }
    set_simd_mode(SimdMode::Auto);
    set_parallelism(0);

    print_table(
        "matmul GFLOP/s by kernel tier",
        &[
            "size", "threads", "naive", "scalar", "simd", "quant", "simd/sc", "q/simd",
        ],
        &rows,
    );

    if quick {
        // CI floor: catches a build whose SIMD tier silently fell back
        // to scalar (or whose quantized tier collapsed), without being
        // sensitive to small-size timing noise. Only meaningful where
        // the SIMD tier is actually vectorized.
        if isa.simd_active {
            let top = points
                .iter()
                .filter(|p| p.threads == 1)
                .max_by_key(|p| p.size)
                .expect("at least one single-thread point");
            assert!(
                top.simd_vs_scalar >= 1.5,
                "quick floor: expected SIMD >= 1.5x blocked scalar at {0}x{0}, got {1:.2}x",
                top.size,
                top.simd_vs_scalar
            );
            assert!(
                top.quant_vs_simd >= 0.5,
                "quick floor: quantized tier collapsed at {0}x{0}: {1:.2}x of SIMD",
                top.size,
                top.quant_vs_simd
            );
        }
        return;
    }

    let single_512 = points
        .iter()
        .find(|p| p.size == 512 && p.threads == 1)
        .expect("512x512 single-thread point");
    assert!(
        single_512.gflops_scalar_blocked / single_512.gflops_reference >= 2.0,
        "expected >= 2x blocked-scalar speedup over naive at 512x512, got {:.2}x",
        single_512.gflops_scalar_blocked / single_512.gflops_reference
    );
    if isa.simd_active {
        assert!(
            single_512.simd_vs_scalar >= 3.0,
            "expected SIMD >= 3x blocked scalar at 512x512 single-thread, got {:.2}x",
            single_512.simd_vs_scalar
        );
        assert!(
            single_512.quant_vs_simd >= 1.5,
            "expected quantized >= 1.5x SIMD f32 at 512x512 single-thread, got {:.2}x",
            single_512.quant_vs_simd
        );
    }
    write_json(
        "kernel_throughput",
        &KernelThroughputDoc {
            quick,
            host_cores,
            isa,
            sizes,
            threads,
            points,
        },
    );
}
