//! Kernel throughput bench: GFLOP/s of the kernel tiers — naive
//! reference, blocked scalar, SIMD f32 (AVX-512F/AVX2+FMA when the host
//! has them), and the quantized i8 tier — across matrix sizes and thread
//! counts, with the host's detected ISA recorded alongside the numbers.
//!
//! Regenerates `results/kernel_throughput.json`. Run with `--quick` for a
//! CI smoke pass over small sizes; quick mode still asserts a
//! conservative speedup floor so a silently de-vectorized build fails CI.
//!
//! `--fused` measures the compiled-plan serving path instead: one
//! 512-wide network stage dispatched at the serving micro-batch shape,
//! layer walk (per-dispatch planning, per-call weight packing, separate
//! bias/relu passes) vs compiled [`eugene_nn::StagePlan`] (pre-packed
//! panels, GEMM-epilogue fusion, arena-pooled intermediates). The
//! process-wide counting allocator additionally proves the f32 plan
//! path performs **zero allocations** per dispatch after warm-up.

use eugene_bench::{has_flag, host_cores, host_isa, print_table, write_json, HostIsa};
use eugene_nn::{Layer, StagedNetwork, StagedNetworkConfig};
use eugene_tensor::{
    seeded_rng, set_parallelism, set_simd_mode, standard_normal, Matrix, SimdMode,
};
use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts heap allocations so the fused bench can assert the
/// steady-state plan dispatch allocates nothing. Deallocations are
/// pass-through; only allocation events matter for the claim.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[derive(Serialize)]
struct KernelPoint {
    size: usize,
    threads: usize,
    /// Naive triple-loop reference (single-thread, measured once per size).
    gflops_reference: f64,
    /// Legacy cache-blocked scalar kernel (`EUGENE_SIMD=0` tier).
    gflops_scalar_blocked: f64,
    /// Explicit-SIMD f32 tier (portable fused twin off x86_64).
    gflops_simd: f64,
    /// Quantized i8 tier, in GFLOP/s-equivalent (same 2n^3 op count).
    gops_quantized: f64,
    simd_vs_scalar: f64,
    quant_vs_simd: f64,
}

/// The fused-serving comparison: per-dispatch stage execution through
/// the layer walk vs the compiled plan, at the serving micro-batch
/// shape (single thread — the per-worker view).
#[derive(Serialize)]
struct FusedServingPoint {
    /// Hidden width of the benchmarked stage (weights are `dim x dim`).
    dim: usize,
    /// Micro-batch rows per dispatch.
    rows: usize,
    /// Layer-walk dispatches per second, f32.
    unfused_dispatch_hz_f32: f64,
    /// Compiled-plan dispatches per second, f32.
    fused_dispatch_hz_f32: f64,
    /// The headline ratio the CI gate floors.
    fused_vs_unfused_f32: f64,
    /// Layer-walk dispatches per second, Int8 trunk.
    unfused_dispatch_hz_int8: f64,
    /// Compiled-plan dispatches per second, Int8 trunk.
    fused_dispatch_hz_int8: f64,
    fused_vs_unfused_int8: f64,
    /// Steps in the compiled stage plan (after fusion).
    plan_steps: usize,
    /// Heap allocation events during the measured f32 plan dispatches
    /// (after warm-up) — the arena/pre-pack design pins this to zero.
    steady_state_allocs: u64,
}

#[derive(Serialize)]
struct KernelThroughputDoc {
    quick: bool,
    /// `available_parallelism` of the machine that produced the numbers.
    host_cores: usize,
    isa: HostIsa,
    sizes: Vec<usize>,
    threads: Vec<usize>,
    points: Vec<KernelPoint>,
    /// Compiled-plan serving path vs the layer walk (see
    /// [`FusedServingPoint`]); absent in docs written before the stage
    /// compiler existed.
    fused: Option<FusedServingPoint>,
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = seeded_rng(seed);
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| standard_normal(&mut rng))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Times `op` over enough repetitions to exceed the measurement target
/// and returns GFLOP/s for an `n^3` product (2*n^3 flops per multiply).
fn gflops(n: usize, quick: bool, op: impl Fn() -> Matrix) -> f64 {
    let flops = 2.0 * (n as f64).powi(3);
    // Warm up (page in the pool, fill caches).
    let sink = op();
    std::hint::black_box(sink.as_slice()[0]);
    let target = if quick { 0.01 } else { 0.08 };
    let mut reps = 0u32;
    let start = Instant::now();
    loop {
        let out = op();
        std::hint::black_box(out.as_slice()[0]);
        reps += 1;
        if start.elapsed().as_secs_f64() >= target {
            break;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    flops * f64::from(reps) / secs / 1e9
}

/// Times a dispatch closure in dispatches/sec. Unlike [`gflops`] the
/// closure returns nothing, so a non-allocating dispatch path stays
/// non-allocating through the measurement loop.
fn dispatch_hz(quick: bool, mut dispatch: impl FnMut()) -> f64 {
    dispatch(); // warm up
    let target = if quick { 0.02 } else { 0.15 };
    let mut reps = 0u32;
    let start = Instant::now();
    loop {
        dispatch();
        reps += 1;
        if start.elapsed().as_secs_f64() >= target {
            break;
        }
    }
    f64::from(reps) / start.elapsed().as_secs_f64()
}

fn assert_bitwise(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: fused dispatch diverged from the layer walk: {x} vs {y}"
        );
    }
}

/// Benchmarks one serving dispatch of a 512-wide stage at micro-batch
/// rows = 8, single thread: layer walk vs compiled plan, f32 and Int8.
fn fused_serving_bench(quick: bool) -> FusedServingPoint {
    const DIM: usize = 512;
    const ROWS: usize = 8;
    set_parallelism(1);
    set_simd_mode(SimdMode::Auto);
    let config = StagedNetworkConfig {
        input_dim: DIM,
        num_classes: 10,
        stage_widths: vec![vec![DIM]],
        dropout: 0.0,
        input_skip: false,
    };
    let mut net = StagedNetwork::new(&config, &mut seeded_rng(0xF5));
    let input = random_matrix(ROWS, DIM, 0xBEEF);

    // The layer walk: per-dispatch intermediates, per-call weight
    // packing, bias and relu as separate passes.
    let walk = |net: &StagedNetwork| {
        let h = net.stages()[0].infer(&input);
        let l = net.heads()[0].infer(&h);
        (h, l)
    };
    let unfused_f32 = dispatch_hz(quick, || {
        let (h, l) = walk(&net);
        std::hint::black_box((h.as_slice()[0], l.as_slice()[0]));
    });

    let plan = net.stage_plan(0, ROWS).expect("bench stage compiles");
    let plan_steps = plan.num_steps();
    let mut out_h = Matrix::zeros(0, 0);
    let mut out_l = Matrix::zeros(0, 0);
    // Warm the arena and output buffers, and pin the parity contract
    // right here in the bench: fused == walk, bitwise.
    plan.execute_into(&net, &input, &input, &mut out_h, &mut out_l);
    let (walk_h, walk_l) = walk(&net);
    assert_bitwise(&out_h, &walk_h, "f32 hidden");
    assert_bitwise(&out_l, &walk_l, "f32 logits");

    let allocs_before = ALLOC_EVENTS.load(Ordering::Relaxed);
    let fused_f32 = dispatch_hz(quick, || {
        plan.execute_into(&net, &input, &input, &mut out_h, &mut out_l);
        std::hint::black_box((out_h.as_slice()[0], out_l.as_slice()[0]));
    });
    let steady_state_allocs = ALLOC_EVENTS.load(Ordering::Relaxed) - allocs_before;

    // Int8 trunk: the plan embeds the layer's own quantized pack.
    drop(plan);
    net.quantize_stages(&[0]);
    let unfused_int8 = dispatch_hz(quick, || {
        let (h, l) = walk(&net);
        std::hint::black_box((h.as_slice()[0], l.as_slice()[0]));
    });
    let qplan = net.stage_plan(0, ROWS).expect("int8 stage compiles");
    assert_eq!(qplan.precision(), eugene_tensor::Precision::Int8);
    qplan.execute_into(&net, &input, &input, &mut out_h, &mut out_l);
    let (walk_h, walk_l) = walk(&net);
    assert_bitwise(&out_h, &walk_h, "int8 hidden");
    assert_bitwise(&out_l, &walk_l, "int8 logits");
    let fused_int8 = dispatch_hz(quick, || {
        qplan.execute_into(&net, &input, &input, &mut out_h, &mut out_l);
        std::hint::black_box((out_h.as_slice()[0], out_l.as_slice()[0]));
    });

    FusedServingPoint {
        dim: DIM,
        rows: ROWS,
        unfused_dispatch_hz_f32: unfused_f32,
        fused_dispatch_hz_f32: fused_f32,
        fused_vs_unfused_f32: fused_f32 / unfused_f32,
        unfused_dispatch_hz_int8: unfused_int8,
        fused_dispatch_hz_int8: fused_int8,
        fused_vs_unfused_int8: fused_int8 / unfused_int8,
        plan_steps,
        steady_state_allocs,
    }
}

/// Prints the fused comparison and enforces the serving-path floors:
/// fused must beat the layer walk (>= 1.15x in the full run, >= 1.0x
/// in the timing-noise-prone quick pass) and the steady-state f32 plan
/// dispatch must not allocate.
fn report_fused(point: &FusedServingPoint, quick: bool) {
    print_table(
        "compiled-plan serving dispatch vs layer walk (single thread)",
        &[
            "dim",
            "rows",
            "walk f32/s",
            "plan f32/s",
            "ratio",
            "walk i8/s",
            "plan i8/s",
            "ratio",
        ],
        &[vec![
            format!("{}", point.dim),
            format!("{}", point.rows),
            format!("{:.0}", point.unfused_dispatch_hz_f32),
            format!("{:.0}", point.fused_dispatch_hz_f32),
            format!("{:.2}x", point.fused_vs_unfused_f32),
            format!("{:.0}", point.unfused_dispatch_hz_int8),
            format!("{:.0}", point.fused_dispatch_hz_int8),
            format!("{:.2}x", point.fused_vs_unfused_int8),
        ]],
    );
    assert_eq!(
        point.steady_state_allocs, 0,
        "compiled f32 plan dispatch must not allocate after warm-up \
         (counted {} allocation events)",
        point.steady_state_allocs
    );
    let floor = if quick { 1.0 } else { 1.15 };
    assert!(
        point.fused_vs_unfused_f32 >= floor,
        "fused serving floor: expected compiled plan >= {floor:.2}x layer walk \
         at {0}x{0} rows={1} single-thread f32, got {2:.2}x",
        point.dim,
        point.rows,
        point.fused_vs_unfused_f32
    );
}

fn main() {
    let quick = has_flag("--quick");
    if has_flag("--fused") {
        // Fused-serving gate only: no tier sweep, no JSON rewrite.
        let point = fused_serving_bench(quick);
        report_fused(&point, quick);
        set_simd_mode(SimdMode::Auto);
        set_parallelism(0);
        return;
    }
    let host_cores = host_cores();
    let sizes: Vec<usize> = if quick {
        vec![64, 128]
    } else {
        vec![64, 128, 256, 512]
    };
    let threads: Vec<usize> = if quick { vec![1, 2] } else { vec![1, 2, 4] };
    let isa = host_isa();

    println!(
        "kernel_throughput: host has {host_cores} core(s), f32 tier {}, i8 tier {}",
        isa.tier, isa.quant_tier
    );
    let mut points = Vec::new();
    let mut rows = Vec::new();
    for &n in &sizes {
        let a = random_matrix(n, n, 0xA5 + n as u64);
        let b = random_matrix(n, n, 0x5A + n as u64);
        // Weights are packed once at deploy time; only the activation
        // quantization and the i8 kernel are on the serving path.
        let packed = b.quantized_rhs();
        set_parallelism(1);
        set_simd_mode(SimdMode::ForceScalar);
        let reference = gflops(n, quick, || a.matmul_reference(&b));
        for &t in &threads {
            set_parallelism(t);
            set_simd_mode(SimdMode::ForceScalar);
            let scalar = gflops(n, quick, || a.matmul(&b));
            set_simd_mode(SimdMode::ForceSimd);
            let simd = gflops(n, quick, || a.matmul(&b));
            let quant = gflops(n, quick, || a.matmul_quantized(&packed));
            let simd_vs_scalar = simd / scalar;
            let quant_vs_simd = quant / simd;
            rows.push(vec![
                format!("{n}"),
                format!("{t}"),
                format!("{reference:.2}"),
                format!("{scalar:.2}"),
                format!("{simd:.2}"),
                format!("{quant:.2}"),
                format!("{simd_vs_scalar:.2}x"),
                format!("{quant_vs_simd:.2}x"),
            ]);
            points.push(KernelPoint {
                size: n,
                threads: t,
                gflops_reference: reference,
                gflops_scalar_blocked: scalar,
                gflops_simd: simd,
                gops_quantized: quant,
                simd_vs_scalar,
                quant_vs_simd,
            });
        }
    }
    set_simd_mode(SimdMode::Auto);
    set_parallelism(0);

    print_table(
        "matmul GFLOP/s by kernel tier",
        &[
            "size", "threads", "naive", "scalar", "simd", "quant", "simd/sc", "q/simd",
        ],
        &rows,
    );

    if quick {
        // CI floor: catches a build whose SIMD tier silently fell back
        // to scalar (or whose quantized tier collapsed), without being
        // sensitive to small-size timing noise. Only meaningful where
        // the SIMD tier is actually vectorized.
        if isa.simd_active {
            let top = points
                .iter()
                .filter(|p| p.threads == 1)
                .max_by_key(|p| p.size)
                .expect("at least one single-thread point");
            assert!(
                top.simd_vs_scalar >= 1.5,
                "quick floor: expected SIMD >= 1.5x blocked scalar at {0}x{0}, got {1:.2}x",
                top.size,
                top.simd_vs_scalar
            );
            assert!(
                top.quant_vs_simd >= 0.5,
                "quick floor: quantized tier collapsed at {0}x{0}: {1:.2}x of SIMD",
                top.size,
                top.quant_vs_simd
            );
        }
        return;
    }

    let single_512 = points
        .iter()
        .find(|p| p.size == 512 && p.threads == 1)
        .expect("512x512 single-thread point");
    assert!(
        single_512.gflops_scalar_blocked / single_512.gflops_reference >= 2.0,
        "expected >= 2x blocked-scalar speedup over naive at 512x512, got {:.2}x",
        single_512.gflops_scalar_blocked / single_512.gflops_reference
    );
    if isa.simd_active {
        assert!(
            single_512.simd_vs_scalar >= 3.0,
            "expected SIMD >= 3x blocked scalar at 512x512 single-thread, got {:.2}x",
            single_512.simd_vs_scalar
        );
        assert!(
            single_512.quant_vs_simd >= 1.5,
            "expected quantized >= 1.5x SIMD f32 at 512x512 single-thread, got {:.2}x",
            single_512.quant_vs_simd
        );
    }
    // The compiled-plan serving path rides along in the full run so
    // `results/kernel_throughput.json` records the serving-dispatch
    // speedup next to the raw kernel tiers.
    let fused = fused_serving_bench(false);
    report_fused(&fused, false);
    set_simd_mode(SimdMode::Auto);
    set_parallelism(0);
    write_json(
        "kernel_throughput",
        &KernelThroughputDoc {
            quick,
            host_cores,
            isa,
            sizes,
            threads,
            points,
            fused: Some(fused),
        },
    );
}
