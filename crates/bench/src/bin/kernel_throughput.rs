//! Kernel throughput bench: GFLOP/s of the blocked matmul kernels vs the
//! retained naive reference, across matrix sizes and thread counts.
//!
//! Regenerates `results/kernel_throughput.json`. Run with `--quick` for a
//! CI smoke pass over tiny sizes (no assertions, sub-second).

use eugene_bench::{has_flag, print_table, write_json};
use eugene_tensor::{seeded_rng, set_parallelism, standard_normal, Matrix};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct KernelPoint {
    size: usize,
    threads: usize,
    gflops_blocked: f64,
    gflops_reference: f64,
    speedup_vs_reference: f64,
}

#[derive(Serialize)]
struct KernelThroughputDoc {
    quick: bool,
    host_cores: usize,
    sizes: Vec<usize>,
    threads: Vec<usize>,
    points: Vec<KernelPoint>,
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = seeded_rng(seed);
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| standard_normal(&mut rng))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Times `op` over enough repetitions to exceed ~80ms and returns GFLOP/s
/// for an `n^3` product (2*n^3 flops per multiply).
fn gflops(n: usize, quick: bool, op: impl Fn() -> Matrix) -> f64 {
    let flops = 2.0 * (n as f64).powi(3);
    // Warm up (page in the pool, fill caches).
    let sink = op();
    std::hint::black_box(sink.as_slice()[0]);
    let target = if quick { 0.01 } else { 0.08 };
    let mut reps = 0u32;
    let start = Instant::now();
    loop {
        let out = op();
        std::hint::black_box(out.as_slice()[0]);
        reps += 1;
        if start.elapsed().as_secs_f64() >= target {
            break;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    flops * f64::from(reps) / secs / 1e9
}

fn main() {
    let quick = has_flag("--quick");
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let sizes: Vec<usize> = if quick {
        vec![32, 64]
    } else {
        vec![64, 128, 256, 512]
    };
    let threads: Vec<usize> = if quick { vec![1, 2] } else { vec![1, 2, 4] };

    println!("kernel_throughput: host has {host_cores} core(s)");
    let mut points = Vec::new();
    let mut rows = Vec::new();
    for &n in &sizes {
        let a = random_matrix(n, n, 0xA5 + n as u64);
        let b = random_matrix(n, n, 0x5A + n as u64);
        set_parallelism(1);
        let reference = gflops(n, quick, || a.matmul_reference(&b));
        for &t in &threads {
            set_parallelism(t);
            let blocked = gflops(n, quick, || a.matmul(&b));
            let speedup = blocked / reference;
            rows.push(vec![
                format!("{n}"),
                format!("{t}"),
                format!("{blocked:.2}"),
                format!("{reference:.2}"),
                format!("{speedup:.2}x"),
            ]);
            points.push(KernelPoint {
                size: n,
                threads: t,
                gflops_blocked: blocked,
                gflops_reference: reference,
                speedup_vs_reference: speedup,
            });
        }
    }
    set_parallelism(0);

    print_table(
        "matmul GFLOP/s (blocked vs naive reference)",
        &["size", "threads", "blocked", "reference", "speedup"],
        &rows,
    );

    if !quick {
        let single_512 = points
            .iter()
            .find(|p| p.size == 512 && p.threads == 1)
            .expect("512x512 single-thread point");
        assert!(
            single_512.speedup_vs_reference >= 2.0,
            "expected >= 2x single-thread speedup at 512x512, got {:.2}x",
            single_512.speedup_vs_reference
        );
        write_json(
            "kernel_throughput",
            &KernelThroughputDoc {
                quick,
                host_cores,
                sizes,
                threads,
                points,
            },
        );
    }
}
