//! Ablation for paper §II-B: node pruning (dense, DeepIoT-style) versus
//! edge pruning (sparse) at matched compression ratios, plus the
//! reduced-model caching loop.
//!
//! The paper's claims under test:
//!
//! 1. sparse-matrix savings "do not scale proportionally to the fraction
//!    of zero entries" — we time dense vs CSR matrix-vector products;
//! 2. node pruning produces smaller *dense* models that keep accuracy
//!    after fine-tuning;
//! 3. a cached frequent-classes model answers most skewed traffic locally
//!    and escalates the rest.
//!
//! Run: `cargo run --release -p eugene-bench --bin compress_ablation`

use eugene_bench::{print_table, write_json, Workload, WorkloadConfig};
use eugene_compress::{
    evaluate_cache, prune_edges, prune_nodes, skewed_stream, CachedModel, CachedModelConfig,
    CsrMatrix, ModelCache,
};
use eugene_nn::{evaluate_staged, Linear, TrainConfig, Trainer};
use eugene_tensor::{seeded_rng, xavier_uniform, Matrix};
use serde::Serialize;
use std::time::Instant;

fn main() {
    sparse_vs_dense_timing();
    node_vs_edge_accuracy();
    caching_loop();
}

/// Claim 1: sparse algebra underperforms dense algebra until extreme
/// sparsity.
fn sparse_vs_dense_timing() {
    #[derive(Serialize)]
    struct TimingRow {
        density: f64,
        dense_ns: f64,
        sparse_ns: f64,
        speedup: f64,
    }
    let mut rng = seeded_rng(1);
    let dense = xavier_uniform(256, 256, &mut rng);
    let v: Vec<f32> = (0..256).map(|i| (i as f32).sin()).collect();
    let reps = 2000;
    let time_dense = {
        let start = Instant::now();
        let mut sink = 0.0;
        for _ in 0..reps {
            sink += dense.matvec(&v)[0];
        }
        std::hint::black_box(sink);
        start.elapsed().as_nanos() as f64 / reps as f64
    };
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for prune in [0.0, 0.5, 0.7, 0.9, 0.95, 0.99] {
        let layer = Linear::from_parts(dense.clone(), Matrix::zeros(1, 256));
        let pruned = prune_edges(&layer, prune);
        let csr: &CsrMatrix = pruned.weights();
        let start = Instant::now();
        let mut sink = 0.0;
        for _ in 0..reps {
            sink += csr.vecmat(&v)[0];
        }
        std::hint::black_box(sink);
        let time_sparse = start.elapsed().as_nanos() as f64 / reps as f64;
        rows.push(vec![
            format!("{:.0}%", csr.density() * 100.0),
            format!("{time_dense:.0}"),
            format!("{time_sparse:.0}"),
            format!("{:.2}x", time_dense / time_sparse),
        ]);
        json.push(TimingRow {
            density: csr.density(),
            dense_ns: time_dense,
            sparse_ns: time_sparse,
            speedup: time_dense / time_sparse,
        });
    }
    print_table(
        "Sparse vs dense matvec (256x256): savings lag the zero fraction",
        &["density", "dense ns", "sparse ns", "speedup"],
        &rows,
    );
    write_json("compress_sparse_timing", &json);
}

/// Claim 2: node pruning keeps accuracy at matched parameter budgets.
fn node_vs_edge_accuracy() {
    #[derive(Serialize)]
    struct PruneRow {
        keep_fraction: f64,
        param_ratio: f64,
        accuracy_before_finetune: f64,
        accuracy_after_finetune: f64,
    }
    println!("\ntraining workload for the pruning ablation...");
    let workload = Workload::standard(WorkloadConfig {
        train_size: 1500,
        test_size: 1000,
        epochs: 40,
        seed: 5,
    });
    let base_acc = workload.test_evals().last().unwrap().accuracy;
    let base_params = workload.network.param_count();
    println!("baseline: accuracy {base_acc:.3}, {base_params} params");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for keep in [0.75, 0.5, 0.3] {
        let mut pruned = prune_nodes(&workload.network, keep);
        let before = evaluate_staged(&pruned, &workload.test)
            .last()
            .unwrap()
            .accuracy;
        Trainer::new(TrainConfig {
            epochs: 10,
            learning_rate: 5e-4,
            ..TrainConfig::default()
        })
        .fit(&mut pruned, &workload.train, &mut seeded_rng(6));
        let after = evaluate_staged(&pruned, &workload.test)
            .last()
            .unwrap()
            .accuracy;
        let ratio = pruned.param_count() as f64 / base_params as f64;
        rows.push(vec![
            format!("{keep:.2}"),
            format!("{:.0}%", ratio * 100.0),
            format!("{before:.3}"),
            format!("{after:.3}"),
        ]);
        json.push(PruneRow {
            keep_fraction: keep,
            param_ratio: ratio,
            accuracy_before_finetune: before,
            accuracy_after_finetune: after,
        });
    }
    print_table(
        "Node pruning: accuracy vs compression (final stage head)",
        &["keep", "params", "acc (raw)", "acc (fine-tuned)"],
        &rows,
    );
    write_json("compress_node_pruning", &json);
}

/// Claim 3: the smart-refrigerator caching loop.
fn caching_loop() {
    #[derive(Serialize)]
    struct CacheResult {
        hot_classes: Vec<usize>,
        hit_rate: f64,
        hit_accuracy: f64,
        reduced_params: usize,
        device_latency_share: f64,
    }
    println!("\nrunning the reduced-model caching loop...");
    let workload = Workload::standard(WorkloadConfig {
        train_size: 1500,
        test_size: 500,
        epochs: 40,
        seed: 9,
    });
    let mut rng = seeded_rng(10);
    // Skewed device traffic: classes 2 and 7 dominate (beer and pop).
    let hot = vec![2usize, 7];
    let stream = skewed_stream(&workload.test, &hot, 0.8, 600, &mut rng);
    let mut cache = ModelCache::new(10, 0.999, 0.25, 50);
    // Warm-up: server classifies, device tracks frequencies.
    for i in 0..200 {
        cache.record(stream.label(i));
    }
    assert!(cache.should_rebuild(), "hot classes should trigger a build");
    let candidates = cache.cache_candidates();
    let model = CachedModel::build(
        &workload.train,
        &candidates,
        &CachedModelConfig::default(),
        &mut rng,
    );
    let reduced_params = model.param_count();
    cache.install(model);
    let (hit_rate, hit_acc) = evaluate_cache(&mut cache, &stream);
    print_table(
        "Reduced-model caching (80% traffic on 2 hot classes)",
        &["metric", "value"],
        &[
            vec!["cached classes".into(), format!("{candidates:?}")],
            vec!["reduced model params".into(), reduced_params.to_string()],
            vec![
                "full model params".into(),
                workload.network.param_count().to_string(),
            ],
            vec![
                "device hit rate".into(),
                format!("{:.1}%", hit_rate * 100.0),
            ],
            vec!["hit accuracy".into(), format!("{:.1}%", hit_acc * 100.0)],
        ],
    );
    println!(
        "\nShape checks: cache answers most traffic locally: {}; reduced model is <25% of full: {}",
        hit_rate > 0.5,
        reduced_params * 4 < workload.network.param_count(),
    );
    write_json(
        "compress_caching",
        &CacheResult {
            hot_classes: candidates,
            hit_rate,
            hit_accuracy: hit_acc,
            reduced_params,
            device_latency_share: hit_rate,
        },
    );
}
