//! Reproduces **Table IV**: individual vs collaborative deep IoT
//! inferencing on the 8-camera world.
//!
//! Paper numbers (PETS2009, Movidius-class edge node):
//!
//! | approach      | detection accuracy | recognition latency |
//! |---------------|--------------------|---------------------|
//! | Individual    | 68%                | 550 ms              |
//! | Collaborative | 75.5%              | 25 ms               |
//!
//! Shape to match: collaboration wins both axes — accuracy by >= 7 points
//! and latency by roughly 20x.
//!
//! `--resilience` additionally runs the §IV-C rogue-camera experiment:
//! fabricated boxes from one compromised camera degrade collaborative
//! accuracy by over 20% (relative), and the reputation filter recovers
//! most of the loss.
//!
//! Run: `cargo run --release -p eugene-bench --bin table4_collab [--resilience]`

use eugene_bench::{has_flag, print_table, write_json};
use eugene_collab::{
    run_collaborative, run_individual, run_with_rogue, Camera, DetectorModel, PipelineConfig,
    PipelineReport, RogueConfig, World, WorldConfig,
};
use serde::Serialize;

const TRIALS: u64 = 5;

#[derive(Serialize)]
struct Table4Row {
    approach: String,
    detection_accuracy: f64,
    recognition_latency_ms: f64,
    amortized_latency_ms: f64,
}

fn averaged(run: impl Fn(u64) -> PipelineReport) -> (f64, f64, f64) {
    let mut acc = 0.0;
    let mut lat = 0.0;
    let mut amortized = 0.0;
    for t in 0..TRIALS {
        let r = run(t);
        acc += r.detection_accuracy;
        lat += r.recognition_latency_ms;
        amortized += r.mean_latency_ms;
    }
    let n = TRIALS as f64;
    (acc / n, lat / n, amortized / n)
}

fn main() {
    let model = DetectorModel::movidius_class();
    let config = PipelineConfig::default();
    let cameras = Camera::ring(8, WorldConfig::default().arena_side);

    let (ind_acc, ind_lat, ind_amortized) = averaged(|t| {
        let mut world = World::new(WorldConfig::default(), 900 + t);
        run_individual(&mut world, &cameras, &model, &config, 10 + t)
    });
    let (col_acc, col_lat, col_amortized) = averaged(|t| {
        let mut world = World::new(WorldConfig::default(), 900 + t);
        run_collaborative(&mut world, &cameras, &model, &config, 10 + t)
    });

    let rows = vec![
        vec![
            "Individual".to_string(),
            format!("{:.1}%", ind_acc * 100.0),
            format!("{ind_lat:.0} ms"),
            format!("{ind_amortized:.0} ms"),
        ],
        vec![
            "Collaborative".to_string(),
            format!("{:.1}%", col_acc * 100.0),
            format!("{col_lat:.0} ms"),
            format!("{col_amortized:.0} ms"),
        ],
    ];
    print_table(
        "Table IV: collaborative deep IoT inferencing (8-camera world, 5 trials)",
        &[
            "approach",
            "detection accuracy",
            "recognition latency",
            "amortized/frame",
        ],
        &rows,
    );
    println!(
        "\nShape checks: accuracy gain {:.1} points (paper +7.5): {}; \
         recognition-latency reduction {:.0}x (paper 22x): {}",
        (col_acc - ind_acc) * 100.0,
        col_acc > ind_acc + 0.04,
        ind_lat / col_lat,
        ind_lat / col_lat > 10.0,
    );
    write_json(
        "table4_collab",
        &vec![
            Table4Row {
                approach: "individual".into(),
                detection_accuracy: ind_acc,
                recognition_latency_ms: ind_lat,
                amortized_latency_ms: ind_amortized,
            },
            Table4Row {
                approach: "collaborative".into(),
                detection_accuracy: col_acc,
                recognition_latency_ms: col_lat,
                amortized_latency_ms: col_amortized,
            },
        ],
    );

    if has_flag("--resilience") {
        resilience(&cameras, &model, &config, col_acc);
    }
}

/// §IV-C: rogue camera attack and reputation-filter defense.
fn resilience(cameras: &[Camera], model: &DetectorModel, config: &PipelineConfig, honest_acc: f64) {
    #[derive(Serialize)]
    struct ResilienceRow {
        scenario: String,
        detection_accuracy: f64,
        relative_drop_pct: f64,
    }
    let (attacked_acc, _, _) = averaged(|t| {
        let mut world = World::new(WorldConfig::default(), 900 + t);
        run_with_rogue(
            &mut world,
            cameras,
            model,
            config,
            &RogueConfig::default(),
            10 + t,
        )
    });
    let (defended_acc, _, _) = averaged(|t| {
        let mut world = World::new(WorldConfig::default(), 900 + t);
        run_with_rogue(
            &mut world,
            cameras,
            model,
            config,
            &RogueConfig {
                defended: true,
                ..RogueConfig::default()
            },
            10 + t,
        )
    });
    let drop = |acc: f64| (honest_acc - acc) / honest_acc * 100.0;
    print_table(
        "Resilience (paper §IV-C): rogue camera and reputation defense",
        &["scenario", "detection accuracy", "drop vs honest"],
        &[
            vec![
                "honest collaboration".into(),
                format!("{:.1}%", honest_acc * 100.0),
                "-".into(),
            ],
            vec![
                "one rogue camera".into(),
                format!("{:.1}%", attacked_acc * 100.0),
                format!("{:.0}%", drop(attacked_acc)),
            ],
            vec![
                "rogue + reputation filter".into(),
                format!("{:.1}%", defended_acc * 100.0),
                format!("{:.0}%", drop(defended_acc)),
            ],
        ],
    );
    println!(
        "\nShape checks: rogue drop {:.0}% exceeds the paper's 20% claim: {}; \
         defense recovers most of it: {}",
        drop(attacked_acc),
        drop(attacked_acc) > 20.0,
        defended_acc > attacked_acc + (honest_acc - attacked_acc) * 0.5,
    );
    write_json(
        "table4_resilience",
        &vec![
            ResilienceRow {
                scenario: "honest".into(),
                detection_accuracy: honest_acc,
                relative_drop_pct: 0.0,
            },
            ResilienceRow {
                scenario: "rogue".into(),
                detection_accuracy: attacked_acc,
                relative_drop_pct: drop(attacked_acc),
            },
            ResilienceRow {
                scenario: "defended".into(),
                detection_accuracy: defended_acc,
                relative_drop_pct: drop(defended_acc),
            },
        ],
    );
}
