//! Measures the network gateway end to end: a seeded open-loop Poisson
//! load generator drives a loopback TCP gateway over a synthetic staged
//! engine, once comfortably under capacity and once well over it — then
//! sweeps the single-connection pipelining curve with the multiplexed
//! client.
//!
//! The shapes to look for: under nominal load the gateway answers
//! everything with low tail latency and a zero reject rate; under
//! overload, admission control sheds lowest-utility classes with
//! `Reject{retry_after}` so the admitted remainder still meets its
//! deadlines rather than collapsing into queueing failure; and on a
//! single TCP connection, throughput climbs with multiplexed in-flight
//! depth until it saturates runtime capacity — far above what the
//! one-request-per-connection serial client can reach on the same socket.
//! The sweep then repeats with stage-level micro-batching enabled
//! (`max_batch > 1`): same-stage requests gathered within the window fuse
//! into one stage execution, lifting the saturated ceiling further.
//!
//! Finally, the idle-connection scaling curve: both connection-handling
//! backends hold a growing crowd of idle (handshaken but silent)
//! connections while the bench records gateway thread count, handshake
//! latency, and the round-trip time of a live request threaded through
//! the crowd. The `Blocking` backend spends threads proportional to
//! connections; the `Readiness` event loop holds ten thousand idle
//! connections on one thread.
//!
//! Last, the shard-scaling curve: the same saturated multiplexed keyed
//! workload against a `ShardRouter` over N = 1..4 gateway shards, each
//! with its own runtime. Aggregate throughput must clear 2.5x the
//! single-shard ceiling at N=4.
//!
//! The replicated-resilience section drives the same tier through a
//! shard kill AND a live scale-out with single-attempt clients — under
//! the default Replay failover policy both must be invisible (zero
//! rejects, zero errors, every request completed) — then runs a
//! deliberately lumpy ring with the load-aware rebalancer on and
//! requires the per-shard completion spread to narrow between the two
//! halves of the run.
//!
//! Two multi-tenant / multi-model sections close the run. Tenant
//! isolation: a compliant tenant and a rogue tenant offering 4x the
//! compliant rate share one gateway with weighted per-tenant quotas; the
//! rogue's overshoot must shed while the compliant tenant sees zero
//! errors and a p99 inside its SLO. Data-aware routing: the same
//! mixed-difficulty workload runs against three equal-compute
//! deployments — full model only, compressed model only, and a
//! two-variant registry whose dispatcher sends easy inputs to the
//! compressed variant — and the two-variant registry must beat both
//! single-variant deployments on utility per second.
//!
//! Writes `results/gateway_throughput.json`.
//!
//! An overload-degradation section compares the runtime's two overload
//! policies at rates straddling the saturation knee: a Kill deployment
//! (admission shedding plus deadline kills) against a Degrade deployment
//! (wide-open admission, anytime early exit). Past the knee the Degrade
//! deployment must win on delivered utility per second — answering
//! everyone a little beats answering some perfectly.
//!
//! Run: `cargo run --release -p eugene-bench --bin gateway_throughput`
//! (add `--quick` for a shorter run, `--idle` for only the
//! idle-connection scaling curve, `--sharded` for only the shard-scaling
//! curve, `--replicated` for only the replicated-resilience section,
//! `--overload` for only the overload-degradation comparison,
//! `--tenants` for only the tenant-isolation and data-aware routing
//! sections)

use eugene_bench::{has_flag, print_table, write_json};
use eugene_net::wire::{self, Frame, FrameBuffer, PROTOCOL_VERSION};
use eugene_net::{
    loadgen, ClassSpec, ClientConfig, EugeneClient, Gateway, GatewayBackend, GatewayConfig,
    HashRing, LoadReport, LoadgenConfig, LoadgenMode, MultiplexClient, RebalanceConfig,
    ShardConfig, ShardRouter, SubmitOptions, TenantQuota, TenantSpec,
};
use eugene_sched::Fifo;
use eugene_serve::{
    EngineSession, InferenceEngine, ModelRegistry, OverloadPolicy, RuntimeConfig, ServingRuntime,
    StageReport,
};
use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Three-stage engine with a fixed per-stage cost: the bench measures the
/// network and admission path, so the "model" must be deterministic.
///
/// `payload[0]` is the answer to echo; `payload[1] >= 0.5` marks the
/// input as *hard*. A `wrong_on_hard` engine stands in for a compressed
/// variant that has lost accuracy on hard inputs: it answers them fast,
/// but wrong.
struct FixedCostEngine {
    ramp: Vec<f32>,
    stage_time: Duration,
    wrong_on_hard: bool,
}

impl InferenceEngine for FixedCostEngine {
    fn num_stages(&self) -> usize {
        self.ramp.len()
    }

    fn begin(&self, payload: &[f32]) -> Box<dyn EngineSession> {
        let answer = payload.first().copied().unwrap_or(0.0) as usize;
        let hard = payload.get(1).copied().unwrap_or(0.0) >= 0.5;
        Box::new(FixedCostSession {
            ramp: self.ramp.clone(),
            stage_time: self.stage_time,
            done: 0,
            predicted: if hard && self.wrong_on_hard {
                answer + 1
            } else {
                answer
            },
        })
    }

    fn next_stage_batch(&self, batch: &mut [Box<dyn EngineSession>]) -> Vec<Option<StageReport>> {
        // A fused stage costs one `stage_time` for the whole batch,
        // mirroring the staged-network engine where a multi-row forward
        // traverses the weight panels once for every row. This is what the
        // batched columns measure: occupancy turned into throughput.
        let mut stages_paid = std::collections::HashSet::new();
        batch
            .iter_mut()
            .map(|session| {
                let s = session
                    .as_any_mut()
                    .downcast_mut::<FixedCostSession>()
                    .expect("fixed-cost engine only begins fixed-cost sessions");
                if s.done >= s.ramp.len() {
                    return None;
                }
                if stages_paid.insert(s.done) {
                    std::thread::sleep(s.stage_time);
                }
                let report = StageReport {
                    predicted: s.predicted,
                    confidence: s.ramp[s.done],
                };
                s.done += 1;
                Some(report)
            })
            .collect()
    }
}

struct FixedCostSession {
    ramp: Vec<f32>,
    stage_time: Duration,
    done: usize,
    predicted: usize,
}

impl EngineSession for FixedCostSession {
    fn next_stage(&mut self) -> Option<StageReport> {
        if self.done >= self.ramp.len() {
            return None;
        }
        std::thread::sleep(self.stage_time);
        let report = StageReport {
            predicted: self.predicted,
            confidence: self.ramp[self.done],
        };
        self.done += 1;
        Some(report)
    }

    fn stages_done(&self) -> usize {
        self.done
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// One point of the single-connection pipelining sweep.
#[derive(Serialize)]
struct PipelinePoint {
    /// Concurrent in-flight requests pipelined on the one connection.
    depth: usize,
    report: LoadReport,
    /// Micro-batching gauges for this point (all zero when `max_batch`
    /// was 1).
    batching: BatchStats,
}

/// Snapshot of the runtime's micro-batching gauges after a scenario.
#[derive(Serialize, Clone, Default)]
struct BatchStats {
    fused_batches: u64,
    batched_stage_executions: u64,
    peak_batch_occupancy: usize,
    singleton_dispatches: u64,
    mean_gather_wait_us: u64,
}

/// One point of the shard-scaling curve: the same saturated multiplexed
/// workload spread by routing key over `shards` gateway shards.
#[derive(Serialize)]
struct ShardPoint {
    shards: usize,
    report: LoadReport,
    /// Runtime counters summed across all shards after the run.
    aggregate_submitted: u64,
    aggregate_completed: u64,
}

/// The replicated-resilience section: the front tier absorbing a shard
/// kill AND a live scale-out with single-attempt clients (phase A), then
/// the load-aware rebalancer narrowing a lumpy per-shard rps spread
/// (phase B).
#[derive(Serialize)]
struct ReplicatedResilience {
    /// Phase A: loadgen driven through a mid-run `kill_shard` and a
    /// mid-run `add_shard` with `max_attempts: 1` — every reject, error,
    /// or deadline miss would be a client-visible fault, so all of them
    /// gate at zero.
    elasticity: LoadReport,
    /// In-flight submits transparently replayed to the warm standby
    /// across the kill.
    failover_replays: u64,
    /// Ring-epoch advances over phase A (the kill, the scale-out, and
    /// any migration cutover each bump it).
    epoch_advances: u64,
    /// Phase B: per-shard completed counts for the same seeded workload
    /// on the same lumpy ring, once with the rebalancer off (control)
    /// and once with it on. The rebalanced spread (max/min) must come in
    /// well under the static one.
    rebalance_static: Vec<u64>,
    rebalance_rebalanced: Vec<u64>,
    spread_static: f64,
    spread_rebalanced: f64,
    /// Virtual-node moves the rebalancer applied during phase B.
    rebalances: u64,
}

/// The tenant-isolation measurement: one gateway, two tenants, the rogue
/// offering 4x the compliant rate against a weighted fair-share quota.
#[derive(Serialize)]
struct TenantIsolationPoint {
    /// Aggregate offered rate across both tenants, requests per second.
    offered_rps: f64,
    /// Compliant tenant's latency SLO the gate is checked against, ms.
    slo_ms: f64,
    /// Loadgen view of the run, including the per-tenant breakdown.
    report: LoadReport,
    /// Gateway admission counters per tenant after the run.
    compliant_admitted: u64,
    compliant_shed: u64,
    rogue_admitted: u64,
    rogue_shed: u64,
}

/// One equal-compute deployment of the data-aware routing comparison.
#[derive(Serialize)]
struct VariantPoint {
    deployment: String,
    requests: u64,
    /// Answers matching the payload's ground truth.
    correct: u64,
    /// Completed answers that missed the ground truth (the compressed
    /// variant on hard inputs).
    wrong: u64,
    elapsed_s: f64,
    throughput_rps: f64,
    /// (correct - wrong) per second: a wrong answer costs what a right
    /// one earns, so speed alone cannot win the comparison.
    utility_per_s: f64,
}

/// One point of the overload-degradation comparison: the same offered
/// rate against a Degrade-policy deployment (admission wide open, the
/// runtime early-exits what it cannot finish) and a Kill-policy
/// deployment behind admission shedding (the pre-anytime baseline).
#[derive(Serialize)]
struct OverloadPoint {
    policy: String,
    rate_hz: f64,
    report: LoadReport,
}

/// One point of the idle-connection scaling curve.
#[derive(Serialize)]
struct IdlePoint {
    backend: String,
    /// Idle, handshaken connections held open during the measurement.
    idle_connections: usize,
    /// Gateway threads spawned to hold them (runtime workers excluded).
    gateway_threads: u64,
    /// Connect + Hello/HelloAck handshake latency across the ramp-up.
    connect_p50_us: u64,
    connect_p99_us: u64,
    /// Round trip of one live request threaded through the idle crowd.
    request_rtt_ms: f64,
}

#[derive(Serialize)]
struct GatewayThroughputDoc {
    /// Actual core count of the machine that produced the numbers.
    host_cores: usize,
    /// Kernel tiers and CPU features in effect during the run.
    isa: eugene_bench::HostIsa,
    stage_time_ms: f64,
    workers: usize,
    /// Fused-batch limit used by the batched sections (`max_batch`).
    max_batch: usize,
    nominal: LoadReport,
    overload: LoadReport,
    /// One-request-per-connection baseline on a single socket.
    serial_single_connection: LoadReport,
    /// Multiplexed single-connection throughput vs pipelining depth,
    /// stage batching disabled (`max_batch == 1`).
    mux_single_connection_curve: Vec<PipelinePoint>,
    /// The same sweep with stage-level micro-batching enabled: same-stage
    /// requests gathered within the window fuse into one stage execution.
    batched_mux_single_connection_curve: Vec<PipelinePoint>,
    /// One-request-per-connection at 64 sockets, for the equal-concurrency
    /// comparison against the depth-64 single-socket point.
    per_connection_64: LoadReport,
    /// Idle-connection scaling: threads and latency vs idle crowd size,
    /// per connection-handling backend.
    idle_connection_curve: Vec<IdlePoint>,
    /// Shard-scaling: aggregate throughput of the same saturated
    /// multiplexed workload against a ShardRouter over N = 1..4 shards.
    sharded_scaling_curve: Vec<ShardPoint>,
    /// Replicated resilience: a shard kill plus a live scale-out under
    /// single-attempt load (all faults absorbed by the tier), and the
    /// load-aware rebalancer narrowing a lumpy per-shard rps spread.
    replicated_resilience: ReplicatedResilience,
    /// Overload degradation: Degrade-policy (anytime early exit, wide-open
    /// admission) vs Kill-policy (admission shedding + deadline kills) at
    /// rates straddling the ~1300 rps saturation knee. Beyond the knee the
    /// Degrade deployment must win on delivered utility per second.
    overload_degradation: Vec<OverloadPoint>,
    /// Tenant isolation: a rogue tenant at 4x the compliant tenant's rate
    /// sheds its own traffic; the compliant tenant stays inside its SLO.
    tenant_isolation: TenantIsolationPoint,
    /// Data-aware routing: full-only vs compressed-only vs a two-variant
    /// registry with a difficulty dispatcher, at equal total compute.
    data_aware_utility: Vec<VariantPoint>,
}

/// Connects and completes the wire handshake, returning the open stream.
fn handshake(addr: SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    wire::write_frame(
        &mut stream,
        &Frame::Hello {
            max_version: PROTOCOL_VERSION,
        },
    )
    .expect("hello");
    let mut buffer = FrameBuffer::new();
    loop {
        match buffer.poll(&mut stream).expect("read HelloAck") {
            Some(Frame::HelloAck { .. }) => return stream,
            Some(other) => panic!("expected HelloAck, got {other:?}"),
            None => {}
        }
    }
}

/// Holds `idle` silent connections against a fresh gateway on `backend`,
/// measuring handshake latency during the ramp, the gateway's thread
/// budget, and the round trip of one live request among the crowd.
fn idle_scenario(backend: GatewayBackend, idle: usize) -> IdlePoint {
    let engine = Arc::new(FixedCostEngine {
        ramp: vec![0.95],
        stage_time: Duration::ZERO,
        wrong_on_hard: false,
    });
    let runtime = ServingRuntime::start(
        engine,
        Box::new(Fifo::new()),
        RuntimeConfig {
            num_workers: 2,
            ..RuntimeConfig::default()
        },
    );
    let gateway = Gateway::start(
        runtime,
        GatewayConfig {
            high_water: 1_000_000,
            hard_cap: 2_000_000,
            backend,
            ..GatewayConfig::default()
        },
    )
    .expect("bind loopback gateway");
    let addr = gateway.local_addr();
    let status = gateway.status();
    println!("idle-{backend:?}: ramping to {idle} idle connections...");

    let mut connect_us: Vec<u64> = Vec::with_capacity(idle);
    let mut conns = Vec::with_capacity(idle);
    for _ in 0..idle {
        let t = Instant::now();
        conns.push(handshake(addr));
        connect_us.push(t.elapsed().as_micros() as u64);
    }
    connect_us.sort_unstable();
    let pct = |p: f64| connect_us[((connect_us.len() - 1) as f64 * p) as usize];

    let mut client = EugeneClient::new(addr, ClientConfig::default()).expect("resolve");
    let t = Instant::now();
    let outcome = client
        .infer("probe", &[1.0], Duration::from_secs(10))
        .expect("live request among idle crowd");
    let request_rtt_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(outcome.predicted, Some(1));

    let point = IdlePoint {
        backend: format!("{backend:?}"),
        idle_connections: idle,
        gateway_threads: status.threads_spawned(),
        connect_p50_us: pct(0.50),
        connect_p99_us: pct(0.99),
        request_rtt_ms,
    };
    drop(conns);
    gateway.shutdown();
    point
}

/// The idle scaling sweep. The blocking backend spends threads (reader +
/// dispatchers) per connection, so its curve stops early; readiness runs
/// to 10k connections — ~20k fds on loopback, hence the rlimit raise,
/// with the curve clamped to whatever the kernel actually grants.
fn idle_sweep(quick: bool) -> Vec<IdlePoint> {
    let (blocking_points, readiness_points): (Vec<usize>, Vec<usize>) = if quick {
        (vec![100], vec![100, 2_000])
    } else {
        (vec![100, 1_000], vec![100, 1_000, 10_000])
    };
    let want = *readiness_points.last().expect("non-empty") as u64 * 2 + 2_000;
    let granted = eugene_net::reactor::raise_nofile_limit(want);
    let max_idle = (granted.saturating_sub(2_000) / 2) as usize;

    let mut curve = Vec::new();
    for &n in &blocking_points {
        if n > max_idle {
            println!("idle-Blocking: skipping {n} (fd limit allows {max_idle})");
            continue;
        }
        curve.push(idle_scenario(GatewayBackend::Blocking, n));
    }
    for &n in &readiness_points {
        let n = n.min(max_idle);
        curve.push(idle_scenario(GatewayBackend::Readiness, n));
    }
    curve
}

fn start_gateway(admission: bool, max_batch: usize) -> Gateway {
    let engine = Arc::new(FixedCostEngine {
        ramp: vec![0.4, 0.7, 0.95],
        stage_time: Duration::from_millis(1),
        wrong_on_hard: false,
    });
    let runtime = ServingRuntime::start(
        engine,
        Box::new(Fifo::new()),
        RuntimeConfig {
            num_workers: 4,
            confidence_threshold: 0.9,
            max_batch,
            gather_window: Duration::from_millis(1),
            ..RuntimeConfig::default()
        },
    );
    // The pipelining sweep opens admission wide: it measures the wire and
    // demux path, and shedding at depth 64 would truncate the curve.
    let (high_water, hard_cap) = if admission {
        (32, 96)
    } else {
        (1_000_000, 2_000_000)
    };
    let mut config = GatewayConfig {
        high_water,
        hard_cap,
        ..GatewayConfig::default()
    };
    config.class_utility.insert("interactive".to_owned(), 2.0);
    config.class_utility.insert("batch".to_owned(), 0.5);
    Gateway::start(runtime, config).expect("bind loopback gateway")
}

struct Scenario<'a> {
    name: &'a str,
    connections: usize,
    mode: LoadgenMode,
    admission: bool,
    max_batch: usize,
    rate_hz: f64,
    total: usize,
    seed: u64,
}

fn scenario(s: Scenario<'_>) -> (LoadReport, BatchStats) {
    // Fresh gateway per scenario so overload cannot pollute nominal.
    let gateway = start_gateway(s.admission, s.max_batch);
    let config = LoadgenConfig {
        addr: gateway.local_addr().to_string(),
        connections: s.connections,
        total_requests: s.total,
        rate_hz: s.rate_hz,
        classes: vec![
            ClassSpec {
                name: "interactive".to_owned(),
                budget_ms: 200,
                weight: 1.0,
                payload_len: 16,
            },
            ClassSpec {
                name: "batch".to_owned(),
                budget_ms: 1_000,
                weight: 1.0,
                payload_len: 16,
            },
        ],
        seed: s.seed,
        client: ClientConfig {
            max_attempts: 1, // measure raw admission decisions
            ..ClientConfig::default()
        },
        mode: s.mode.clone(),
        keyspace: None,
        tenants: Vec::new(),
        wait_grace: Duration::ZERO,
    };
    let kind = match &s.mode {
        LoadgenMode::PerConnection => "serial".to_owned(),
        LoadgenMode::Multiplexed { concurrency } => format!("mux depth {concurrency}"),
    };
    println!(
        "{}: {} requests at {:.0} req/s over {} connection(s), {kind}...",
        s.name, s.total, s.rate_hz, s.connections
    );
    let report = loadgen::run(&config);
    let stats = gateway.stats();
    let batching = BatchStats {
        fused_batches: stats.fused_batches(),
        batched_stage_executions: stats.batched_stage_executions(),
        peak_batch_occupancy: stats.peak_batch_occupancy(),
        singleton_dispatches: stats.singleton_dispatches(),
        mean_gather_wait_us: stats.mean_gather_wait().as_micros() as u64,
    };
    gateway.shutdown();
    (report, batching)
}

/// Drives a saturated multiplexed keyed workload against a [`ShardRouter`]
/// over `shards` fresh runtimes (same fixed-cost engine and worker budget
/// per shard as the single-gateway scenarios, batching disabled so each
/// shard's capacity is engine-bound and the curve isolates sharding).
fn sharded_scenario(shards: usize, total: usize, seed: u64) -> ShardPoint {
    let runtimes = (0..shards)
        .map(|_| {
            let engine = Arc::new(FixedCostEngine {
                ramp: vec![0.4, 0.7, 0.95],
                stage_time: Duration::from_millis(1),
                wrong_on_hard: false,
            });
            ServingRuntime::start(
                engine,
                Box::new(Fifo::new()),
                RuntimeConfig {
                    num_workers: 4,
                    confidence_threshold: 0.9,
                    ..RuntimeConfig::default()
                },
            )
        })
        .collect();
    let router = ShardRouter::start(
        runtimes,
        ShardConfig {
            gateway: GatewayConfig {
                // Admission wide open: the curve measures capacity scaling,
                // not shedding.
                high_water: 1_000_000,
                hard_cap: 2_000_000,
                ..GatewayConfig::default()
            },
            ..ShardConfig::default()
        },
    )
    .expect("bind loopback shard router");
    println!("sharded: {total} requests over {shards} shard(s), mux depth 64 x 2 conns...");
    let report = loadgen::run(&LoadgenConfig {
        addr: router.local_addr().to_string(),
        connections: 2,
        total_requests: total,
        rate_hz: 10_000.0,
        classes: vec![ClassSpec {
            name: "sharded".to_owned(),
            // Generous budget: saturation is the point, expiry is noise.
            budget_ms: 10_000,
            weight: 1.0,
            payload_len: 16,
        }],
        seed,
        client: ClientConfig {
            max_attempts: 1,
            ..ClientConfig::default()
        },
        mode: LoadgenMode::Multiplexed { concurrency: 64 },
        keyspace: Some(4_096),
        tenants: Vec::new(),
        wait_grace: Duration::ZERO,
    });
    let aggregate = router.aggregate_stats();
    router.shutdown();
    ShardPoint {
        shards,
        report,
        aggregate_submitted: aggregate.submitted,
        aggregate_completed: aggregate.completed,
    }
}

/// The shard-scaling sweep, plus the claim the front tier exists for:
/// aggregate throughput at N=4 shards clears 2.5x the single-shard
/// ceiling on the same saturated workload.
fn sharded_sweep(quick: bool) -> Vec<ShardPoint> {
    let (counts, total): (Vec<usize>, usize) = if quick {
        (vec![1, 2], 600)
    } else {
        (vec![1, 2, 3, 4], 2_400)
    };
    let curve: Vec<ShardPoint> = counts
        .iter()
        .map(|&n| sharded_scenario(n, total, 31 + n as u64))
        .collect();
    let rows: Vec<Vec<String>> = curve
        .iter()
        .map(|p| {
            vec![
                p.shards.to_string(),
                format!("{:.0}", p.report.throughput_rps),
                format!("{:.2}", p.report.p50_ms),
                format!("{:.2}", p.report.p99_ms),
                p.aggregate_completed.to_string(),
            ]
        })
        .collect();
    print_table(
        "Shard scaling",
        &["shards", "rps", "p50ms", "p99ms", "completed"],
        &rows,
    );
    for point in &curve {
        assert_eq!(
            point.report.completed
                + point.report.rejected
                + point.report.expired
                + point.report.deadline_exhausted
                + point.report.errors,
            point.report.requests,
            "every sharded request must be accounted for"
        );
    }
    let base = curve.first().expect("curve is non-empty");
    let deepest = curve.last().expect("curve is non-empty");
    if deepest.shards >= 4 {
        assert!(
            deepest.report.throughput_rps > 2.5 * base.report.throughput_rps,
            "{} shards must scale the saturated aggregate past 2.5x one \
             shard ({:.0} rps vs {:.0} rps)",
            deepest.shards,
            deepest.report.throughput_rps,
            base.report.throughput_rps
        );
    } else {
        assert!(
            deepest.report.throughput_rps > 1.4 * base.report.throughput_rps,
            "{} shards must beat one shard ({:.0} rps vs {:.0} rps)",
            deepest.shards,
            deepest.report.throughput_rps,
            base.report.throughput_rps
        );
    }
    curve
}

/// One fresh shard runtime for the replicated-resilience section: same
/// fixed-cost engine and worker budget as the shard-scaling curve.
fn replicated_runtime() -> ServingRuntime {
    let engine = Arc::new(FixedCostEngine {
        ramp: vec![0.4, 0.7, 0.95],
        stage_time: Duration::from_millis(1),
        wrong_on_hard: false,
    });
    ServingRuntime::start(
        engine,
        Box::new(Fifo::new()),
        RuntimeConfig {
            num_workers: 4,
            confidence_threshold: 0.9,
            ..RuntimeConfig::default()
        },
    )
}

/// Loadgen config shared by both replicated phases: multiplexed, keyed,
/// and `max_attempts: 1` so the *tier* must absorb every fault — a
/// client-side retry would mask a failover bug as latency.
fn replicated_load(
    addr: String,
    total: usize,
    rate_hz: f64,
    keyspace: u64,
    seed: u64,
) -> LoadgenConfig {
    LoadgenConfig {
        addr,
        connections: 2,
        total_requests: total,
        rate_hz,
        classes: vec![ClassSpec {
            name: "replicated".to_owned(),
            budget_ms: 10_000,
            weight: 1.0,
            payload_len: 16,
        }],
        seed,
        client: ClientConfig {
            max_attempts: 1,
            ..ClientConfig::default()
        },
        mode: LoadgenMode::Multiplexed { concurrency: 32 },
        keyspace: Some(keyspace),
        tenants: Vec::new(),
        wait_grace: Duration::ZERO,
    }
}

/// Phase A of the replicated section: drive the tier through a shard
/// kill AND a live scale-out mid-run. Under the default Replay policy
/// with single-attempt clients, both events must be invisible — every
/// request completes, zero rejects, zero errors.
fn replicated_fault_phase(quick: bool) -> (LoadReport, u64, u64) {
    const SHARDS: usize = 3;
    let total = if quick { 800 } else { 3_000 };
    let runtimes = (0..SHARDS).map(|_| replicated_runtime()).collect();
    let router = ShardRouter::start(
        runtimes,
        ShardConfig {
            gateway: GatewayConfig {
                high_water: 1_000_000,
                hard_cap: 2_000_000,
                ..GatewayConfig::default()
            },
            ..ShardConfig::default()
        },
    )
    .expect("bind loopback shard router");
    let epoch_start = router.ring_epoch();
    println!(
        "replicated: {total} requests through a shard kill + live \
         scale-out, max_attempts 1..."
    );
    let config = replicated_load(router.local_addr().to_string(), total, 2_000.0, 4_096, 43);
    let run = std::thread::spawn(move || loadgen::run(&config));
    // Kill only once the victim provably has work in flight, so the
    // failover replay path is actually exercised (bounded wait: with an
    // unsaturated tier the victim may momentarily be idle).
    std::thread::sleep(Duration::from_millis(80));
    let until = Instant::now() + Duration::from_millis(500);
    while Instant::now() < until {
        let stats = &router.shard_stats()[0];
        if stats.submitted() > stats.completed() {
            break;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    assert!(router.kill_shard(0), "victim was alive");
    std::thread::sleep(Duration::from_millis(120));
    router
        .add_shard(replicated_runtime())
        .expect("live scale-out");
    let report = run.join().expect("loadgen run never hangs");

    assert_eq!(
        report.completed, report.requests,
        "kill + scale-out must be invisible to single-attempt clients: {report:?}"
    );
    assert_eq!(report.rejected, 0, "{report:?}");
    assert_eq!(report.rejected_shard_lost, 0, "{report:?}");
    assert_eq!(report.errors, 0, "{report:?}");
    assert_eq!(report.deadline_exhausted, 0, "{report:?}");
    let replays = router.failover_replays();
    let epoch_advances = router.ring_epoch() - epoch_start;
    assert!(epoch_advances >= 2, "kill + scale-out must bump the epoch");
    router.shutdown();
    (report, replays, epoch_advances)
}

/// Phase B of the replicated section: a deliberately lumpy ring (few
/// virtual nodes, seed picked so one shard owns >= 2x another's keys)
/// under the same seeded uniform keyed load, run twice — once with the
/// rebalancer off (the static control) and once with it on. The
/// rebalanced run's per-shard completion spread must come in well under
/// the control's: the rebalancer provably moved keyspace off the hot
/// shard.
fn replicated_rebalance_phase(quick: bool) -> (Vec<u64>, Vec<u64>, f64, f64, u64) {
    const SHARDS: usize = 3;
    const VNODES: usize = 4;
    const KEYSPACE: u64 = 512;
    let total = if quick { 2_400 } else { 9_600 };
    // Deterministically pick the first ring seed whose assignment is
    // lumpy enough (>= 2x spread) to trigger the rebalancer: this phase
    // measures the correction, so it must start unbalanced.
    let seed = (0u64..)
        .find(|&s| {
            let mut ring = HashRing::new(s, VNODES);
            for shard in 0..SHARDS {
                ring.insert(shard);
            }
            let mut counts = [0u64; SHARDS];
            for key in 0..KEYSPACE {
                counts[ring.route(key).expect("non-empty ring")] += 1;
            }
            let max = *counts.iter().max().expect("non-empty") as f64;
            let min = (*counts.iter().min().expect("non-empty")).max(1) as f64;
            max / min >= 2.0
        })
        .expect("some seed is lumpy");
    println!(
        "replicated-rebalance: 2 x {total} requests on a lumpy ring \
         (seed {seed}), rebalancer off vs on..."
    );
    let spread = |deltas: &[u64]| -> f64 {
        let max = *deltas.iter().max().expect("non-empty") as f64;
        let min = (*deltas.iter().min().expect("non-empty")).max(1) as f64;
        max / min
    };
    let run_once = |rebalance: Option<RebalanceConfig>| -> (Vec<u64>, u64) {
        let runtimes = (0..SHARDS).map(|_| replicated_runtime()).collect();
        let router = ShardRouter::start(
            runtimes,
            ShardConfig {
                seed,
                virtual_nodes: VNODES,
                rebalance,
                gateway: GatewayConfig {
                    high_water: 1_000_000,
                    hard_cap: 2_000_000,
                    ..GatewayConfig::default()
                },
                ..ShardConfig::default()
            },
        )
        .expect("bind loopback shard router");
        let report = loadgen::run(&replicated_load(
            router.local_addr().to_string(),
            total,
            1_200.0,
            KEYSPACE,
            47,
        ));
        assert_eq!(report.completed, report.requests, "{report:?}");
        let counts: Vec<u64> = router.shard_stats().iter().map(|s| s.completed()).collect();
        let rebalances = router.rebalances();
        router.shutdown();
        (counts, rebalances)
    };
    let (static_counts, none) = run_once(None);
    assert_eq!(none, 0, "no rebalancer, no moves");
    let (rebalanced_counts, rebalances) = run_once(Some(RebalanceConfig {
        interval: Duration::from_millis(100),
        min_samples: 50,
        max_spread: 1.15,
        step: 1,
        min_vnodes: 1,
    }));
    let (spread_static, spread_rebalanced) = (spread(&static_counts), spread(&rebalanced_counts));

    print_table(
        "Replicated rebalance",
        &[
            "rebalancer",
            "shard0",
            "shard1",
            "shard2",
            "spread",
            "moves",
        ],
        &[
            vec![
                "off".to_owned(),
                static_counts[0].to_string(),
                static_counts[1].to_string(),
                static_counts[2].to_string(),
                format!("{spread_static:.2}"),
                "0".to_owned(),
            ],
            vec![
                "on".to_owned(),
                rebalanced_counts[0].to_string(),
                rebalanced_counts[1].to_string(),
                rebalanced_counts[2].to_string(),
                format!("{spread_rebalanced:.2}"),
                rebalances.to_string(),
            ],
        ],
    );
    assert!(
        rebalances >= 1,
        "a 2x-lumpy ring under load must trigger the rebalancer"
    );
    assert!(
        spread_rebalanced < spread_static * 0.8,
        "the rebalancer must narrow the per-shard rps spread well under \
         the static ring's ({spread_static:.2} -> {spread_rebalanced:.2})"
    );
    (
        static_counts,
        rebalanced_counts,
        spread_static,
        spread_rebalanced,
        rebalances,
    )
}

/// Both replicated phases, assembled for the JSON document.
fn replicated_section(quick: bool) -> ReplicatedResilience {
    let (elasticity, failover_replays, epoch_advances) = replicated_fault_phase(quick);
    let (rebalance_static, rebalance_rebalanced, spread_static, spread_rebalanced, rebalances) =
        replicated_rebalance_phase(quick);
    ReplicatedResilience {
        elasticity,
        failover_replays,
        epoch_advances,
        rebalance_static,
        rebalance_rebalanced,
        spread_static,
        spread_rebalanced,
        rebalances,
    }
}

/// Tenant isolation under overload: a compliant tenant offering ~300 req/s
/// (well inside its weighted share of the ~1300 req/s engine capacity)
/// shares the gateway with a rogue tenant offering 4x that. The governor's
/// weighted fair shares (3:1 over hard_cap 48 → 36 vs 12 in-flight) mean
/// the queue the rogue builds past the high-water mark is *its own*: the
/// rogue sheds, the compliant tenant never does and its p99 stays inside
/// the SLO.
fn tenant_scenario(quick: bool) -> TenantIsolationPoint {
    const SLO_MS: f64 = 200.0;
    let engine = Arc::new(FixedCostEngine {
        ramp: vec![0.4, 0.7, 0.95],
        stage_time: Duration::from_millis(1),
        wrong_on_hard: false,
    });
    let runtime = ServingRuntime::start(
        engine,
        Box::new(Fifo::new()),
        RuntimeConfig {
            num_workers: 4,
            confidence_threshold: 0.9,
            ..RuntimeConfig::default()
        },
    );
    let mut quotas = HashMap::new();
    quotas.insert(
        "compliant".to_owned(),
        TenantQuota {
            weight: 3.0,
            max_in_flight: None,
        },
    );
    quotas.insert(
        "rogue".to_owned(),
        TenantQuota {
            weight: 1.0,
            max_in_flight: None,
        },
    );
    let gateway = Gateway::start(
        runtime,
        GatewayConfig {
            high_water: 12,
            hard_cap: 48,
            tenant_quotas: quotas,
            ..GatewayConfig::default()
        },
    )
    .expect("bind loopback gateway");

    let total = if quick { 900 } else { 3_000 };
    let offered_rps = 1_500.0;
    println!(
        "tenants: {total} requests at {offered_rps:.0} req/s, \
         compliant:rogue offered 1:4, quota weights 3:1..."
    );
    let report = loadgen::run(&LoadgenConfig {
        addr: gateway.local_addr().to_string(),
        connections: 64,
        total_requests: total,
        rate_hz: offered_rps,
        classes: vec![ClassSpec {
            name: "interactive".to_owned(),
            budget_ms: 400,
            weight: 1.0,
            payload_len: 16,
        }],
        seed: 37,
        client: ClientConfig {
            max_attempts: 1, // a shed must surface as a shed, not a retry
            ..ClientConfig::default()
        },
        mode: LoadgenMode::PerConnection,
        keyspace: None,
        tenants: vec![
            TenantSpec {
                name: "compliant".to_owned(),
                weight: 1.0,
            },
            TenantSpec {
                name: "rogue".to_owned(),
                weight: 4.0,
            },
        ],
        wait_grace: Duration::ZERO,
    });
    let rows = gateway.snapshot().per_tenant;
    let point = TenantIsolationPoint {
        offered_rps,
        slo_ms: SLO_MS,
        compliant_admitted: rows.get("compliant").map_or(0, |r| r.admitted),
        compliant_shed: rows.get("compliant").map_or(0, |r| r.shed),
        rogue_admitted: rows.get("rogue").map_or(0, |r| r.admitted),
        rogue_shed: rows.get("rogue").map_or(0, |r| r.shed),
        report,
    };
    gateway.shutdown();

    let table: Vec<Vec<String>> = point
        .report
        .per_tenant
        .iter()
        .map(|(name, t)| {
            vec![
                name.clone(),
                t.requests.to_string(),
                t.completed.to_string(),
                t.rejected.to_string(),
                t.errors.to_string(),
                format!("{:.2}", t.p50_ms),
                format!("{:.2}", t.p99_ms),
            ]
        })
        .collect();
    print_table(
        "Tenant isolation",
        &["tenant", "req", "done", "shed", "err", "p50ms", "p99ms"],
        &table,
    );

    let compliant = &point.report.per_tenant["compliant"];
    assert_eq!(compliant.errors, 0, "compliant tenant must see zero errors");
    assert_eq!(
        compliant.rejected, 0,
        "the rogue's overload must never shed the compliant tenant"
    );
    assert_eq!(
        compliant.expired + compliant.deadline_exhausted,
        0,
        "compliant tenant must miss no deadlines"
    );
    assert!(
        compliant.p99_ms < SLO_MS,
        "a rogue at 4x quota must not push the compliant p99 past the \
         {SLO_MS:.0}ms SLO (saw {:.2}ms)",
        compliant.p99_ms
    );
    let rogue = &point.report.per_tenant["rogue"];
    assert!(
        rogue.rejected > 0,
        "the rogue's overshoot must shed its own traffic"
    );
    assert_eq!(point.rogue_shed, rogue.rejected, "gateway and client agree");
    point
}

/// Starts one fixed-cost runtime for the data-aware comparison: `workers`
/// of the equal-compute budget, a full (3-stage) or compressed (1-stage)
/// ramp, and optionally the compressed variant's accuracy loss.
fn variant_runtime(ramp: &[f32], workers: usize, wrong_on_hard: bool) -> ServingRuntime {
    ServingRuntime::start(
        Arc::new(FixedCostEngine {
            ramp: ramp.to_vec(),
            stage_time: Duration::from_millis(1),
            wrong_on_hard,
        }),
        Box::new(Fifo::new()),
        RuntimeConfig {
            num_workers: workers,
            confidence_threshold: 0.9,
            ..RuntimeConfig::default()
        },
    )
}

/// Drives the shared mixed-difficulty workload (every 4th input hard)
/// through one registry-backed deployment, checking each answer against
/// the ground truth carried in the payload.
fn data_aware_deployment(deployment: &str, registry: ModelRegistry, total: usize) -> VariantPoint {
    let gateway = Gateway::start_registry(
        registry,
        GatewayConfig {
            // Admission wide open: the comparison is about where requests
            // run, not whether they are admitted.
            high_water: 1_000_000,
            hard_cap: 2_000_000,
            ..GatewayConfig::default()
        },
    )
    .expect("bind loopback gateway");
    let client = MultiplexClient::new(
        gateway.local_addr(),
        ClientConfig {
            max_attempts: 1,
            ..ClientConfig::default()
        },
    )
    .expect("connect");
    println!("data-aware [{deployment}]: {total} requests, 25% hard, window 256...");

    // Settling is strict FIFO (PendingInference::wait consumes the
    // handle), so a slow full-model request at the front hides completed
    // work behind it. The window is deep enough that the hidden tail
    // never drains the server's queues.
    const WINDOW: usize = 256;
    let mut pending: VecDeque<(u64, eugene_net::PendingInference)> = VecDeque::new();
    let (mut correct, mut wrong) = (0u64, 0u64);
    let mut settle = |(answer, p): (u64, eugene_net::PendingInference)| {
        let outcome = p.wait().expect("deployment completes every request");
        if outcome.predicted == Some(answer) {
            correct += 1;
        } else {
            wrong += 1;
        }
    };
    let start = Instant::now();
    for i in 0..total {
        let answer = (i % 32) as u64;
        let hard = if i % 4 == 0 { 1.0 } else { 0.0 };
        let p = client
            .submit_with(
                "variant",
                &[answer as f32, hard],
                Duration::from_secs(30),
                false,
                &SubmitOptions::default(),
            )
            .expect("admitted");
        pending.push_back((answer, p));
        if pending.len() >= WINDOW {
            settle(pending.pop_front().expect("window is non-empty"));
        }
    }
    for entry in pending {
        settle(entry);
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    drop(client);
    gateway.shutdown();
    VariantPoint {
        deployment: deployment.to_owned(),
        requests: total as u64,
        correct,
        wrong,
        elapsed_s,
        throughput_rps: total as f64 / elapsed_s,
        utility_per_s: (correct as f64 - wrong as f64) / elapsed_s,
    }
}

/// The data-aware routing comparison at an equal 4-worker compute budget.
/// The dispatcher here is the oracle the facade's fitted mean-variance
/// predictor approximates (`Eugene::serve_multi` fits it from data; the
/// bench's engine is synthetic, so difficulty rides in the payload): easy
/// inputs go to the compressed variant, hard ones to the full model.
fn data_aware_sweep(quick: bool) -> Vec<VariantPoint> {
    let total = if quick { 600 } else { 2_400 };
    const FULL: &[f32] = &[0.4, 0.7, 0.95];
    const COMPRESSED: &[f32] = &[0.95];

    let full_only = ModelRegistry::new("full");
    full_only.load("full", variant_runtime(FULL, 4, false));

    let compressed_only = ModelRegistry::new("compressed");
    compressed_only.load("compressed", variant_runtime(COMPRESSED, 4, true));

    let two_variant = ModelRegistry::new("full");
    two_variant.load("full", variant_runtime(FULL, 2, false));
    two_variant.load("compressed", variant_runtime(COMPRESSED, 2, true));
    two_variant.set_dispatcher(Arc::new(|payload: &[f32]| {
        if payload.get(1).copied().unwrap_or(1.0) >= 0.5 {
            "full".to_owned()
        } else {
            "compressed".to_owned()
        }
    }));

    let curve = vec![
        data_aware_deployment("full-only", full_only, total),
        data_aware_deployment("compressed-only", compressed_only, total),
        data_aware_deployment("data-aware", two_variant, total),
    ];
    let rows: Vec<Vec<String>> = curve
        .iter()
        .map(|p| {
            vec![
                p.deployment.clone(),
                p.requests.to_string(),
                p.correct.to_string(),
                p.wrong.to_string(),
                format!("{:.0}", p.throughput_rps),
                format!("{:.0}", p.utility_per_s),
            ]
        })
        .collect();
    print_table(
        "Data-aware routing (equal compute)",
        &["deployment", "req", "correct", "wrong", "rps", "util/s"],
        &rows,
    );

    let full = &curve[0];
    let compressed = &curve[1];
    let data_aware = &curve[2];
    assert_eq!(
        full.wrong, 0,
        "the full model answers every input correctly"
    );
    assert!(
        compressed.wrong > 0,
        "the compressed-only deployment must pay for hard inputs"
    );
    assert_eq!(
        data_aware.wrong, 0,
        "the dispatcher must route every hard input to the full model"
    );
    for single in [full, compressed] {
        assert!(
            data_aware.utility_per_s > 1.1 * single.utility_per_s,
            "the two-variant registry must beat the {} deployment on \
             utility at equal compute ({:.0}/s vs {:.0}/s)",
            single.deployment,
            data_aware.utility_per_s,
            single.utility_per_s
        );
    }
    curve
}

fn print_idle_table(curve: &[IdlePoint]) {
    let rows: Vec<Vec<String>> = curve
        .iter()
        .map(|p| {
            vec![
                p.backend.clone(),
                p.idle_connections.to_string(),
                p.gateway_threads.to_string(),
                format!("{}", p.connect_p50_us),
                format!("{}", p.connect_p99_us),
                format!("{:.2}", p.request_rtt_ms),
            ]
        })
        .collect();
    print_table(
        "Idle-connection scaling",
        &[
            "backend",
            "idle",
            "threads",
            "conn p50us",
            "conn p99us",
            "rtt ms",
        ],
        &rows,
    );
}

/// One deployment of the overload-degradation comparison: a fresh
/// runtime under `policy` on the concave-ramp engine, driven at
/// `rate_hz` by pipelined submitters so the offered rate is real even
/// past saturation.
fn overload_policy_scenario(
    policy: OverloadPolicy,
    rate_hz: f64,
    total: usize,
    seed: u64,
) -> LoadReport {
    let engine = Arc::new(FixedCostEngine {
        // Concave confidence ramp: early stages carry most of the
        // utility, which is the regime anytime degradation targets.
        ramp: vec![0.6, 0.8, 0.95],
        stage_time: Duration::from_millis(1),
        wrong_on_hard: false,
    });
    let runtime = ServingRuntime::start(
        engine,
        Box::new(Fifo::new()),
        RuntimeConfig {
            num_workers: 4,
            confidence_threshold: 0.9,
            overload: policy,
            ..RuntimeConfig::default()
        },
    );
    // The Degrade deployment admits everything and lets the runtime
    // early-exit what it cannot finish; the Kill baseline sheds at the
    // door (same marks as the admission-control scenario) and the
    // deadline daemon kills whatever slips through and runs late.
    let (high_water, hard_cap) = match policy {
        OverloadPolicy::Degrade => (1_000_000, 2_000_000),
        OverloadPolicy::Kill => (32, 96),
    };
    let gateway = Gateway::start(
        runtime,
        GatewayConfig {
            high_water,
            hard_cap,
            ..GatewayConfig::default()
        },
    )
    .expect("bind loopback gateway");
    let report = loadgen::run(&LoadgenConfig {
        addr: gateway.local_addr().to_string(),
        connections: 4,
        total_requests: total,
        rate_hz,
        classes: vec![ClassSpec {
            name: "anytime".to_owned(),
            budget_ms: 30,
            weight: 1.0,
            payload_len: 16,
        }],
        seed,
        client: ClientConfig {
            max_attempts: 1, // a shed must book as a shed, not a retry
            ..ClientConfig::default()
        },
        mode: LoadgenMode::Multiplexed { concurrency: 128 },
        keyspace: None,
        tenants: Vec::new(),
        // Let an answer produced at the server's deadline cross the wire
        // instead of booking as a client-side miss.
        wait_grace: Duration::from_millis(50),
    });
    gateway.shutdown();
    report
}

/// The overload-degradation sweep and the claim the Degrade policy exists
/// for: past the saturation knee, answering everyone a little beats
/// answering some perfectly and the rest not at all.
fn overload_degradation_sweep(quick: bool) -> Vec<OverloadPoint> {
    // Full-depth capacity is ~1300 rps (3 x 1ms stages over 4 workers);
    // the rates straddle that knee.
    const KNEE_RPS: f64 = 1_300.0;
    let (rates, total): (Vec<f64>, usize) = if quick {
        (vec![800.0, 2_600.0], 500)
    } else {
        (vec![800.0, 1_300.0, 2_000.0, 3_000.0], 1_500)
    };
    let mut points = Vec::new();
    for (i, &rate) in rates.iter().enumerate() {
        for (name, policy) in [
            ("degrade", OverloadPolicy::Degrade),
            ("kill", OverloadPolicy::Kill),
        ] {
            println!("overload-{name}: {total} requests at {rate:.0} req/s, mux depth 128...");
            let report = overload_policy_scenario(policy, rate, total, 41 + i as u64);
            points.push(OverloadPoint {
                policy: name.to_owned(),
                rate_hz: rate,
                report,
            });
        }
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.policy.clone(),
                format!("{:.0}", p.rate_hz),
                format!("{:.0}", p.report.throughput_rps),
                p.report.rejected.to_string(),
                p.report.expired.to_string(),
                p.report.degraded.to_string(),
                format!("{:.2}", p.report.mean_stages),
                format!("{:.0}", p.report.utility_per_s),
            ]
        })
        .collect();
    print_table(
        "Overload degradation",
        &[
            "policy", "offered", "rps", "rej", "exp", "degr", "stages", "util/s",
        ],
        &rows,
    );

    for point in points.iter().filter(|p| p.policy == "degrade") {
        assert_eq!(
            point.report.rejected, 0,
            "the Degrade deployment admits everything (offered {:.0} rps)",
            point.rate_hz
        );
    }
    for pair in points.chunks(2) {
        let (degrade, kill) = (&pair[0], &pair[1]);
        if degrade.rate_hz <= KNEE_RPS {
            continue;
        }
        assert!(
            degrade.report.utility_per_s > kill.report.utility_per_s,
            "past the saturation knee ({:.0} rps offered), anytime \
             degradation must out-deliver reject-shedding on utility per \
             second (degrade {:.0} vs kill {:.0})",
            degrade.rate_hz,
            degrade.report.utility_per_s,
            kill.report.utility_per_s
        );
    }
    points
}

/// The scaling claim the readiness backend exists for: its deepest point
/// must hold its idle crowd with a bounded thread count and still answer
/// a live request promptly.
fn assert_idle_curve(curve: &[IdlePoint]) {
    let deepest = curve
        .iter()
        .filter(|p| p.backend == "Readiness")
        .max_by_key(|p| p.idle_connections)
        .expect("readiness points present");
    assert!(
        deepest.gateway_threads < 32,
        "{} idle connections must be held by a bounded thread set, \
         spawned {}",
        deepest.idle_connections,
        deepest.gateway_threads
    );
    assert!(
        deepest.request_rtt_ms < 1_000.0,
        "a live request among {} idle connections took {:.1}ms",
        deepest.idle_connections,
        deepest.request_rtt_ms
    );
}

fn main() {
    let quick = has_flag("--quick");
    let idle_only = has_flag("--idle");
    let sharded_only = has_flag("--sharded");
    if idle_only {
        // Scaling curve only (CI runs this): no JSON refresh, so the full
        // document's other sections stay intact.
        let idle_curve = idle_sweep(quick);
        print_idle_table(&idle_curve);
        assert_idle_curve(&idle_curve);
        return;
    }
    if sharded_only {
        // Shard-scaling curve only (CI runs this with --quick): asserts the
        // multi-shard speedup without refreshing the JSON document.
        sharded_sweep(quick);
        return;
    }
    if has_flag("--replicated") {
        // Replicated-resilience section only (CI runs this with --quick):
        // asserts the zero-error kill + scale-out gate and the
        // rebalancer's spread narrowing without refreshing the JSON.
        replicated_section(quick);
        return;
    }
    if has_flag("--overload") {
        // Overload-degradation comparison only (CI runs this with
        // --quick): asserts the utility win past the knee without
        // refreshing the JSON document.
        overload_degradation_sweep(quick);
        return;
    }
    if has_flag("--tenants") {
        // Multi-tenant / multi-model sections only (CI runs this with
        // --quick): asserts tenant isolation and the data-aware routing
        // win without refreshing the JSON document.
        tenant_scenario(quick);
        data_aware_sweep(quick);
        return;
    }
    let (nominal_total, overload_total) = if quick { (300, 600) } else { (1_500, 3_000) };
    let (serial_total, sweep_total) = if quick { (150, 400) } else { (600, 1_200) };

    const MAX_BATCH: usize = 8;

    // ~3ms of engine time per request across 4 workers puts capacity
    // near 1300 req/s: probe well under it with a handful of connections,
    // then well over it with enough concurrency (64 blocking connections
    // against high_water 32) to drive admission control into shedding.
    let (nominal, _) = scenario(Scenario {
        name: "nominal",
        connections: 8,
        mode: LoadgenMode::PerConnection,
        admission: true,
        max_batch: 1,
        rate_hz: 400.0,
        total: nominal_total,
        seed: 11,
    });
    let (overload, _) = scenario(Scenario {
        name: "overload",
        connections: 64,
        mode: LoadgenMode::PerConnection,
        admission: true,
        max_batch: 1,
        rate_hz: 4_000.0,
        total: overload_total,
        seed: 13,
    });

    // Single-connection pipelining sweep: one socket, multiplexed depth
    // 1→64, offered far above capacity so each point is concurrency-bound.
    // The serial baseline is the same socket with one request in flight.
    let (serial_single, _) = scenario(Scenario {
        name: "serial-1conn",
        connections: 1,
        mode: LoadgenMode::PerConnection,
        admission: false,
        max_batch: 1,
        rate_hz: 10_000.0,
        total: serial_total,
        seed: 17,
    });
    let sweep = |name: &'static str, max_batch: usize, seed_base: u64| -> Vec<PipelinePoint> {
        [1usize, 4, 16, 64]
            .into_iter()
            .map(|depth| {
                let (report, batching) = scenario(Scenario {
                    name,
                    connections: 1,
                    mode: LoadgenMode::Multiplexed { concurrency: depth },
                    admission: false,
                    max_batch,
                    rate_hz: 10_000.0,
                    total: sweep_total,
                    seed: seed_base + depth as u64,
                });
                PipelinePoint {
                    depth,
                    report,
                    batching,
                }
            })
            .collect()
    };
    let curve = sweep("mux-1conn", 1, 19);
    // The same sweep with stage-level micro-batching: same-stage requests
    // gathered within the window fuse into one stage execution, so deep
    // pipelines should clear well above the unbatched capacity ceiling.
    let batched_curve = sweep("mux-1conn-batched", MAX_BATCH, 29);
    // Equal concurrency, opposite connection models: 64 serial sockets vs
    // the depth-64 point above on one socket.
    let (per_connection_64, _) = scenario(Scenario {
        name: "serial-64conn",
        connections: 64,
        mode: LoadgenMode::PerConnection,
        admission: false,
        max_batch: 1,
        rate_hz: 10_000.0,
        total: sweep_total,
        seed: 23,
    });

    let row = |name: &str, r: &LoadReport| {
        vec![
            name.to_owned(),
            format!("{:.0}", r.throughput_rps),
            format!("{:.2}", r.p50_ms),
            format!("{:.2}", r.p95_ms),
            format!("{:.2}", r.p99_ms),
            format!("{:.3}", r.reject_rate),
            format!("{:.3}", r.deadline_miss_rate),
        ]
    };
    let mut rows = vec![row("nominal", &nominal), row("overload", &overload)];
    rows.push(row("serial 1 conn", &serial_single));
    for point in &curve {
        rows.push(row(&format!("mux 1 conn x{}", point.depth), &point.report));
    }
    for point in &batched_curve {
        rows.push(row(&format!("mux batched x{}", point.depth), &point.report));
    }
    rows.push(row("serial 64 conn", &per_connection_64));
    print_table(
        "Gateway throughput",
        &["scenario", "rps", "p50ms", "p95ms", "p99ms", "rej", "miss"],
        &rows,
    );

    let idle_curve = idle_sweep(quick);
    print_idle_table(&idle_curve);
    assert_idle_curve(&idle_curve);

    let sharded_curve = sharded_sweep(quick);
    let replicated = replicated_section(quick);
    let overload_curve = overload_degradation_sweep(quick);
    let tenant_isolation = tenant_scenario(quick);
    let data_aware = data_aware_sweep(quick);

    assert_eq!(
        nominal.completed
            + nominal.rejected
            + nominal.expired
            + nominal.deadline_exhausted
            + nominal.errors,
        nominal.requests,
        "every offered request must be accounted for"
    );
    let deepest = curve.last().expect("sweep is non-empty");
    assert!(
        deepest.report.throughput_rps > 2.0 * serial_single.throughput_rps,
        "pipelining 64 requests on one connection must beat the serial \
         one-request-per-connection baseline on that connection \
         (mux {:.0} rps vs serial {:.0} rps)",
        deepest.report.throughput_rps,
        serial_single.throughput_rps
    );
    let deepest_batched = batched_curve.last().expect("batched sweep is non-empty");
    assert!(
        deepest_batched.batching.fused_batches > 0,
        "a saturated pipeline must actually fuse stage batches"
    );
    assert!(
        deepest_batched.report.throughput_rps > deepest.report.throughput_rps,
        "stage-level micro-batching must lift the saturated single-socket \
         ceiling (batched {:.0} rps vs unbatched {:.0} rps)",
        deepest_batched.report.throughput_rps,
        deepest.report.throughput_rps
    );

    write_json(
        "gateway_throughput",
        &GatewayThroughputDoc {
            host_cores: eugene_bench::host_cores(),
            isa: eugene_bench::host_isa(),
            stage_time_ms: 1.0,
            workers: 4,
            max_batch: MAX_BATCH,
            nominal,
            overload,
            serial_single_connection: serial_single,
            mux_single_connection_curve: curve,
            batched_mux_single_connection_curve: batched_curve,
            per_connection_64,
            idle_connection_curve: idle_curve,
            sharded_scaling_curve: sharded_curve,
            replicated_resilience: replicated,
            overload_degradation: overload_curve,
            tenant_isolation,
            data_aware_utility: data_aware,
        },
    );
}
