//! Measures the network gateway end to end: a seeded open-loop Poisson
//! load generator drives a loopback TCP gateway over a synthetic staged
//! engine, once comfortably under capacity and once well over it.
//!
//! The shape to look for: under nominal load the gateway answers
//! everything with low tail latency and a zero reject rate; under
//! overload, admission control sheds lowest-utility classes with
//! `Reject{retry_after}` so the admitted remainder still meets its
//! deadlines rather than collapsing into queueing failure.
//!
//! Writes `results/gateway_throughput.json`.
//!
//! Run: `cargo run --release -p eugene-bench --bin gateway_throughput`
//! (add `--quick` for a shorter run)

use eugene_bench::{has_flag, print_table, write_json};
use eugene_net::{
    loadgen, ClassSpec, ClientConfig, Gateway, GatewayConfig, LoadReport, LoadgenConfig,
};
use eugene_sched::Fifo;
use eugene_serve::{EngineSession, InferenceEngine, RuntimeConfig, ServingRuntime, StageReport};
use serde::Serialize;
use std::sync::Arc;
use std::time::Duration;

/// Three-stage engine with a fixed per-stage cost: the bench measures the
/// network and admission path, so the "model" must be deterministic.
struct FixedCostEngine {
    ramp: Vec<f32>,
    stage_time: Duration,
}

impl InferenceEngine for FixedCostEngine {
    fn num_stages(&self) -> usize {
        self.ramp.len()
    }

    fn begin(&self, payload: &[f32]) -> Box<dyn EngineSession> {
        Box::new(FixedCostSession {
            ramp: self.ramp.clone(),
            stage_time: self.stage_time,
            done: 0,
            predicted: payload.first().copied().unwrap_or(0.0) as usize,
        })
    }
}

struct FixedCostSession {
    ramp: Vec<f32>,
    stage_time: Duration,
    done: usize,
    predicted: usize,
}

impl EngineSession for FixedCostSession {
    fn next_stage(&mut self) -> Option<StageReport> {
        if self.done >= self.ramp.len() {
            return None;
        }
        std::thread::sleep(self.stage_time);
        let report = StageReport {
            predicted: self.predicted,
            confidence: self.ramp[self.done],
        };
        self.done += 1;
        Some(report)
    }

    fn stages_done(&self) -> usize {
        self.done
    }
}

#[derive(Serialize)]
struct GatewayThroughputDoc {
    stage_time_ms: f64,
    workers: usize,
    nominal: LoadReport,
    overload: LoadReport,
}

fn start_gateway() -> Gateway {
    let engine = Arc::new(FixedCostEngine {
        ramp: vec![0.4, 0.7, 0.95],
        stage_time: Duration::from_millis(1),
    });
    let runtime = ServingRuntime::start(
        engine,
        Box::new(Fifo::new()),
        RuntimeConfig {
            num_workers: 4,
            confidence_threshold: 0.9,
            ..RuntimeConfig::default()
        },
    );
    let mut config = GatewayConfig {
        high_water: 32,
        hard_cap: 96,
        ..GatewayConfig::default()
    };
    config.class_utility.insert("interactive".to_owned(), 2.0);
    config.class_utility.insert("batch".to_owned(), 0.5);
    Gateway::start(runtime, config).expect("bind loopback gateway")
}

fn scenario(name: &str, connections: usize, rate_hz: f64, total: usize, seed: u64) -> LoadReport {
    // Fresh gateway per scenario so overload cannot pollute nominal.
    let gateway = start_gateway();
    let config = LoadgenConfig {
        addr: gateway.local_addr().to_string(),
        connections,
        total_requests: total,
        rate_hz,
        classes: vec![
            ClassSpec {
                name: "interactive".to_owned(),
                budget_ms: 200,
                weight: 1.0,
                payload_len: 16,
            },
            ClassSpec {
                name: "batch".to_owned(),
                budget_ms: 1_000,
                weight: 1.0,
                payload_len: 16,
            },
        ],
        seed,
        client: ClientConfig {
            max_attempts: 1, // measure raw admission decisions
            ..ClientConfig::default()
        },
    };
    println!("{name}: {total} requests at {rate_hz:.0} req/s over {connections} connections...");
    let report = loadgen::run(&config);
    gateway.shutdown();
    report
}

fn main() {
    let quick = has_flag("--quick");
    let (nominal_total, overload_total) = if quick { (300, 600) } else { (1_500, 3_000) };

    // ~3ms of engine time per request across 4 workers puts capacity
    // near 1300 req/s: probe well under it with a handful of connections,
    // then well over it with enough concurrency (64 blocking connections
    // against high_water 32) to drive admission control into shedding.
    let nominal = scenario("nominal", 8, 400.0, nominal_total, 11);
    let overload = scenario("overload", 64, 4_000.0, overload_total, 13);

    let row = |name: &str, r: &LoadReport| {
        vec![
            name.to_owned(),
            format!("{:.0}", r.throughput_rps),
            format!("{:.2}", r.p50_ms),
            format!("{:.2}", r.p95_ms),
            format!("{:.2}", r.p99_ms),
            format!("{:.3}", r.reject_rate),
            format!("{:.3}", r.deadline_miss_rate),
        ]
    };
    print_table(
        "Gateway throughput",
        &["scenario", "rps", "p50ms", "p95ms", "p99ms", "rej", "miss"],
        &[row("nominal", &nominal), row("overload", &overload)],
    );

    assert_eq!(
        nominal.completed
            + nominal.rejected
            + nominal.expired
            + nominal.deadline_exhausted
            + nominal.errors,
        nominal.requests,
        "every offered request must be accounted for"
    );

    write_json(
        "gateway_throughput",
        &GatewayThroughputDoc {
            stage_time_ms: 1.0,
            workers: 4,
            nominal,
            overload,
        },
    );
}
