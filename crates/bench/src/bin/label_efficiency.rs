//! Label-efficiency experiment for paper §II-A (SenseGAN claim): training
//! on pseudo-labels recovers most of the accuracy of ground-truth labels.
//!
//! For several labeled fractions we train three classifiers —
//! seed-labels-only, seed + pseudo-labels, and fully labeled (oracle) —
//! and report how much of the seed→oracle gap the pseudo-labels close.
//!
//! Run: `cargo run --release -p eugene-bench --bin label_efficiency`

use eugene_bench::{print_table, write_json};
use eugene_data::{Dataset, SyntheticImages, SyntheticImagesConfig};
use eugene_label::SemiSupervisedLabeler;
use eugene_nn::{evaluate_staged, StagedNetwork, StagedNetworkConfig, TrainConfig, Trainer};
use eugene_tensor::{seeded_rng, Matrix};
use serde::Serialize;

#[derive(Serialize)]
struct EfficiencyRow {
    labeled_fraction: f64,
    seed_only_accuracy: f64,
    pseudo_augmented_accuracy: f64,
    oracle_accuracy: f64,
    gap_recovered: f64,
    pseudo_label_accuracy: f64,
    coverage: f64,
}

fn train_and_score(pool: &Dataset, eval: &Dataset, seed: u64) -> f64 {
    let config = StagedNetworkConfig {
        input_dim: pool.dim(),
        num_classes: pool.num_classes(),
        stage_widths: vec![vec![48]],
        dropout: 0.0,
        input_skip: false,
    };
    let mut net = StagedNetwork::new(&config, &mut seeded_rng(seed));
    Trainer::new(TrainConfig {
        epochs: 40,
        batch_size: 16,
        ..TrainConfig::default()
    })
    .fit(&mut net, pool, &mut seeded_rng(seed + 1));
    evaluate_staged(&net, eval).last().unwrap().accuracy
}

fn augment(labeled: &Dataset, unlabeled: &Matrix, pseudo: &[Option<usize>]) -> Dataset {
    let extra: Vec<usize> = pseudo
        .iter()
        .enumerate()
        .filter_map(|(i, p)| p.map(|_| i))
        .collect();
    let mut features = Matrix::zeros(labeled.len() + extra.len(), labeled.dim());
    let mut labels = Vec::with_capacity(labeled.len() + extra.len());
    for i in 0..labeled.len() {
        features.row_mut(i).copy_from_slice(labeled.sample(i));
        labels.push(labeled.label(i));
    }
    for (j, &i) in extra.iter().enumerate() {
        features
            .row_mut(labeled.len() + j)
            .copy_from_slice(unlabeled.row(i));
        labels.push(pseudo[i].expect("filtered"));
    }
    Dataset::new(features, labels, labeled.num_classes())
}

fn main() {
    let mut rng = seeded_rng(77);
    let gen = SyntheticImages::new(
        SyntheticImagesConfig {
            num_classes: 6,
            dim: 16,
            easy_fraction: 0.7,
            medium_fraction: 0.2,
            ..Default::default()
        },
        &mut rng,
    );
    let (full, _) = gen.generate(1200, &mut rng);
    let (eval, _) = gen.generate(800, &mut rng);

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for fraction in [0.02, 0.05, 0.10, 0.20] {
        let split = full.split(fraction);
        let labeled = &split.train;
        let unlabeled = split.test.features();
        let truth = split.test.labels();

        let outcome =
            SemiSupervisedLabeler::default().label(labeled, unlabeled, &mut seeded_rng(100));
        let augmented = augment(labeled, unlabeled, &outcome.pseudo_labels);

        let seed_only = train_and_score(labeled, &eval, 200);
        let with_pseudo = train_and_score(&augmented, &eval, 200);
        let oracle = train_and_score(&full, &eval, 200);
        let gap_recovered = if oracle > seed_only {
            ((with_pseudo - seed_only) / (oracle - seed_only)).clamp(-1.0, 1.5)
        } else {
            1.0
        };
        rows.push(vec![
            format!("{:.0}%", fraction * 100.0),
            format!("{seed_only:.3}"),
            format!("{with_pseudo:.3}"),
            format!("{oracle:.3}"),
            format!("{:.0}%", gap_recovered * 100.0),
            format!("{:.3}", outcome.pseudo_accuracy(truth)),
            format!("{:.0}%", outcome.coverage * 100.0),
        ]);
        json.push(EfficiencyRow {
            labeled_fraction: fraction,
            seed_only_accuracy: seed_only,
            pseudo_augmented_accuracy: with_pseudo,
            oracle_accuracy: oracle,
            gap_recovered,
            pseudo_label_accuracy: outcome.pseudo_accuracy(truth),
            coverage: outcome.coverage,
        });
    }
    print_table(
        "Label efficiency: pseudo-labels vs ground truth (final accuracy)",
        &[
            "labeled",
            "seed-only",
            "seed+pseudo",
            "oracle",
            "gap recovered",
            "pseudo acc",
            "coverage",
        ],
        &rows,
    );
    let recovered_at_5pct = json[1].gap_recovered;
    println!(
        "\nShape check: at 5% labels pseudo-labeling recovers a substantial share of the \
         oracle gap ({:.0}%): {}",
        recovered_at_5pct * 100.0,
        recovered_at_5pct > 0.3,
    );
    write_json("label_efficiency", &json);
}
