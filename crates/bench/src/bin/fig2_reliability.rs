//! Reproduces **Fig. 2**: reliability diagrams of the staged network
//! before and after entropy-based calibration.
//!
//! The paper's Fig. 2a shows per-bin accuracy sagging below the diagonal
//! (overconfidence); Fig. 2b shows the calibrated network hugging the
//! diagonal. This binary prints both 10-bin diagrams (as text bars) and
//! dumps the series for plotting.
//!
//! Run: `cargo run --release -p eugene-bench --bin fig2_reliability`

use eugene_bench::{print_table, write_json, Workload, WorkloadConfig};
use eugene_calibrate::ReliabilityDiagram;
use eugene_nn::evaluate_staged;
use serde::Serialize;

const BINS: usize = 10;

#[derive(Serialize)]
struct DiagramDump {
    label: String,
    centers: Vec<f32>,
    accuracy: Vec<f64>,
    confidence: Vec<f64>,
    counts: Vec<usize>,
    ece: f64,
}

fn dump(label: &str, diagram: &ReliabilityDiagram) -> DiagramDump {
    DiagramDump {
        label: label.to_string(),
        centers: diagram.bins().iter().map(|b| b.center()).collect(),
        accuracy: diagram.bins().iter().map(|b| b.accuracy).collect(),
        confidence: diagram.bins().iter().map(|b| b.confidence).collect(),
        counts: diagram.bins().iter().map(|b| b.count).collect(),
        ece: diagram.ece(),
    }
}

fn render(title: &str, diagram: &ReliabilityDiagram) {
    let rows: Vec<Vec<String>> = diagram
        .bins()
        .iter()
        .map(|b| {
            let bar_len = (b.accuracy * 30.0).round() as usize;
            let ideal = (b.center() as f64 * 30.0).round() as usize;
            let mut bar: Vec<char> = "#".repeat(bar_len).chars().collect();
            while bar.len() <= ideal {
                bar.push(' ');
            }
            if ideal < bar.len() {
                bar[ideal] = '|'; // the perfect-calibration diagonal
            }
            vec![
                format!("{:.2}", b.center()),
                b.count.to_string(),
                format!("{:.2}", b.accuracy),
                format!("{:.2}", b.confidence),
                bar.into_iter().collect(),
            ]
        })
        .collect();
    print_table(
        title,
        &["conf bin", "n", "acc", "conf", "accuracy bar ('|' = ideal)"],
        &rows,
    );
    println!("  ECE = {:.3}", diagram.ece());
}

fn main() {
    println!("training the three-stage workload (overfit on purpose)...");
    let workload = Workload::standard(WorkloadConfig::default());

    // Final-stage head, like the paper's ResNet diagrams.
    let before_eval = workload.test_evals().pop().expect("three stages");
    let before = ReliabilityDiagram::new(&before_eval.confidences, &before_eval.correct, BINS);
    render("Fig. 2a: reliability diagram WITHOUT calibration", &before);

    let calibrated = workload.calibrated_network(8);
    let after_eval = evaluate_staged(&calibrated, &workload.test)
        .pop()
        .expect("three stages");
    let after = ReliabilityDiagram::new(&after_eval.confidences, &after_eval.correct, BINS);
    render(
        "Fig. 2b: reliability diagram WITH entropy-based calibration",
        &after,
    );

    println!(
        "\nShape check: calibration shrinks ECE {:.3} -> {:.3}: {}",
        before.ece(),
        after.ece(),
        after.ece() < before.ece()
    );
    write_json(
        "fig2_reliability",
        &vec![dump("uncalibrated", &before), dump("calibrated", &after)],
    );
}
