//! Reproduces **Fig. 4**: the scheduler scalability test — mean (4a, 4b)
//! and standard deviation (4c) of service classification accuracy versus
//! the number of concurrent tasks, for:
//!
//! - RTDeepIoT-k (k = 1, 2, 3): greedy utility maximization with GP-fit
//!   piecewise-linear confidence-curve prediction;
//! - RTDeepIoT-DC-k: the constant-slope confidence-update ablation;
//! - RR: stage-level round robin;
//! - FIFO: run-to-completion in arrival order.
//!
//! Shape to match: accuracy declines with concurrency for every policy;
//! RTDeepIoT stays on top (4a: above RR; 4b: above DC and FIFO); the
//! accuracy standard deviation splits the utility-aware policies (low,
//! fair) from FIFO/DC (high) in 4c.
//!
//! Run: `cargo run --release -p eugene-bench --bin fig4_scheduling`

use eugene_bench::{print_table, write_json, Workload, WorkloadConfig};
use eugene_nn::evaluate_staged;
use eugene_sched::{
    DcPredictor, Fifo, PwlCurvePredictor, RoundRobin, RtDeepIot, Scheduler, SimConfig, Simulation,
    TaskProfile,
};
use eugene_tensor::{seeded_rng, std_dev};
use rand::seq::SliceRandom;
use serde::Serialize;

const CONCURRENCY: [usize; 4] = [2, 5, 10, 20];
const TRIALS: u64 = 6;
const NUM_WORKERS: usize = 4;
const DEADLINE_QUANTA: u64 = 6;

#[derive(Serialize)]
struct Series {
    policy: String,
    concurrency: Vec<usize>,
    mean_accuracy: Vec<f64>,
    std_accuracy: Vec<f64>,
    mean_stages: Vec<f64>,
}

fn main() {
    println!("training and calibrating the three-stage workload...");
    let workload = Workload::standard(WorkloadConfig::default());
    let network = workload.calibrated_network(8);

    // Pre-compute per-task stage outcomes from the *calibrated* network on
    // the test split (the stream the service will classify).
    let evals = evaluate_staged(&network, &workload.test);
    let profiles: Vec<TaskProfile> = (0..workload.test.len())
        .map(|i| {
            TaskProfile::new(
                evals.iter().map(|e| e.confidences[i]).collect(),
                evals.iter().map(|e| e.correct[i]).collect(),
            )
        })
        .collect();

    // Confidence predictors are fit on held-out calibration curves (the
    // overfit network's training-split confidences are saturated).
    let train_curves = Workload::confidence_curves(&network, &workload.calib);
    let priors: Vec<f32> = (0..3)
        .map(|s| train_curves.iter().map(|c| c[s]).sum::<f32>() / train_curves.len() as f32)
        .collect();
    let num_classes = workload.test.num_classes();
    let baseline = 1.0 / num_classes as f32;

    type Maker<'a> = Box<dyn Fn() -> Box<dyn Scheduler> + 'a>;
    let policies: Vec<(String, Maker<'_>)> = {
        let mut v: Vec<(String, Maker<'_>)> = Vec::new();
        for k in 1..=3usize {
            let curves = train_curves.clone();
            v.push((
                format!("RTDeepIoT-{k}"),
                Box::new(move || {
                    let predictor = PwlCurvePredictor::fit(&curves, 10).expect("fit predictor");
                    Box::new(RtDeepIot::new(predictor, k, baseline))
                }),
            ));
        }
        for k in 1..=3usize {
            let priors = priors.clone();
            v.push((
                format!("RTDeepIoT-DC-{k}"),
                Box::new(move || {
                    Box::new(
                        RtDeepIot::new(DcPredictor::new(priors.clone()), k, baseline)
                            .with_name(format!("RTDeepIoT-DC-{k}")),
                    )
                }),
            ));
        }
        v.push(("RR".to_string(), Box::new(|| Box::new(RoundRobin::new()))));
        v.push(("FIFO".to_string(), Box::new(|| Box::new(Fifo::new()))));
        v
    };

    let mut all_series = Vec::new();
    for (name, make) in &policies {
        let mut mean_acc = Vec::new();
        let mut std_acc = Vec::new();
        let mut mean_stages = Vec::new();
        for &n in &CONCURRENCY {
            let config = SimConfig {
                num_workers: NUM_WORKERS,
                concurrency: n,
                deadline_quanta: DEADLINE_QUANTA,
                num_classes,
            };
            let mut accs = Vec::new();
            let mut stages = Vec::new();
            for trial in 0..TRIALS {
                let mut rng = seeded_rng(1000 + trial);
                let mut tasks = profiles.clone();
                tasks.shuffle(&mut rng);
                let mut scheduler = make();
                let outcome = Simulation::new(config).run(scheduler.as_mut(), tasks, &mut rng);
                accs.push(outcome.service_accuracy() as f32);
                stages.push(outcome.mean_stages());
            }
            mean_acc.push(accs.iter().map(|&a| a as f64).sum::<f64>() / accs.len() as f64);
            std_acc.push(std_dev(&accs) as f64);
            mean_stages.push(stages.iter().sum::<f64>() / stages.len() as f64);
        }
        all_series.push(Series {
            policy: name.clone(),
            concurrency: CONCURRENCY.to_vec(),
            mean_accuracy: mean_acc,
            std_accuracy: std_acc,
            mean_stages,
        });
    }

    let table = |title: &str, selector: &dyn Fn(&Series) -> &Vec<f64>, as_pct: bool| {
        let mut rows = Vec::new();
        for s in &all_series {
            let mut row = vec![s.policy.clone()];
            for v in selector(s) {
                row.push(if as_pct {
                    format!("{:.1}", v * 100.0)
                } else {
                    format!("{v:.2}")
                });
            }
            rows.push(row);
        }
        print_table(title, &["policy", "N=2", "N=5", "N=10", "N=20"], &rows);
    };
    table(
        "Fig. 4a/4b: mean service accuracy (%) vs concurrent tasks",
        &|s| &s.mean_accuracy,
        true,
    );
    table(
        "Fig. 4c: service accuracy std (%) vs concurrent tasks",
        &|s| &s.std_accuracy,
        true,
    );
    table(
        "Telemetry: mean stages executed per task",
        &|s| &s.mean_stages,
        false,
    );

    // Shape checks at the contended end (N = 20).
    let at20 = |name: &str| -> f64 {
        all_series
            .iter()
            .find(|s| s.policy == name)
            .map(|s| s.mean_accuracy[3])
            .expect("policy present")
    };
    println!(
        "\nShape checks at N=20: RTDeepIoT-1 {:.3} > RR {:.3}: {}; RTDeepIoT-1 > FIFO {:.3}: {}; \
         RTDeepIoT-1 >= DC-1 {:.3}: {}",
        at20("RTDeepIoT-1"),
        at20("RR"),
        at20("RTDeepIoT-1") > at20("RR"),
        at20("FIFO"),
        at20("RTDeepIoT-1") > at20("FIFO"),
        at20("RTDeepIoT-DC-1"),
        at20("RTDeepIoT-1") >= at20("RTDeepIoT-DC-1") - 0.01,
    );
    write_json("fig4_scheduling", &all_series);
}
