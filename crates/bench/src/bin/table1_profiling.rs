//! Reproduces **Table I**: execution time of convolutional layers is a
//! nonlinear function of FLOPs.
//!
//! The paper's measurements (Nexus 5): equal-FLOP layers CNN1/CNN2 differ
//! 114.9 ms vs 300.2 ms, and CNN3 (fewer FLOPs) is *slower* than CNN4.
//! We print the device model's latencies next to the paper's, then fit
//! the FastDeepIoT-style piecewise-linear regression tree and the naive
//! linear-in-FLOPs baseline on randomized layers and report their errors.
//!
//! Run: `cargo run --release -p eugene-bench --bin table1_profiling`

use eugene_bench::{print_table, write_json};
use eugene_profiler::{ConvSpec, DeviceModel, FlopsLinearModel, PwlRegressionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

#[derive(Serialize)]
struct Table1Row {
    name: String,
    in_channels: usize,
    out_channels: usize,
    gflops: f64,
    paper_ms: f64,
    model_ms: f64,
    tree_ms: f64,
    flops_line_ms: f64,
}

fn main() {
    let device = DeviceModel::nexus5_class();
    let paper_ms = [114.9, 300.2, 908.3, 751.7];

    // Train the profiler on randomized 224x224 layers measured (with
    // noise) on the device model.
    let mut rng = StdRng::seed_from_u64(42);
    let train_specs: Vec<ConvSpec> = (0..800)
        .map(|_| ConvSpec::same_padding(rng.gen_range(1..129), rng.gen_range(1..129), 3, 224))
        .collect();
    let train_ms: Vec<f64> = train_specs
        .iter()
        .map(|s| device.measure_ms(s, 0.03, &mut rng))
        .collect();
    let tree = PwlRegressionTree::fit(&train_specs, &train_ms, TreeConfig::default());
    let line = FlopsLinearModel::fit(&train_specs, &train_ms);

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for ((name, spec), &paper) in ConvSpec::table1_rows().iter().zip(&paper_ms) {
        let model_ms = device.latency_ms(spec);
        let tree_ms = tree.predict_ms(spec);
        let line_ms = line.predict_ms(spec);
        rows.push(vec![
            name.to_string(),
            spec.in_channels.to_string(),
            spec.out_channels.to_string(),
            format!("{:.1}", spec.flops() as f64 / 1e9),
            format!("{paper:.1}"),
            format!("{model_ms:.1}"),
            format!("{tree_ms:.1}"),
            format!("{line_ms:.1}"),
        ]);
        json_rows.push(Table1Row {
            name: name.to_string(),
            in_channels: spec.in_channels,
            out_channels: spec.out_channels,
            gflops: spec.flops() as f64 / 1e9,
            paper_ms: paper,
            model_ms,
            tree_ms,
            flops_line_ms: line_ms,
        });
    }
    print_table(
        "Table I: conv-layer execution time (3x3, stride 1, 224x224)",
        &[
            "layer",
            "in",
            "out",
            "GFLOPs",
            "paper ms",
            "device ms",
            "profiler ms",
            "FLOPs-line ms",
        ],
        &rows,
    );

    // Held-out profiler quality.
    let test_specs: Vec<ConvSpec> = (0..300)
        .map(|_| ConvSpec::same_padding(rng.gen_range(1..129), rng.gen_range(1..129), 3, 224))
        .collect();
    let test_ms: Vec<f64> = test_specs.iter().map(|s| device.latency_ms(s)).collect();
    let tree_mape = tree.mape(&test_specs, &test_ms);
    let line_mape = line.mape(&test_specs, &test_ms);
    print_table(
        "Profiler accuracy on held-out layers (MAPE, lower is better)",
        &["model", "MAPE"],
        &[
            vec![
                format!("piecewise-linear tree ({} regions)", tree.num_leaves()),
                format!("{:.1}%", tree_mape * 100.0),
            ],
            vec![
                "linear in FLOPs".to_string(),
                format!("{:.1}%", line_mape * 100.0),
            ],
        ],
    );
    println!(
        "\nShape checks: CNN2/CNN1 time ratio {:.2} at equal FLOPs (paper 2.61); \
         CNN3 slower than CNN4 despite {:.0}% fewer FLOPs: {}",
        json_rows[1].model_ms / json_rows[0].model_ms,
        (1.0 - json_rows[2].gflops / json_rows[3].gflops) * 100.0,
        json_rows[2].model_ms > json_rows[3].model_ms,
    );
    write_json("table1_profiling", &json_rows);
}
