//! Reproduces **Table III**: quality of the dynamic confidence-curve
//! predictions `GP1→2`, `GP1→3`, `GP2→3`.
//!
//! Paper numbers: MAE 0.124 / 0.108 / 0.072 and R² 0.57 / 0.43 / 0.78.
//! The shape to match: `GP2→3` is the best predictor (most information),
//! `GP1→3` has the lowest R² (longest horizon), and MAE mirrors that
//! order. We also report the piecewise-linear compression's agreement
//! with the exact GP, the property §III-B relies on at runtime.
//!
//! Run: `cargo run --release -p eugene-bench --bin table3_gp`

use eugene_bench::{print_table, write_json, Workload, WorkloadConfig};
use eugene_gp::{mae, r_squared, GpParams, GpRegressor, PiecewiseLinear};
use serde::Serialize;

#[derive(Serialize)]
struct GpRow {
    pair: String,
    mae: f64,
    r_squared: f64,
    pwl_vs_gp_max_diff: f64,
}

fn main() {
    println!("training the three-stage workload...");
    let workload = Workload::standard(WorkloadConfig::default());
    // The calibrated network is what the scheduler actually consumes.
    let network = workload.calibrated_network(8);
    // Fit on the calibration split: the overfit network's *training*-split
    // confidences are saturated near 1.0, which would starve the GPs of
    // signal; held-out curves carry the real confidence dynamics.
    let train_curves = Workload::confidence_curves(&network, &workload.calib);
    let test_curves = Workload::confidence_curves(&network, &workload.test);

    let pairs = [(0usize, 1usize), (0, 2), (1, 2)];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &(from, to) in &pairs {
        let xs: Vec<f64> = train_curves.iter().map(|c| c[from] as f64).collect();
        let ys: Vec<f64> = train_curves.iter().map(|c| c[to] as f64).collect();
        let gp = GpRegressor::fit(&xs, &ys, GpParams::default()).expect("GP fit");
        let pwl = PiecewiseLinear::profile(|x| gp.predict_mean(x).clamp(0.0, 1.0), 10);

        let predictions: Vec<f64> = test_curves
            .iter()
            .map(|c| pwl.eval(c[from] as f64))
            .collect();
        let targets: Vec<f64> = test_curves.iter().map(|c| c[to] as f64).collect();
        let row_mae = mae(&predictions, &targets);
        let row_r2 = r_squared(&predictions, &targets);
        let pwl_err = pwl.max_error(|x| gp.predict_mean(x).clamp(0.0, 1.0), 200);
        let pair = format!("GP{}->{}", from + 1, to + 1);
        rows.push(vec![
            pair.clone(),
            format!("{row_mae:.3}"),
            format!("{row_r2:.2}"),
            format!("{pwl_err:.4}"),
        ]);
        json.push(GpRow {
            pair,
            mae: row_mae,
            r_squared: row_r2,
            pwl_vs_gp_max_diff: pwl_err,
        });
    }
    print_table(
        "Table III: dynamic confidence-curve prediction (test split)",
        &["pair", "MAE", "R^2", "PWL-vs-GP max diff"],
        &rows,
    );
    println!(
        "\nShape checks: R^2(GP2->3) {:.2} is the best: {}; MAE(GP2->3) {:.3} is the lowest: {}",
        json[2].r_squared,
        json[2].r_squared > json[0].r_squared && json[2].r_squared > json[1].r_squared,
        json[2].mae,
        json[2].mae < json[0].mae && json[2].mae < json[1].mae,
    );
    write_json("table3_gp", &json);
}
