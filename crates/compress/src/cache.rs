use crate::ClassFrequencyTracker;
use eugene_data::Dataset;
use eugene_nn::{StagedNetwork, StagedNetworkConfig, TrainConfig, Trainer};
use eugene_tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for building a [`CachedModel`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachedModelConfig {
    /// Hidden width of the reduced on-device network.
    pub hidden_width: usize,
    /// Training epochs for the reduced network.
    pub epochs: usize,
    /// A device answer below this confidence is treated as a cache miss.
    pub miss_threshold: f32,
}

impl Default for CachedModelConfig {
    fn default() -> Self {
        Self {
            hidden_width: 24,
            epochs: 25,
            miss_threshold: 0.5,
        }
    }
}

/// Outcome of consulting the on-device cached model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CacheDecision {
    /// The reduced model answered confidently with one of its cached
    /// classes (original class id, confidence).
    Hit {
        /// Original class id (not the remapped cache-local id).
        class: usize,
        /// Reduced-model confidence.
        confidence: f32,
    },
    /// The input looks like an uncommon class or the reduced model is
    /// unsure: escalate to the full model on the server.
    Miss,
}

/// The paper's §II-B cached model: a small network "with only those
/// \[frequent\] items as positive examples" plus an *other* bucket.
/// Predicting *other* — or predicting anything with low confidence — is
/// "viewed as a cache miss that triggers full network execution on the
/// server."
#[derive(Debug)]
pub struct CachedModel {
    model: StagedNetwork,
    /// Original ids of the cached classes; the remapped label `i` means
    /// `classes[i]`, and label `classes.len()` means *other*.
    classes: Vec<usize>,
    miss_threshold: f32,
}

impl CachedModel {
    /// Trains a reduced model for `frequent_classes` from the server-side
    /// training set.
    ///
    /// # Panics
    ///
    /// Panics if `frequent_classes` is empty, contains duplicates or
    /// out-of-range ids, or if `data` is empty.
    pub fn build(
        data: &Dataset,
        frequent_classes: &[usize],
        config: &CachedModelConfig,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            !frequent_classes.is_empty(),
            "need at least one cached class"
        );
        assert!(!data.is_empty(), "need training data");
        let mut seen = vec![false; data.num_classes()];
        for &c in frequent_classes {
            assert!(c < data.num_classes(), "class {c} out of range");
            assert!(!seen[c], "duplicate class {c}");
            seen[c] = true;
        }
        // Remap: frequent class i -> i, everything else -> "other" — and
        // rebalance so the catch-all bucket cannot dominate training.
        let other = frequent_classes.len();
        let mut kept_indices = Vec::new();
        let mut remapped = Vec::new();
        let frequent_count = data
            .labels()
            .iter()
            .filter(|y| frequent_classes.contains(y))
            .count();
        let other_budget = (frequent_count / frequent_classes.len().max(1)).max(1);
        let mut other_kept = 0usize;
        for (i, &y) in data.labels().iter().enumerate() {
            match frequent_classes.iter().position(|&c| c == y) {
                Some(local) => {
                    kept_indices.push(i);
                    remapped.push(local);
                }
                None if other_kept < other_budget => {
                    other_kept += 1;
                    kept_indices.push(i);
                    remapped.push(other);
                }
                None => {}
            }
        }
        let cache_data = Dataset::new(
            data.features().select_rows(&kept_indices),
            remapped,
            other + 1,
        );
        let net_config = StagedNetworkConfig {
            input_dim: data.dim(),
            num_classes: other + 1,
            stage_widths: vec![vec![config.hidden_width]],
            dropout: 0.0,
            input_skip: false,
        };
        let mut model = StagedNetwork::new(&net_config, rng);
        Trainer::new(TrainConfig {
            epochs: config.epochs,
            ..TrainConfig::default()
        })
        .fit(&mut model, &cache_data, rng);
        Self {
            model,
            classes: frequent_classes.to_vec(),
            miss_threshold: config.miss_threshold,
        }
    }

    /// Original ids of the cached classes.
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }

    /// Parameter count of the reduced model (for footprint comparisons).
    pub fn param_count(&self) -> usize {
        self.model.param_count()
    }

    /// Consults the cached model on one input.
    ///
    /// # Panics
    ///
    /// Panics if `sample` has the wrong dimensionality.
    pub fn classify(&self, sample: &[f32]) -> CacheDecision {
        let out = self
            .model
            .classify(sample)
            .pop()
            .expect("model has one stage");
        let other = self.classes.len();
        if out.predicted == other || out.confidence < self.miss_threshold {
            CacheDecision::Miss
        } else {
            CacheDecision::Hit {
                class: self.classes[out.predicted],
                confidence: out.confidence,
            }
        }
    }
}

/// Running hit/miss statistics of a device cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelCacheStats {
    /// Inputs answered locally.
    pub hits: u64,
    /// Inputs escalated to the server.
    pub misses: u64,
}

impl ModelCacheStats {
    /// `hits / (hits + misses)`, or `0.0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// The device-side cache controller: tracks class frequencies, decides
/// when a reduced model is worth installing, and routes lookups.
#[derive(Debug)]
pub struct ModelCache {
    tracker: ClassFrequencyTracker,
    cached: Option<CachedModel>,
    stats: ModelCacheStats,
    min_share: f64,
    min_observations: u64,
}

impl ModelCache {
    /// Creates an empty cache for a `num_classes` problem.
    ///
    /// `min_share` is the traffic share a class needs to be considered
    /// frequent; `min_observations` gates how early a cache may be built.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0`, `decay` is outside `(0, 1]`, or
    /// `min_share` is outside `(0, 1]`.
    pub fn new(num_classes: usize, decay: f64, min_share: f64, min_observations: u64) -> Self {
        assert!(
            min_share > 0.0 && min_share <= 1.0,
            "min_share must be in (0, 1], got {min_share}"
        );
        Self {
            tracker: ClassFrequencyTracker::new(num_classes, decay),
            cached: None,
            stats: ModelCacheStats::default(),
            min_share,
            min_observations,
        }
    }

    /// Records a server-computed classification (the traffic signal).
    pub fn record(&mut self, class: usize) {
        self.tracker.record(class);
    }

    /// Classes currently frequent enough to cache (may be empty).
    pub fn cache_candidates(&self) -> Vec<usize> {
        if self.tracker.observations() < self.min_observations {
            return Vec::new();
        }
        self.tracker.frequent_classes(self.min_share)
    }

    /// Whether a (re)build is advisable: candidates exist and differ from
    /// the installed model's class set.
    pub fn should_rebuild(&self) -> bool {
        let candidates = self.cache_candidates();
        if candidates.is_empty() {
            return false;
        }
        match &self.cached {
            None => true,
            Some(model) => {
                let mut installed = model.classes().to_vec();
                let mut wanted = candidates;
                installed.sort_unstable();
                wanted.sort_unstable();
                installed != wanted
            }
        }
    }

    /// Installs a freshly built reduced model.
    pub fn install(&mut self, model: CachedModel) {
        self.cached = Some(model);
    }

    /// Evicts the cached model (e.g. after drift).
    pub fn evict(&mut self) -> Option<CachedModel> {
        self.cached.take()
    }

    /// Whether a reduced model is installed.
    pub fn is_populated(&self) -> bool {
        self.cached.is_some()
    }

    /// Looks up one input: local answer on a hit, [`CacheDecision::Miss`]
    /// when absent or unsure.
    pub fn lookup(&mut self, sample: &[f32]) -> CacheDecision {
        let decision = match &self.cached {
            None => CacheDecision::Miss,
            Some(model) => model.classify(sample),
        };
        match decision {
            CacheDecision::Hit { .. } => self.stats.hits += 1,
            CacheDecision::Miss => self.stats.misses += 1,
        }
        decision
    }

    /// Hit/miss statistics so far.
    pub fn stats(&self) -> ModelCacheStats {
        self.stats
    }
}

/// Convenience: evaluates a cached-model deployment against ground truth,
/// returning `(hit_rate, hit_accuracy)` over a labeled stream.
///
/// # Panics
///
/// Panics if `stream` is empty.
pub fn evaluate_cache(cache: &mut ModelCache, stream: &Dataset) -> (f64, f64) {
    assert!(!stream.is_empty(), "need a non-empty stream");
    let mut hits = 0u64;
    let mut hit_correct = 0u64;
    for i in 0..stream.len() {
        if let CacheDecision::Hit { class, .. } = cache.lookup(stream.sample(i)) {
            hits += 1;
            if class == stream.label(i) {
                hit_correct += 1;
            }
        }
    }
    let hit_rate = hits as f64 / stream.len() as f64;
    let hit_acc = if hits == 0 {
        0.0
    } else {
        hit_correct as f64 / hits as f64
    };
    (hit_rate, hit_acc)
}

/// Builds a class-skewed stream: `hot_share` of samples drawn from
/// `hot_classes`, the rest uniform over all classes — the "most common
/// items entered might end up being beer and pop bottles" scenario.
///
/// # Panics
///
/// Panics if `hot_classes` is empty or `hot_share` is outside `[0, 1]`.
pub fn skewed_stream(
    base: &Dataset,
    hot_classes: &[usize],
    hot_share: f64,
    n: usize,
    rng: &mut impl Rng,
) -> Dataset {
    assert!(!hot_classes.is_empty(), "need at least one hot class");
    assert!((0.0..=1.0).contains(&hot_share), "hot_share in [0, 1]");
    // Index samples by class.
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); base.num_classes()];
    for (i, &y) in base.labels().iter().enumerate() {
        by_class[y].push(i);
    }
    let mut features = Matrix::zeros(n, base.dim());
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = if rng.gen_bool(hot_share) {
            hot_classes[rng.gen_range(0..hot_classes.len())]
        } else {
            rng.gen_range(0..base.num_classes())
        };
        let pool = &by_class[class];
        assert!(
            !pool.is_empty(),
            "base dataset lacks samples of class {class}"
        );
        let pick = pool[rng.gen_range(0..pool.len())];
        features.row_mut(i).copy_from_slice(base.sample(pick));
        labels.push(class);
    }
    Dataset::new(features, labels, base.num_classes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use eugene_data::{SyntheticImages, SyntheticImagesConfig};
    use eugene_tensor::seeded_rng;

    fn base_data() -> Dataset {
        let mut rng = seeded_rng(20);
        let gen = SyntheticImages::new(
            SyntheticImagesConfig {
                num_classes: 6,
                dim: 12,
                easy_fraction: 0.8,
                medium_fraction: 0.15,
                ..Default::default()
            },
            &mut rng,
        );
        gen.generate(600, &mut rng).0
    }

    #[test]
    fn cached_model_hits_on_frequent_classes() {
        let data = base_data();
        let mut rng = seeded_rng(21);
        let model = CachedModel::build(&data, &[0, 1], &CachedModelConfig::default(), &mut rng);
        let mut hits = 0;
        let mut total = 0;
        for i in 0..data.len() {
            if data.label(i) <= 1 {
                total += 1;
                if let CacheDecision::Hit { class, .. } = model.classify(data.sample(i)) {
                    if class == data.label(i) {
                        hits += 1;
                    }
                }
            }
        }
        let rate = hits as f64 / total as f64;
        assert!(rate > 0.5, "frequent-class hit accuracy {rate}");
    }

    #[test]
    fn cached_model_misses_on_uncached_classes() {
        let data = base_data();
        let mut rng = seeded_rng(22);
        let model = CachedModel::build(&data, &[0, 1], &CachedModelConfig::default(), &mut rng);
        let mut misses = 0;
        let mut total = 0;
        for i in 0..data.len() {
            if data.label(i) >= 2 {
                total += 1;
                if model.classify(data.sample(i)) == CacheDecision::Miss {
                    misses += 1;
                }
            }
        }
        let rate = misses as f64 / total as f64;
        assert!(rate > 0.6, "uncached-class miss rate {rate}");
    }

    #[test]
    fn cache_controller_lifecycle() {
        let data = base_data();
        let mut cache = ModelCache::new(6, 0.995, 0.25, 30);
        assert!(!cache.should_rebuild(), "too few observations");
        // Hot traffic on classes 0 and 1.
        for i in 0..100 {
            cache.record(i % 2);
        }
        assert!(cache.should_rebuild());
        let candidates = cache.cache_candidates();
        assert!(candidates.contains(&0) && candidates.contains(&1));
        let mut rng = seeded_rng(23);
        let model = CachedModel::build(&data, &candidates, &CachedModelConfig::default(), &mut rng);
        cache.install(model);
        assert!(cache.is_populated());
        assert!(!cache.should_rebuild(), "installed set matches candidates");
        // Lookups update stats.
        let _ = cache.lookup(data.sample(0));
        assert_eq!(cache.stats().hits + cache.stats().misses, 1);
        assert!(cache.evict().is_some());
        assert!(!cache.is_populated());
    }

    #[test]
    fn skewed_stream_and_cache_evaluation() {
        let data = base_data();
        let mut rng = seeded_rng(24);
        let stream = skewed_stream(&data, &[2, 3], 0.8, 300, &mut rng);
        let hot = stream
            .labels()
            .iter()
            .filter(|&&y| y == 2 || y == 3)
            .count() as f64
            / 300.0;
        assert!(hot > 0.7, "hot share {hot}");

        let mut cache = ModelCache::new(6, 1.0, 0.2, 10);
        let model = CachedModel::build(&data, &[2, 3], &CachedModelConfig::default(), &mut rng);
        cache.install(model);
        let (hit_rate, hit_acc) = evaluate_cache(&mut cache, &stream);
        assert!(hit_rate > 0.4, "hit rate {hit_rate}");
        assert!(hit_acc > 0.6, "hit accuracy {hit_acc}");
    }

    #[test]
    fn empty_cache_always_misses() {
        let data = base_data();
        let mut cache = ModelCache::new(6, 0.99, 0.3, 10);
        assert_eq!(cache.lookup(data.sample(0)), CacheDecision::Miss);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "duplicate class")]
    fn duplicate_cached_classes_rejected() {
        let data = base_data();
        CachedModel::build(
            &data,
            &[1, 1],
            &CachedModelConfig::default(),
            &mut seeded_rng(25),
        );
    }
}
