use eugene_nn::{Linear, Sequential, StagedNetwork};
use eugene_tensor::Matrix;

/// Removes hidden units from a staged network, producing a *smaller dense*
/// network — the DeepIoT-style reduction the paper advocates (§II-B):
/// "Removal of entire nodes ... produces a new matrix that is also dense,
/// but that has smaller dimensions."
///
/// Unit importance is the L2 norm of the unit's outgoing column in its
/// producing layer (DeepIoT learns importances with a compressor-critic
/// network; magnitude salience is the standard lightweight stand-in and
/// preserves the experiment's subject — dense-vs-sparse efficiency, and
/// accuracy recovery after fine-tuning).
///
/// Each hidden `Linear` keeps the `ceil(keep_fraction * width)` most
/// important output units; the consuming layers' input rows are sliced to
/// match, including the stage's classifier head and the first layer of the
/// next stage. Class-count outputs (heads) are never pruned.
///
/// # Panics
///
/// Panics unless `0.0 < keep_fraction <= 1.0`, or if the network contains
/// a stage whose layers are not the `Linear`/activation/dropout pattern
/// produced by [`eugene_nn::StagedNetworkConfig`].
///
/// # Examples
///
/// See `crates/bench/src/bin/compress_ablation.rs`.
pub fn prune_nodes(network: &StagedNetwork, keep_fraction: f64) -> StagedNetwork {
    assert!(
        keep_fraction > 0.0 && keep_fraction <= 1.0,
        "keep_fraction must be in (0, 1], got {keep_fraction}"
    );
    // Indices of the currently-kept activations feeding the next layer;
    // `None` means "all inputs kept" (start of network).
    let mut kept: Option<Vec<usize>> = None;
    let mut prev_original_width = network.input_dim();
    let mut new_stages = Vec::with_capacity(network.num_stages());
    let mut new_heads = Vec::with_capacity(network.num_stages());
    for (s, (stage, head)) in network.stages().iter().zip(network.heads()).enumerate() {
        // With input shortcuts, stage s > 0 consumes
        // [prev stage output | raw input]: the kept rows are the pruned
        // previous units followed by every raw-input dimension.
        let mut stage_kept: Option<Vec<usize>> = if s > 0 && network.input_skip() {
            let mut rows: Vec<usize> = kept
                .clone()
                .unwrap_or_else(|| (0..prev_original_width).collect());
            rows.extend(prev_original_width..prev_original_width + network.input_dim());
            Some(rows)
        } else {
            kept.clone()
        };
        let mut block = Sequential::new();
        for layer in stage.layers() {
            if let Some(linear) = layer.as_any().downcast_ref::<Linear>() {
                let sliced = slice_rows(linear, stage_kept.as_deref());
                let keep_cols = select_columns(&sliced, keep_fraction);
                prev_original_width = linear.out_dim();
                block.push(slice_cols(&sliced, &keep_cols));
                stage_kept = Some(keep_cols);
            } else {
                // Activations / dropout are width-agnostic: keep verbatim.
                block.push_boxed(layer.clone_box());
            }
        }
        kept = stage_kept;
        new_heads.push(slice_rows(head, kept.as_deref()));
        new_stages.push(block);
    }
    StagedNetwork::from_parts(
        new_stages,
        new_heads,
        network.input_dim(),
        network.num_classes(),
        network.input_skip(),
    )
}

/// Keeps only the given input rows of a linear layer (`None` keeps all).
fn slice_rows(layer: &Linear, kept_inputs: Option<&[usize]>) -> Linear {
    match kept_inputs {
        None => layer.clone(),
        Some(rows) => Linear::from_parts(layer.weights().select_rows(rows), layer.bias().clone()),
    }
}

/// Selects the most important output columns of `layer` (L2 column norm),
/// returning their indices in ascending order.
fn select_columns(layer: &Linear, keep_fraction: f64) -> Vec<usize> {
    let out_dim = layer.out_dim();
    let keep = ((out_dim as f64 * keep_fraction).ceil() as usize).clamp(1, out_dim);
    let weights = layer.weights();
    let mut scored: Vec<(usize, f32)> = (0..out_dim)
        .map(|c| {
            let norm: f32 = (0..layer.in_dim()).map(|r| weights[(r, c)].powi(2)).sum();
            (c, norm)
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut cols: Vec<usize> = scored.into_iter().take(keep).map(|(c, _)| c).collect();
    cols.sort_unstable();
    cols
}

/// Keeps only the given output columns (weights and bias).
fn slice_cols(layer: &Linear, cols: &[usize]) -> Linear {
    Linear::from_parts(
        layer.weights().select_cols(cols),
        Matrix::row_vector(
            &cols
                .iter()
                .map(|&c| layer.bias()[(0, c)])
                .collect::<Vec<f32>>(),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use eugene_data::{Dataset, SyntheticImages, SyntheticImagesConfig};
    use eugene_nn::{evaluate_staged, StagedNetworkConfig, TrainConfig, Trainer};
    use eugene_tensor::seeded_rng;

    fn trained_network() -> (StagedNetwork, Dataset) {
        let mut rng = seeded_rng(11);
        let gen = SyntheticImages::new(
            SyntheticImagesConfig {
                num_classes: 5,
                dim: 12,
                ..Default::default()
            },
            &mut rng,
        );
        let (train, _) = gen.generate(400, &mut rng);
        let config = StagedNetworkConfig {
            input_dim: train.dim(),
            num_classes: train.num_classes(),
            stage_widths: vec![vec![32], vec![32]],
            dropout: 0.0,
            input_skip: false,
        };
        let mut net = StagedNetwork::new(&config, &mut seeded_rng(12));
        Trainer::new(TrainConfig {
            epochs: 30,
            ..TrainConfig::default()
        })
        .fit(&mut net, &train, &mut seeded_rng(13));
        (net, train)
    }

    #[test]
    fn keep_all_is_behavior_preserving() {
        let (net, data) = trained_network();
        let pruned = prune_nodes(&net, 1.0);
        assert_eq!(pruned.param_count(), net.param_count());
        let want = net.predict_all(data.features());
        let got = pruned.predict_all(data.features());
        for (a, b) in want.iter().zip(&got) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn pruning_halves_parameters_roughly() {
        let (net, _) = trained_network();
        let pruned = prune_nodes(&net, 0.5);
        let ratio = pruned.param_count() as f64 / net.param_count() as f64;
        assert!(
            (0.2..0.7).contains(&ratio),
            "param ratio {ratio} after 50% node pruning"
        );
        // Dimensions shrink but stay dense.
        assert_eq!(pruned.stage_output_dim(0), 16);
        assert_eq!(pruned.stage_output_dim(1), 16);
    }

    #[test]
    fn pruned_network_stays_usable_and_recovers_with_finetuning() {
        let (net, train) = trained_network();
        let base_acc = evaluate_staged(&net, &train).last().unwrap().accuracy;
        let mut pruned = prune_nodes(&net, 0.5);
        // Still a valid network producing distributions.
        let outs = pruned.classify(train.sample(0));
        assert_eq!(outs.len(), 2);
        // Brief fine-tuning recovers most of the accuracy.
        Trainer::new(TrainConfig {
            epochs: 10,
            learning_rate: 5e-4,
            ..TrainConfig::default()
        })
        .fit(&mut pruned, &train, &mut seeded_rng(14));
        let pruned_acc = evaluate_staged(&pruned, &train).last().unwrap().accuracy;
        assert!(
            pruned_acc > base_acc - 0.1,
            "pruned accuracy {pruned_acc} vs base {base_acc}"
        );
    }

    #[test]
    fn aggressive_pruning_keeps_at_least_one_unit() {
        let (net, _) = trained_network();
        let pruned = prune_nodes(&net, 0.01);
        assert!(pruned.stage_output_dim(0) >= 1);
        assert_eq!(pruned.num_classes(), 5, "heads keep all classes");
    }

    #[test]
    #[should_panic(expected = "keep_fraction")]
    fn zero_keep_fraction_rejected() {
        let (net, _) = trained_network();
        prune_nodes(&net, 0.0);
    }
}
